//! Cross-crate integration tests: every kernel, in every ISA dialect, produces
//! output bit-identical to the golden reference in
//! `crates/kernels/src/reference.rs` on a seed different from the one the unit
//! tests use.
//!
//! Each kernel×ISA pair gets its own `#[test]` (via `verify_pair_tests!`) so a
//! regression in one implementation is reported by name instead of aborting a
//! shared loop; the full 8-kernel × 4-ISA matrix is 32 tests.

use momsim::isa::trace::IsaKind;
use momsim::kernels::{build_kernel, KernelKind, KernelParams};

/// Seed distinct from the unit tests' (42) and the benches' workloads.
const FRESH_SEED: u64 = 20_260_614;

/// Build and run one kernel×ISA pair, asserting bit-exact agreement with the
/// golden reference (`run_verified` turns any mismatch into an error) and a
/// non-empty dynamic trace.
fn verify_pair(kernel: KernelKind, isa: IsaKind) {
    let params = KernelParams { seed: FRESH_SEED, scale: 1 };
    let run = build_kernel(kernel, isa, &params)
        .run_verified()
        .unwrap_or_else(|e| panic!("{kernel} ({isa}) failed: {e}"));
    assert!(!run.trace.is_empty(), "{kernel} ({isa}) produced an empty trace");
}

macro_rules! verify_pair_tests {
    ($($name:ident => ($kernel:ident, $isa:ident);)*) => {
        $(
            #[test]
            fn $name() {
                verify_pair(KernelKind::$kernel, IsaKind::$isa);
            }
        )*

        /// One entry per generated pair test (duplicate pairs would collide
        /// as duplicate `fn` names and fail to compile).
        const PAIR_TESTS: &[(KernelKind, IsaKind)] =
            &[$((KernelKind::$kernel, IsaKind::$isa)),*];
    };
}

verify_pair_tests! {
    idct_alpha => (Idct, Alpha);
    idct_mmx => (Idct, Mmx);
    idct_mdmx => (Idct, Mdmx);
    idct_mom => (Idct, Mom);
    motion1_alpha => (Motion1, Alpha);
    motion1_mmx => (Motion1, Mmx);
    motion1_mdmx => (Motion1, Mdmx);
    motion1_mom => (Motion1, Mom);
    motion2_alpha => (Motion2, Alpha);
    motion2_mmx => (Motion2, Mmx);
    motion2_mdmx => (Motion2, Mdmx);
    motion2_mom => (Motion2, Mom);
    rgb2ycc_alpha => (Rgb2Ycc, Alpha);
    rgb2ycc_mmx => (Rgb2Ycc, Mmx);
    rgb2ycc_mdmx => (Rgb2Ycc, Mdmx);
    rgb2ycc_mom => (Rgb2Ycc, Mom);
    ltp_parameters_alpha => (LtpParameters, Alpha);
    ltp_parameters_mmx => (LtpParameters, Mmx);
    ltp_parameters_mdmx => (LtpParameters, Mdmx);
    ltp_parameters_mom => (LtpParameters, Mom);
    addblock_alpha => (AddBlock, Alpha);
    addblock_mmx => (AddBlock, Mmx);
    addblock_mdmx => (AddBlock, Mdmx);
    addblock_mom => (AddBlock, Mom);
    compensation_alpha => (Compensation, Alpha);
    compensation_mmx => (Compensation, Mmx);
    compensation_mdmx => (Compensation, Mdmx);
    compensation_mom => (Compensation, Mom);
    h2v2_upsample_alpha => (H2v2Upsample, Alpha);
    h2v2_upsample_mmx => (H2v2Upsample, Mmx);
    h2v2_upsample_mdmx => (H2v2Upsample, Mdmx);
    h2v2_upsample_mom => (H2v2Upsample, Mom);
}

#[test]
fn pair_tests_cover_the_whole_matrix() {
    // Every (kernel, isa) combination must appear in the macro invocation
    // above; if either enum grows (or a row is deleted), this fails until the
    // matrix is extended.
    for kernel in KernelKind::ALL {
        for isa in IsaKind::ALL {
            assert!(
                PAIR_TESTS.contains(&(kernel, isa)),
                "no pair test generated for {kernel} ({isa})"
            );
        }
    }
    assert_eq!(PAIR_TESTS.len(), KernelKind::ALL.len() * IsaKind::ALL.len());
}

#[test]
fn every_pair_also_verifies_at_scale_2() {
    // The per-pair tests above pin scale 1; larger workloads exercise the
    // loop bounds and address arithmetic the scale factor drives.
    let params = KernelParams { seed: FRESH_SEED + 1, scale: 2 };
    for kernel in KernelKind::ALL {
        for isa in IsaKind::ALL {
            build_kernel(kernel, isa, &params)
                .run_verified()
                .unwrap_or_else(|e| panic!("{kernel} ({isa}) failed at scale 2: {e}"));
        }
    }
}

#[test]
fn media_isas_never_shrink_below_mom() {
    // For every kernel the dynamic instruction ordering must be
    // Alpha > MMX >= MDMX-ish > MOM (MDMX may tie MMX where accumulators
    // bring nothing).
    let params = KernelParams { seed: 99, scale: 1 };
    for kernel in KernelKind::ALL {
        let count = |isa: IsaKind| {
            build_kernel(kernel, isa, &params).run_verified().unwrap().trace.len()
        };
        let alpha = count(IsaKind::Alpha);
        let mmx = count(IsaKind::Mmx);
        let mdmx = count(IsaKind::Mdmx);
        let mom = count(IsaKind::Mom);
        assert!(mmx < alpha, "{kernel}: MMX {mmx} vs Alpha {alpha}");
        assert!(mdmx <= mmx, "{kernel}: MDMX {mdmx} vs MMX {mmx}");
        assert!(mom < mdmx, "{kernel}: MOM {mom} vs MDMX {mdmx}");
    }
}

#[test]
fn workload_scale_is_monotonic() {
    for scale in [1usize, 2] {
        let params = KernelParams { seed: 3, scale };
        let run = build_kernel(KernelKind::AddBlock, IsaKind::Mom, &params).run_verified().unwrap();
        assert!(run.trace.len() > 100 * scale);
    }
}
