//! Cross-crate integration tests: every kernel, in every ISA dialect, produces
//! output bit-identical to the golden reference on a seed different from the
//! one the unit tests use.

use momsim::isa::trace::IsaKind;
use momsim::kernels::{build_kernel, KernelKind, KernelParams};

#[test]
fn all_kernels_verify_on_a_fresh_seed() {
    let params = KernelParams { seed: 20_260_614, scale: 1 };
    for kernel in KernelKind::ALL {
        for isa in IsaKind::ALL {
            let run = build_kernel(kernel, isa, &params)
                .run_verified()
                .unwrap_or_else(|e| panic!("{kernel} ({isa}) failed: {e}"));
            assert!(run.output_matches, "{kernel} ({isa}) mismatch");
            assert!(!run.trace.is_empty());
        }
    }
}

#[test]
fn media_isas_never_shrink_below_mom() {
    // For every kernel the dynamic instruction ordering must be
    // Alpha > MMX >= MDMX-ish > MOM (MDMX may tie MMX where accumulators
    // bring nothing).
    let params = KernelParams { seed: 99, scale: 1 };
    for kernel in KernelKind::ALL {
        let count = |isa: IsaKind| {
            build_kernel(kernel, isa, &params).run_verified().unwrap().trace.len()
        };
        let alpha = count(IsaKind::Alpha);
        let mmx = count(IsaKind::Mmx);
        let mdmx = count(IsaKind::Mdmx);
        let mom = count(IsaKind::Mom);
        assert!(mmx < alpha, "{kernel}: MMX {mmx} vs Alpha {alpha}");
        assert!(mdmx <= mmx, "{kernel}: MDMX {mdmx} vs MMX {mmx}");
        assert!(mom < mdmx, "{kernel}: MOM {mom} vs MDMX {mdmx}");
    }
}

#[test]
fn workload_scale_is_monotonic() {
    for scale in [1usize, 2] {
        let params = KernelParams { seed: 3, scale };
        let run = build_kernel(KernelKind::AddBlock, IsaKind::Mom, &params).run_verified().unwrap();
        assert!(run.trace.len() > 100 * scale);
    }
}
