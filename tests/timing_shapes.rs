//! Cross-crate integration tests of the timing results: the qualitative shape
//! of the paper's headline claims must hold end-to-end (functional kernels →
//! traces → out-of-order core → memory models).
//!
//! These use the cheapest kernels so they stay fast in debug builds; the full
//! sweeps live in the `mom-bench` binaries.

use momsim::cpu::{CoreConfig, OooCore};
use momsim::isa::trace::IsaKind;
use momsim::kernels::{build_kernel, KernelKind, KernelParams};
use momsim::mem::{build_memory, MemModelKind};

fn cycles(kernel: KernelKind, isa: IsaKind, way: usize, mem: MemModelKind) -> u64 {
    let params = KernelParams { seed: 42, scale: 1 };
    let run = build_kernel(kernel, isa, &params).run_verified().unwrap();
    let core = OooCore::new(CoreConfig::for_width(way, isa));
    let mut memory = build_memory(mem, way);
    core.simulate(&run.trace, memory.as_mut()).cycles
}

#[test]
fn mom_outperforms_mmx_and_alpha_on_the_one_way_machine() {
    let perfect = MemModelKind::Perfect { latency: 1 };
    let alpha = cycles(KernelKind::Compensation, IsaKind::Alpha, 1, perfect);
    let mmx = cycles(KernelKind::Compensation, IsaKind::Mmx, 1, perfect);
    let mom = cycles(KernelKind::Compensation, IsaKind::Mom, 1, perfect);
    assert!(mmx < alpha / 2, "MMX {mmx} vs Alpha {alpha}");
    assert!((mom as f64) < mmx as f64 / 1.3, "MOM {mom} vs MMX {mmx}");
}

#[test]
fn mom_advantage_shrinks_on_wider_machines() {
    // The paper: MOM's relative advantage over the same-width Alpha machine is
    // largest at low issue rates because it removes fetch pressure.
    let perfect = MemModelKind::Perfect { latency: 1 };
    let ratio = |way: usize| {
        cycles(KernelKind::AddBlock, IsaKind::Alpha, way, perfect) as f64
            / cycles(KernelKind::AddBlock, IsaKind::Mom, way, perfect) as f64
    };
    let narrow = ratio(1);
    let wide = ratio(8);
    assert!(narrow > 1.5);
    assert!(wide < narrow * 1.6, "1-way ratio {narrow:.2}, 8-way ratio {wide:.2}");
}

#[test]
fn mom_tolerates_memory_latency_better() {
    let slowdown = |isa: IsaKind| {
        cycles(KernelKind::Compensation, isa, 4, MemModelKind::Perfect { latency: 50 }) as f64
            / cycles(KernelKind::Compensation, isa, 4, MemModelKind::Perfect { latency: 1 }) as f64
    };
    let alpha = slowdown(IsaKind::Alpha);
    let mmx = slowdown(IsaKind::Mmx);
    let mom = slowdown(IsaKind::Mom);
    assert!(mom < mmx, "MOM slow-down {mom:.2} vs MMX {mmx:.2}");
    assert!(mom < alpha, "MOM slow-down {mom:.2} vs Alpha {alpha:.2}");
}

#[test]
fn realistic_hierarchies_run_mom_traces_correctly() {
    // The three MOM-specific memory front-ends must all complete the same
    // trace; the vector cache should not be slower than element-at-a-time
    // multi-address access for this unit-stride-friendly kernel at 8 ways.
    let params = KernelParams { seed: 42, scale: 1 };
    let run = build_kernel(KernelKind::AddBlock, IsaKind::Mom, &params).run_verified().unwrap();
    let mut results = Vec::new();
    for kind in [MemModelKind::MultiAddress, MemModelKind::VectorCache, MemModelKind::CollapsingBuffer] {
        let core = OooCore::new(CoreConfig::for_width(8, IsaKind::Mom));
        let mut memory = build_memory(kind, 8);
        results.push((kind, core.simulate(&run.trace, memory.as_mut()).cycles));
    }
    for (kind, cycles) in &results {
        assert!(*cycles > 0, "{kind} produced no cycles");
    }
    let ma = results[0].1 as f64;
    let vc = results[1].1 as f64;
    assert!(vc < ma * 1.5, "vector cache {vc} vs multi-address {ma}");
}
