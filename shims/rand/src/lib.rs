//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no crates.io access, so this local crate provides
//! `StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods `gen`,
//! `gen_range` and `gen_bool` on top of a SplitMix64 generator. Determinism is
//! the only contract the workspace relies on: the same seed always yields the
//! same stream. The stream itself differs from upstream `rand`, which is fine
//! because all golden values in the repo are derived from these generators.

use std::ops::{Range, RangeInclusive};

/// Seeding constructor subset of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard deterministic generator (SplitMix64 under the hood).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types `Rng::gen` can produce (subset of upstream's `Standard` distribution).
pub trait Standard: Sized {
    fn from_u64(raw: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_u64(raw: u64) -> Self { raw as $t }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_u64(raw: u64) -> Self {
        raw & 1 == 1
    }
}

impl Standard for f64 {
    fn from_u64(raw: u64) -> Self {
        // 53 random mantissa bits mapped to [0, 1).
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges `Rng::gen_range` accepts (subset of upstream's `SampleRange`).
pub trait SampleRange<T> {
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add((rng.next_u64() % (span + 1)) as $wide) as $t
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::from_u64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Generation subset of `rand::Rng`.
pub trait Rng {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T;
    /// A uniformly random value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::from_u64(self.next_u64()) < p
    }
}

/// `rand::rngs` module mirror.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i16 = rng.gen_range(-256..=255);
            assert!((-256..=255).contains(&v));
            let f: f64 = rng.gen_range(-4.0..4.0);
            assert!((-4.0..4.0).contains(&f));
            let u: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
