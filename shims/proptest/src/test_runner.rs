//! Test-run configuration: case counts and deterministic per-test seeds.

/// How many cases to run per property (subset of upstream's `Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Requested number of cases; the `PROPTEST_CASES` env var overrides it.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Final case count: `PROPTEST_CASES` env var wins over the config.
/// `PROPTEST_CASES=0` means "unset" (falls back to the configured count) so
/// properties can never pass vacuously by running zero cases.
pub fn resolve_cases(configured: u32) -> u32 {
    assert!(configured > 0, "proptest Config::with_cases requires at least one case");
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => {
            let cases: u32 = v
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_CASES must be an integer, got {v:?}"));
            if cases == 0 {
                configured
            } else {
                cases
            }
        }
        Err(_) => configured,
    }
}

/// Deterministic per-test seed (FNV-1a over the test name).
pub fn base_seed(test_name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
