//! Offline stand-in for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no crates.io access. This crate provides the
//! `proptest!` / `prop_assert*!` / `prop_oneof!` macros, `any`, `Just`,
//! `Strategy` (with `prop_map`), tuple and range strategies,
//! `prop::collection::vec`, and `Config::with_cases`. Unlike upstream there is
//! no shrinking: a failing case panics immediately with the case number and
//! the per-test seed so the failure can be replayed deterministically.
//!
//! Case counts resolve as: `PROPTEST_CASES` env var > `Config::with_cases` >
//! a default of 64.

pub mod strategy;
pub mod test_runner;

/// `prop::collection` mirror.
pub mod collection {
    use crate::strategy::Strategy;
    use rand::{Rng, StdRng};
    use std::ops::Range;

    /// Number-of-elements specification: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing a `Vec` whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec` — a vector of values from `element` with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy, Union};
    pub use crate::test_runner::Config;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// `proptest::prelude::prop` module mirror.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Run all test cases for one `proptest!` entry. Called by the macro.
pub fn run_cases(test_name: &str, config: &test_runner::Config, mut case: impl FnMut(&mut rand::StdRng)) {
    use rand::SeedableRng;
    let cases = test_runner::resolve_cases(config.cases);
    let seed = test_runner::base_seed(test_name);
    for i in 0..cases {
        let mut rng = rand::StdRng::seed_from_u64(seed.wrapping_add(i as u64));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "proptest case {i}/{cases} of `{test_name}` failed (base seed {seed:#x}): {msg}"
            );
        }
    }
}

/// The body of a `proptest!` test: declares generated bindings and runs the
/// block across `Config`-many cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_cases(stringify!($name), &config, |__rng| {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), __rng); )+
                    $body
                });
            }
        )*
    };
}

/// Assert within a proptest body (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let options: Vec<Box<dyn $crate::strategy::Strategy<Value = _>>> =
            vec![$( ::std::boxed::Box::new($s) ),+];
        $crate::strategy::Union::new(options)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(Config::with_cases(50))]

        #[test]
        fn addition_commutes(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        }

        #[test]
        fn ranges_oneofs_maps_and_vecs_generate_in_bounds(
            x in -3000i64..3000,
            y in 0usize..=16,
            z in prop_oneof![Just(1u8), Just(2u8)],
            v in prop::collection::vec((0u64..64, 1u64..100), 1..20),
            m in (0u32..10).prop_map(|n| n * 2),
        ) {
            prop_assert!((-3000..3000).contains(&x));
            prop_assert!(y <= 16);
            prop_assert!(z == 1 || z == 2);
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 64 && (1..100).contains(&b));
            }
            prop_assert!(m % 2 == 0 && m < 20);
        }
    }

    #[test]
    fn failing_property_reports_case_and_seed() {
        let caught = std::panic::catch_unwind(|| {
            crate::run_cases("always_fails", &Config::with_cases(3), |_rng| {
                panic!("deliberate failure");
            });
        });
        let payload = caught.expect_err("failing property must panic");
        let msg = payload.downcast_ref::<String>().expect("formatted message");
        assert!(msg.contains("always_fails") && msg.contains("deliberate failure"), "got: {msg}");
    }

    #[test]
    fn generation_is_deterministic_across_runs() {
        use crate::strategy::{any, Strategy};
        use rand::SeedableRng;
        let strat = crate::collection::vec(any::<u64>(), 8);
        let a = strat.generate(&mut rand::StdRng::seed_from_u64(5));
        let b = strat.generate(&mut rand::StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
