//! Value-generation strategies (no shrinking, unlike upstream proptest).

use rand::{Rng, SampleRange, Standard, StdRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
///
/// Object safe: `prop_oneof!` stores strategies as
/// `Box<dyn Strategy<Value = T>>`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy for "any value of `T`" — `any::<T>()`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Any value of `T`, uniformly.
pub fn any<T: Standard>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among strategies of the same value type (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from the (non-empty) list of alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                self.clone().sample(rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                self.clone().sample(rng)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! { (A, B) (A, B, C) (A, B, C, D) }
