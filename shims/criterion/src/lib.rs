//! Offline stand-in for the subset of the `criterion` API this workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides a
//! wall-clock micro-harness with the same call surface: `Criterion`,
//! `benchmark_group` with `sample_size` / `warm_up_time` / `measurement_time`
//! / `bench_with_input` / `finish`, `BenchmarkId`, a `Bencher` with `iter`,
//! and the `criterion_group!` / `criterion_main!` macros. Each benchmark runs
//! `sample_size` timed iterations and prints mean wall-clock time per
//! iteration. Passing `--test` (as `cargo test --benches` does) runs every
//! closure exactly once with no timing.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this harness has no warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; sampling is controlled by
    /// [`Self::sample_size`] alone.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark over `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher =
            Bencher { iters: if self.criterion.test_mode { 1 } else { self.sample_size }, total: Duration::ZERO };
        f(&mut bencher, input);
        if self.criterion.test_mode {
            println!("{}/{} ... ok (test mode)", self.name, id.label);
        } else {
            let per_iter = bencher.total.as_nanos() as f64 / bencher.iters.max(1) as f64;
            println!("{}/{}: {:.1} ns/iter ({} samples)", self.name, id.label, per_iter, bencher.iters);
        }
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id, rendered `function/parameter`.
    pub fn new(function: impl ToString, parameter: impl ToString) -> Self {
        Self { label: format!("{}/{}", function.to_string(), parameter.to_string()) }
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: usize,
    total: Duration,
}

impl Bencher {
    /// Time `routine` over this bencher's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.total = start.elapsed();
    }
}

/// Prevent the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into one runner, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` from one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
