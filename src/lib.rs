//! # momsim — reproduction of "Exploiting a New Level of DLP in Multimedia Applications"
//!
//! This facade crate re-exports the whole workspace so examples, integration
//! tests and downstream users can depend on a single crate:
//!
//! * [`isa`] — packed sub-word arithmetic, scalar/MMX/MDMX instruction sets,
//!   register files, memory images and dynamic traces;
//! * [`core`] — the MOM matrix ISA, programs, the functional interpreter, the
//!   register-file area model and opcode inventories;
//! * [`cpu`] — the out-of-order superscalar timing simulator;
//! * [`mem`] — perfect, conventional, multi-address, vector-cache and
//!   collapsing-buffer memory systems;
//! * [`kernels`] — the eight multimedia kernels in all four ISAs with golden
//!   references and synthetic workloads;
//! * [`apps`] — the five Mediabench-like applications;
//! * [`lab`] — the parallel experiment-orchestration engine (declarative
//!   specs, multi-threaded runner, `BENCH_*.json` results, baseline diffs).
//!
//! See the `examples/` directory for runnable end-to-end walkthroughs, the
//! `mom-bench` crate for the binaries regenerating every table and figure of
//! the paper, the `momlab` CLI for machine-readable experiment runs, and
//! `EXPERIMENTS.md` for the result schema.

pub use mom_apps as apps;
pub use mom_core as core;
pub use mom_cpu as cpu;
pub use mom_isa as isa;
pub use mom_kernels as kernels;
pub use mom_lab as lab;
pub use mom_mem as mem;
