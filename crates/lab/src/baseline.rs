//! Diffing a fresh `BENCH_*.json` result against a saved baseline.
//!
//! Cells are matched by `(workload, config, way)` — the identity key of the
//! schema — and compared on simulated cycles. A cell is a **regression** when
//! its cycle count grew by more than the relative tolerance, an
//! **improvement** when it shrank by more than the tolerance. Config drift
//! (different hash, fast flag or scale) is surfaced as warnings since cycle
//! comparisons across different grids are meaningless.
//!
//! When both documents carry a `meta.throughput` section, the diff also
//! reports per-cell `insts_per_sec` deltas. These are **informational
//! only** — wall-clock throughput varies with the machine and its load, so
//! the lines appear in the output (for CI logs and perf-trajectory reading)
//! but never affect [`Diff::has_regressions`] or the exit code.

use crate::json::Value;

/// Default relative cycle tolerance: 2%.
pub const DEFAULT_TOLERANCE: f64 = 0.02;

/// The outcome of comparing one result document against a baseline.
#[derive(Debug, Clone, Default)]
pub struct Diff {
    /// Context mismatches (config hash, fast flag, scale, experiment name).
    pub warnings: Vec<String>,
    /// Cells whose cycles grew beyond the tolerance.
    pub regressions: Vec<String>,
    /// Cells whose cycles shrank beyond the tolerance.
    pub improvements: Vec<String>,
    /// Cells present in the baseline but absent from the new result.
    pub missing: Vec<String>,
    /// Cells present in the new result but absent from the baseline.
    pub added: Vec<String>,
    /// Cells within tolerance.
    pub unchanged: usize,
    /// Informational simulator-throughput deltas (`insts_per_sec` from the
    /// `meta.throughput` sections, matched by cell key), present only when
    /// **both** documents carry throughput metadata. Wall-clock throughput is
    /// machine- and load-dependent, so these lines never affect
    /// [`Diff::has_regressions`] — they exist so interpreter/simulator
    /// performance regressions are visible in CI logs while the
    /// deterministic results stay the gate.
    pub throughput: Vec<String>,
    /// Informational functional-sharing comparison (from the
    /// `meta.shared_passes` sections), present only when **both** documents
    /// carry it. Like throughput it never affects [`Diff::has_regressions`]:
    /// it exists so a drop in the fan-out runner's amortization is visible
    /// next to the `insts_per_sec` deltas it would explain.
    pub sharing: Option<String>,
    /// Informational stall-attribution share shifts (from the per-cell
    /// `breakdown` objects), present only when **both** documents carry
    /// them. A line appears when a cause's share of a cell's total cycles
    /// moved by at least one percentage point — enough to explain *why* a
    /// cycle regression happened — but the lines never gate:
    /// [`Diff::has_regressions`] stays a pure cycle comparison.
    pub breakdown: Vec<String>,
    /// Informational sampled-IPC comparison (from the top-level `sampling`
    /// sections), present only when **both** documents carry one. A line
    /// appears when a cell's `ipc_mean` moved by more than the **union of
    /// both confidence intervals** (`|Δ| > ci_new + ci_base`) — smaller
    /// moves are statistically indistinguishable at 95% confidence. Sampled
    /// estimates carry sampling error by construction, so these lines never
    /// affect [`Diff::has_regressions`]; exact (rate-1 or full-mode) cycle
    /// counts remain the gate.
    pub sampling: Vec<String>,
}

impl Diff {
    /// Whether the new result regressed relative to the baseline.
    /// Throughput deltas are informational and never count.
    pub fn has_regressions(&self) -> bool {
        !self.regressions.is_empty()
    }
}

impl std::fmt::Display for Diff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for w in &self.warnings {
            writeln!(f, "warning: {w}")?;
        }
        for r in &self.regressions {
            writeln!(f, "REGRESSION: {r}")?;
        }
        for i in &self.improvements {
            writeln!(f, "improvement: {i}")?;
        }
        for m in &self.missing {
            writeln!(f, "missing cell: {m}")?;
        }
        for a in &self.added {
            writeln!(f, "new cell: {a}")?;
        }
        for b in &self.breakdown {
            writeln!(f, "breakdown: {b}")?;
        }
        for s in &self.sampling {
            writeln!(f, "sampling: {s}")?;
        }
        for t in &self.throughput {
            writeln!(f, "throughput: {t}")?;
        }
        if let Some(s) = &self.sharing {
            writeln!(f, "sharing: {s}")?;
        }
        writeln!(
            f,
            "{} regression(s), {} improvement(s), {} unchanged cell(s)",
            self.regressions.len(),
            self.improvements.len(),
            self.unchanged
        )
    }
}

fn cell_key(cell: &Value) -> String {
    let field = |k: &str| cell.get(k).and_then(Value::as_str).unwrap_or("?").to_string();
    let way = cell.get("way").and_then(Value::as_i64).unwrap_or(-1);
    format!("{} / {} / {}-way", field("workload"), field("config"), way)
}

/// A document's cell-like entries indexed by `(workload, config, way)` key:
/// first-appearance order for deterministic iteration, a hash map for O(1)
/// lookup (the per-cell linear `find` this replaced made the diff
/// O(cells²)). Duplicate keys keep their **first** occurrence and push a
/// warning into `warnings` — silently comparing against the first of several
/// identical keys hid the later ones entirely.
struct CellIndex<'a> {
    ordered: Vec<(String, &'a Value)>,
    by_key: std::collections::HashMap<String, usize>,
}

impl<'a> CellIndex<'a> {
    fn build(entries: &'a [Value], which: &str, warnings: &mut Vec<String>) -> Self {
        let mut ordered: Vec<(String, &Value)> = Vec::with_capacity(entries.len());
        let mut by_key = std::collections::HashMap::with_capacity(entries.len());
        for entry in entries {
            let key = cell_key(entry);
            match by_key.entry(key.clone()) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(ordered.len());
                    ordered.push((key, entry));
                }
                std::collections::hash_map::Entry::Occupied(_) => warnings.push(format!(
                    "duplicate cell key `{key}` in {which} — first occurrence wins"
                )),
            }
        }
        Self { ordered, by_key }
    }

    fn get(&self, key: &str) -> Option<&'a Value> {
        self.by_key.get(key).map(|&i| self.ordered[i].1)
    }
}

/// Compare two `momlab/v1` documents.
///
/// # Errors
///
/// Returns an error when either document is not a grid result (static tables
/// have nothing to regress) or when the two documents describe different
/// experiments.
pub fn diff_documents(new: &Value, baseline: &Value, tolerance: f64) -> Result<Diff, String> {
    let kind = |doc: &Value| doc.get("kind").and_then(Value::as_str).map(str::to_string);
    let name = |doc: &Value| doc.get("experiment").and_then(Value::as_str).map(str::to_string);
    let (new_name, base_name) = (name(new), name(baseline));
    if new_name.is_none() || base_name.is_none() {
        return Err("not a momlab result document (missing \"experiment\")".into());
    }
    if new_name != base_name {
        return Err(format!(
            "experiment mismatch: new is {:?}, baseline is {:?}",
            new_name.unwrap(),
            base_name.unwrap()
        ));
    }
    if kind(new).as_deref() != Some("grid") || kind(baseline).as_deref() != Some("grid") {
        return Err("baseline diffing applies to grid experiments only".into());
    }

    let mut diff = Diff::default();
    for field in ["config_hash", "fast", "scale"] {
        let (a, b) = (new.get(field), baseline.get(field));
        if a != b {
            diff.warnings.push(format!(
                "{field} differs (new: {}, baseline: {}) — cycle comparisons may be meaningless",
                a.map(Value::to_compact).unwrap_or_else(|| "absent".into()),
                b.map(Value::to_compact).unwrap_or_else(|| "absent".into()),
            ));
        }
    }

    let cells = |doc: &Value| -> Vec<Value> {
        doc.get("cells").and_then(Value::as_array).map(<[Value]>::to_vec).unwrap_or_default()
    };
    let new_cells = cells(new);
    let base_cells = cells(baseline);

    let base_index = CellIndex::build(&base_cells, "the baseline document", &mut diff.warnings);
    let new_index = CellIndex::build(&new_cells, "the new document", &mut diff.warnings);

    for (key, base_cell) in &base_index.ordered {
        let Some(new_cell) = new_index.get(key) else {
            diff.missing.push(key.clone());
            continue;
        };
        let old_cycles = base_cell.get("cycles").and_then(Value::as_f64).unwrap_or(f64::NAN);
        let new_cycles = new_cell.get("cycles").and_then(Value::as_f64).unwrap_or(f64::NAN);
        if !old_cycles.is_finite() || !new_cycles.is_finite() || old_cycles <= 0.0 {
            diff.warnings.push(format!("{key}: unreadable cycle counts"));
            continue;
        }
        let ratio = new_cycles / old_cycles;
        if ratio > 1.0 + tolerance {
            diff.regressions.push(format!(
                "{key}: cycles {old_cycles:.0} -> {new_cycles:.0} (+{:.1}%)",
                (ratio - 1.0) * 100.0
            ));
        } else if ratio < 1.0 - tolerance {
            diff.improvements.push(format!(
                "{key}: cycles {old_cycles:.0} -> {new_cycles:.0} ({:.1}%)",
                (ratio - 1.0) * 100.0
            ));
        } else {
            diff.unchanged += 1;
        }
        diff.breakdown.extend(breakdown_shifts(key, new_cell, base_cell));
    }
    for (key, _) in &new_index.ordered {
        if base_index.get(key).is_none() {
            diff.added.push(key.clone());
        }
    }
    diff.throughput = throughput_deltas(new, baseline, &mut diff.warnings);
    diff.sharing = sharing_delta(new, baseline);
    diff.sampling = sampling_deltas(new, baseline, &mut diff.warnings);
    Ok(diff)
}

/// Informational sampled-IPC deltas between the top-level `sampling`
/// sections of two documents, matched by `(workload, config, way)`. A line
/// is emitted only when the means differ by more than the **union of both
/// 95% confidence intervals** — the coarsest test under which the two
/// estimates are distinguishable at all. Empty when either document lacks a
/// `sampling` section (exact-mode results). Never contributes to the exit
/// code: sampled IPC carries sampling error by construction, so the exact
/// cycle comparison stays the gate.
fn sampling_deltas(new: &Value, baseline: &Value, warnings: &mut Vec<String>) -> Vec<String> {
    let entries = |doc: &Value| -> Vec<Value> {
        doc.get("sampling")
            .and_then(|s| s.get("cells"))
            .and_then(Value::as_array)
            .map(<[Value]>::to_vec)
            .unwrap_or_default()
    };
    let new_entries = entries(new);
    let base_entries = entries(baseline);
    if new_entries.is_empty() || base_entries.is_empty() {
        return Vec::new();
    }
    let base_index = CellIndex::build(&base_entries, "baseline sampling metadata", warnings);
    let new_index = CellIndex::build(&new_entries, "new sampling metadata", warnings);
    let mut out = Vec::new();
    for (key, base_entry) in &base_index.ordered {
        let Some(new_entry) = new_index.get(key) else {
            continue;
        };
        let field = |e: &Value, k: &str| {
            e.get(k).and_then(Value::as_f64).filter(|v| v.is_finite())
        };
        let (Some(old_mean), Some(new_mean)) =
            (field(base_entry, "ipc_mean"), field(new_entry, "ipc_mean"))
        else {
            continue;
        };
        let old_ci = field(base_entry, "ipc_ci95").unwrap_or(0.0);
        let new_ci = field(new_entry, "ipc_ci95").unwrap_or(0.0);
        let delta = new_mean - old_mean;
        if delta.abs() > new_ci + old_ci {
            out.push(format!(
                "{key}: ipc {old_mean:.3}±{old_ci:.3} -> {new_mean:.3}±{new_ci:.3} \
                 ({delta:+.3}, outside both CIs)"
            ));
        }
    }
    out
}

/// Informational stall-attribution comparison between one cell's
/// `breakdown` objects: one line per cause whose share of the cell's total
/// cycles moved by at least one percentage point. Empty when either cell
/// lacks the object (pre-probe baselines). Never contributes to the exit
/// code — these lines explain cycle deltas, they don't gate on their own.
fn breakdown_shifts(key: &str, new_cell: &Value, base_cell: &Value) -> Vec<String> {
    let section = |cell: &Value| cell.get("breakdown").cloned();
    let (Some(new_b), Some(base_b)) = (section(new_cell), section(base_cell)) else {
        return Vec::new();
    };
    let total = |b: &Value| {
        b.get("total_cycles").and_then(Value::as_f64).filter(|&t| t > 0.0 && t.is_finite())
    };
    let (Some(new_total), Some(base_total)) = (total(&new_b), total(&base_b)) else {
        return Vec::new();
    };
    let Value::Object(members) = &new_b else { return Vec::new() };
    let mut out = Vec::new();
    for (cause, cycles) in members {
        if cause == "total_cycles" {
            continue;
        }
        let new_share = cycles.as_f64().unwrap_or(0.0) / new_total;
        let base_share =
            base_b.get(cause).and_then(Value::as_f64).unwrap_or(0.0) / base_total;
        let shift = (new_share - base_share) * 100.0;
        if shift.abs() >= 1.0 {
            out.push(format!(
                "{key}: {cause} share {:.1}% -> {:.1}% ({shift:+.1}pp)",
                base_share * 100.0,
                new_share * 100.0,
            ));
        }
    }
    out
}

/// Informational functional-sharing comparison between the
/// `meta.shared_passes` sections of two documents. `None` when either
/// document lacks the section (e.g. the committed `--results-only`
/// baselines). Never contributes to the exit code.
fn sharing_delta(new: &Value, baseline: &Value) -> Option<String> {
    let section = |doc: &Value| doc.get("meta").and_then(|m| m.get("shared_passes")).cloned();
    let (new_sp, base_sp) = (section(new)?, section(baseline)?);
    let field = |sp: &Value, k: &str| sp.get(k).and_then(Value::as_f64).filter(|v| v.is_finite());
    let new_factor = field(&new_sp, "sharing_factor")?;
    let base_factor = field(&base_sp, "sharing_factor")?;
    let passes = field(&new_sp, "functional_passes").unwrap_or(f64::NAN);
    let cells = field(&new_sp, "cells").unwrap_or(f64::NAN);
    Some(format!(
        "{passes:.0} functional passes for {cells:.0} cells ({new_factor:.2}x amortized) vs baseline {base_factor:.2}x"
    ))
}

/// Informational `insts_per_sec` deltas between the `meta.throughput`
/// sections of two documents, matched by `(workload, config, way)`. Empty
/// when either document lacks throughput metadata (e.g. the committed
/// `--results-only` baselines). Never contributes to the exit code, though
/// duplicate keys in the metadata are surfaced through `warnings`.
fn throughput_deltas(new: &Value, baseline: &Value, warnings: &mut Vec<String>) -> Vec<String> {
    let entries = |doc: &Value| -> Vec<Value> {
        doc.get("meta")
            .and_then(|m| m.get("throughput"))
            .and_then(Value::as_array)
            .map(<[Value]>::to_vec)
            .unwrap_or_default()
    };
    let new_entries = entries(new);
    let base_entries = entries(baseline);
    if new_entries.is_empty() || base_entries.is_empty() {
        return Vec::new();
    }
    let base_index = CellIndex::build(&base_entries, "baseline throughput metadata", warnings);
    let new_index = CellIndex::build(&new_entries, "new throughput metadata", warnings);
    let mut out = Vec::new();
    for (key, base_entry) in &base_index.ordered {
        let Some(new_entry) = new_index.get(key) else {
            continue;
        };
        // A cell served from the persistent cache was never simulated, so its
        // `insts_per_sec` measures a file read — a delta against (or from) it
        // would be meaningless. Say so instead of printing a bogus ratio.
        let cached =
            |e: &Value| e.get("cached").and_then(Value::as_bool).unwrap_or(false);
        if cached(base_entry) || cached(new_entry) {
            out.push(format!("{key}: cached"));
            continue;
        }
        let ips = |e: &Value| e.get("insts_per_sec").and_then(Value::as_f64).unwrap_or(f64::NAN);
        let (old_ips, new_ips) = (ips(base_entry), ips(new_entry));
        if !old_ips.is_finite() || !new_ips.is_finite() || old_ips <= 0.0 {
            continue;
        }
        out.push(format!(
            "{key}: {:.1} -> {:.1} Minst/s ({:+.1}%)",
            old_ips / 1e6,
            new_ips / 1e6,
            (new_ips / old_ips - 1.0) * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(cycles: i64, hash: &str) -> Value {
        Value::object(vec![
            ("experiment", Value::Str("figure5".into())),
            ("config_hash", Value::Str(hash.into())),
            ("fast", Value::Bool(false)),
            ("scale", Value::Int(1)),
            ("kind", Value::Str("grid".into())),
            (
                "cells",
                Value::Array(vec![Value::object(vec![
                    ("workload", Value::Str("idct".into())),
                    ("config", Value::Str("mom".into())),
                    ("way", Value::Int(4)),
                    ("cycles", Value::Int(cycles)),
                ])]),
            ),
        ])
    }

    #[test]
    fn identical_documents_have_no_findings() {
        let d = diff_documents(&doc(1000, "h"), &doc(1000, "h"), DEFAULT_TOLERANCE).unwrap();
        assert!(!d.has_regressions());
        assert!(d.improvements.is_empty() && d.warnings.is_empty());
        assert_eq!(d.unchanged, 1);
    }

    fn doc_with_breakdown(total: i64, base: i64, mem_l1: i64) -> Value {
        Value::object(vec![
            ("experiment", Value::Str("figure5".into())),
            ("config_hash", Value::Str("h".into())),
            ("fast", Value::Bool(false)),
            ("scale", Value::Int(1)),
            ("kind", Value::Str("grid".into())),
            (
                "cells",
                Value::Array(vec![Value::object(vec![
                    ("workload", Value::Str("idct".into())),
                    ("config", Value::Str("mom".into())),
                    ("way", Value::Int(4)),
                    ("cycles", Value::Int(total)),
                    (
                        "breakdown",
                        Value::object(vec![
                            ("total_cycles", Value::Int(total)),
                            ("base", Value::Int(base)),
                            ("mem-l1", Value::Int(mem_l1)),
                        ]),
                    ),
                ])]),
            ),
        ])
    }

    #[test]
    fn breakdown_share_shifts_are_informational_only() {
        let new = doc_with_breakdown(1000, 600, 400);
        let base = doc_with_breakdown(1000, 700, 300);
        let d = diff_documents(&new, &base, DEFAULT_TOLERANCE).unwrap();
        assert!(!d.has_regressions(), "share shifts never gate");
        assert_eq!(d.breakdown.len(), 2, "{:?}", d.breakdown);
        assert!(
            d.breakdown.iter().any(|l| l.contains("mem-l1") && l.contains("+10.0pp")),
            "{:?}",
            d.breakdown
        );
        assert!(format!("{d}").contains("breakdown: "));
        // Sub-point moves stay quiet; pre-probe baselines produce no lines.
        let d = diff_documents(&new, &new, DEFAULT_TOLERANCE).unwrap();
        assert!(d.breakdown.is_empty(), "{:?}", d.breakdown);
        let d = diff_documents(&new, &doc(1000, "h"), DEFAULT_TOLERANCE).unwrap();
        assert!(d.breakdown.is_empty(), "{:?}", d.breakdown);
    }

    #[test]
    fn cycle_growth_beyond_tolerance_is_a_regression() {
        let d = diff_documents(&doc(1100, "h"), &doc(1000, "h"), 0.02).unwrap();
        assert!(d.has_regressions());
        assert!(d.regressions[0].contains("idct / mom / 4-way"), "{:?}", d.regressions);
        // Within tolerance: no finding.
        let d = diff_documents(&doc(1010, "h"), &doc(1000, "h"), 0.02).unwrap();
        assert!(!d.has_regressions());
        // Shrinkage: improvement.
        let d = diff_documents(&doc(900, "h"), &doc(1000, "h"), 0.02).unwrap();
        assert!(!d.has_regressions());
        assert_eq!(d.improvements.len(), 1);
    }

    #[test]
    fn config_drift_warns() {
        let d = diff_documents(&doc(1000, "a"), &doc(1000, "b"), 0.02).unwrap();
        assert!(d.warnings.iter().any(|w| w.contains("config_hash")), "{:?}", d.warnings);
    }

    #[test]
    fn mismatched_experiments_are_an_error() {
        let mut other = doc(1000, "h");
        if let Value::Object(members) = &mut other {
            members[0].1 = Value::Str("figure7".into());
        }
        assert!(diff_documents(&other, &doc(1000, "h"), 0.02).is_err());
        assert!(diff_documents(&Value::Null, &doc(1000, "h"), 0.02).is_err());
    }

    fn with_throughput(mut document: Value, ips: f64) -> Value {
        let meta = Value::object(vec![(
            "throughput",
            Value::Array(vec![Value::object(vec![
                ("workload", Value::Str("idct".into())),
                ("config", Value::Str("mom".into())),
                ("way", Value::Int(4)),
                ("insts_per_sec", Value::Float(ips)),
            ])]),
        )]);
        if let Value::Object(members) = &mut document {
            members.push(("meta".into(), meta));
        }
        document
    }

    #[test]
    fn throughput_deltas_are_informational_only() {
        // Twice the throughput at identical cycles: the delta is reported
        // but the diff stays clean (throughput never gates).
        let new = with_throughput(doc(1000, "h"), 20e6);
        let base = with_throughput(doc(1000, "h"), 10e6);
        let d = diff_documents(&new, &base, DEFAULT_TOLERANCE).unwrap();
        assert!(!d.has_regressions());
        assert_eq!(d.throughput.len(), 1);
        assert!(d.throughput[0].contains("10.0 -> 20.0 Minst/s"), "{:?}", d.throughput);
        assert!(d.throughput[0].contains("+100.0%"), "{:?}", d.throughput);
        assert!(format!("{d}").contains("throughput: idct / mom / 4-way"));

        // Halved throughput is still not a regression — cycles gate, wall
        // clock informs.
        let d = diff_documents(&base, &new, DEFAULT_TOLERANCE).unwrap();
        assert!(!d.has_regressions());
        assert!(d.throughput[0].contains("-50.0%"), "{:?}", d.throughput);
    }

    #[test]
    fn throughput_section_is_absent_without_meta() {
        // The committed --results-only baselines carry no meta: no lines.
        let d = diff_documents(&with_throughput(doc(1000, "h"), 20e6), &doc(1000, "h"), 0.02)
            .unwrap();
        assert!(d.throughput.is_empty());
        let d = diff_documents(&doc(1000, "h"), &with_throughput(doc(1000, "h"), 20e6), 0.02)
            .unwrap();
        assert!(d.throughput.is_empty());
    }

    fn with_sharing(mut document: Value, passes: i64, cells: i64, factor: f64) -> Value {
        let sp = Value::object(vec![(
            "shared_passes",
            Value::object(vec![
                ("cells", Value::Int(cells)),
                ("functional_passes", Value::Int(passes)),
                ("sharing_factor", Value::Float(factor)),
            ]),
        )]);
        if let Value::Object(members) = &mut document {
            members.push(("meta".into(), sp));
        }
        document
    }

    #[test]
    fn sharing_factor_is_reported_when_both_documents_carry_it() {
        let new = with_sharing(doc(1000, "h"), 4, 16, 4.0);
        let base = with_sharing(doc(1000, "h"), 16, 16, 1.0);
        let d = diff_documents(&new, &base, DEFAULT_TOLERANCE).unwrap();
        assert!(!d.has_regressions(), "sharing never gates");
        let line = d.sharing.as_deref().expect("sharing line present");
        assert!(line.contains("4 functional passes for 16 cells"), "{line}");
        assert!(line.contains("4.00x"), "{line}");
        assert!(line.contains("baseline 1.00x"), "{line}");
        assert!(format!("{d}").contains("sharing: "));
        // Either side missing the section: no line (the committed
        // --results-only baselines carry no meta).
        let d = diff_documents(&new, &doc(1000, "h"), DEFAULT_TOLERANCE).unwrap();
        assert!(d.sharing.is_none());
        let d = diff_documents(&doc(1000, "h"), &base, DEFAULT_TOLERANCE).unwrap();
        assert!(d.sharing.is_none());
    }

    fn with_sampling(mut document: Value, mean: f64, ci: f64) -> Value {
        let sampling = Value::object(vec![
            ("unit_insts", Value::Int(1000)),
            ("warmup_insts", Value::Int(2000)),
            ("period", Value::Int(100_000)),
            (
                "cells",
                Value::Array(vec![Value::object(vec![
                    ("workload", Value::Str("idct".into())),
                    ("config", Value::Str("mom".into())),
                    ("way", Value::Int(4)),
                    ("ipc_mean", Value::Float(mean)),
                    ("ipc_ci95", Value::Float(ci)),
                ])]),
            ),
        ]);
        if let Value::Object(members) = &mut document {
            members.push(("sampling".into(), sampling));
        }
        document
    }

    #[test]
    fn sampling_deltas_use_the_union_of_both_cis() {
        // Means 1.5±0.2 vs 2.0±0.1: |Δ| = 0.5 > 0.3, distinguishable.
        let new = with_sampling(doc(1000, "h"), 2.0, 0.1);
        let base = with_sampling(doc(1000, "h"), 1.5, 0.2);
        let d = diff_documents(&new, &base, DEFAULT_TOLERANCE).unwrap();
        assert!(!d.has_regressions(), "sampling lines never gate");
        assert_eq!(d.sampling.len(), 1, "{:?}", d.sampling);
        assert!(d.sampling[0].contains("1.500±0.200 -> 2.000±0.100"), "{:?}", d.sampling);
        assert!(d.sampling[0].contains("+0.500"), "{:?}", d.sampling);
        assert!(format!("{d}").contains("sampling: idct / mom / 4-way"));

        // A move inside the CI union is statistically indistinguishable.
        let close = with_sampling(doc(1000, "h"), 1.55, 0.1);
        let d = diff_documents(&close, &base, DEFAULT_TOLERANCE).unwrap();
        assert!(d.sampling.is_empty(), "{:?}", d.sampling);

        // Either side lacking the section (exact-mode results): no lines.
        let d = diff_documents(&new, &doc(1000, "h"), DEFAULT_TOLERANCE).unwrap();
        assert!(d.sampling.is_empty());
        let d = diff_documents(&doc(1000, "h"), &base, DEFAULT_TOLERANCE).unwrap();
        assert!(d.sampling.is_empty());
    }

    #[test]
    fn duplicate_cell_keys_warn_and_first_occurrence_wins() {
        // Two cells with the same (workload, config, way) key: the linear
        // scan this module used to do silently matched the first one. The
        // keyed index keeps that first-occurrence behaviour but warns.
        let mut dup = doc(1000, "h");
        if let Value::Object(members) = &mut dup {
            if let Some((_, Value::Array(cells))) = members.iter_mut().find(|(k, _)| k == "cells") {
                cells.push(Value::object(vec![
                    ("workload", Value::Str("idct".into())),
                    ("config", Value::Str("mom".into())),
                    ("way", Value::Int(4)),
                    ("cycles", Value::Int(9999)),
                ]));
            }
        }
        let d = diff_documents(&dup, &doc(1000, "h"), 0.02).unwrap();
        let warning = d
            .warnings
            .iter()
            .find(|w| w.contains("duplicate cell key"))
            .expect("duplicate key warned");
        assert!(warning.contains("idct / mom / 4-way"), "{warning}");
        assert!(warning.contains("the new document"), "{warning}");
        // The first occurrence (1000 cycles, identical to baseline) is the
        // one compared — the shadowed 9999-cycle duplicate does not regress.
        assert!(!d.has_regressions(), "{:?}", d.regressions);
        assert_eq!(d.unchanged, 1);
        assert!(d.added.is_empty() && d.missing.is_empty());

        // Duplicate in the baseline document warns with the other label.
        let d = diff_documents(&doc(1000, "h"), &dup, 0.02).unwrap();
        assert!(
            d.warnings.iter().any(|w| w.contains("the baseline document")),
            "{:?}",
            d.warnings
        );
        assert!(!d.has_regressions());
    }

    #[test]
    fn duplicate_throughput_keys_warn_without_gating() {
        fn with_dup_throughput(mut document: Value) -> Value {
            let entry = |ips: f64| {
                Value::object(vec![
                    ("workload", Value::Str("idct".into())),
                    ("config", Value::Str("mom".into())),
                    ("way", Value::Int(4)),
                    ("insts_per_sec", Value::Float(ips)),
                ])
            };
            let meta =
                Value::object(vec![("throughput", Value::Array(vec![entry(10e6), entry(99e6)]))]);
            if let Value::Object(members) = &mut document {
                members.push(("meta".into(), meta));
            }
            document
        }
        let d = diff_documents(
            &with_dup_throughput(doc(1000, "h")),
            &with_throughput(doc(1000, "h"), 10e6),
            0.02,
        )
        .unwrap();
        assert!(
            d.warnings.iter().any(|w| w.contains("new throughput metadata")),
            "{:?}",
            d.warnings
        );
        // First occurrence wins: 10 -> 10 Minst/s, not 99.
        assert!(d.throughput[0].contains("10.0 -> 10.0 Minst/s"), "{:?}", d.throughput);
        assert!(!d.has_regressions());
    }

    #[test]
    fn added_and_missing_cells_are_reported() {
        let mut bigger = doc(1000, "h");
        if let Value::Object(members) = &mut bigger {
            if let Some((_, Value::Array(cells))) = members.iter_mut().find(|(k, _)| k == "cells") {
                cells.push(Value::object(vec![
                    ("workload", Value::Str("addblock".into())),
                    ("config", Value::Str("mom".into())),
                    ("way", Value::Int(8)),
                    ("cycles", Value::Int(5)),
                ]));
            }
        }
        let d = diff_documents(&bigger, &doc(1000, "h"), 0.02).unwrap();
        assert_eq!(d.added.len(), 1);
        let d = diff_documents(&doc(1000, "h"), &bigger, 0.02).unwrap();
        assert_eq!(d.missing.len(), 1);
    }
}
