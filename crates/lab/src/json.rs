//! A small, dependency-free JSON document model with a deterministic writer
//! and a recursive-descent parser.
//!
//! The build environment has no crates.io access, so `serde` is not an
//! option; the experiment engine only needs a fraction of it anyway. Object
//! members keep their insertion order, floats are printed with Rust's
//! shortest-round-trip [`std::fmt::Display`], and the writer is fully
//! deterministic — the byte-identical-results guarantee of the parallel
//! runner rests on it.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (JSON numbers without fraction or exponent).
    Int(i64),
    /// A floating-point number. Non-finite values are written as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; members keep insertion order (no sorting, no dedup).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Build an object from `(key, value)` pairs.
    pub fn object(members: Vec<(&str, Value)>) -> Value {
        Value::Object(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `f64` (integers are widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact single-line string.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize to a pretty-printed string (two-space indent, trailing
    /// newline) — the on-disk `BENCH_*.json` format.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // Shortest-round-trip formatting; "2" (no dot) is legal
                    // JSON and reparses as `Int`, which `as_f64` widens back.
                    out.push_str(&f.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_sequence(out, indent, depth, items.is_empty(), '[', ']', |out, nl| {
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                            nl(out);
                        }
                        item.write(out, indent, depth + 1);
                    }
                });
            }
            Value::Object(members) => {
                write_sequence(out, indent, depth, members.is_empty(), '{', '}', |out, nl| {
                    for (i, (key, value)) in members.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                            nl(out);
                        }
                        write_escaped(out, key);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        value.write(out, indent, depth + 1);
                    }
                });
            }
        }
    }

    /// Parse a JSON document. The whole input must be consumed (apart from
    /// trailing whitespace).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message with a byte offset on malformed input.
    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

/// Write the opening/closing brackets and per-element newlines of an array or
/// object, delegating the element list to `body`.
fn write_sequence(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    open: char,
    close: char,
    body: impl FnOnce(&mut String, &dyn Fn(&mut String)),
) {
    out.push(open);
    if empty {
        out.push(close);
        return;
    }
    let newline = |out: &mut String| {
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..step * (depth + 1) {
                out.push(' ');
            }
        }
    };
    newline(out);
    body(out, &newline);
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|b| b as char), self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {start}"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {start}"))?;
                            // Surrogate pairs are not needed for our own
                            // output; lone surrogates become U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {start}",
                                other.map(|b| b as char)
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse::<i64>().map(Value::Int).map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_is_deterministic_and_parseable() {
        let doc = Value::object(vec![
            ("name", Value::Str("figure5".into())),
            ("fast", Value::Bool(false)),
            ("scale", Value::Int(1)),
            ("speedup", Value::Float(1.5)),
            ("missing", Value::Null),
            (
                "cells",
                Value::Array(vec![Value::object(vec![
                    ("cycles", Value::Int(1234)),
                    ("ipc", Value::Float(2.0)),
                ])]),
            ),
        ]);
        let text = doc.to_pretty();
        assert_eq!(text, doc.to_pretty(), "writer is deterministic");
        let reparsed = Value::parse(&text).expect("own output parses");
        assert_eq!(reparsed.get("name").and_then(Value::as_str), Some("figure5"));
        assert_eq!(reparsed.get("scale").and_then(Value::as_i64), Some(1));
        assert_eq!(reparsed.get("speedup").and_then(Value::as_f64), Some(1.5));
        // 2.0 prints as "2" and reparses as Int; as_f64 widens it back.
        let cells = reparsed.get("cells").and_then(Value::as_array).unwrap();
        assert_eq!(cells[0].get("ipc").and_then(Value::as_f64), Some(2.0));
        assert_eq!(reparsed.get("missing"), Some(&Value::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote \" backslash \\ newline \n tab \t control \u{1} unicode é";
        let doc = Value::Str(original.to_string());
        let reparsed = Value::parse(&doc.to_compact()).unwrap();
        assert_eq!(reparsed.as_str(), Some(original));
    }

    #[test]
    fn parser_accepts_standard_documents() {
        let v = Value::parse(r#"{"a": [1, -2, 3.5, 1e3], "b": {"c": true}, "d": "x"}"#).unwrap();
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[0].as_i64(), Some(1));
        assert_eq!(a[1].as_i64(), Some(-2));
        assert_eq!(a[2].as_f64(), Some(3.5));
        assert_eq!(a[3].as_f64(), Some(1000.0));
        assert_eq!(v.get("b").unwrap().get("c").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1, 2,]").is_err(), "trailing comma");
        assert!(Value::parse("{\"a\": 1} extra").is_err(), "trailing data");
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("nul").is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Value::Float(f64::NAN).to_compact(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_compact(), "null");
    }
}
