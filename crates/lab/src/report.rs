//! Text reports rendered from structured run results.
//!
//! These renderers reproduce the legacy `mom-bench` binary output
//! byte-for-byte — the binaries are now thin wrappers that run a spec and
//! print [`render`]'s string, and `momlab run` prints the same text next to
//! the JSON file. A golden-output test pins the format.

use std::fmt::Write as _;

use mom_isa::trace::IsaKind;
use mom_mem::MemModelKind;

use crate::runner::{CellResult, RunData, RunResult};
use crate::spec::{BaselinePolicy, ExperimentSpec, GridSpec};
use crate::tables::StaticRows;

/// Header suffix marking reduced runs, so saved fast-mode output can never be
/// mistaken for a full regeneration of a figure.
pub fn fast_marker(fast: bool) -> &'static str {
    if fast {
        " [fast mode: reduced subset]"
    } else {
        ""
    }
}

/// Render the text report of a completed run. Every line ends with `\n`;
/// print with `print!`.
pub fn render(result: &RunResult) -> String {
    match &result.data {
        RunData::Static(rows) => render_static(rows),
        RunData::Grid(cells) => {
            let grid = result.spec.grid().expect("grid data implies grid spec");
            // The layout follows the grid's structure, not the spec's name:
            // paired configs are a latency study, application workloads use
            // the wide config-label columns of Figure 7, and everything else
            // (Figure 5 and custom kernel grids) gets the per-ISA width table.
            if matches!(grid.baseline, BaselinePolicy::PairedPrevious) {
                render_latency(&result.spec, grid, cells)
            } else if grid.workloads.iter().any(|w| matches!(w, crate::spec::Workload::App(_))) {
                render_config_table(&result.spec, grid, cells)
            } else if matches!(grid.baseline, BaselinePolicy::None) {
                // No baseline means no speed-up column; grids like the
                // design-space sweep print IPC instead.
                render_ipc_table(&result.spec, grid, cells)
            } else {
                render_width_table(&result.spec, grid, cells)
            }
        }
    }
}

fn render_static(rows: &StaticRows) -> String {
    match rows {
        StaticRows::Table1(rows) => {
            let mut out = String::new();
            let _ = writeln!(out, "Table 1: Processor configurations");
            let _ = writeln!(
                out,
                "{:<8} {:>5} {:>5} {:>9} {:>6} {:>11} {:>11} {:>13} {:>10} {:>12}",
                "config", "ROB", "LSQ", "bimodal", "BTB", "INT s/c", "FP s/c", "MED (lanes)", "mem ports", "INT log/phys"
            );
            for row in rows {
                let _ = writeln!(
                    out,
                    "{:<8} {:>5} {:>5} {:>9} {:>6} {:>11} {:>11} {:>13} {:>10} {:>12}",
                    format!("way-{}", row.way),
                    row.rob,
                    row.lsq,
                    row.bimodal,
                    row.btb,
                    format!("{}/{}", row.int_units.0, row.int_units.1),
                    format!("{}/{}", row.fp_units.0, row.fp_units.1),
                    format!("{} (x{})", row.media_units.0, row.media_units.1),
                    row.mem_ports,
                    format!("{}/{}", row.int_regs.0, row.int_regs.1),
                );
            }
            out
        }
        StaticRows::Table2(rows) => {
            let mut out = String::new();
            let _ = writeln!(out, "Table 2: Multimedia register file configurations (4-way machine)");
            let _ = writeln!(
                out,
                "{:<6} {:>14} {:>12} {:>12} {:>10} {:>10} {:>16}",
                "ISA", "media log/phys", "acc log/phys", "media rd/wr", "acc rd/wr", "size (KB)", "normalized area"
            );
            for row in rows {
                let _ = writeln!(
                    out,
                    "{:<6} {:>14} {:>12} {:>12} {:>10} {:>10.2} {:>16.2}",
                    row.isa,
                    format!("{}/{}", row.media_regs.0, row.media_regs.1),
                    format!("{}/{}", row.acc_regs.0, row.acc_regs.1),
                    format!("{}/{}", row.media_ports.0, row.media_ports.1),
                    format!("{}/{}", row.acc_ports.0, row.acc_ports.1),
                    row.size_kb,
                    row.normalized_area,
                );
            }
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "Paper values: sizes 0.5 / 0.78 / 2.6 KB, normalized area 1 / 1.19 / 0.87."
            );
            out
        }
        StaticRows::Table3(rows) => {
            let mut out = String::new();
            let _ = writeln!(out, "Table 3: Port configuration of the memory models");
            let _ = writeln!(
                out,
                "{:<16} {:>9} {:>9} {:>11} {:>15} {:>9} {:>11}",
                "model", "L1 ports", "L1 banks", "L1 latency", "L2 vec ports", "L2 banks", "L2 latency"
            );
            for row in rows {
                let c = row.config;
                let _ = writeln!(
                    out,
                    "{:<16} {:>9} {:>9} {:>11} {:>15} {:>9} {:>11}",
                    row.label,
                    c.l1_ports,
                    c.l1_banks,
                    c.l1_latency,
                    if c.l2_vector_ports == 0 {
                        "-".to_string()
                    } else {
                        format!("{}x{}", c.l2_vector_ports, c.l2_vector_width)
                    },
                    c.l2_banks,
                    c.l2_latency,
                );
            }
            out
        }
        StaticRows::Inventory(rows) => {
            let mut out = String::new();
            let _ = writeln!(out, "Opcode inventories of the emulation libraries");
            let _ = writeln!(out, "{:<8} {:>10} {:>10}", "ISA", "modelled", "paper");
            for row in rows {
                let _ = writeln!(
                    out,
                    "{:<8} {:>10} {:>10}",
                    row.isa.to_string(),
                    row.modelled,
                    row.paper.map(|c| c.to_string()).unwrap_or_else(|| "-".into()),
                );
            }
            let _ = writeln!(out);
            let _ = writeln!(out, "Register file summary (Table 2 logical registers):");
            let _ = writeln!(out, "  MMX  : 32 media registers");
            let _ = writeln!(out, "  MDMX : 32 media registers + 4 packed accumulators");
            let _ = writeln!(
                out,
                "  MOM  : 16 matrix registers (16 x 64-bit words) + 2 accumulators + VL register"
            );
            out
        }
    }
}

/// Look up one cell by (workload label, config label, width).
fn find_cell<'a>(
    cells: &'a [CellResult],
    workload: &str,
    config_label: &str,
    way: usize,
) -> Option<&'a CellResult> {
    cells
        .iter()
        .find(|c| c.workload.label() == workload && c.config_label == config_label && c.way == way)
}

/// The Figure 5 layout: one section per workload, one row per config, one
/// speed-up column per width.
fn render_width_table(spec: &ExperimentSpec, grid: &GridSpec, cells: &[CellResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}{}", spec.title, fast_marker(spec.fast));
    for workload in &grid.workloads {
        let _ = writeln!(out);
        let _ = writeln!(out, "{workload}");
        let mut header = format!("{:<8}", "isa");
        for way in &grid.widths {
            header.push_str(&format!(" {:>10}", format!("{way}-way")));
        }
        let _ = writeln!(out, "{header}");
        for config in &grid.configs {
            let mut row = format!("{:<8}", config.label);
            for &way in &grid.widths {
                let value = find_cell(cells, workload.label(), &config.label, way)
                    .and_then(|c| c.speedup)
                    .unwrap_or(f64::NAN);
                row.push_str(&format!(" {value:>10.2}"));
            }
            let _ = writeln!(out, "{row}");
        }
    }
    out
}

/// The baseline-free layout (the design-space sweep): one section per
/// workload, one row per config, one IPC column per width.
fn render_ipc_table(spec: &ExperimentSpec, grid: &GridSpec, cells: &[CellResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}{}", spec.title, fast_marker(spec.fast));
    let label_width = grid.configs.iter().map(|c| c.label.len()).max().unwrap_or(8).max(8);
    for workload in &grid.workloads {
        let _ = writeln!(out);
        let _ = writeln!(out, "{workload} (IPC)");
        let mut header = format!("{:<label_width$}", "config");
        for way in &grid.widths {
            header.push_str(&format!(" {:>10}", format!("{way}-way")));
        }
        let _ = writeln!(out, "{header}");
        for config in &grid.configs {
            let mut row = format!("{:<label_width$}", config.label);
            for &way in &grid.widths {
                let value = find_cell(cells, workload.label(), &config.label, way)
                    .map(|c| c.ipc())
                    .unwrap_or(f64::NAN);
                row.push_str(&format!(" {value:>10.3}"));
            }
            let _ = writeln!(out, "{row}");
        }
    }
    out
}

/// Render the resolved machine grid of an experiment: one line per cell with
/// the full [`mom_cpu::MachineDescriptor`] the runner would instantiate
/// (`momlab describe`). Static experiments have no machine grid.
pub fn describe(spec: &ExperimentSpec) -> String {
    let mut out = String::new();
    let Some(grid) = spec.grid() else {
        let _ = writeln!(out, "{}: static experiment (no machine grid)", spec.name);
        return out;
    };
    let cells = grid.cells();
    // The shared-pass count comes from the fan-out runner's own grouping
    // function, so the printed number can never drift from what runs.
    let passes = crate::runner::fanout_groups(grid, &cells).len();
    let _ = writeln!(
        out,
        "{}: {} cells over {} shared functional passes{}",
        spec.name,
        cells.len(),
        passes,
        fast_marker(spec.fast)
    );
    let workload_width =
        grid.workloads.iter().map(|w| w.label().len()).max().unwrap_or(8).max(8);
    let label_width = grid.configs.iter().map(|c| c.label.len()).max().unwrap_or(6).max(6);
    for (i, cell) in cells.iter().enumerate() {
        let config = &grid.configs[cell.config];
        let descriptor = config.descriptor(cell.way);
        let _ = writeln!(
            out,
            "{i:>4}  {:<workload_width$}  {:<label_width$}  {}",
            cell.workload.label(),
            config.label,
            descriptor.summary(),
        );
    }
    out
}

/// The latency-tolerance layout: per-kernel slow-down rows plus per-ISA
/// bands. Slow-downs are re-derived from the raw cycle counts of the paired
/// `lat1`/`lat50` cells.
fn render_latency(spec: &ExperimentSpec, grid: &GridSpec, cells: &[CellResult]) -> String {
    let isas = grid.isas();
    let slowdown = |workload: &str, isa: IsaKind| -> f64 {
        let of_latency = |latency: u64| {
            cells
                .iter()
                .find(|c| {
                    c.workload.label() == workload
                        && c.isa == isa
                        && c.mem == MemModelKind::Perfect { latency }
                })
                .map(|c| c.cycles)
        };
        match (of_latency(1), of_latency(50)) {
            (Some(fast), Some(slow)) => slow as f64 / fast.max(1) as f64,
            _ => f64::NAN,
        }
    };

    let mut out = String::new();
    let _ = writeln!(out, "{}{}", spec.title, fast_marker(spec.fast));
    let mut header = format!("{:<16}", "kernel");
    for isa in &isas {
        header.push_str(&format!(" {:>8}", isa.label()));
    }
    let _ = writeln!(out, "{header}");
    for workload in &grid.workloads {
        let mut row = format!("{:<16}", workload.label());
        for &isa in &isas {
            row.push_str(&format!(" {:>8.2}", slowdown(workload.label(), isa)));
        }
        let _ = writeln!(out, "{row}");
    }

    let _ = writeln!(out);
    let _ = writeln!(out, "Slow-down bands across kernels:");
    for &isa in &isas {
        let values: Vec<f64> =
            grid.workloads.iter().map(|w| slowdown(w.label(), isa)).collect();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0, f64::max);
        let _ = writeln!(out, "  {:<6} {min:.1}x .. {max:.1}x", isa.label());
    }
    out
}

/// The Figure 7 layout: one section per application, one row per machine
/// configuration (wide labels), one speed-up column per width.
fn render_config_table(spec: &ExperimentSpec, grid: &GridSpec, cells: &[CellResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}{}", spec.title, fast_marker(spec.fast));
    for workload in &grid.workloads {
        let _ = writeln!(out);
        let _ = writeln!(out, "{workload}");
        let mut header = format!("{:<32}", "configuration");
        for way in &grid.widths {
            header.push_str(&format!(" {:>8}", format!("{way}-way")));
        }
        let _ = writeln!(out, "{header}");
        for config in &grid.configs {
            let mut row = format!("{:<32}", config.label);
            for &way in &grid.widths {
                let value = find_cell(cells, workload.label(), &config.label, way)
                    .and_then(|c| c.speedup)
                    .unwrap_or(f64::NAN);
                row.push_str(&format!(" {value:>8.2}"));
            }
            let _ = writeln!(out, "{row}");
        }
    }
    out
}

/// Render the stall-cycle attribution stack of a grid run: one line per
/// cell, its total commit-slot cycles and the top three stall causes by
/// share. Kept separate from [`render`] so the golden-pinned report format
/// stays untouched; `momlab run` prints this block after the report.
/// Returns `None` for static experiments.
pub fn render_breakdown(result: &RunResult) -> Option<String> {
    let cells = result.cells()?;
    let mut out = String::new();
    let _ = writeln!(out, "Stall-cycle attribution (top causes per cell):");
    for cell in cells {
        let b = &cell.breakdown;
        let stack = b
            .ranked()
            .into_iter()
            .filter(|&(_, cycles)| cycles > 0)
            .take(3)
            .map(|(cause, cycles)| {
                format!("{} {:.0}%", cause.label(), cycles as f64 * 100.0 / b.total_cycles.max(1) as f64)
            })
            .collect::<Vec<_>>()
            .join(" | ");
        let _ = writeln!(
            out,
            "  {} / {} ({}-way): {} cycles — {}",
            cell.workload.label(),
            cell.config_label,
            cell.way,
            b.total_cycles,
            stack,
        );
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_with;
    use crate::spec::StaticKind;

    #[test]
    fn static_reports_match_the_legacy_headers() {
        for (name, header) in [
            ("table1", "Table 1: Processor configurations"),
            ("table2", "Table 2: Multimedia register file configurations (4-way machine)"),
            ("table3", "Table 3: Port configuration of the memory models"),
            ("isa_inventory", "Opcode inventories of the emulation libraries"),
        ] {
            let spec = ExperimentSpec::builtin(name, 1, true).unwrap();
            assert!(matches!(spec.kind, crate::spec::ExperimentKind::Static(_)));
            let text = render(&run_with(&spec, 1));
            assert!(text.starts_with(header), "{name} header drifted:\n{text}");
            assert!(
                !text.contains("[fast mode"),
                "static tables never carry the fast marker:\n{text}"
            );
            assert!(text.ends_with('\n'));
        }
        // StaticKind is exported for spec construction.
        let _ = StaticKind::Table1;
    }

    #[test]
    fn fast_marker_toggles() {
        assert_eq!(fast_marker(false), "");
        assert!(fast_marker(true).contains("fast mode"));
    }

    #[test]
    fn describe_prints_one_descriptor_line_per_cell() {
        let spec = ExperimentSpec::builtin("figure5", 1, true).unwrap();
        let grid = spec.grid().unwrap();
        let text = describe(&spec);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + grid.cells().len(), "header + one line per cell");
        assert!(lines[0].contains("32 cells over 8 shared functional passes"), "{}", lines[0]);
        // Every cell line carries the resolved descriptor summary.
        assert!(lines[1].contains("1-way alpha"), "{}", lines[1]);
        assert!(lines[1].contains("rob=8"), "{}", lines[1]);
        assert!(lines[1].contains("mem=perfect-1"), "{}", lines[1]);
        // Apps group per workload (scalar phases shared across ISA lanes).
        let fig7 = ExperimentSpec::builtin("figure7", 1, true).unwrap();
        assert!(
            describe(&fig7).starts_with("figure7: 10 cells over 2 shared functional passes"),
            "{}",
            describe(&fig7)
        );
        // The sweep's ROB override shows up in the resolved grid.
        let sweep = ExperimentSpec::builtin("sweep", 1, true).unwrap();
        let sweep_text = describe(&sweep);
        assert!(sweep_text.contains("rob=16"), "{sweep_text}");
        assert!(sweep_text.contains("rob=64"), "{sweep_text}");
        assert!(sweep_text.contains("lat50"), "{sweep_text}");
        // Static experiments have no machine grid.
        let table = ExperimentSpec::builtin("table1", 1, true).unwrap();
        assert!(describe(&table).contains("static experiment"));
    }

    #[test]
    fn breakdown_stack_renders_for_grids_only() {
        let spec = ExperimentSpec::builtin("figure5", 1, true).unwrap();
        let result = run_with(&spec, 1);
        let text = render_breakdown(&result).unwrap();
        assert!(text.starts_with("Stall-cycle attribution"), "{text}");
        assert!(text.contains(" cycles — "), "{text}");
        // Every cell gets a line, and shares are percentages of the total.
        assert_eq!(text.lines().count(), 1 + result.cells().unwrap().len());
        let table = ExperimentSpec::builtin("table1", 1, true).unwrap();
        assert!(render_breakdown(&run_with(&table, 1)).is_none());
    }

    #[test]
    fn baseline_free_grids_render_ipc_tables() {
        let spec = ExperimentSpec::builtin("sweep", 1, true).unwrap();
        let result = run_with(&spec, 2);
        let text = render(&result);
        assert!(text.starts_with("Design-space sweep"), "{text}");
        assert!(text.contains("(IPC)"), "{text}");
        assert!(text.contains("mom/rob64/lat1"), "{text}");
        assert!(!text.contains("NaN"), "no speed-up NaNs in a baseline-free grid:\n{text}");
    }
}
