//! # mom-lab — the parallel experiment-orchestration engine
//!
//! The paper's evaluation is a grid of (workload x ISA x issue-width x
//! memory-model) simulations. This crate turns that grid into data:
//!
//! * [`spec`] — declarative [`ExperimentSpec`]s describing a simulation grid;
//!   every table and figure of the paper is a named built-in spec
//!   ([`ExperimentSpec::builtin`]);
//! * [`runner`] — a multi-threaded runner (scoped threads, work-stealing
//!   cursor) with a determinism guarantee: parallel and serial runs produce
//!   bit-identical results;
//! * [`json`] — a dependency-free JSON writer/parser behind the
//!   `BENCH_<experiment>.json` result files;
//! * [`report`] — text renderers reproducing the legacy `mom-bench` binary
//!   output byte-for-byte from the structured results;
//! * [`tables`] — the config-derived static experiments (Tables 1-3, opcode
//!   inventories);
//! * [`baseline`] — regression diffing of result files;
//! * [`trace`] — Chrome trace-event export of the runner's scheduler spans
//!   (`momlab run --trace-out <file>`).
//!
//! The `momlab` binary is the CLI: `momlab list`, `momlab run figure5 --json
//! out.json`, `momlab run --all`, `momlab diff new.json --baseline old.json`.
//! See `EXPERIMENTS.md` at the repository root for the JSON schema.
//!
//! ```
//! use mom_lab::spec::ExperimentSpec;
//! use mom_lab::{report, runner};
//!
//! // Run a reduced Figure 5 on 4 workers; serial would give identical bytes.
//! let spec = ExperimentSpec::builtin("figure5", 1, true).expect("built-in name");
//! let result = runner::run_with(&spec, 4);
//! assert_eq!(result.results_json(), runner::run_with(&spec, 1).results_json());
//! assert!(report::render(&result).starts_with("Figure 5"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod cache;
pub mod json;
pub mod report;
pub mod runner;
pub mod spec;
pub mod tables;
pub mod trace;

pub use cache::{engine_fingerprint, CacheMeta, CellCache, CellKey, CellRecord, SamplingKnobs};
pub use runner::{
    run, run_cached, run_streamed, run_with, run_with_mode, run_with_mode_progress,
    run_with_options, CellResult, CellSampling, CheckpointConfig, ExecMode, PoolStats, RunResult,
    SpanRec, DEFAULT_SAMPLE_PERIOD, DEFAULT_SAMPLE_UNIT, DEFAULT_SAMPLE_WARMUP,
};
pub use spec::{ExperimentSpec, GridSpec, SweepDims, Workload, BUILTIN_EXPERIMENTS};

use std::path::PathBuf;
use std::sync::OnceLock;

/// Whether the `MOM_BENCH_FAST` environment variable requests reduced runs.
///
/// In fast mode the experiments evaluate a two-element subset of the
/// kernels/applications so smoke tests and CI can exercise every experiment
/// in seconds instead of minutes. Any non-empty value other than `0` enables
/// it. The lookup is cached in a [`OnceLock`] — the environment is read at
/// most once per process, and every caller (the `momlab` CLI, the legacy
/// `mom-bench` binaries and the Criterion benches) sees the same answer.
pub fn fast_mode() -> bool {
    static FAST: OnceLock<bool> = OnceLock::new();
    *FAST.get_or_init(|| {
        std::env::var("MOM_BENCH_FAST").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
    })
}

/// Header suffix marking reduced runs (the [`fast_mode`] flavour of
/// [`report::fast_marker`]).
pub fn fast_mode_marker() -> &'static str {
    report::fast_marker(fast_mode())
}

/// Whether the `MOM_LAB_STREAM` environment variable requests the fused
/// streaming execution mode ([`runner::run_streamed`]) by default.
///
/// In streamed mode every grid cell re-interprets its workload and feeds the
/// timing simulator directly — no materialized traces, per-cell memory
/// bounded by the simulator's O(ROB) window — producing byte-identical
/// results to the materialized path. Any non-empty value other than `0`
/// enables it; the `momlab --streamed` flag does the same per invocation.
/// Cached in a [`OnceLock`] like [`fast_mode`].
pub fn stream_mode() -> bool {
    static STREAM: OnceLock<bool> = OnceLock::new();
    *STREAM.get_or_init(|| {
        std::env::var("MOM_LAB_STREAM").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
    })
}

/// Worker-count override from the `MOM_LAB_WORKERS` environment variable.
///
/// [`runner::default_workers`] caps at 8 threads, which undersizes pipelined
/// fan-out groups (one interpreter + N member simulators each) on big hosts.
/// A non-empty value other than `0` that parses as a positive integer
/// overrides the default; empty, `0` or unparsable values mean "no override"
/// — the same disable semantics as `MOM_BENCH_FAST` / `MOM_LAB_STREAM`.
/// Cached in a [`OnceLock`] like [`fast_mode`]. The explicit `--workers`
/// CLI flag still wins over this variable.
pub fn worker_override() -> Option<usize> {
    static WORKERS: OnceLock<Option<usize>> = OnceLock::new();
    *WORKERS.get_or_init(|| env_positive_usize("MOM_LAB_WORKERS"))
}

/// Instructions per pipeline batch, from `MOM_LAB_BATCH` (default
/// [`mom_isa::pipe::DEFAULT_BATCH_INSTS`]).
///
/// Same empty/`0` disable semantics and [`OnceLock`] caching as
/// [`worker_override`]. Larger batches amortize channel synchronization;
/// smaller ones tighten the pipeline's memory bound (O(batch × capacity ×
/// members) per group).
pub fn pipeline_batch_insts() -> usize {
    static BATCH: OnceLock<usize> = OnceLock::new();
    *BATCH.get_or_init(|| {
        env_positive_usize("MOM_LAB_BATCH").unwrap_or(mom_isa::pipe::DEFAULT_BATCH_INSTS)
    })
}

/// Per-member channel capacity in batches, from `MOM_LAB_CHANNEL` (default
/// [`mom_isa::pipe::DEFAULT_CHANNEL_BATCHES`]).
///
/// Same empty/`0` disable semantics and [`OnceLock`] caching as
/// [`worker_override`].
pub fn pipeline_channel_batches() -> usize {
    static CHANNEL: OnceLock<usize> = OnceLock::new();
    *CHANNEL.get_or_init(|| {
        env_positive_usize("MOM_LAB_CHANNEL").unwrap_or(mom_isa::pipe::DEFAULT_CHANNEL_BATCHES)
    })
}

/// The persistent cell-cache directory requested via `MOM_LAB_CACHE`.
///
/// `momlab run` enables the content-addressed result cache
/// ([`cache::CellCache`]) when this variable names a directory — the same
/// effect as `--cache-dir DIR`, which still wins when both are given;
/// `--no-cache` disables both. An empty value means "no cache". Cached in a
/// [`OnceLock`] like [`fast_mode`].
pub fn cache_env_dir() -> Option<PathBuf> {
    static DIR: OnceLock<Option<PathBuf>> = OnceLock::new();
    DIR.get_or_init(|| {
        std::env::var_os("MOM_LAB_CACHE").filter(|v| !v.is_empty()).map(PathBuf::from)
    })
    .clone()
}

/// Parse an environment variable as a positive integer, treating empty, `0`
/// and unparsable values as unset.
fn env_positive_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse::<usize>().ok()).filter(|&n| n > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_mode_is_cached_and_consistent() {
        // Whatever the environment says, repeated calls agree (the OnceLock
        // pins the first answer) and the marker matches the flag.
        let first = fast_mode();
        for _ in 0..3 {
            assert_eq!(fast_mode(), first);
        }
        assert_eq!(fast_mode_marker().is_empty(), !first);
    }

    #[test]
    fn pipeline_knobs_are_cached_and_positive() {
        assert!(pipeline_batch_insts() >= 1);
        assert!(pipeline_channel_batches() >= 1);
        for _ in 0..3 {
            assert_eq!(pipeline_batch_insts(), pipeline_batch_insts());
            assert_eq!(pipeline_channel_batches(), pipeline_channel_batches());
            assert_eq!(worker_override(), worker_override());
        }
    }

    #[test]
    fn env_override_parser_treats_empty_zero_and_garbage_as_unset() {
        // Distinct variable names so the OnceLock-cached accessors above are
        // unaffected; this tests the shared parser the accessors use.
        for (name, value, expect) in [
            ("MOM_LAB_TEST_EMPTY", "", None),
            ("MOM_LAB_TEST_ZERO", "0", None),
            ("MOM_LAB_TEST_GARBAGE", "lots", None),
            ("MOM_LAB_TEST_NEG", "-3", None),
            ("MOM_LAB_TEST_OK", "12", Some(12)),
        ] {
            std::env::set_var(name, value);
            assert_eq!(env_positive_usize(name), expect, "{name}={value:?}");
        }
        assert_eq!(env_positive_usize("MOM_LAB_TEST_UNSET_NEVER"), None);
    }
}
