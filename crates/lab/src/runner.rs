//! The parallel experiment runner.
//!
//! Grid experiments run in two parallel stages over scoped worker threads:
//!
//! 1. **Trace building** — every distinct `(workload, ISA)` pair is executed
//!    once by the functional interpreter (kernels are verified against the
//!    golden reference while doing so);
//! 2. **Timing simulation** — every grid cell simulates its pre-built trace
//!    on its own core + memory-system instance.
//!
//! [`run_streamed`] (and [`run_with_mode`] with `streamed = true`) replaces
//! both stages with the **fused streaming pipeline**: every cell
//! re-interprets its workload and graduates instructions straight into the
//! timing simulator's O(ROB) engine, so no dynamic trace is ever
//! materialized and per-cell memory is independent of workload scale. The
//! two modes are byte-identical in their results — the determinism guarantee
//! below covers the execution mode as well as the worker count — and the
//! chosen mode is recorded only in the JSON `meta` section.
//!
//! Work is distributed by a shared atomic cursor (idle workers steal the next
//! unclaimed index), and every result is written back to the slot of its cell
//! index. Since each cell's simulation is a pure function of the spec, the
//! result vector — and therefore the JSON document — is **bit-identical**
//! regardless of worker count or scheduling. [`determinism`] states the
//! guarantee; `tests/determinism.rs` enforces it.
//!
//! [`determinism`]: self#determinism
//!
//! # Determinism
//!
//! For any spec `s` and worker counts `a, b >= 1`:
//! `run_with(&s, a).results_json() == run_with(&s, b).results_json()` —
//! byte-for-byte. Only the `meta` section of the full document (wall-clock,
//! worker count) may differ between runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use mom_apps::{build_app, run_app_streamed, AppParams};
use mom_cpu::{CoreConfig, OooCore, SimResult};
use mom_isa::trace::{IsaKind, Trace};
use mom_kernels::{build_kernel, KernelParams};
use mom_mem::{build_memory, MemModelKind};

use crate::json::Value;
use crate::spec::{BaselinePolicy, ExperimentKind, ExperimentSpec, GridSpec, Workload};
use crate::tables::{static_rows, StaticRows};

/// Results of one simulated grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The workload that ran.
    pub workload: Workload,
    /// Label of the machine configuration (unique within the spec).
    pub config_label: String,
    /// The ISA of the configuration.
    pub isa: IsaKind,
    /// The memory model of the configuration.
    pub mem: MemModelKind,
    /// Issue width.
    pub way: usize,
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed dynamic instructions.
    pub instructions: u64,
    /// Branches executed.
    pub branches: u64,
    /// Branch mispredictions.
    pub mispredictions: u64,
    /// Element-level memory accesses.
    pub mem_accesses: u64,
    /// Speed-up versus the spec's baseline cell (`None` when the baseline
    /// policy is [`BaselinePolicy::None`]).
    pub speedup: Option<f64>,
}

impl CellResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// The data produced by one experiment run.
#[derive(Debug, Clone)]
pub enum RunData {
    /// Per-cell simulation results, in [`GridSpec::cells`] order.
    Grid(Vec<CellResult>),
    /// The rows of a config-derived table.
    Static(StaticRows),
}

/// A completed experiment run: the results plus reproducibility metadata.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The spec that ran (owned copy, so reports need no extra context).
    pub spec: ExperimentSpec,
    /// Hash of the spec configuration (see [`ExperimentSpec::config_hash`]).
    pub config_hash: String,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: u64,
    /// Whether the grid ran through the fused streaming pipeline
    /// (interpreter feeding the simulator directly, rebuilt per cell) rather
    /// than pre-built materialized traces. Results are byte-identical either
    /// way; only `meta` records the difference.
    pub streamed: bool,
    /// Per-cell wall-clock simulation time in nanoseconds, parallel to the
    /// grid cells (empty for static experiments). Feeds the `insts_per_sec`
    /// throughput figures of the JSON `meta` section; like all wall-clock
    /// data it lives outside the deterministic results.
    pub cell_wall_ns: Vec<u64>,
    /// The results.
    pub data: RunData,
}

/// Default worker count: the machine's available parallelism, capped at 8
/// (the grids are small; more threads only add scheduling noise).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// Run an experiment with [`default_workers`] on the materialized-trace path.
pub fn run(spec: &ExperimentSpec) -> RunResult {
    run_with(spec, default_workers())
}

/// Run an experiment with an explicit worker count (`1` forces a fully
/// serial run; results are identical either way — see the
/// [module docs](self#determinism)) on the materialized-trace path.
pub fn run_with(spec: &ExperimentSpec, workers: usize) -> RunResult {
    run_with_mode(spec, workers, false)
}

/// Run an experiment through the fused streaming pipeline: each grid cell
/// re-interprets its workload and feeds the timing simulator directly, so no
/// trace is ever materialized and peak memory per cell is bounded by the
/// simulator's O(ROB) window. Results are **byte-identical** to
/// [`run_with`] — the determinism guarantee extends across execution modes.
pub fn run_streamed(spec: &ExperimentSpec, workers: usize) -> RunResult {
    run_with_mode(spec, workers, true)
}

/// Run an experiment with an explicit worker count and execution mode
/// (`streamed = false`: build each distinct trace once and replay it per
/// cell; `streamed = true`: fused interpreter→simulator execution rebuilt
/// per cell).
pub fn run_with_mode(spec: &ExperimentSpec, workers: usize, streamed: bool) -> RunResult {
    let started = Instant::now();
    let (data, cell_wall_ns) = match &spec.kind {
        ExperimentKind::Static(kind) => (RunData::Static(static_rows(*kind)), Vec::new()),
        ExperimentKind::Grid(grid) => {
            let (cells, timings) = run_grid(grid, workers.max(1), streamed);
            (RunData::Grid(cells), timings)
        }
    };
    RunResult {
        spec: spec.clone(),
        config_hash: spec.config_hash(),
        workers: workers.max(1),
        wall_ms: started.elapsed().as_millis() as u64,
        streamed,
        cell_wall_ns,
        data,
    }
}

/// Build the dynamic trace of one workload for one ISA. Kernels are verified
/// against the golden reference; a mismatch is a panic, exactly as in the
/// legacy harness.
fn build_trace(workload: Workload, isa: IsaKind, scale: usize, seed: u64) -> Trace {
    match workload {
        Workload::Kernel(kernel) => {
            let params = KernelParams { seed, scale };
            build_kernel(kernel, isa, &params)
                .run_verified()
                .unwrap_or_else(|e| panic!("{kernel} ({isa}) failed verification: {e}"))
                .trace
        }
        Workload::App(app) => {
            let params = AppParams { seed, scale };
            build_app(app, isa, &params)
                .unwrap_or_else(|e| panic!("{app} ({isa}) failed to build: {e}"))
                .trace
        }
    }
}

/// Simulate one pre-built trace on one machine configuration.
fn simulate(trace: &Trace, way: usize, isa: IsaKind, mem: MemModelKind) -> SimResult {
    let core = OooCore::new(CoreConfig::for_width(way, isa));
    let mut memory = build_memory(mem, way);
    core.simulate(trace, memory.as_mut())
}

/// Fused streaming execution of one cell: re-interpret the workload and feed
/// the simulator directly (no materialized trace; peak memory is the
/// simulator's O(ROB) window). Bit-identical to `simulate(&build_trace(..))`.
fn simulate_streamed(
    workload: Workload,
    way: usize,
    isa: IsaKind,
    mem: MemModelKind,
    scale: usize,
    seed: u64,
) -> SimResult {
    let core = OooCore::new(CoreConfig::for_width(way, isa));
    let mut memory = build_memory(mem, way);
    match workload {
        Workload::Kernel(kernel) => {
            let params = KernelParams { seed, scale };
            build_kernel(kernel, isa, &params)
                .run_streamed(&core, memory.as_mut())
                .unwrap_or_else(|e| panic!("{kernel} ({isa}) failed verification: {e}"))
        }
        Workload::App(app) => {
            let params = AppParams { seed, scale };
            run_app_streamed(app, isa, &params, &core, memory.as_mut())
                .unwrap_or_else(|e| panic!("{app} ({isa}) failed to build: {e}"))
                .0
        }
    }
}

fn run_grid(grid: &GridSpec, workers: usize, streamed: bool) -> (Vec<CellResult>, Vec<u64>) {
    let cells = grid.cells();

    // Each cell's simulation is timed individually so the JSON `meta`
    // section can report simulator throughput (insts_per_sec) per cell. In
    // streamed mode the measured span is the fused interpret+simulate pass;
    // in materialized mode it is the trace replay alone.
    let sims: Vec<(SimResult, u64)> = if streamed {
        // Streamed: no stage 1 — every cell runs the fused pipeline,
        // rebuilding its workload on the fly.
        parallel_map(&cells, workers, |cell| {
            let config = &grid.configs[cell.config];
            let started = Instant::now();
            let sim = simulate_streamed(
                cell.workload,
                cell.way,
                config.isa,
                config.mem,
                grid.scale,
                grid.seed,
            );
            (sim, started.elapsed().as_nanos() as u64)
        })
    } else {
        // Stage 1: build every distinct (workload, ISA) trace once, in parallel.
        let mut pairs: Vec<(Workload, IsaKind)> = Vec::new();
        for cell in &cells {
            let pair = (cell.workload, grid.configs[cell.config].isa);
            if !pairs.contains(&pair) {
                pairs.push(pair);
            }
        }
        let traces = parallel_map(&pairs, workers, |&(workload, isa)| {
            build_trace(workload, isa, grid.scale, grid.seed)
        });
        let trace_of = |workload: Workload, isa: IsaKind| -> &Trace {
            let idx = pairs.iter().position(|&p| p == (workload, isa)).expect("trace was built");
            &traces[idx]
        };

        // Stage 2: simulate every cell, in parallel.
        parallel_map(&cells, workers, |cell| {
            let config = &grid.configs[cell.config];
            let trace = trace_of(cell.workload, config.isa);
            let started = Instant::now();
            let sim = simulate(trace, cell.way, config.isa, config.mem);
            (sim, started.elapsed().as_nanos() as u64)
        })
    };
    let timings: Vec<u64> = sims.iter().map(|(_, ns)| *ns).collect();
    let sims: Vec<SimResult> = sims.into_iter().map(|(sim, _)| sim).collect();

    // Stage 3 (serial, cheap): derive speed-ups against the baseline cells.
    let index_of = |workload: Workload, config: usize, way: usize| -> Option<usize> {
        cells.iter().position(|c| c.workload == workload && c.config == config && c.way == way)
    };
    let results = cells
        .iter()
        .zip(&sims)
        .map(|(cell, sim)| {
            let baseline = match grid.baseline {
                BaselinePolicy::None => None,
                BaselinePolicy::ConfigAtWidth { config, way } => index_of(cell.workload, config, way),
                BaselinePolicy::ConfigSameWidth { config } => index_of(cell.workload, config, cell.way),
                BaselinePolicy::PairedPrevious => {
                    index_of(cell.workload, cell.config - cell.config % 2, cell.way)
                }
            };
            let config = &grid.configs[cell.config];
            CellResult {
                workload: cell.workload,
                config_label: config.label.clone(),
                isa: config.isa,
                mem: config.mem,
                way: cell.way,
                cycles: sim.cycles,
                instructions: sim.committed,
                branches: sim.branches,
                mispredictions: sim.mispredictions,
                mem_accesses: sim.mem_accesses,
                speedup: baseline.map(|b| sim.speedup_over(&sims[b])),
            }
        })
        .collect();
    (results, timings)
}

/// Map `f` over `items` on `workers` scoped threads with a shared atomic
/// work-stealing cursor. Results land in the slot of their input index, so
/// the output order — and any serialization of it — is independent of worker
/// count and scheduling.
fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    workers: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(items.len()))
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        produced.push((i, f(&items[i])));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            // A panicking worker (e.g. kernel verification failure) propagates
            // here, preserving the legacy harness's fail-fast behaviour.
            for (i, r) in handle.join().expect("experiment worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots.into_iter().map(|slot| slot.expect("every index was claimed")).collect()
}

impl RunResult {
    /// The deterministic results document: everything except the `meta`
    /// section. Two runs of the same spec serialize to identical bytes
    /// regardless of worker count.
    pub fn results_json(&self) -> Value {
        let mut members = vec![
            ("schema", Value::Str("momlab/v1".into())),
            ("experiment", Value::Str(self.spec.name.clone())),
            ("title", Value::Str(self.spec.title.clone())),
            ("config_hash", Value::Str(self.config_hash.clone())),
            ("fast", Value::Bool(self.spec.fast)),
        ];
        match (&self.data, self.spec.grid()) {
            (RunData::Grid(cells), Some(grid)) => {
                members.push(("kind", Value::Str("grid".into())));
                members.push(("scale", Value::Int(grid.scale as i64)));
                members.push(("seed", Value::Int(grid.seed as i64)));
                members.push((
                    "widths",
                    Value::Array(grid.widths.iter().map(|&w| Value::Int(w as i64)).collect()),
                ));
                members.push((
                    "configs",
                    Value::Array(
                        grid.configs
                            .iter()
                            .map(|c| {
                                Value::object(vec![
                                    ("label", Value::Str(c.label.clone())),
                                    ("isa", Value::Str(c.isa.label().into())),
                                    ("mem", Value::Str(mem_label(c.mem))),
                                ])
                            })
                            .collect(),
                    ),
                ));
                members.push((
                    "cells",
                    Value::Array(cells.iter().map(cell_json).collect()),
                ));
            }
            (RunData::Static(rows), _) => {
                members.push(("kind", Value::Str("static".into())));
                members.push(("rows", static_rows_json(rows)));
            }
            (RunData::Grid(_), None) => unreachable!("grid data implies a grid spec"),
        }
        Value::object(members)
    }

    /// The full on-disk document: [`RunResult::results_json`] plus a `meta`
    /// section with wall-clock, worker-count, execution-mode and throughput
    /// information (the only part that may differ between two runs of the
    /// same spec).
    pub fn document_json(&self) -> Value {
        let mut doc = self.results_json();
        let mut meta_members = vec![
            ("workers", Value::Int(self.workers as i64)),
            ("wall_ms", Value::Int(self.wall_ms as i64)),
            ("streamed", Value::Bool(self.streamed)),
            ("generated_by", Value::Str(format!("momlab {}", env!("CARGO_PKG_VERSION")))),
        ];
        if let Some(cells) = self.cells() {
            if cells.len() == self.cell_wall_ns.len() {
                meta_members.push(("throughput", Value::Array(
                    cells
                        .iter()
                        .zip(&self.cell_wall_ns)
                        .map(|(cell, &ns)| {
                            Value::object(vec![
                                ("workload", Value::Str(cell.workload.label().into())),
                                ("config", Value::Str(cell.config_label.clone())),
                                ("way", Value::Int(cell.way as i64)),
                                ("insts_per_sec", Value::Float(insts_per_sec(cell.instructions, ns))),
                            ])
                        })
                        .collect(),
                )));
            }
        }
        let meta = Value::object(meta_members);
        if let Value::Object(members) = &mut doc {
            members.push(("meta".into(), meta));
        }
        doc
    }

    /// Aggregate simulator throughput over all grid cells, in dynamic
    /// instructions per wall-clock second (`None` for static experiments or
    /// when nothing was timed).
    pub fn total_insts_per_sec(&self) -> Option<f64> {
        let cells = self.cells()?;
        if cells.is_empty() || cells.len() != self.cell_wall_ns.len() {
            return None;
        }
        let insts: u64 = cells.iter().map(|c| c.instructions).sum();
        let ns: u64 = self.cell_wall_ns.iter().sum();
        Some(insts_per_sec(insts, ns))
    }

    /// The grid cells, if this was a grid experiment.
    pub fn cells(&self) -> Option<&[CellResult]> {
        match &self.data {
            RunData::Grid(cells) => Some(cells),
            RunData::Static(_) => None,
        }
    }
}

/// Simulated instructions per wall-clock second.
fn insts_per_sec(instructions: u64, wall_ns: u64) -> f64 {
    instructions as f64 * 1e9 / wall_ns.max(1) as f64
}

/// The `mem` field of the JSON schema. Unlike [`MemModelKind::label`], the
/// perfect model embeds its latency so that cells of the latency study keyed
/// on `(workload, isa, mem, way)` stay distinguishable.
pub fn mem_label(mem: MemModelKind) -> String {
    match mem {
        MemModelKind::Perfect { latency } => format!("perfect-{latency}"),
        other => other.label().to_string(),
    }
}

fn cell_json(cell: &CellResult) -> Value {
    Value::object(vec![
        ("workload", Value::Str(cell.workload.label().into())),
        ("workload_kind", Value::Str(cell.workload.kind_label().into())),
        ("config", Value::Str(cell.config_label.clone())),
        ("isa", Value::Str(cell.isa.label().into())),
        ("mem", Value::Str(mem_label(cell.mem))),
        ("way", Value::Int(cell.way as i64)),
        ("cycles", Value::Int(cell.cycles as i64)),
        ("instructions", Value::Int(cell.instructions as i64)),
        ("branches", Value::Int(cell.branches as i64)),
        ("mispredictions", Value::Int(cell.mispredictions as i64)),
        ("mem_accesses", Value::Int(cell.mem_accesses as i64)),
        ("ipc", Value::Float(cell.ipc())),
        ("speedup", cell.speedup.map(Value::Float).unwrap_or(Value::Null)),
    ])
}

fn static_rows_json(rows: &StaticRows) -> Value {
    let pair = |(a, b): (usize, usize)| Value::Array(vec![Value::Int(a as i64), Value::Int(b as i64)]);
    match rows {
        StaticRows::Table1(rows) => Value::Array(
            rows.iter()
                .map(|r| {
                    Value::object(vec![
                        ("way", Value::Int(r.way as i64)),
                        ("rob", Value::Int(r.rob as i64)),
                        ("lsq", Value::Int(r.lsq as i64)),
                        ("bimodal", Value::Int(r.bimodal as i64)),
                        ("btb", Value::Int(r.btb as i64)),
                        ("int_units", pair(r.int_units)),
                        ("fp_units", pair(r.fp_units)),
                        ("media_units", pair(r.media_units)),
                        ("mem_ports", Value::Int(r.mem_ports as i64)),
                        ("int_regs", pair(r.int_regs)),
                    ])
                })
                .collect(),
        ),
        StaticRows::Table2(rows) => Value::Array(
            rows.iter()
                .map(|r| {
                    Value::object(vec![
                        ("isa", Value::Str(r.isa.to_string())),
                        ("media_regs", pair(r.media_regs)),
                        ("acc_regs", pair(r.acc_regs)),
                        ("media_ports", pair(r.media_ports)),
                        ("acc_ports", pair(r.acc_ports)),
                        ("size_kb", Value::Float(r.size_kb)),
                        ("normalized_area", Value::Float(r.normalized_area)),
                    ])
                })
                .collect(),
        ),
        StaticRows::Table3(rows) => Value::Array(
            rows.iter()
                .map(|r| {
                    let c = r.config;
                    Value::object(vec![
                        ("label", Value::Str(r.label.clone())),
                        ("l1_ports", Value::Int(c.l1_ports as i64)),
                        ("l1_banks", Value::Int(c.l1_banks as i64)),
                        ("l1_latency", Value::Int(c.l1_latency as i64)),
                        ("l2_vector_ports", Value::Int(c.l2_vector_ports as i64)),
                        ("l2_vector_width", Value::Int(c.l2_vector_width as i64)),
                        ("l2_banks", Value::Int(c.l2_banks as i64)),
                        ("l2_latency", Value::Int(c.l2_latency as i64)),
                    ])
                })
                .collect(),
        ),
        StaticRows::Inventory(rows) => Value::Array(
            rows.iter()
                .map(|r| {
                    Value::object(vec![
                        ("isa", Value::Str(r.isa.label().into())),
                        ("modelled", Value::Int(r.modelled as i64)),
                        ("paper", r.paper.map(|p| Value::Int(p as i64)).unwrap_or(Value::Null)),
                    ])
                })
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::figure5_spec;
    use mom_kernels::KernelKind;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = parallel_map(&items, 4, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        let serial = parallel_map(&items, 1, |&x| x * 2);
        assert_eq!(doubled, serial);
    }

    #[test]
    fn static_experiments_run_and_serialize() {
        for name in ["table1", "table2", "table3", "isa_inventory"] {
            let spec = ExperimentSpec::builtin(name, 1, false).unwrap();
            let result = run_with(&spec, 1);
            let json = result.results_json();
            assert_eq!(json.get("kind").and_then(Value::as_str), Some("static"));
            let rows = json.get("rows").and_then(Value::as_array).expect("rows array");
            assert!(!rows.is_empty(), "{name} produced no rows");
            // The full document reparses.
            let doc = result.document_json().to_pretty();
            Value::parse(&doc).expect("document parses");
        }
    }

    #[test]
    fn figure5_grid_baselines_are_unity() {
        let spec = figure5_spec(&[KernelKind::Compensation], 1, 1, false);
        let result = run_with(&spec, 2);
        let cells = result.cells().expect("grid cells");
        assert_eq!(cells.len(), 16);
        let baseline = cells
            .iter()
            .find(|c| c.isa == IsaKind::Alpha && c.way == 1)
            .expect("baseline cell present");
        assert!((baseline.speedup.unwrap() - 1.0).abs() < 1e-12);
        let mom1 = cells.iter().find(|c| c.isa == IsaKind::Mom && c.way == 1).unwrap();
        assert!(mom1.speedup.unwrap() > 1.0, "MOM outruns scalar Alpha");
        assert!(cells.iter().all(|c| c.cycles > 0 && c.instructions > 0));
    }

    #[test]
    fn mem_labels_distinguish_perfect_latencies() {
        assert_eq!(mem_label(MemModelKind::Perfect { latency: 1 }), "perfect-1");
        assert_eq!(mem_label(MemModelKind::Perfect { latency: 50 }), "perfect-50");
        assert_eq!(mem_label(MemModelKind::VectorCache), "vector-cache");
    }
}
