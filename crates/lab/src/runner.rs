//! The parallel experiment runner.
//!
//! Grid experiments run in one of four execution modes ([`ExecMode`]):
//!
//! * [`ExecMode::Fanout`] — **the default**: the grid's cells are regrouped
//!   into `(workload, ISA)` groups; each group runs **one** functional
//!   interpretation of its workload (kernels verified against the golden
//!   reference) whose graduated instructions fan out to the streaming
//!   timing simulators of every member machine configuration. The
//!   interpreter's work is amortized across the whole group — Figure 5's
//!   128 cells cost 32 functional passes — and no trace is ever
//!   materialized. With 2+ workers the fan-out is **pipelined**: the
//!   interpreter publishes `DynInst`
//!   batches into bounded per-member channels and each member simulates on
//!   its own worker, with backpressure keeping peak memory per group at
//!   `members x O(ROB + batch x capacity)`. One worker falls back to
//!   driving a serial `Broadcast` on the interpreter's thread.
//! * [`ExecMode::Streamed`] — the fused per-cell pipeline of the streaming
//!   era: every cell re-interprets its workload and graduates instructions
//!   straight into its own simulator, O(ROB) per cell.
//! * [`ExecMode::Materialized`] — the classic two-stage path: build every
//!   distinct `(workload, ISA)` trace once, then replay it per cell.
//! * [`ExecMode::Sampled`] — SMARTS-style statistical sampling: each cell
//!   alternates detailed warm-up and measurement windows with functional
//!   fast-forwarding, so wall-clock scales with the number of samples
//!   instead of the workload length. Results are **estimates** (reported
//!   with per-cell confidence intervals in a `sampling` results section) —
//!   except at sampling rate 1 (`period == 0`), which routes through the
//!   streamed code path and is byte-identical to the exact modes. Sampled
//!   kernel cells can persist [`Checkpoint`]s between periods (see
//!   [`CheckpointConfig`]) and resume from them bit-exactly.
//!
//! The three exact modes are **byte-identical** in their results — the
//! determinism guarantee below covers the execution mode as well as the
//! worker count — and the chosen mode is recorded only in the JSON `meta`
//! section, along with the functional-sharing accounting
//! (`meta.shared_passes`). Sampled runs (period > 0) are equally
//! deterministic for fixed sampling parameters, but their cell results are
//! statistical estimates, not the exact cycle counts.
//!
//! Machines are built from the declarative [`MachineDescriptor`] resolved by
//! each grid cell and **reused across work units**: every worker keeps a
//! pool of instantiated machines keyed by descriptor and `reset()`s them
//! between cells instead of reallocating predictor tables, ring buffers and
//! cache arrays (a reset machine is bit-identical to a fresh one; the
//! `mom-cpu`/`mom-mem` test suites pin that property).
//!
//! Work is distributed by a shared atomic cursor (idle workers steal the next
//! unclaimed index), and every result is written back to the slot of its cell
//! index. Since each cell's simulation is a pure function of the spec, the
//! result vector — and therefore the JSON document — is **bit-identical**
//! regardless of worker count or scheduling. [`determinism`] states the
//! guarantee; `tests/determinism.rs` enforces it.
//!
//! [`determinism`]: self#determinism
//!
//! # Determinism
//!
//! For any spec `s`, worker counts `a, b >= 1` and **exact** execution modes
//! `m, n` (everything except `Sampled` with `period > 0`):
//! `run_with_mode(&s, a, m).results_json() ==
//! run_with_mode(&s, b, n).results_json()` — byte-for-byte. Only the `meta`
//! section of the full document (wall-clock, worker count, mode, sharing
//! accounting) may differ between runs. A sampled run is byte-identical to
//! another sampled run with the same parameters at any worker count, and at
//! `period == 0` byte-identical to the exact modes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use mom_apps::{stream_app, stream_app_multi, stream_app_pipelined, AppKind, AppParams};
use mom_core::{snapshot, ExecCursor, Machine};
use mom_cpu::{
    AttributionProbe, Checkpoint, IntervalStats, MachineDescriptor, ProbeReport, SimMachine,
    SimResult, SimStream, StallBreakdown,
};
use mom_isa::codec::{CodecError, Decoder, Encoder};
use mom_isa::pipe::{batch_channel, BatchReceiver, BatchSink};
use mom_isa::trace::{Broadcast, DynInst, IsaKind, Trace, TraceSink};
use mom_kernels::{build_kernel, BuiltKernel, KernelKind, KernelParams};
use mom_mem::cache::CacheStats;
use mom_mem::{MemModelKind, MemSystemStats};

use crate::cache::{engine_fingerprint, CacheMeta, CellCache, CellKey, CellRecord, SamplingKnobs};
use crate::json::Value;
use crate::spec::{BaselinePolicy, Cell, ExperimentKind, ExperimentSpec, GridSpec, Workload};
use crate::tables::{static_rows, StaticRows};

/// How a grid experiment executes its cells. The three exact modes are
/// byte-identical in their results; the mode only decides how the functional
/// interpreter's work is scheduled and shared. [`ExecMode::Sampled`] with a
/// nonzero period trades exactness for wall-clock: its cells are statistical
/// estimates with confidence intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Build every distinct `(workload, ISA)` trace once, replay it per cell.
    Materialized,
    /// Fused per-cell pipeline: each cell re-interprets its workload straight
    /// into its simulator (O(ROB) per cell, one functional pass per cell).
    Streamed,
    /// Shared-functional-pass fan-out (the default): one interpretation per
    /// `(workload, ISA)` group broadcast to all member simulators.
    ///
    /// Note the parallel work unit coarsens from cells to groups: a grid
    /// whose group count is below the worker count leaves workers idle
    /// (the full `sweep` is 4 groups), trading wall-clock parallelism for
    /// the amortized functional work. On hosts with many cores and
    /// simulation-bound grids, `Streamed`/`Materialized` keep per-cell
    /// parallelism at the cost of per-cell interpretation.
    Fanout,
    /// SMARTS-style sampled simulation: every sampling period of
    /// `period` dynamic instructions opens with `warmup_insts` of detailed
    /// but unmeasured simulation (warming the predictor, caches and ROB),
    /// followed by a measured unit of `unit_insts`, and the remainder of the
    /// period is functionally fast-forwarded (architectural state advances;
    /// the timing simulator sees nothing). Per-cell IPC is estimated as the
    /// mean of the unit IPCs with a 95% confidence interval; the cycle count
    /// in the results is `total_insts / ipc_mean`.
    ///
    /// `period == 0` is the **rate-1 sentinel**: every instruction is
    /// simulated in detail and the run routes through the exact streamed
    /// code path, making the results byte-identical to [`ExecMode::Streamed`]
    /// (the correctness gate of the sampling machinery). Otherwise `period`
    /// must be at least `warmup_insts + unit_insts` and `unit_insts` at
    /// least 1.
    Sampled {
        /// Detailed, measured instructions per sampling unit.
        unit_insts: u64,
        /// Detailed, unmeasured warm-up instructions preceding each unit.
        warmup_insts: u64,
        /// Sampling period in dynamic instructions (0 = measure everything).
        period: u64,
    },
}

/// Default measured-unit length of `--sampled` (dynamic instructions).
pub const DEFAULT_SAMPLE_UNIT: u64 = 1_000;
/// Default detailed warm-up preceding each measured unit.
pub const DEFAULT_SAMPLE_WARMUP: u64 = 2_000;
/// Default sampling period: one `warmup + unit` window every 100k
/// instructions, i.e. 3% of the workload simulated in detail.
pub const DEFAULT_SAMPLE_PERIOD: u64 = 100_000;

impl ExecMode {
    /// The `meta.mode` label of the JSON schema.
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::Materialized => "materialized",
            ExecMode::Streamed => "streamed",
            ExecMode::Fanout => "fanout",
            ExecMode::Sampled { .. } => "sampled",
        }
    }

    /// Whether instructions graduate straight into the simulators without a
    /// materialized trace (the `meta.streamed` flag of the JSON schema).
    pub fn is_streamed(self) -> bool {
        !matches!(self, ExecMode::Materialized)
    }

    /// Whether this mode produces statistical estimates instead of exact
    /// cycle counts (`Sampled` with a nonzero period).
    pub fn is_estimated(self) -> bool {
        matches!(self, ExecMode::Sampled { period, .. } if period > 0)
    }
}

/// Results of one simulated grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The workload that ran.
    pub workload: Workload,
    /// Label of the machine configuration (unique within the spec).
    pub config_label: String,
    /// The ISA of the configuration.
    pub isa: IsaKind,
    /// The memory model of the configuration.
    pub mem: MemModelKind,
    /// Issue width.
    pub way: usize,
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed dynamic instructions.
    pub instructions: u64,
    /// Branches executed.
    pub branches: u64,
    /// Branch mispredictions.
    pub mispredictions: u64,
    /// Element-level memory accesses.
    pub mem_accesses: u64,
    /// Speed-up versus the spec's baseline cell (`None` when the baseline
    /// policy is [`BaselinePolicy::None`]).
    pub speedup: Option<f64>,
    /// Per-cause stall attribution of every simulated cycle; the components
    /// sum exactly to `cycles` (the attribution probe pins that invariant)
    /// and, like every other field of `results`, are byte-identical across
    /// execution modes and worker counts.
    pub breakdown: StallBreakdown,
    /// The windowed timeline of the run: IPC and dominant stall cause per
    /// fixed-width commit-cycle window.
    pub intervals: IntervalStats,
    /// Memory-system statistics of the cell's machine (hit rates, MSHR
    /// stalls, DRAM traffic), captured before the machine returns to its
    /// worker pool.
    pub mem_stats: MemSystemStats,
    /// Sampling accounting of the cell when it ran under [`ExecMode::Sampled`]
    /// with a nonzero period (`None` in the exact modes): how much of the
    /// stream was measured, and the IPC estimate with its confidence
    /// interval.
    pub sampling: Option<CellSampling>,
}

/// Per-cell accounting of one [`ExecMode::Sampled`] run: how many measurement
/// units closed, how much of the dynamic instruction stream they covered,
/// and the IPC estimate they produced.
///
/// In this mode the cell's `cycles` is derived as `total_insts / ipc_mean`,
/// its committed-instruction count stays exact (the functional interpreter
/// executes the whole workload either way), and its stall breakdown and
/// interval timeline cover only the detailed windows — not the
/// fast-forwarded remainder.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSampling {
    /// Measurement units that closed with at least one committed instruction.
    pub units_measured: u64,
    /// Committed dynamic instructions inside the measured units.
    pub measured_insts: u64,
    /// Dynamic instructions spent on detailed (unmeasured) warm-up.
    pub warmup_insts: u64,
    /// Total dynamic instructions of the cell's workload.
    pub total_insts: u64,
    /// Mean IPC over the measured units (the estimate behind the cell's
    /// reported `cycles`).
    pub ipc_mean: f64,
    /// Half-width of the 95% confidence interval around `ipc_mean` (zero
    /// when fewer than two units were measured).
    pub ipc_ci95: f64,
}

impl CellResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate in `[0, 1]`; zero when no branches ran.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.branches as f64
        }
    }
}

/// The data produced by one experiment run.
#[derive(Debug, Clone)]
pub enum RunData {
    /// Per-cell simulation results, in [`GridSpec::cells`] order.
    Grid(Vec<CellResult>),
    /// The rows of a config-derived table.
    Static(StaticRows),
}

/// A completed experiment run: the results plus reproducibility metadata.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The spec that ran (owned copy, so reports need no extra context).
    pub spec: ExperimentSpec,
    /// Hash of the spec configuration (see [`ExperimentSpec::config_hash`]).
    pub config_hash: String,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: u64,
    /// How the grid executed (recorded in `meta` only; results are
    /// byte-identical across modes).
    pub mode: ExecMode,
    /// Per-cell wall-clock simulation time in nanoseconds, parallel to the
    /// grid cells (empty for static experiments). Feeds the `insts_per_sec`
    /// throughput figures of the JSON `meta` section; like all wall-clock
    /// data it lives outside the deterministic results. In fan-out mode every
    /// member of a `(workload, ISA)` group carries the group's shared span.
    pub cell_wall_ns: Vec<u64>,
    /// Total wall-clock nanoseconds of the distinct simulation work units
    /// (cells, or groups in fan-out mode). Unlike summing `cell_wall_ns`,
    /// this never counts a shared group span more than once.
    pub sim_wall_ns: u64,
    /// Number of functional interpreter passes the run performed: one per
    /// fan-out group in fan-out mode (per `(kernel, ISA)` for kernels, per
    /// *app* for applications — their scalar phases interpret once across
    /// all ISA lanes), one per distinct `(workload, ISA)` pair in
    /// materialized mode, one per cell in streamed mode. Zero for static
    /// experiments.
    pub functional_passes: usize,
    /// Dynamic instructions the functional interpreter actually executed
    /// (each shared pass counted once). The cells' own `instructions` sum is
    /// what per-cell interpretation would have cost; the ratio of the two is
    /// the `meta.shared_passes.sharing_factor`.
    pub functional_instructions: u64,
    /// Pipelined fan-out accounting (`Some` exactly when the pipelined
    /// scheduler ran: [`ExecMode::Fanout`] with 2+ workers). All wall-clock
    /// derived — `meta`-only, never part of the deterministic results.
    pub pipeline: Option<PipelineStats>,
    /// Scheduler spans recorded by the fan-out runner: one per work item
    /// (serial group, interpreter, consumer shard) with wall-clock extent,
    /// channel wait time and the worker that executed it. Feeds `meta.spans`
    /// and the Chrome trace export of `momlab run --trace-out`. Wall-clock
    /// data, so `meta`-only; empty in streamed/materialized modes and for
    /// static experiments.
    pub spans: Vec<SpanRec>,
    /// Machine-pool reuse accounting: machines reset-and-reused versus built
    /// fresh across all workers (`meta.pool`; wall-clock-free but scheduling
    /// dependent, so `meta`-only).
    pub pool: PoolStats,
    /// Fused µop pairs created by `Program::decode` during this run (the
    /// process-wide [`mom_core::fused_pairs_total`] counter, snapshotted
    /// around the run). Feeds `meta.engine.fused_pairs`; depends on what the
    /// run decoded, not on timing, but lives in `meta` because a warm
    /// machine pool can skip re-decoding.
    pub fused_pairs: u64,
    /// Result-cache accounting when the run had a [`CellCache`]
    /// (`meta.cache`): hits, misses, fills, store size and directory. `None`
    /// when caching was disabled, so pre-cache documents stay byte-identical.
    pub cache: Option<CacheMeta>,
    /// Which grid cells were served from the cache, parallel to the cells
    /// (empty when caching was disabled, and for static experiments). Cached
    /// cells are exempt from throughput accounting — their wall-clock is
    /// document assembly, not simulation.
    pub cached_cells: Vec<bool>,
    /// The results.
    pub data: RunData,
}

/// One recorded span of the fan-out scheduler: a work item's identity,
/// wall-clock extent relative to the grid run's epoch, and — for consumer
/// shards — the time spent blocked on the batch channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// The work item's identity (group label, or the shard's cell labels).
    pub name: String,
    /// Span category: `"serial"`, `"produce"` or `"consume"`.
    pub cat: &'static str,
    /// Index of the worker thread that executed the item.
    pub tid: usize,
    /// Start offset from the grid run's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nanoseconds a consumer shard spent blocked on channel `recv` (zero
    /// for producer and serial items).
    pub wait_ns: u64,
    /// Instructions the functional interpreter executed inside this span
    /// (zero for consumer shards).
    pub insts: u64,
}

/// Machine-pool reuse counters of one run (recorded under `meta.pool`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Machines taken from a pool and `reset()` instead of rebuilt.
    pub hits: u64,
    /// Machines built fresh because no pooled machine matched.
    pub builds: u64,
}

/// Accounting of one pipelined fan-out run, recorded under `meta.pipeline`.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineStats {
    /// Instructions per published batch ([`crate::pipeline_batch_insts`]).
    pub batch_insts: usize,
    /// Per-member channel capacity in batches
    /// ([`crate::pipeline_channel_batches`]).
    pub channel_batches: usize,
    /// Groups that ran as interpreter + consumer-shard pipelines.
    pub pipelined_groups: usize,
    /// Groups that fell back to the serial one-worker Broadcast path
    /// (application groups with more ISA lanes than the worker budget).
    pub serial_groups: usize,
    /// Fraction of consumer-shard wall-clock spent simulating rather than
    /// blocked on the channel (`None` when no group pipelined). Low
    /// occupancy means the interpreter is the bottleneck.
    pub occupancy: Option<f64>,
}

/// Default worker count: the machine's available parallelism, capped at 8
/// (the grids are small; more threads only add scheduling noise) — unless
/// the `MOM_LAB_WORKERS` environment variable overrides the cap (see
/// [`crate::worker_override`]; pipelined fan-out groups want one worker per
/// member simulator plus the interpreter, which can exceed 8). The explicit
/// `--workers` CLI flag bypasses this function entirely.
pub fn default_workers() -> usize {
    if let Some(n) = crate::worker_override() {
        return n;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// Run an experiment with [`default_workers`] in the default
/// ([`ExecMode::Fanout`]) execution mode.
pub fn run(spec: &ExperimentSpec) -> RunResult {
    run_with(spec, default_workers())
}

/// Run an experiment with an explicit worker count (`1` forces a fully
/// serial run; results are identical either way — see the
/// [module docs](self#determinism)) in the default fan-out mode.
pub fn run_with(spec: &ExperimentSpec, workers: usize) -> RunResult {
    run_with_mode(spec, workers, ExecMode::Fanout)
}

/// Run an experiment through the fused per-cell streaming pipeline
/// ([`ExecMode::Streamed`]). Results are **byte-identical** to [`run_with`]
/// — the determinism guarantee extends across execution modes.
pub fn run_streamed(spec: &ExperimentSpec, workers: usize) -> RunResult {
    run_with_mode(spec, workers, ExecMode::Streamed)
}

/// Run an experiment with an explicit worker count and [`ExecMode`].
pub fn run_with_mode(spec: &ExperimentSpec, workers: usize, mode: ExecMode) -> RunResult {
    run_with_mode_progress(spec, workers, mode, false)
}

/// Like [`run_with_mode`], optionally emitting live progress lines on stderr
/// as pipeline work items complete — each names its fan-out group and, for
/// consumer shards, reports the shard's channel occupancy (`momlab run`
/// passes its non-quiet flag here). Progress output never touches stdout or
/// the results.
pub fn run_with_mode_progress(
    spec: &ExperimentSpec,
    workers: usize,
    mode: ExecMode,
    progress: bool,
) -> RunResult {
    run_with_options(spec, workers, mode, progress, None)
}

/// Where a sampled run persists per-cell [`Checkpoint`]s, and whether it
/// should resume from checkpoint files already on disk (`momlab run
/// --checkpoint-dir` / `--resume`). Only kernel cells of
/// [`ExecMode::Sampled`] runs with a nonzero period checkpoint; every other
/// mode ignores this configuration. Files are rewritten atomically at most
/// every `CKPT_INTERVAL_INSTS` (~10M) executed instructions, plus once at
/// cell completion.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory the checkpoint files live in (created if missing).
    pub dir: PathBuf,
    /// Resume cells from existing checkpoint files instead of starting over.
    /// A checkpoint file that does not match the spec, cell or sampling
    /// parameters fails loudly rather than silently corrupting the run.
    pub resume: bool,
}

/// Resolved checkpoint context of one sampled grid run: the user's
/// [`CheckpointConfig`] plus the identity every checkpoint file is written
/// with and validated against on resume.
#[derive(Debug)]
struct CkptContext {
    cfg: CheckpointConfig,
    spec_name: String,
    config_hash: String,
    unit: u64,
    warmup: u64,
    period: u64,
}

/// Like [`run_with_mode_progress`], with optional checkpoint persistence for
/// sampled runs.
///
/// # Panics
///
/// Panics when `mode` carries invalid sampling parameters (`unit_insts == 0`,
/// or a nonzero `period` smaller than `warmup_insts + unit_insts`), when the
/// checkpoint directory cannot be created or written, or when `resume` finds
/// a checkpoint file that does not match this run.
pub fn run_with_options(
    spec: &ExperimentSpec,
    workers: usize,
    mode: ExecMode,
    progress: bool,
    checkpoints: Option<&CheckpointConfig>,
) -> RunResult {
    run_cached(spec, workers, mode, progress, checkpoints, None)
}

/// Resolved cache context of one grid run: the store plus the run-invariant
/// key components (engine fingerprint, spec identity) every cell key is
/// built from.
struct CacheContext<'a> {
    cache: &'a CellCache,
    engine: String,
    spec_name: String,
    fast: bool,
    config_hash: String,
}

impl CacheContext<'_> {
    /// The content address of one cell under this run's mode. The three
    /// exact modes (and the sampled rate-1 sentinel) share one key per cell;
    /// estimated sampled runs key per `(unit, warmup, period)` triple.
    fn key_for(&self, grid: &GridSpec, cell: &Cell, mode: ExecMode) -> CellKey {
        let config = &grid.configs[cell.config];
        CellKey {
            engine: self.engine.clone(),
            experiment: self.spec_name.clone(),
            fast: self.fast,
            config_hash: self.config_hash.clone(),
            cell: cell_key(grid, cell),
            isa: config.isa.label().to_string(),
            mem: mem_label(config.mem),
            rob: config.rob.map(|rob| rob as u64),
            scale: grid.scale as u64,
            seed: grid.seed,
            sampling: match mode {
                ExecMode::Sampled { unit_insts, warmup_insts, period } if period > 0 => {
                    Some(SamplingKnobs { unit: unit_insts, warmup: warmup_insts, period })
                }
                _ => None,
            },
        }
    }
}

/// Cache accounting of one grid run, before it is joined with the store-wide
/// size into the [`CacheMeta`] of the result document.
struct GridCacheOutcome {
    hits: u64,
    misses: u64,
    fills: u64,
    cached: Vec<bool>,
}

/// Like [`run_with_options`], with an optional persistent content-addressed
/// cell result cache: hit cells skip interpretation and simulation entirely
/// and are rebuilt from their stored [`CellRecord`]s; miss cells simulate as
/// usual and fill the cache afterwards. The results document is byte-
/// identical either way (speed-ups are re-derived at assembly, so records
/// stay baseline-policy-agnostic), and `meta.cache` records the hit/miss/
/// fill accounting. This is the full-signature entry point `momlab run`
/// uses.
///
/// # Panics
///
/// Panics for the same reasons as [`run_with_options`], or when a cache
/// record cannot be written.
pub fn run_cached(
    spec: &ExperimentSpec,
    workers: usize,
    mode: ExecMode,
    progress: bool,
    checkpoints: Option<&CheckpointConfig>,
    cache: Option<&CellCache>,
) -> RunResult {
    if let ExecMode::Sampled { unit_insts, warmup_insts, period } = mode {
        assert!(unit_insts >= 1, "sampled mode needs a measurement unit of at least 1 instruction");
        assert!(
            period == 0 || period >= warmup_insts + unit_insts,
            "sampling period {period} is shorter than warmup {warmup_insts} + unit {unit_insts}"
        );
    }
    let ckpt = match (mode, checkpoints) {
        (ExecMode::Sampled { unit_insts, warmup_insts, period }, Some(cfg)) if period > 0 => {
            std::fs::create_dir_all(&cfg.dir).unwrap_or_else(|e| {
                panic!("cannot create checkpoint directory {}: {e}", cfg.dir.display())
            });
            Some(CkptContext {
                cfg: cfg.clone(),
                spec_name: spec.name.clone(),
                config_hash: spec.config_hash(),
                unit: unit_insts,
                warmup: warmup_insts,
                period,
            })
        }
        _ => None,
    };
    let started = Instant::now();
    let fused_before = mom_core::fused_pairs_total();
    let cache_ctx = cache.map(|store| CacheContext {
        cache: store,
        engine: engine_fingerprint(),
        spec_name: spec.name.clone(),
        fast: spec.fast,
        config_hash: spec.config_hash(),
    });
    let (data, timing, outcome) = match &spec.kind {
        ExperimentKind::Static(kind) => {
            (RunData::Static(static_rows(*kind)), GridTiming::default(), None)
        }
        ExperimentKind::Grid(grid) => {
            let (cells, timing, outcome) =
                run_grid(grid, workers.max(1), mode, progress, ckpt.as_ref(), cache_ctx.as_ref());
            (RunData::Grid(cells), timing, outcome)
        }
    };
    let fused_pairs = mom_core::fused_pairs_total().saturating_sub(fused_before);
    // The `meta.cache` section: grid accounting (zeros for a cached static
    // run — tables simulate nothing) plus the store-wide size after fills.
    let (cache_meta, cached_cells) = match (cache, outcome) {
        (Some(store), Some(outcome)) => (
            Some(CacheMeta {
                hits: outcome.hits,
                misses: outcome.misses,
                fills: outcome.fills,
                bytes: store.bytes(),
                dir: store.dir().display().to_string(),
            }),
            outcome.cached,
        ),
        (Some(store), None) => (
            Some(CacheMeta {
                bytes: store.bytes(),
                dir: store.dir().display().to_string(),
                ..CacheMeta::default()
            }),
            Vec::new(),
        ),
        (None, _) => (None, Vec::new()),
    };
    RunResult {
        spec: spec.clone(),
        config_hash: spec.config_hash(),
        workers: workers.max(1),
        wall_ms: started.elapsed().as_millis() as u64,
        mode,
        cell_wall_ns: timing.cell_wall_ns,
        sim_wall_ns: timing.sim_wall_ns,
        functional_passes: timing.functional_passes,
        functional_instructions: timing.functional_instructions,
        pipeline: timing.pipeline,
        spans: timing.spans,
        pool: timing.pool,
        fused_pairs,
        cache: cache_meta,
        cached_cells,
        data,
    }
}

/// Build the dynamic trace of one workload for one ISA. Kernels are verified
/// against the golden reference; a mismatch is a panic, exactly as in the
/// legacy harness.
fn build_trace(workload: Workload, isa: IsaKind, scale: usize, seed: u64) -> Trace {
    let mut trace = Trace::new(isa);
    interpret_into(workload, isa, scale, seed, &mut trace);
    trace
}

/// Run one workload through the functional interpreter, streaming every
/// graduated instruction into `sink` (a collecting trace, one simulator, or
/// a `Broadcast` fan-out to a whole machine group). Kernels are verified
/// against the golden reference; a failure is a panic, exactly as in the
/// legacy harness. Returns the number of instructions interpreted.
fn interpret_into<S: TraceSink + ?Sized>(
    workload: Workload,
    isa: IsaKind,
    scale: usize,
    seed: u64,
    sink: &mut S,
) -> u64 {
    match workload {
        Workload::Kernel(kernel) => {
            let params = KernelParams { seed, scale };
            build_kernel(kernel, isa, &params)
                .stream_verified(sink)
                .unwrap_or_else(|e| panic!("{kernel} ({isa}) failed verification: {e}"))
                as u64
        }
        Workload::App(app) => {
            let params = AppParams { seed, scale };
            let reports = stream_app(app, isa, &params, sink)
                .unwrap_or_else(|e| panic!("{app} ({isa}) failed to build: {e}"));
            reports.iter().map(|p| p.instructions as u64).sum()
        }
    }
}

/// Shared hit/build counters behind every [`MachinePool`] of one grid run
/// (atomics, so worker-local pools report into one place; feeds
/// [`PoolStats`]).
#[derive(Debug, Default)]
struct PoolCounters {
    hits: AtomicUsize,
    builds: AtomicUsize,
}

impl PoolCounters {
    fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed) as u64,
            builds: self.builds.load(Ordering::Relaxed) as u64,
        }
    }
}

/// A worker-local pool of instantiated machines, keyed by descriptor.
/// Machines are `reset()` on reuse instead of being rebuilt, so predictor
/// tables, ring buffers and cache arrays are allocated once per
/// (worker, descriptor) instead of once per cell.
#[derive(Debug)]
struct MachinePool<'a> {
    idle: Vec<SimMachine>,
    counters: &'a PoolCounters,
}

impl<'a> MachinePool<'a> {
    fn new(counters: &'a PoolCounters) -> Self {
        Self { idle: Vec::new(), counters }
    }

    fn take(&mut self, descriptor: &MachineDescriptor) -> SimMachine {
        match self.idle.iter().position(|m| m.descriptor() == descriptor) {
            Some(i) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                let mut machine = self.idle.swap_remove(i);
                machine.reset();
                machine
            }
            None => {
                self.counters.builds.fetch_add(1, Ordering::Relaxed);
                SimMachine::new(descriptor.clone())
            }
        }
    }

    fn put(&mut self, machines: impl IntoIterator<Item = SimMachine>) {
        self.idle.extend(machines);
    }
}

/// Everything one simulated cell hands back to the assembly stage: the
/// timing result, the verified attribution report, and the memory-system
/// statistics captured before its machine returned to the pool.
#[derive(Debug, Clone)]
struct CellSim {
    sim: SimResult,
    probe: ProbeReport,
    mem: MemSystemStats,
    /// Sampling accounting when the cell ran under [`ExecMode::Sampled`] with
    /// a nonzero period; `None` on every exact path.
    sampling: Option<CellSampling>,
}

/// Wall-clock and functional-sharing accounting of one grid run (all of it
/// `meta`-only; none of it deterministic).
#[derive(Debug, Default)]
struct GridTiming {
    cell_wall_ns: Vec<u64>,
    sim_wall_ns: u64,
    functional_passes: usize,
    functional_instructions: u64,
    pipeline: Option<PipelineStats>,
    spans: Vec<SpanRec>,
    pool: PoolStats,
}

/// One shared-functional-pass work unit of the fan-out runner: a workload
/// with one or more ISA lanes, each lane listing its member cell indices.
///
/// Kernel workloads form one group per `(kernel, ISA)` (a single lane):
/// every member consumes the identical instruction stream, so one
/// interpretation feeds them all through a `Broadcast`. Application
/// workloads form one group per app spanning **all** of its ISAs: the
/// kernel phases are interpreted per lane, but the scalar phases — identical
/// across ISAs and the bulk of the Alpha traces — are interpreted once and
/// fanned out to every lane (see [`stream_app_multi`]).
#[derive(Debug)]
pub(crate) struct FanGroup {
    workload: Workload,
    lanes: Vec<(IsaKind, Vec<usize>)>,
}

/// The cells of a grid regrouped into fan-out groups, in first-appearance
/// order. `report::describe` derives its shared-pass count from the same
/// function, so the printed grouping can never drift from what runs.
pub(crate) fn fanout_groups(grid: &GridSpec, cells: &[Cell]) -> Vec<FanGroup> {
    let mut groups: Vec<FanGroup> = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let isa = grid.configs[cell.config].isa;
        let cross_isa = matches!(cell.workload, Workload::App(_));
        let existing = groups.iter_mut().find(|g| {
            g.workload == cell.workload && (cross_isa || g.lanes[0].0 == isa)
        });
        let group = match existing {
            Some(g) => g,
            None => {
                groups.push(FanGroup { workload: cell.workload, lanes: Vec::new() });
                groups.last_mut().expect("just pushed")
            }
        };
        match group.lanes.iter_mut().find(|(lane_isa, _)| *lane_isa == isa) {
            Some((_, members)) => members.push(i),
            None => group.lanes.push((isa, vec![i])),
        }
    }
    groups
}

/// The `(workload, isa, config)` identity of one grid cell, used to label
/// work items so a panicking cell names itself in the panic message.
fn cell_label(grid: &GridSpec, cell: &Cell) -> String {
    let config = &grid.configs[cell.config];
    format!("{} / {} / {}-way ({})", cell.workload.label(), config.label, cell.way, config.isa.label())
}

/// The identity of one fan-out group: workload plus its ISA lanes.
fn group_label(group: &FanGroup) -> String {
    let isas: Vec<&str> = group.lanes.iter().map(|(isa, _)| isa.label()).collect();
    format!("{} [{}]", group.workload.label(), isas.join("+"))
}

/// The machine descriptor of one grid cell.
fn descriptor_for(grid: &GridSpec, cells: &[Cell], ci: usize) -> MachineDescriptor {
    grid.configs[cells[ci].config].descriptor(cells[ci].way)
}

/// Acquire (from `pool`) one machine per member of every lane of `group`.
fn take_lane_machines(
    grid: &GridSpec,
    cells: &[Cell],
    group: &FanGroup,
    pool: &mut MachinePool<'_>,
) -> Vec<Vec<SimMachine>> {
    group
        .lanes
        .iter()
        .map(|(_, members)| {
            members.iter().map(|&ci| pool.take(&descriptor_for(grid, cells, ci))).collect()
        })
        .collect()
}

/// Finish one probed stream into the `(SimResult, ProbeReport)` pair the
/// assembly stage wants (checking the sum-to-total invariant on the way).
fn finish_cell(stream: SimStream<'_, AttributionProbe>) -> (SimResult, ProbeReport) {
    let (sim, probe) = stream.finish_probed();
    (sim, probe.into_report())
}

/// Pair one lane's finished `(SimResult, ProbeReport)`s with the memory
/// statistics of their machines (readable again now that the streams'
/// borrows have ended, and *before* the machines return to a pool whose
/// `reset()` would clear them).
fn attach_mem_stats(
    finished: Vec<(SimResult, ProbeReport)>,
    machines: &[SimMachine],
) -> Vec<CellSim> {
    finished
        .into_iter()
        .zip(machines.iter())
        .map(|((sim, probe), machine)| CellSim {
            sim,
            probe,
            mem: machine.mem_stats(),
            sampling: None,
        })
        .collect()
}

/// Run one fan-out group serially on the calling thread: a single
/// interpretation broadcast to every member simulator (the one-worker path,
/// also the fallback work unit of the pipelined scheduler). `lane_machines`
/// is parallel to `group.lanes`; returns the per-lane member results plus
/// the number of instructions the interpreter executed.
fn run_fan_group_serial(
    grid: &GridSpec,
    group: &FanGroup,
    lane_machines: &mut [Vec<SimMachine>],
) -> (Vec<Vec<CellSim>>, u64) {
    match group.workload {
        Workload::Kernel(_) => {
            // A kernel group is a single lane: one interpretation broadcast
            // to every member.
            let machines = &mut lane_machines[0];
            let streams: Vec<SimStream<'_, AttributionProbe>> =
                machines.iter_mut().map(|m| m.sim_probed()).collect();
            let mut fan = Broadcast::new(streams);
            let executed =
                interpret_into(group.workload, group.lanes[0].0, grid.scale, grid.seed, &mut fan);
            let finished: Vec<(SimResult, ProbeReport)> =
                fan.into_inner().into_iter().map(finish_cell).collect();
            (vec![attach_mem_stats(finished, machines)], executed)
        }
        Workload::App(app) => {
            // An app group spans all of its ISAs: kernel phases interpret
            // per lane, scalar phases once for all lanes.
            let mut lanes: Vec<(IsaKind, Broadcast<SimStream<'_, AttributionProbe>>)> = group
                .lanes
                .iter()
                .zip(lane_machines.iter_mut())
                .map(|((isa, _), machines)| {
                    (*isa, Broadcast::new(machines.iter_mut().map(|m| m.sim_probed()).collect()))
                })
                .collect();
            let params = AppParams { seed: grid.seed, scale: grid.scale };
            let (_, interpreted) = stream_app_multi(app, &params, &mut lanes)
                .unwrap_or_else(|e| panic!("{app} failed to build: {e}"));
            let finished: Vec<Vec<(SimResult, ProbeReport)>> = lanes
                .into_iter()
                .map(|(_, fan)| fan.into_inner().into_iter().map(finish_cell).collect())
                .collect();
            let sims: Vec<Vec<CellSim>> = finished
                .into_iter()
                .zip(lane_machines.iter())
                .map(|(lane, machines)| attach_mem_stats(lane, machines))
                .collect();
            (sims, interpreted)
        }
    }
}

/// One work item of the pipelined fan-out scheduler. Items live in
/// `Mutex<Option<_>>` slots and are *moved out* when claimed; an item
/// dropped unexecuted (abort path) closes its channel endpoints, which
/// unblocks any peer still waiting on them.
enum PipeItem {
    /// Run a whole group on one worker via the serial Broadcast path.
    Serial { gi: usize, label: String },
    /// Interpret a group once, publishing batches into the member channels.
    Produce { gi: usize, label: String, lanes: Vec<(IsaKind, BatchSink)> },
    /// Drain a shard of one lane's members, simulating each batch as it
    /// arrives. Members are `(cell index, descriptor, receiver)`.
    Consume { gi: usize, label: String, members: Vec<(usize, MachineDescriptor, BatchReceiver)> },
}

impl PipeItem {
    fn label(&self) -> &str {
        match self {
            PipeItem::Serial { label, .. }
            | PipeItem::Produce { label, .. }
            | PipeItem::Consume { label, .. } => label,
        }
    }
}

/// What one executed [`PipeItem`] reports back (all wall-clock data is
/// relative to the scheduler's epoch, so group spans can be reconstructed
/// across threads).
struct PipeOutcome {
    gi: usize,
    /// `(cell index, result)` for every member this item simulated.
    sims: Vec<(usize, CellSim)>,
    /// Instructions the interpreter executed (producer / serial items only).
    executed: u64,
    start_ns: u64,
    end_ns: u64,
    /// Time a consumer shard spent simulating rather than blocked on `recv`
    /// (zero for non-consumer items; feeds `meta.pipeline.occupancy`).
    busy_ns: u64,
    /// Time a consumer shard spent blocked on channel `recv`.
    wait_ns: u64,
    is_consumer: bool,
    /// Span category of the executed item (`"serial"`/`"produce"`/`"consume"`).
    kind: &'static str,
    /// The executed item's label (carried into the span record).
    label: String,
    /// Index of the worker thread that executed the item.
    worker: usize,
}

/// The pipelined fan-out scheduler: overlap each group's interpreter with
/// its member simulators on separate workers (`ExecMode::Fanout`, 2+
/// workers).
///
/// # Thread accounting
///
/// Exactly `workers` scoped threads run; every pipeline role is a work item
/// claimed in order from a shared cursor, so the pipeline never spawns
/// beyond the worker budget. A pipelined group costs `1 + K` items — one
/// interpreter ([`PipeItem::Produce`]) plus `K` consumer shards
/// ([`PipeItem::Consume`]), `K = min(members, workers - 1)` distributed
/// across the group's ISA lanes. A group's items are contiguous in claim
/// order and its team never exceeds `workers`, which guarantees progress:
/// the earliest unclaimed item always belongs to a team whose predecessors
/// are fully claimed and therefore terminate, freeing their workers.
///
/// Two structural rules keep the channels deadlock-free:
///
/// * a consumer shard never spans ISA lanes (application kernel phases
///   stream lane-by-lane, so a cross-lane shard would block on a silent
///   lane while its busy lane backs up);
/// * an application group needs one shard per lane at minimum — when
///   `workers < lanes + 1` the whole group falls back to a single
///   [`PipeItem::Serial`] item instead (counted in
///   `meta.pipeline.serial_groups`).
///
/// A shard with several members drains them round-robin, one batch per
/// member per pass — the same order the producer publishes in, so neither
/// side can wait on a batch the other has not already had the opportunity
/// to hand over.
///
/// On a panic the failing worker sets the abort flag and the remaining
/// items are claimed but *dropped unexecuted*: dropping a `Produce` item
/// closes its senders (consumers see end-of-stream), dropping a `Consume`
/// item closes its receivers (the producer's sends error out and it skips
/// the member) — every blocked peer unblocks, and the first failure is
/// re-raised with its work item's identity.
fn run_fanout_pipelined(
    grid: &GridSpec,
    cells: &[Cell],
    groups: &[FanGroup],
    workers: usize,
    counters: &PoolCounters,
    progress: bool,
    timing: &mut GridTiming,
) -> Vec<CellSim> {
    let batch_insts = crate::pipeline_batch_insts();
    let channel_batches = crate::pipeline_channel_batches();

    // Plan: turn every group into a contiguous run of work items.
    let mut plan: Vec<PipeItem> = Vec::new();
    let mut pipelined_groups = 0usize;
    let mut serial_groups = 0usize;
    for (gi, group) in groups.iter().enumerate() {
        let budget = workers - 1;
        if budget < group.lanes.len() {
            serial_groups += 1;
            plan.push(PipeItem::Serial { gi, label: group_label(group) });
            continue;
        }
        pipelined_groups += 1;
        // Consumer budget: at least one shard per lane, never more shards
        // than members, extras distributed round-robin over the lanes.
        let mut shards: Vec<usize> = vec![1; group.lanes.len()];
        let mut remaining = budget - group.lanes.len();
        loop {
            let mut progressed = false;
            for (li, (_, members)) in group.lanes.iter().enumerate() {
                if remaining == 0 {
                    break;
                }
                if shards[li] < members.len() {
                    shards[li] += 1;
                    remaining -= 1;
                    progressed = true;
                }
            }
            if remaining == 0 || !progressed {
                break;
            }
        }
        let mut sink_lanes: Vec<(IsaKind, BatchSink)> = Vec::with_capacity(group.lanes.len());
        let mut consume_items: Vec<PipeItem> = Vec::new();
        for (li, (isa, members)) in group.lanes.iter().enumerate() {
            let mut senders = Vec::with_capacity(members.len());
            let mut receivers = Vec::with_capacity(members.len());
            for &ci in members {
                let (tx, rx) = batch_channel(channel_batches);
                senders.push(tx);
                receivers.push((ci, descriptor_for(grid, cells, ci), rx));
            }
            sink_lanes.push((*isa, BatchSink::new(senders, batch_insts)));
            // Split this lane's members contiguously across its shards.
            let (per, extra) = (members.len() / shards[li], members.len() % shards[li]);
            let mut iter = receivers.into_iter();
            for s in 0..shards[li] {
                let shard: Vec<_> = iter.by_ref().take(per + usize::from(s < extra)).collect();
                let label = shard
                    .iter()
                    .map(|&(ci, _, _)| cell_label(grid, &cells[ci]))
                    .collect::<Vec<_>>()
                    .join("; ");
                consume_items.push(PipeItem::Consume { gi, label, members: shard });
            }
        }
        plan.push(PipeItem::Produce {
            gi,
            label: format!("interpret {}", group_label(group)),
            lanes: sink_lanes,
        });
        plan.append(&mut consume_items);
    }

    // Execute: `workers` threads claim items in order off the cursor.
    let epoch = Instant::now();
    let slots: Vec<Mutex<Option<PipeItem>>> =
        plan.into_iter().map(|item| Mutex::new(Some(item))).collect();
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let failure: Mutex<Option<(String, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
    let pool: Mutex<MachinePool<'_>> = Mutex::new(MachinePool::new(counters));
    let outcomes: Vec<PipeOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(slots.len()))
            .map(|worker| {
                let (slots, cursor, abort, failure, pool) =
                    (&slots, &cursor, &abort, &failure, &pool);
                scope.spawn(move || {
                    let mut produced: Vec<PipeOutcome> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= slots.len() {
                            break;
                        }
                        let item = lock_clean(&slots[i]).take();
                        let Some(item) = item else { continue };
                        if abort.load(Ordering::Relaxed) {
                            // Claim-and-drop: dropping the item closes its
                            // channel endpoints, unblocking peers mid-run.
                            drop(item);
                            continue;
                        }
                        let label = item.label().to_string();
                        match catch_unwind(AssertUnwindSafe(|| {
                            exec_pipe_item(item, grid, cells, groups, pool, &epoch, worker)
                        })) {
                            Ok(outcome) => {
                                if progress {
                                    report_progress(groups, &outcome);
                                }
                                produced.push(outcome);
                            }
                            Err(payload) => {
                                abort.store(true, Ordering::Relaxed);
                                let mut first = lock_clean(failure);
                                if first.is_none() {
                                    *first = Some((label, payload));
                                }
                                // Keep claiming so the remaining items are
                                // dropped and no peer blocks forever.
                            }
                        }
                    }
                    produced
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("pipeline workers catch their own panics"))
            .collect()
    });
    if let Some((label, payload)) = failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
        raise_labeled(&label, payload);
    }

    // Assemble: group spans, per-cell results, occupancy, span records.
    let mut spans: Vec<(u64, u64)> = vec![(u64::MAX, 0); groups.len()];
    let mut sim_slots: Vec<Option<CellSim>> = vec![None; cells.len()];
    let (mut busy_ns, mut consumer_span_ns) = (0u64, 0u64);
    for outcome in outcomes {
        let (start, end) = &mut spans[outcome.gi];
        *start = (*start).min(outcome.start_ns);
        *end = (*end).max(outcome.end_ns);
        timing.functional_instructions += outcome.executed;
        if outcome.is_consumer {
            busy_ns += outcome.busy_ns;
            consumer_span_ns += outcome.end_ns.saturating_sub(outcome.start_ns);
        }
        timing.spans.push(SpanRec {
            name: outcome.label,
            cat: outcome.kind,
            tid: outcome.worker,
            start_ns: outcome.start_ns,
            dur_ns: outcome.end_ns.saturating_sub(outcome.start_ns),
            wait_ns: outcome.wait_ns,
            insts: outcome.executed,
        });
        for (ci, sim) in outcome.sims {
            sim_slots[ci] = Some(sim);
        }
    }
    // Span order would otherwise follow thread-join order; sort by start time
    // so the meta section and trace export read chronologically.
    timing.spans.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then_with(|| a.name.cmp(&b.name)));
    timing.functional_passes += groups.len();
    timing.cell_wall_ns = vec![0; cells.len()];
    for (group, &(start, end)) in groups.iter().zip(&spans) {
        let span = end.saturating_sub(start);
        timing.sim_wall_ns += span;
        for (_, members) in &group.lanes {
            for &ci in members {
                timing.cell_wall_ns[ci] = span;
            }
        }
    }
    timing.pipeline = Some(PipelineStats {
        batch_insts,
        channel_batches,
        pipelined_groups,
        serial_groups,
        occupancy: (consumer_span_ns > 0).then(|| busy_ns as f64 / consumer_span_ns as f64),
    });
    sim_slots.into_iter().map(|s| s.expect("every cell belongs to one group")).collect()
}

/// One live stderr progress line per completed pipeline work item: the
/// group's identity plus — for consumer shards — the shard's occupancy
/// (share of its span spent simulating rather than blocked on `recv`).
fn report_progress(groups: &[FanGroup], outcome: &PipeOutcome) {
    let group = group_label(&groups[outcome.gi]);
    let ms = outcome.end_ns.saturating_sub(outcome.start_ns) / 1_000_000;
    if outcome.is_consumer {
        let span = outcome.end_ns.saturating_sub(outcome.start_ns);
        let occupancy = if span == 0 { 1.0 } else { outcome.busy_ns as f64 / span as f64 };
        eprintln!(
            "  {group}: consumer shard done, {} cell(s), occupancy {:.0}% ({ms} ms)",
            outcome.sims.len(),
            occupancy * 100.0
        );
    } else {
        eprintln!("  {group}: {} done ({ms} ms)", outcome.kind);
    }
}

/// Execute one claimed [`PipeItem`] (on the worker's thread).
fn exec_pipe_item(
    item: PipeItem,
    grid: &GridSpec,
    cells: &[Cell],
    groups: &[FanGroup],
    pool: &Mutex<MachinePool<'_>>,
    epoch: &Instant,
    worker: usize,
) -> PipeOutcome {
    let now_ns = || epoch.elapsed().as_nanos() as u64;
    match item {
        PipeItem::Serial { gi, label } => {
            let group = &groups[gi];
            let start_ns = now_ns();
            let mut lane_machines: Vec<Vec<SimMachine>> =
                take_lane_machines(grid, cells, group, &mut lock_clean(pool));
            let (lane_sims, executed) = run_fan_group_serial(grid, group, &mut lane_machines);
            lock_clean(pool).put(lane_machines.into_iter().flatten());
            let sims = group
                .lanes
                .iter()
                .zip(lane_sims)
                .flat_map(|((_, members), sims)| members.iter().copied().zip(sims))
                .collect();
            PipeOutcome {
                gi,
                sims,
                executed,
                start_ns,
                end_ns: now_ns(),
                busy_ns: 0,
                wait_ns: 0,
                is_consumer: false,
                kind: "serial",
                label,
                worker,
            }
        }
        PipeItem::Produce { gi, lanes, label } => {
            let group = &groups[gi];
            let start_ns = now_ns();
            let executed = match group.workload {
                Workload::Kernel(_) => {
                    let (isa, mut sink) =
                        lanes.into_iter().next().expect("kernel group has one lane");
                    let executed =
                        interpret_into(group.workload, isa, grid.scale, grid.seed, &mut sink);
                    sink.finish();
                    executed
                }
                Workload::App(app) => {
                    let params = AppParams { seed: grid.seed, scale: grid.scale };
                    let (_, interpreted) = stream_app_pipelined(app, &params, lanes)
                        .unwrap_or_else(|e| panic!("{app} failed to build: {e}"));
                    interpreted
                }
            };
            PipeOutcome {
                gi,
                sims: Vec::new(),
                executed,
                start_ns,
                end_ns: now_ns(),
                busy_ns: 0,
                wait_ns: 0,
                is_consumer: false,
                kind: "produce",
                label,
                worker,
            }
        }
        PipeItem::Consume { gi, members, label } => {
            let start_ns = now_ns();
            let mut machines: Vec<SimMachine> = {
                let mut pool = lock_clean(pool);
                members.iter().map(|(_, descriptor, _)| pool.take(descriptor)).collect()
            };
            let mut wait_ns = 0u64;
            let finished: Vec<(SimResult, ProbeReport)> = {
                let mut streams: Vec<Option<SimStream<'_, AttributionProbe>>> =
                    machines.iter_mut().map(|m| Some(m.sim_probed())).collect();
                let mut done: Vec<Option<(SimResult, ProbeReport)>> = vec![None; members.len()];
                let mut open = streams.len();
                // Round-robin: one batch per open member per pass — the same
                // member order the producer publishes in.
                while open > 0 {
                    for (k, slot) in streams.iter_mut().enumerate() {
                        let Some(stream) = slot else { continue };
                        let waited = Instant::now();
                        let next = members[k].2.recv();
                        wait_ns += waited.elapsed().as_nanos() as u64;
                        match next {
                            Some(batch) => {
                                for inst in batch.iter() {
                                    stream.feed(inst);
                                }
                            }
                            None => {
                                let (sim, probe) =
                                    slot.take().expect("stream still open").finish_probed();
                                done[k] = Some((sim, probe.into_report()));
                                open -= 1;
                            }
                        }
                    }
                }
                done.into_iter().map(|r| r.expect("every member finished")).collect()
            };
            let results = attach_mem_stats(finished, &machines);
            lock_clean(pool).put(machines);
            let end_ns = now_ns();
            PipeOutcome {
                gi,
                sims: members.iter().map(|&(ci, ..)| ci).zip(results).collect(),
                executed: 0,
                start_ns,
                end_ns,
                busy_ns: end_ns.saturating_sub(start_ns).saturating_sub(wait_ns),
                wait_ns,
                is_consumer: true,
                kind: "consume",
                label,
                worker,
            }
        }
    }
}

/// Lock a mutex, tolerating poisoning: a worker that panicked inside a
/// critical section already recorded its failure through the abort path, so
/// the data (machine pool, failure slot) is still safe to use.
fn lock_clean<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Re-raise a caught worker panic, prefixing the failing work item's
/// identity so the report names the cell (or group) instead of losing it.
fn raise_labeled(label: &str, payload: Box<dyn std::any::Any + Send>) -> ! {
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("<non-string panic>");
    panic!("experiment work item `{label}` panicked: {msg}");
}

/// The three knobs of one sampled run, bundled for the per-cell helpers.
#[derive(Debug, Clone, Copy)]
struct SamplingParams {
    unit: u64,
    warmup: u64,
    period: u64,
}

/// The counter deltas of one closed measurement unit: `after - before` over
/// the cumulative [`SimResult`] snapshots taken around the unit's detailed
/// window. Saturating, because a snapshot taken mid-stream lags the fed
/// instructions by the in-flight ROB contents.
#[derive(Debug, Clone, Copy)]
struct UnitDelta {
    committed: u64,
    cycles: u64,
    branches: u64,
    mispredictions: u64,
    mem_retries: u64,
    mem_accesses: u64,
}

impl UnitDelta {
    fn between(before: &SimResult, after: &SimResult) -> Self {
        Self {
            committed: after.committed.saturating_sub(before.committed),
            cycles: after.cycles.saturating_sub(before.cycles),
            branches: after.branches.saturating_sub(before.branches),
            mispredictions: after.mispredictions.saturating_sub(before.mispredictions),
            mem_retries: after.mem_retries.saturating_sub(before.mem_retries),
            mem_accesses: after.mem_accesses.saturating_sub(before.mem_accesses),
        }
    }
}

/// Scale a partially detailed [`SimResult`] up to `total_insts` committed
/// instructions (the no-units fallback of [`sampled_estimate`]).
fn scale_result(detailed: &SimResult, total_insts: u64) -> SimResult {
    let scale = total_insts as f64 / detailed.committed.max(1) as f64;
    let scaled = |x: u64| (x as f64 * scale).round() as u64;
    SimResult {
        cycles: scaled(detailed.cycles).max(1),
        committed: total_insts,
        branches: scaled(detailed.branches),
        mispredictions: scaled(detailed.mispredictions),
        mem_retries: scaled(detailed.mem_retries),
        mem_accesses: scaled(detailed.mem_accesses),
    }
}

/// Turn the closed measurement units of one sampled cell into the cell's
/// estimated [`SimResult`] and its sampling accounting.
///
/// The committed-instruction count stays **exact** (the functional
/// interpreter executed the whole workload either way); cycles come from the
/// mean unit IPC, and the remaining counters are the unit sums scaled by the
/// sampled fraction. When no unit closed — a workload shorter than one
/// warm-up window, or commit lag swallowing every unit — the detailed
/// aggregate stands in: exact if the whole run was simulated in detail,
/// scaled up otherwise.
fn sampled_estimate(
    detailed: &SimResult,
    units: &[UnitDelta],
    total_insts: u64,
    warmup_total: u64,
) -> (SimResult, CellSampling) {
    let measured: u64 = units.iter().map(|u| u.committed).sum();
    if measured == 0 {
        let sim = if detailed.committed >= total_insts {
            *detailed
        } else {
            scale_result(detailed, total_insts)
        };
        let sampling = CellSampling {
            units_measured: 0,
            measured_insts: 0,
            warmup_insts: warmup_total,
            total_insts,
            ipc_mean: detailed.ipc(),
            ipc_ci95: 0.0,
        };
        return (sim, sampling);
    }
    let ipcs: Vec<f64> =
        units.iter().map(|u| u.committed as f64 / u.cycles.max(1) as f64).collect();
    let n = ipcs.len() as f64;
    let mean = ipcs.iter().sum::<f64>() / n;
    let ci95 = if ipcs.len() > 1 {
        // Sample variance (n - 1 denominator), normal-theory 95% interval on
        // the mean — the SMARTS confidence machinery.
        let var = ipcs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        1.96 * (var / n).sqrt()
    } else {
        0.0
    };
    let scale = total_insts as f64 / measured as f64;
    let scaled = |sum: u64| (sum as f64 * scale).round() as u64;
    let sum_of = |f: fn(&UnitDelta) -> u64| units.iter().map(f).sum::<u64>();
    let sim = SimResult {
        cycles: ((total_insts as f64 / mean.max(f64::MIN_POSITIVE)).round() as u64).max(1),
        committed: total_insts,
        branches: scaled(sum_of(|u| u.branches)),
        mispredictions: scaled(sum_of(|u| u.mispredictions)),
        mem_retries: scaled(sum_of(|u| u.mem_retries)),
        mem_accesses: scaled(sum_of(|u| u.mem_accesses)),
    };
    let sampling = CellSampling {
        units_measured: units.len() as u64,
        measured_insts: measured,
        warmup_insts: warmup_total,
        total_insts,
        ipc_mean: mean,
        ipc_ci95: ci95,
    };
    (sim, sampling)
}

/// Version tag of the lab checkpoint file framing (the envelope binding a
/// [`Checkpoint`] blob to a spec, cell and sampling parameters).
const LAB_CKPT_VERSION: u32 = 1;

/// Minimum executed instructions between two checkpoint writes of one cell.
/// A checkpoint costs O(touched working set) to serialize, so writing one at
/// every sampling period (default 100k instructions, ~1 ms of simulation)
/// would spend more time persisting state than simulating. Cells shorter
/// than the interval still write their final checkpoint: completion always
/// persists, so `--resume` never re-simulates a finished cell.
const CKPT_INTERVAL_INSTS: u64 = 10_000_000;

/// The `(workload, config, way)` identity of one grid cell — the same key
/// `momlab diff` matches cells by, reused to name and validate checkpoint
/// files.
fn cell_key(grid: &GridSpec, cell: &Cell) -> String {
    format!("{} / {} / {}-way", cell.workload.label(), grid.configs[cell.config].label, cell.way)
}

/// The on-disk path of one cell's checkpoint file: spec name plus cell key,
/// with every byte outside `[A-Za-z0-9._-]` replaced by `-`.
fn ckpt_path(ctx: &CkptContext, key: &str) -> PathBuf {
    let sanitize = |s: &str| -> String {
        s.chars()
            .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') { c } else { '-' })
            .collect()
    };
    ctx.cfg.dir.join(format!("{}__{}.ckpt", sanitize(&ctx.spec_name), sanitize(key)))
}

/// Write one cell's checkpoint atomically (tmp + rename), enveloped with the
/// identity a resume validates against.
fn save_cell_checkpoint(ctx: &CkptContext, key: &str, ckpt: &Checkpoint) {
    let mut e = Encoder::new();
    e.u32(LAB_CKPT_VERSION);
    e.blob(ctx.config_hash.as_bytes());
    e.blob(key.as_bytes());
    e.u64(ctx.unit);
    e.u64(ctx.warmup);
    e.u64(ctx.period);
    e.blob(&ckpt.to_bytes());
    let path = ckpt_path(ctx, key);
    let tmp = path.with_extension("ckpt.tmp");
    std::fs::write(&tmp, e.into_bytes())
        .and_then(|()| std::fs::rename(&tmp, &path))
        .unwrap_or_else(|err| panic!("cannot write checkpoint {}: {err}", path.display()));
}

/// Decode the lab checkpoint envelope written by [`save_cell_checkpoint`].
fn decode_lab_ckpt(bytes: &[u8]) -> Result<(String, String, u64, u64, u64, Checkpoint), CodecError> {
    let mut d = Decoder::new(bytes);
    let version = d.u32("lab checkpoint version")?;
    if version != LAB_CKPT_VERSION {
        return Err(CodecError::Version { what: "lab checkpoint", found: version });
    }
    let hash = String::from_utf8_lossy(d.blob("lab checkpoint config hash")?).into_owned();
    let key = String::from_utf8_lossy(d.blob("lab checkpoint cell key")?).into_owned();
    let unit = d.u64("lab checkpoint unit")?;
    let warmup = d.u64("lab checkpoint warmup")?;
    let period = d.u64("lab checkpoint period")?;
    let ckpt = Checkpoint::from_bytes(d.blob("lab checkpoint payload")?)?;
    d.finish("lab checkpoint")?;
    Ok((hash, key, unit, warmup, period, ckpt))
}

/// Load one cell's checkpoint if its file exists. A missing file means
/// "start fresh"; a file that fails to decode, or matches a different spec,
/// cell or sampling parameters, panics with the path — silently restarting
/// (or worse, resuming into the wrong run) would corrupt the results.
fn load_cell_checkpoint(ctx: &CkptContext, key: &str) -> Option<Checkpoint> {
    let path = ckpt_path(ctx, key);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return None,
        Err(err) => panic!("cannot read checkpoint {}: {err}", path.display()),
    };
    let (hash, file_key, unit, warmup, period, ckpt) =
        decode_lab_ckpt(&bytes).unwrap_or_else(|e| {
            panic!(
                "checkpoint {} is not a valid checkpoint file ({e}); \
                 delete the file or rerun without --resume",
                path.display()
            )
        });
    if hash != ctx.config_hash
        || file_key != key
        || (unit, warmup, period) != (ctx.unit, ctx.warmup, ctx.period)
    {
        panic!(
            "checkpoint {} does not match this run (spec configuration, cell or \
             sampling parameters changed); delete the file or rerun without --resume",
            path.display()
        );
    }
    Some(ckpt)
}

/// Assemble the [`Checkpoint`] of one kernel cell at a period boundary:
/// architectural machine + cursor, engine + probe + closed units, warm
/// memory state, and the dynamic instruction index.
fn build_checkpoint(
    arch: &Machine,
    cursor: ExecCursor,
    machine: &SimMachine,
    probe: &AttributionProbe,
    units: &[UnitDelta],
    warmup_done: u64,
    executed: u64,
) -> Checkpoint {
    let mut arch_e = Encoder::new();
    snapshot::encode_machine(&mut arch_e, arch);
    arch_e.u64(cursor.pc() as u64);
    let mut sim_e = Encoder::new();
    machine.save_engine_state(&mut sim_e);
    probe.save_state(&mut sim_e);
    sim_e.u64(warmup_done);
    sim_e.u64(units.len() as u64);
    for u in units {
        sim_e.u64(u.committed);
        sim_e.u64(u.cycles);
        sim_e.u64(u.branches);
        sim_e.u64(u.mispredictions);
        sim_e.u64(u.mem_retries);
        sim_e.u64(u.mem_accesses);
    }
    let mut mem_e = Encoder::new();
    machine.save_mem_state(&mut mem_e);
    Checkpoint {
        arch_state: arch_e.into_bytes(),
        sim_state: sim_e.into_bytes(),
        mem_state: mem_e.into_bytes(),
        inst_index: executed,
    }
}

/// Restore one kernel cell from a [`Checkpoint`]: architectural machine and
/// cursor into `arch`, engine + probe + closed units + warm memory into
/// `machine`. Returns `(cursor, probe, warmup_done, units)`.
fn restore_kernel_cell(
    c: &Checkpoint,
    arch: &mut Machine,
    machine: &mut SimMachine,
) -> Result<(ExecCursor, AttributionProbe, u64, Vec<UnitDelta>), CodecError> {
    let mut d = Decoder::new(&c.arch_state);
    snapshot::restore_machine(&mut d, arch)?;
    let cursor = ExecCursor::at(d.u64("checkpoint cursor")? as usize);
    d.finish("checkpoint architectural state")?;

    let mut d = Decoder::new(&c.sim_state);
    machine.load_engine_state(&mut d)?;
    let probe = AttributionProbe::load_state(&mut d)?;
    let warmup_done = d.u64("checkpoint warmup tally")?;
    let n = d.u64("checkpoint unit count")?;
    let mut units = Vec::new();
    for _ in 0..n {
        units.push(UnitDelta {
            committed: d.u64("unit committed")?,
            cycles: d.u64("unit cycles")?,
            branches: d.u64("unit branches")?,
            mispredictions: d.u64("unit mispredictions")?,
            mem_retries: d.u64("unit mem retries")?,
            mem_accesses: d.u64("unit mem accesses")?,
        });
    }
    d.finish("checkpoint engine state")?;

    let mut d = Decoder::new(&c.mem_state);
    machine.load_mem_state(&mut d)?;
    d.finish("checkpoint memory state")?;
    Ok((cursor, probe, warmup_done, units))
}

/// Run one kernel cell in sampled mode: a detailed warm-up + measured unit at
/// the head of every sampling period, functional fast-forward for the
/// remainder, with optional checkpoint persistence at period boundaries.
///
/// Each detailed window opens a fresh [`SimStream`] on the cell's machine and
/// closes it before fast-forwarding; the engine state, probe and warm memory
/// carry over, so consecutive detailed windows time exactly as they would in
/// one continuous stream (the machine-level resume test in `mom-cpu` pins
/// that equivalence). Placing the detailed window at the *head* of each
/// period — rather than fast-forwarding first — means a workload shorter
/// than one warm-up window is simulated entirely in detail and reports its
/// exact result.
fn run_sampled_kernel_cell(
    kernel: KernelKind,
    isa: IsaKind,
    grid: &GridSpec,
    machine: &mut SimMachine,
    sp: SamplingParams,
    ckpt: Option<(&CkptContext, String)>,
) -> CellSim {
    let params = KernelParams { seed: grid.seed, scale: grid.scale };
    let BuiltKernel { machine: mut arch, program, expected, output_addr, .. } =
        build_kernel(kernel, isa, &params);
    let decoded = program.decode();
    let mut cursor = ExecCursor::start();
    let mut probe: Option<AttributionProbe> = None;
    let mut units: Vec<UnitDelta> = Vec::new();
    let mut executed = 0u64;
    let mut warmup_done = 0u64;
    if let Some((ctx, key)) = &ckpt {
        if ctx.cfg.resume {
            if let Some(c) = load_cell_checkpoint(ctx, key) {
                let (cur, p, w, us) =
                    restore_kernel_cell(&c, &mut arch, machine).unwrap_or_else(|e| {
                        panic!(
                            "checkpoint {} failed to restore: {e}; \
                             delete the file or rerun without --resume",
                            ckpt_path(ctx, key).display()
                        )
                    });
                cursor = cur;
                probe = Some(p);
                warmup_done = w;
                units = us;
                executed = c.inst_index;
            }
        }
    }
    let mut last_saved = executed;
    let (detailed, report) = loop {
        let mut stream = match probe.take() {
            Some(p) => machine.sim_probed_with(p),
            None => machine.sim_probed(),
        };
        let w = decoded.stream_segment(&mut arch, &mut stream, &mut cursor, sp.warmup);
        warmup_done += w;
        let before = stream.snapshot();
        let u = decoded.stream_segment(&mut arch, &mut stream, &mut cursor, sp.unit);
        executed += w + u;
        // Closing the stream drains the ROB, so the delta holds the unit's
        // complete retirement (plus any warm-up stragglers — acceptable: the
        // warm-up exists precisely to make the unit steady-state).
        let (partial, p) = stream.finish_probed();
        let delta = UnitDelta::between(&before, &partial);
        if delta.committed > 0 {
            units.push(delta);
        }
        executed += decoded.fast_forward(&mut arch, &mut cursor, sp.period - sp.warmup - sp.unit);
        let done = cursor.is_done(&decoded);
        if let Some((ctx, key)) = &ckpt {
            if done || executed.saturating_sub(last_saved) >= CKPT_INTERVAL_INSTS {
                let c = build_checkpoint(&arch, cursor, machine, &p, &units, warmup_done, executed);
                save_cell_checkpoint(ctx, key, &c);
                last_saved = executed;
            }
        }
        if done {
            // The SimResult counters live in the engine state, so the last
            // close reports the cumulative detailed totals — including
            // windows replayed from a restored checkpoint.
            break (partial, p.into_report());
        }
        probe = Some(p);
    };
    let actual = arch.mem().read_bytes(output_addr, expected.len());
    if let Some(offset) = actual.iter().zip(expected.iter()).position(|(a, e)| a != e) {
        panic!("{kernel} ({isa}) failed verification: output mismatch at byte offset {offset}");
    }
    let (sim, sampling) = sampled_estimate(&detailed, &units, executed, warmup_done);
    CellSim { sim, probe: report, mem: machine.mem_stats(), sampling: Some(sampling) }
}

/// A sampling adapter between the functional interpreter and a cell's
/// [`SimStream`]: counts every graduated instruction, but forwards only
/// those inside the detailed warm-up + measurement window at the head of
/// each sampling period, snapshotting the stream around each unit.
///
/// This deliberately violates the faithful-sink convention of [`TraceSink`]
/// (every other sink forwards the complete stream in order): skipping the
/// tail of each period *is* the sampling. Application workloads run through
/// this adapter because their interpreters drive the sink callback-style and
/// cannot be windowed externally the way pre-decoded kernels can — the
/// functional interpretation stays complete; only the timing simulator sees
/// a sample. Unlike the kernel path the stream is never closed mid-run, so
/// unit deltas are measured between lagging snapshots (both ends lag by the
/// in-flight ROB, so the window length is preserved).
struct SampledSink<'s, 'm> {
    stream: &'s mut SimStream<'m, AttributionProbe>,
    sp: SamplingParams,
    /// Position inside the current sampling period.
    pos: u64,
    executed: u64,
    warmup_done: u64,
    /// Cumulative counters at the open unit's start, if a unit is open.
    unit_open: Option<SimResult>,
    units: Vec<UnitDelta>,
}

impl SampledSink<'_, '_> {
    fn step(&mut self, inst: &DynInst) {
        let in_warmup = self.pos < self.sp.warmup;
        let in_unit = !in_warmup && self.pos < self.sp.warmup + self.sp.unit;
        if in_unit && self.unit_open.is_none() {
            self.unit_open = Some(self.stream.snapshot());
        }
        if in_warmup || in_unit {
            self.stream.feed(inst);
            if in_warmup {
                self.warmup_done += 1;
            }
        }
        self.pos += 1;
        self.executed += 1;
        if self.pos == self.sp.warmup + self.sp.unit {
            self.close_unit();
        }
        if self.pos == self.sp.period {
            self.pos = 0;
        }
    }

    fn close_unit(&mut self) {
        if let Some(before) = self.unit_open.take() {
            let delta = UnitDelta::between(&before, &self.stream.snapshot());
            if delta.committed > 0 {
                self.units.push(delta);
            }
        }
    }

    /// Close a dangling unit (a workload that ended mid-window) and hand back
    /// the tallies.
    fn into_tallies(mut self) -> (u64, u64, Vec<UnitDelta>) {
        self.close_unit();
        (self.executed, self.warmup_done, self.units)
    }
}

impl TraceSink for SampledSink<'_, '_> {
    fn emit(&mut self, inst: DynInst) {
        self.step(&inst);
    }

    fn emit_ref(&mut self, inst: &DynInst) {
        self.step(inst);
    }

    fn emit_batch(&mut self, batch: &[DynInst]) {
        for inst in batch {
            self.step(inst);
        }
    }
}

/// Run one application cell in sampled mode through a [`SampledSink`]. App
/// cells do not checkpoint: their wall-clock is interpreter-bound either way
/// (the interpretation is complete; only the detailed simulation is
/// sampled), so a checkpoint would save little and the multi-phase app
/// drivers have no externally resumable cursor.
fn run_sampled_app_cell(
    app: AppKind,
    isa: IsaKind,
    grid: &GridSpec,
    machine: &mut SimMachine,
    sp: SamplingParams,
) -> CellSim {
    let params = AppParams { seed: grid.seed, scale: grid.scale };
    let mut stream = machine.sim_probed();
    let mut sink = SampledSink {
        stream: &mut stream,
        sp,
        pos: 0,
        executed: 0,
        warmup_done: 0,
        unit_open: None,
        units: Vec::new(),
    };
    stream_app(app, isa, &params, &mut sink)
        .unwrap_or_else(|e| panic!("{app} ({isa}) failed to build: {e}"));
    let (executed, warmup_done, units) = sink.into_tallies();
    let (detailed, p) = stream.finish_probed();
    let (sim, sampling) = sampled_estimate(&detailed, &units, executed, warmup_done);
    CellSim { sim, probe: p.into_report(), mem: machine.mem_stats(), sampling: Some(sampling) }
}

fn run_grid(
    grid: &GridSpec,
    workers: usize,
    mode: ExecMode,
    progress: bool,
    ckpt: Option<&CkptContext>,
    cache: Option<&CacheContext<'_>>,
) -> (Vec<CellResult>, GridTiming, Option<GridCacheOutcome>) {
    let cells = grid.cells();
    let descriptor_of = |cell: &Cell| grid.configs[cell.config].descriptor(cell.way);

    // Cache lookup stage: resolve every cell's content address and pull its
    // record if one exists. Hit cells never reach the execution arms below —
    // a fully-cached fan-out group forms no group at all, so a warm run
    // performs zero interpretation and zero simulation. Any load failure
    // (missing, truncated, corrupt, wrong version or key) is a clean miss.
    let mut cached_sims: Vec<Option<CellSim>> = vec![None; cells.len()];
    let mut keys: Vec<CellKey> = Vec::new();
    if let Some(cc) = cache {
        for (i, cell) in cells.iter().enumerate() {
            let key = cc.key_for(grid, cell, mode);
            match cc.cache.load(&key) {
                Some(record) => {
                    if progress {
                        eprintln!("  {}: cache hit", key.cell);
                    }
                    cached_sims[i] = Some(CellSim {
                        sim: record.sim,
                        probe: record.probe,
                        mem: record.mem,
                        sampling: record.sampling,
                    });
                }
                None => {
                    if progress {
                        eprintln!("  {}: cache miss", key.cell);
                    }
                }
            }
            keys.push(key);
        }
    }
    // The miss subset the execution arms run over. Without a cache this is
    // every cell; group membership indices below are positions into this
    // vector, remapped to full-grid indices afterwards.
    let active: Vec<Cell> = cells
        .iter()
        .zip(&cached_sims)
        .filter(|(_, hit)| hit.is_none())
        .map(|(&cell, _)| cell)
        .collect();
    let active_idx: Vec<usize> = cached_sims
        .iter()
        .enumerate()
        .filter(|(_, hit)| hit.is_none())
        .map(|(i, _)| i)
        .collect();

    // Each simulation work unit is timed individually so the JSON `meta`
    // section can report simulator throughput (insts_per_sec) per cell. In
    // materialized mode the measured span is the trace replay alone; in
    // streamed mode it is the fused per-cell interpret+simulate pass; in
    // fan-out mode it is the shared group pass (every member of a group
    // carries the same span — see EXPERIMENTS.md).
    let counters = PoolCounters::default();
    let mut timing = GridTiming::default();
    let active_sims: Vec<CellSim> = if active.is_empty() {
        Vec::new()
    } else {
        match mode {
        ExecMode::Fanout => {
            let groups = fanout_groups(grid, &active);
            if workers <= 1 {
                // One worker: the serial Broadcast path — each group's
                // interpreter drives all member simulators on this thread,
                // no channels, no extra threads.
                let epoch = Instant::now();
                let outcomes = parallel_map_with(
                    &groups,
                    1,
                    || MachinePool::new(&counters),
                    group_label,
                    |pool, group| {
                        let start_ns = epoch.elapsed().as_nanos() as u64;
                        let started = Instant::now();
                        let mut lane_machines = take_lane_machines(grid, &active, group, pool);
                        let (lane_sims, executed) =
                            run_fan_group_serial(grid, group, &mut lane_machines);
                        let ns = started.elapsed().as_nanos() as u64;
                        pool.put(lane_machines.into_iter().flatten());
                        (lane_sims, ns, executed, start_ns)
                    },
                );
                let mut slots: Vec<Option<CellSim>> = vec![None; active.len()];
                timing.cell_wall_ns = vec![0; active.len()];
                for (group, (lane_sims, ns, executed, start_ns)) in groups.iter().zip(outcomes) {
                    timing.sim_wall_ns += ns;
                    timing.functional_passes += 1;
                    timing.functional_instructions += executed;
                    timing.spans.push(SpanRec {
                        name: group_label(group),
                        cat: "serial",
                        tid: 0,
                        start_ns,
                        dur_ns: ns,
                        wait_ns: 0,
                        insts: executed,
                    });
                    for ((_, members), sims) in group.lanes.iter().zip(lane_sims) {
                        for (&ci, sim) in members.iter().zip(sims) {
                            slots[ci] = Some(sim);
                            timing.cell_wall_ns[ci] = ns;
                        }
                    }
                }
                slots.into_iter().map(|s| s.expect("every cell belongs to one group")).collect()
            } else {
                run_fanout_pipelined(grid, &active, &groups, workers, &counters, progress, &mut timing)
            }
        }
        // The rate-1 sentinel routes through the *literal* streamed code
        // path: byte-identity with the exact modes is the correctness gate
        // of the sampling machinery, so it must not be a reimplementation.
        ExecMode::Streamed | ExecMode::Sampled { period: 0, .. } => {
            // No stage 1 — every cell runs the fused pipeline, rebuilding its
            // workload on the fly.
            let outcomes = parallel_map_with(
                &active,
                workers,
                || MachinePool::new(&counters),
                |cell| cell_label(grid, cell),
                |pool, cell| {
                    let config = &grid.configs[cell.config];
                    let started = Instant::now();
                    let mut machine = pool.take(&descriptor_of(cell));
                    let (sim, report) = {
                        let mut stream = machine.sim_probed();
                        interpret_into(cell.workload, config.isa, grid.scale, grid.seed, &mut stream);
                        let (sim, probe) = stream.finish_probed();
                        (sim, probe.into_report())
                    };
                    let mem = machine.mem_stats();
                    let ns = started.elapsed().as_nanos() as u64;
                    pool.put([machine]);
                    (CellSim { sim, probe: report, mem, sampling: None }, ns)
                },
            );
            timing.functional_passes = active.len();
            let mut sims = Vec::with_capacity(active.len());
            for (cs, ns) in outcomes {
                timing.cell_wall_ns.push(ns);
                timing.sim_wall_ns += ns;
                timing.functional_instructions += cs.sim.committed;
                sims.push(cs);
            }
            sims
        }
        ExecMode::Materialized => {
            // Stage 1: build every distinct (workload, ISA) trace once, in parallel.
            let mut pairs: Vec<(Workload, IsaKind)> = Vec::new();
            for cell in &active {
                let pair = (cell.workload, grid.configs[cell.config].isa);
                if !pairs.contains(&pair) {
                    pairs.push(pair);
                }
            }
            let traces = parallel_map_with(
                &pairs,
                workers,
                || (),
                |&(workload, isa)| format!("trace {} ({})", workload.label(), isa.label()),
                |(), &(workload, isa)| build_trace(workload, isa, grid.scale, grid.seed),
            );
            timing.functional_passes = pairs.len();
            timing.functional_instructions = traces.iter().map(|t| t.len() as u64).sum();
            let trace_of = |workload: Workload, isa: IsaKind| -> &Trace {
                let idx =
                    pairs.iter().position(|&p| p == (workload, isa)).expect("trace was built");
                &traces[idx]
            };

            // Stage 2: simulate every cell, in parallel.
            let outcomes = parallel_map_with(
                &active,
                workers,
                || MachinePool::new(&counters),
                |cell| cell_label(grid, cell),
                |pool, cell| {
                    let config = &grid.configs[cell.config];
                    let trace = trace_of(cell.workload, config.isa);
                    let started = Instant::now();
                    let mut machine = pool.take(&descriptor_of(cell));
                    let (sim, report) = machine.simulate_trace_probed(trace);
                    let mem = machine.mem_stats();
                    let ns = started.elapsed().as_nanos() as u64;
                    pool.put([machine]);
                    (CellSim { sim, probe: report, mem, sampling: None }, ns)
                },
            );
            let mut sims = Vec::with_capacity(active.len());
            for (cs, ns) in outcomes {
                timing.cell_wall_ns.push(ns);
                timing.sim_wall_ns += ns;
                sims.push(cs);
            }
            sims
        }
        ExecMode::Sampled { unit_insts, warmup_insts, period } => {
            // SMARTS-style sampling (period >= 1; period 0 took the streamed
            // arm above): each cell alternates detailed windows with
            // functional fast-forwarding, one cell per work item.
            let sp = SamplingParams { unit: unit_insts, warmup: warmup_insts, period };
            let outcomes = parallel_map_with(
                &active,
                workers,
                || MachinePool::new(&counters),
                |cell| cell_label(grid, cell),
                |pool, cell| {
                    let config = &grid.configs[cell.config];
                    let started = Instant::now();
                    let mut machine = pool.take(&descriptor_of(cell));
                    let cs = match cell.workload {
                        Workload::Kernel(kernel) => run_sampled_kernel_cell(
                            kernel,
                            config.isa,
                            grid,
                            &mut machine,
                            sp,
                            ckpt.map(|ctx| (ctx, cell_key(grid, cell))),
                        ),
                        Workload::App(app) => {
                            run_sampled_app_cell(app, config.isa, grid, &mut machine, sp)
                        }
                    };
                    let ns = started.elapsed().as_nanos() as u64;
                    pool.put([machine]);
                    (cs, ns)
                },
            );
            timing.functional_passes = active.len();
            let mut sims = Vec::with_capacity(active.len());
            for (cs, ns) in outcomes {
                timing.cell_wall_ns.push(ns);
                timing.sim_wall_ns += ns;
                timing.functional_instructions += cs.sim.committed;
                sims.push(cs);
            }
            sims
        }
        }
    };
    timing.pool = counters.stats();

    // Fill stage: persist every freshly simulated cell, then account for the
    // run. Fills happen before assembly so a panic-free run always leaves
    // the cache consistent with the document it produced.
    let mut fills = 0u64;
    if let Some(cc) = cache {
        for (&i, cs) in active_idx.iter().zip(&active_sims) {
            let record = CellRecord {
                sim: cs.sim,
                probe: cs.probe.clone(),
                mem: cs.mem,
                sampling: cs.sampling.clone(),
            };
            cc.cache.store(&keys[i], &record);
            fills += 1;
        }
    }
    let outcome = cache.map(|_| GridCacheOutcome {
        hits: (cells.len() - active.len()) as u64,
        misses: active.len() as u64,
        fills,
        cached: cached_sims.iter().map(Option::is_some).collect(),
    });

    // Remap the miss-subset wall-clock spans back to full-grid positions;
    // cached cells keep a zero span (their cost is document assembly, and
    // `meta.throughput` marks them `cached` instead of reporting a rate).
    let mut full_wall = vec![0u64; cells.len()];
    for (&i, &ns) in active_idx.iter().zip(&timing.cell_wall_ns) {
        full_wall[i] = ns;
    }
    timing.cell_wall_ns = full_wall;

    // Merge cache hits with fresh simulations, in grid order.
    let mut fresh = active_sims.into_iter();
    let sims: Vec<CellSim> = cached_sims
        .into_iter()
        .map(|hit| match hit {
            Some(sim) => sim,
            None => fresh.next().expect("one fresh sim per miss"),
        })
        .collect();

    // Stage 3 (serial, cheap): derive speed-ups against the baseline cells.
    let index_of = |workload: Workload, config: usize, way: usize| -> Option<usize> {
        cells.iter().position(|c| c.workload == workload && c.config == config && c.way == way)
    };
    let results = cells
        .iter()
        .zip(&sims)
        .map(|(cell, cs)| {
            let baseline = match grid.baseline {
                BaselinePolicy::None => None,
                BaselinePolicy::ConfigAtWidth { config, way } => index_of(cell.workload, config, way),
                BaselinePolicy::ConfigSameWidth { config } => index_of(cell.workload, config, cell.way),
                BaselinePolicy::PairedPrevious => {
                    index_of(cell.workload, cell.config - cell.config % 2, cell.way)
                }
            };
            let config = &grid.configs[cell.config];
            CellResult {
                workload: cell.workload,
                config_label: config.label.clone(),
                isa: config.isa,
                mem: config.mem,
                way: cell.way,
                cycles: cs.sim.cycles,
                instructions: cs.sim.committed,
                branches: cs.sim.branches,
                mispredictions: cs.sim.mispredictions,
                mem_accesses: cs.sim.mem_accesses,
                speedup: baseline.map(|b| cs.sim.speedup_over(&sims[b].sim)),
                breakdown: cs.probe.breakdown,
                intervals: cs.probe.intervals.clone(),
                mem_stats: cs.mem,
                sampling: cs.sampling.clone(),
            }
        })
        .collect();
    (results, timing, outcome)
}

/// Map `f` over `items` on `workers` scoped threads with a shared atomic
/// work-stealing cursor and worker-local scratch state: every worker thread
/// calls `state` once and threads the value through all of its `f` calls;
/// `label` names an item for the panic message should `f` panic on it. The
/// runner uses the state for the [`MachinePool`] — machines are reused
/// within a worker, and since a reset machine is bit-identical to a fresh
/// one, the state never influences results. Results land in the slot of
/// their input index, so the output order — and any serialization of it —
/// is independent of worker count and scheduling.
///
/// A panic in `f` fails fast: the panicking worker parks the shared cursor
/// past `items.len()` so idle workers stop claiming new items promptly
/// (in-flight items still finish; their results are discarded), and the
/// first failure is re-raised on the caller's thread with the failing item's
/// `label` — a kernel verification failure names its cell instead of
/// surfacing as a bare join panic after the surviving workers drained the
/// whole grid.
fn parallel_map_with<T: Sync, R: Send, S>(
    items: &[T],
    workers: usize,
    state: impl Fn() -> S + Sync,
    label: impl Fn(&T) -> String + Sync,
    f: impl Fn(&mut S, &T) -> R + Sync,
) -> Vec<R> {
    if workers <= 1 || items.len() <= 1 {
        let mut local = state();
        return items
            .iter()
            .map(|item| {
                catch_unwind(AssertUnwindSafe(|| f(&mut local, item)))
                    .unwrap_or_else(|payload| raise_labeled(&label(item), payload))
            })
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let failure: Mutex<Option<(String, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(items.len()))
            .map(|_| {
                scope.spawn(|| {
                    let mut local = state();
                    let mut produced = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(&mut local, &items[i]))) {
                            Ok(r) => produced.push((i, r)),
                            Err(payload) => {
                                cursor.store(items.len(), Ordering::Relaxed);
                                let mut first = lock_clean(&failure);
                                if first.is_none() {
                                    *first = Some((label(&items[i]), payload));
                                }
                                break;
                            }
                        }
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("map workers catch their own panics") {
                slots[i] = Some(r);
            }
        }
    });
    if let Some((who, payload)) = failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
        raise_labeled(&who, payload);
    }
    slots.into_iter().map(|slot| slot.expect("every index was claimed")).collect()
}

impl RunResult {
    /// The deterministic results document: everything except the `meta`
    /// section. Two runs of the same spec serialize to identical bytes
    /// regardless of worker count. A sampled run (period > 0) additionally
    /// carries a `sampling` section — its parameters and per-cell IPC
    /// estimates with confidence intervals — and is byte-identical to other
    /// sampled runs with the same parameters.
    pub fn results_json(&self) -> Value {
        let mut members = vec![
            ("schema", Value::Str("momlab/v1".into())),
            ("experiment", Value::Str(self.spec.name.clone())),
            ("title", Value::Str(self.spec.title.clone())),
            ("config_hash", Value::Str(self.config_hash.clone())),
            ("fast", Value::Bool(self.spec.fast)),
        ];
        match (&self.data, self.spec.grid()) {
            (RunData::Grid(cells), Some(grid)) => {
                members.push(("kind", Value::Str("grid".into())));
                members.push(("scale", Value::Int(grid.scale as i64)));
                members.push(("seed", Value::Int(grid.seed as i64)));
                members.push((
                    "widths",
                    Value::Array(grid.widths.iter().map(|&w| Value::Int(w as i64)).collect()),
                ));
                members.push((
                    "configs",
                    Value::Array(
                        grid.configs
                            .iter()
                            .map(|c| {
                                let mut fields = vec![
                                    ("label", Value::Str(c.label.clone())),
                                    ("isa", Value::Str(c.isa.label().into())),
                                    ("mem", Value::Str(mem_label(c.mem))),
                                ];
                                // Overrides appear only when present, so
                                // pre-override documents stay byte-identical.
                                if let Some(rob) = c.rob {
                                    fields.push(("rob", Value::Int(rob as i64)));
                                }
                                Value::object(fields)
                            })
                            .collect(),
                    ),
                ));
                members.push((
                    "cells",
                    Value::Array(cells.iter().map(cell_json).collect()),
                ));
                if let ExecMode::Sampled { unit_insts, warmup_insts, period } = self.mode {
                    if period > 0 {
                        members.push((
                            "sampling",
                            Value::object(vec![
                                ("unit_insts", Value::Int(unit_insts as i64)),
                                ("warmup_insts", Value::Int(warmup_insts as i64)),
                                ("period", Value::Int(period as i64)),
                                (
                                    "cells",
                                    Value::Array(
                                        cells
                                            .iter()
                                            .filter_map(|c| {
                                                c.sampling
                                                    .as_ref()
                                                    .map(|s| sampling_json(c, s))
                                            })
                                            .collect(),
                                    ),
                                ),
                            ]),
                        ));
                    }
                }
            }
            (RunData::Static(rows), _) => {
                members.push(("kind", Value::Str("static".into())));
                members.push(("rows", static_rows_json(rows)));
            }
            (RunData::Grid(_), None) => unreachable!("grid data implies a grid spec"),
        }
        Value::object(members)
    }

    /// The full on-disk document: [`RunResult::results_json`] plus a `meta`
    /// section with wall-clock, worker-count, execution-mode and throughput
    /// information (the only part that may differ between two runs of the
    /// same spec).
    pub fn document_json(&self) -> Value {
        let mut doc = self.results_json();
        let mut meta_members = vec![
            ("workers", Value::Int(self.workers as i64)),
            ("wall_ms", Value::Int(self.wall_ms as i64)),
            ("streamed", Value::Bool(self.mode.is_streamed())),
            ("mode", Value::Str(self.mode.label().into())),
            ("generated_by", Value::Str(format!("momlab {}", env!("CARGO_PKG_VERSION")))),
            // Which execution engine produced the numbers, so perf
            // trajectory documents are self-describing: `swar` is true for
            // every build of this engine (the portable chunked-u64 lane
            // kernels are unconditional), `simd_feature` reports whether the
            // SSE2 backend was compiled in *and* usable on this target, and
            // `fused_pairs` counts the fused µop pairs decode created during
            // this run (0 when a warm machine pool skipped re-decoding).
            (
                "engine",
                Value::object(vec![
                    ("swar", Value::Bool(true)),
                    ("simd_feature", Value::Bool(mom_isa::simd_active())),
                    ("fused_pairs", Value::Int(self.fused_pairs as i64)),
                ]),
            ),
            // The host the numbers were measured on, so committed BENCH
            // documents are comparable: wall-clock figures from different
            // core counts or architectures are not.
            (
                "host",
                Value::object(vec![
                    (
                        "cpus",
                        Value::Int(
                            std::thread::available_parallelism()
                                .map(|n| n.get())
                                .unwrap_or(1) as i64,
                        ),
                    ),
                    ("arch", Value::Str(std::env::consts::ARCH.into())),
                    ("os", Value::Str(std::env::consts::OS.into())),
                    ("simd_active", Value::Bool(mom_isa::simd_active())),
                ]),
            ),
        ];
        if let Some(pipeline) = &self.pipeline {
            // Pipelined fan-out accounting: batch/channel geometry plus how
            // much of the consumer shards' wall-clock was spent simulating
            // (vs blocked on the interpreter). Present exactly when the
            // pipelined scheduler ran (fanout mode, 2+ workers).
            meta_members.push((
                "pipeline",
                Value::object(vec![
                    ("batch_insts", Value::Int(pipeline.batch_insts as i64)),
                    ("channel_batches", Value::Int(pipeline.channel_batches as i64)),
                    ("pipelined_groups", Value::Int(pipeline.pipelined_groups as i64)),
                    ("serial_groups", Value::Int(pipeline.serial_groups as i64)),
                    (
                        "occupancy",
                        pipeline.occupancy.map(Value::Float).unwrap_or(Value::Null),
                    ),
                ]),
            ));
        }
        if let Some(cells) = self.cells() {
            // The functional-sharing accounting: how many interpreter passes
            // this run performed, how many instructions they executed, and
            // what per-cell interpretation would have cost instead. The
            // sharing factor is the instruction-weighted amortization of the
            // fan-out runner (1.0 in streamed mode by construction).
            meta_members.push((
                "shared_passes",
                Value::object(vec![
                    ("cells", Value::Int(cells.len() as i64)),
                    ("functional_passes", Value::Int(self.functional_passes as i64)),
                    (
                        "cell_instructions",
                        Value::Int(cells.iter().map(|c| c.instructions).sum::<u64>() as i64),
                    ),
                    (
                        "functional_instructions",
                        Value::Int(self.functional_instructions as i64),
                    ),
                    (
                        "sharing_factor",
                        self.sharing_factor().map(Value::Float).unwrap_or(Value::Null),
                    ),
                ]),
            ));
            if cells.len() == self.cell_wall_ns.len() {
                meta_members.push(("throughput", Value::Array(
                    cells
                        .iter()
                        .zip(&self.cell_wall_ns)
                        .enumerate()
                        .map(|(i, (cell, &ns))| {
                            let mut fields = vec![
                                ("workload", Value::Str(cell.workload.label().into())),
                                ("config", Value::Str(cell.config_label.clone())),
                                ("way", Value::Int(cell.way as i64)),
                            ];
                            // A cached cell's span is document assembly, not
                            // simulation — a rate computed from it would be
                            // fabricated, so mark it instead. The extra field
                            // appears only for cached cells, keeping
                            // cache-free documents byte-identical.
                            if self.cached_cells.get(i).copied().unwrap_or(false) {
                                fields.push(("insts_per_sec", Value::Null));
                                fields.push(("cached", Value::Bool(true)));
                            } else {
                                fields.push((
                                    "insts_per_sec",
                                    Value::Float(insts_per_sec(cell.instructions, ns)),
                                ));
                            }
                            Value::object(fields)
                        })
                        .collect(),
                )));
            }
            // Machine-pool reuse accounting for this run (wall-clock-free but
            // scheduling-dependent, hence meta).
            meta_members.push((
                "pool",
                Value::object(vec![
                    ("hits", Value::Int(self.pool.hits as i64)),
                    ("builds", Value::Int(self.pool.builds as i64)),
                ]),
            ));
        }
        if let Some(cache) = &self.cache {
            // Result-cache accounting: present exactly when the run had a
            // cache, so cache-free documents stay byte-identical.
            meta_members.push((
                "cache",
                Value::object(vec![
                    ("hits", Value::Int(cache.hits as i64)),
                    ("misses", Value::Int(cache.misses as i64)),
                    ("fills", Value::Int(cache.fills as i64)),
                    ("bytes", Value::Int(cache.bytes as i64)),
                    ("dir", Value::Str(cache.dir.clone())),
                ]),
            ));
        }
        if !self.spans.is_empty() {
            // Scheduler span trace (fan-out modes only): one entry per work
            // item, chronological. Informational — never diffed.
            meta_members.push((
                "spans",
                Value::Array(self.spans.iter().map(span_json).collect()),
            ));
        }
        let meta = Value::object(meta_members);
        if let Value::Object(members) = &mut doc {
            members.push(("meta".into(), meta));
        }
        doc
    }

    /// Aggregate simulator throughput over all grid cells, in dynamic
    /// instructions per wall-clock second (`None` for static experiments or
    /// when nothing was timed). The denominator is the sum of the *distinct*
    /// simulation spans ([`RunResult::sim_wall_ns`]), so a fan-out group's
    /// shared span is never counted once per member.
    /// Cells served from the result cache contribute neither instructions
    /// nor wall-clock (their spans are zero and their work was document
    /// assembly), so a warm run can never fabricate a throughput figure;
    /// when *every* cell was cached, nothing was measured and this returns
    /// `None`.
    pub fn total_insts_per_sec(&self) -> Option<f64> {
        let cells = self.cells()?;
        if cells.is_empty() || cells.len() != self.cell_wall_ns.len() {
            return None;
        }
        let insts: u64 = cells
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.cached_cells.get(*i).copied().unwrap_or(false))
            .map(|(_, c)| c.instructions)
            .sum();
        if insts == 0 && self.all_cells_cached() {
            return None;
        }
        Some(insts_per_sec(insts, self.sim_wall_ns))
    }

    /// Whether every grid cell of this run was served from the result cache
    /// (`false` for static experiments, empty grids, or cache-free runs).
    /// `momlab run --throughput-gate` skips a fully-cached run — there is no
    /// simulation to measure — instead of failing it.
    pub fn all_cells_cached(&self) -> bool {
        match self.cells() {
            Some(cells) => {
                !cells.is_empty()
                    && self.cached_cells.len() == cells.len()
                    && self.cached_cells.iter().all(|&cached| cached)
            }
            None => false,
        }
    }

    /// The instruction-weighted functional-sharing factor: dynamic
    /// instructions all cells consumed divided by the instructions the
    /// functional interpreter actually executed (each shared pass counted
    /// once). `None` for static experiments or empty grids.
    pub fn sharing_factor(&self) -> Option<f64> {
        let cells = self.cells()?;
        if cells.is_empty() || self.functional_instructions == 0 {
            return None;
        }
        let consumed: u64 = cells.iter().map(|c| c.instructions).sum();
        Some(consumed as f64 / self.functional_instructions as f64)
    }

    /// The grid cells, if this was a grid experiment.
    pub fn cells(&self) -> Option<&[CellResult]> {
        match &self.data {
            RunData::Grid(cells) => Some(cells),
            RunData::Static(_) => None,
        }
    }
}

/// Simulated instructions per wall-clock second.
fn insts_per_sec(instructions: u64, wall_ns: u64) -> f64 {
    instructions as f64 * 1e9 / wall_ns.max(1) as f64
}

/// The `mem` field of the JSON schema. Unlike [`MemModelKind::label`], the
/// perfect model embeds its latency so that cells of the latency study keyed
/// on `(workload, isa, mem, way)` stay distinguishable.
pub fn mem_label(mem: MemModelKind) -> String {
    match mem {
        MemModelKind::Perfect { latency } => format!("perfect-{latency}"),
        other => other.label().to_string(),
    }
}

fn cell_json(cell: &CellResult) -> Value {
    Value::object(vec![
        ("workload", Value::Str(cell.workload.label().into())),
        ("workload_kind", Value::Str(cell.workload.kind_label().into())),
        ("config", Value::Str(cell.config_label.clone())),
        ("isa", Value::Str(cell.isa.label().into())),
        ("mem", Value::Str(mem_label(cell.mem))),
        ("way", Value::Int(cell.way as i64)),
        ("cycles", Value::Int(cell.cycles as i64)),
        ("instructions", Value::Int(cell.instructions as i64)),
        ("branches", Value::Int(cell.branches as i64)),
        ("mispredictions", Value::Int(cell.mispredictions as i64)),
        ("mem_accesses", Value::Int(cell.mem_accesses as i64)),
        ("ipc", Value::Float(cell.ipc())),
        ("speedup", cell.speedup.map(Value::Float).unwrap_or(Value::Null)),
        ("mispredict_rate", Value::Float(cell.mispredict_rate())),
        ("mem", mem_json(&cell.mem_stats)),
        ("breakdown", breakdown_json(&cell.breakdown)),
        ("intervals", intervals_json(&cell.intervals)),
    ])
}

/// One entry of the `sampling.cells` array: the cell's identity (the same
/// `(workload, config, way)` key `momlab diff` matches on) plus its sampling
/// accounting and IPC estimate.
fn sampling_json(cell: &CellResult, s: &CellSampling) -> Value {
    Value::object(vec![
        ("workload", Value::Str(cell.workload.label().into())),
        ("config", Value::Str(cell.config_label.clone())),
        ("way", Value::Int(cell.way as i64)),
        ("units_measured", Value::Int(s.units_measured as i64)),
        ("measured_insts", Value::Int(s.measured_insts as i64)),
        ("warmup_insts", Value::Int(s.warmup_insts as i64)),
        ("total_insts", Value::Int(s.total_insts as i64)),
        ("ipc_mean", Value::Float(s.ipc_mean)),
        ("ipc_ci95", Value::Float(s.ipc_ci95)),
    ])
}

/// The `mem` member of a cell: per-cell memory-system counters, split by
/// hierarchy level. Deterministic — diffed at tolerance zero like `cycles`.
fn mem_json(stats: &MemSystemStats) -> Value {
    let cache = |c: &CacheStats| {
        let hit_rate =
            if c.accesses() == 0 { 0.0 } else { c.hits as f64 / c.accesses() as f64 };
        Value::object(vec![
            ("hits", Value::Int(c.hits as i64)),
            ("misses", Value::Int(c.misses as i64)),
            ("writebacks", Value::Int(c.writebacks as i64)),
            ("hit_rate", Value::Float(hit_rate)),
        ])
    };
    Value::object(vec![
        ("requests", Value::Int(stats.requests as i64)),
        ("element_accesses", Value::Int(stats.element_accesses as i64)),
        ("port_stalls", Value::Int(stats.port_stalls as i64)),
        ("bank_conflicts", Value::Int(stats.bank_conflicts as i64)),
        ("mshr_stalls", Value::Int(stats.mshr_stalls as i64)),
        ("vector_transactions", Value::Int(stats.vector_transactions as i64)),
        ("l1", cache(&stats.l1)),
        ("l2", cache(&stats.l2)),
        (
            "dram",
            Value::object(vec![
                ("transfers", Value::Int(stats.dram.transfers as i64)),
                ("busy_cycles", Value::Int(stats.dram.busy_cycles as i64)),
                ("queue_cycles", Value::Int(stats.dram.queue_cycles as i64)),
            ]),
        ),
    ])
}

/// The `breakdown` member of a cell: every commit-slot cycle attributed to
/// exactly one cause, keyed by [`StallCause::label`]. The components sum to
/// `total_cycles` — an invariant asserted when the probe is read out.
fn breakdown_json(b: &StallBreakdown) -> Value {
    let mut fields = vec![("total_cycles", Value::Int(b.total_cycles as i64))];
    for (cause, cycles) in b.components() {
        fields.push((cause.label(), Value::Int(cycles as i64)));
    }
    Value::object(fields)
}

/// The `intervals` member of a cell: the windowed IPC timeline with the
/// dominant stall cause per window.
fn intervals_json(iv: &IntervalStats) -> Value {
    Value::object(vec![
        ("window_cycles", Value::Int(iv.window_cycles as i64)),
        (
            "windows",
            Value::Array(
                iv.windows
                    .iter()
                    .map(|w| {
                        Value::object(vec![
                            ("committed", Value::Int(w.committed as i64)),
                            ("cycles", Value::Int(w.cycles as i64)),
                            ("ipc", Value::Float(w.ipc())),
                            ("top", Value::Str(w.top.label().into())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// One scheduler span for the `meta.spans` array (wall-clock data: lives in
/// `meta`, never in `results`).
fn span_json(span: &SpanRec) -> Value {
    Value::object(vec![
        ("name", Value::Str(span.name.clone())),
        ("cat", Value::Str(span.cat.into())),
        ("tid", Value::Int(span.tid as i64)),
        ("start_ns", Value::Int(span.start_ns as i64)),
        ("dur_ns", Value::Int(span.dur_ns as i64)),
        ("wait_ns", Value::Int(span.wait_ns as i64)),
        ("insts", Value::Int(span.insts as i64)),
    ])
}

fn static_rows_json(rows: &StaticRows) -> Value {
    let pair = |(a, b): (usize, usize)| Value::Array(vec![Value::Int(a as i64), Value::Int(b as i64)]);
    match rows {
        StaticRows::Table1(rows) => Value::Array(
            rows.iter()
                .map(|r| {
                    Value::object(vec![
                        ("way", Value::Int(r.way as i64)),
                        ("rob", Value::Int(r.rob as i64)),
                        ("lsq", Value::Int(r.lsq as i64)),
                        ("bimodal", Value::Int(r.bimodal as i64)),
                        ("btb", Value::Int(r.btb as i64)),
                        ("int_units", pair(r.int_units)),
                        ("fp_units", pair(r.fp_units)),
                        ("media_units", pair(r.media_units)),
                        ("mem_ports", Value::Int(r.mem_ports as i64)),
                        ("int_regs", pair(r.int_regs)),
                    ])
                })
                .collect(),
        ),
        StaticRows::Table2(rows) => Value::Array(
            rows.iter()
                .map(|r| {
                    Value::object(vec![
                        ("isa", Value::Str(r.isa.to_string())),
                        ("media_regs", pair(r.media_regs)),
                        ("acc_regs", pair(r.acc_regs)),
                        ("media_ports", pair(r.media_ports)),
                        ("acc_ports", pair(r.acc_ports)),
                        ("size_kb", Value::Float(r.size_kb)),
                        ("normalized_area", Value::Float(r.normalized_area)),
                    ])
                })
                .collect(),
        ),
        StaticRows::Table3(rows) => Value::Array(
            rows.iter()
                .map(|r| {
                    let c = r.config;
                    Value::object(vec![
                        ("label", Value::Str(r.label.clone())),
                        ("l1_ports", Value::Int(c.l1_ports as i64)),
                        ("l1_banks", Value::Int(c.l1_banks as i64)),
                        ("l1_latency", Value::Int(c.l1_latency as i64)),
                        ("l2_vector_ports", Value::Int(c.l2_vector_ports as i64)),
                        ("l2_vector_width", Value::Int(c.l2_vector_width as i64)),
                        ("l2_banks", Value::Int(c.l2_banks as i64)),
                        ("l2_latency", Value::Int(c.l2_latency as i64)),
                    ])
                })
                .collect(),
        ),
        StaticRows::Inventory(rows) => Value::Array(
            rows.iter()
                .map(|r| {
                    Value::object(vec![
                        ("isa", Value::Str(r.isa.label().into())),
                        ("modelled", Value::Int(r.modelled as i64)),
                        ("paper", r.paper.map(|p| Value::Int(p as i64)).unwrap_or(Value::Null)),
                    ])
                })
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::figure5_spec;
    use mom_kernels::KernelKind;

    fn map_doubled(items: &[usize], workers: usize) -> Vec<usize> {
        parallel_map_with(items, workers, || (), |&x| format!("item {x}"), |(), &x| x * 2)
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = map_doubled(&items, 4);
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        assert_eq!(doubled, map_doubled(&items, 1));
    }

    #[test]
    fn a_panicking_item_aborts_promptly_and_names_itself() {
        let items: Vec<usize> = (0..1000).collect();
        let executed = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_with(
                &items,
                4,
                || (),
                |&x| format!("compensation / mom / {x}-way"),
                |(), &x| {
                    if x == 3 {
                        panic!("injected cell failure");
                    }
                    executed.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    x
                },
            )
        }));
        let payload = caught.expect_err("the worker panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("formatted panic message");
        assert!(
            msg.contains("compensation / mom / 3-way") && msg.contains("injected cell failure"),
            "panic must name the failing cell: {msg}"
        );
        // Fail fast: the parked cursor stops idle workers long before the
        // 999 surviving items are drained.
        let ran = executed.load(Ordering::Relaxed);
        assert!(ran < 900, "{ran} items still ran after the panic");
    }

    #[test]
    fn serial_path_also_labels_a_panicking_item() {
        let items = [1usize, 2];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_with(
                &items,
                1,
                || (),
                |&x| format!("item-{x}"),
                |(), &x| {
                    if x == 2 {
                        panic!("boom");
                    }
                    x
                },
            )
        }));
        let payload = caught.expect_err("panic propagates serially too");
        let msg = payload.downcast_ref::<String>().expect("formatted panic message");
        assert!(msg.contains("item-2") && msg.contains("boom"), "{msg}");
    }

    #[test]
    fn pipelined_fanout_matches_serial_and_reports_pipeline_meta() {
        let spec = figure5_spec(&[KernelKind::Compensation], 1, 1, true);
        let serial = run_with(&spec, 1);
        let piped = run_with(&spec, 3);
        // Byte-identical results; only meta differs.
        assert_eq!(
            serial.results_json().to_pretty(),
            piped.results_json().to_pretty(),
            "pipelined fan-out diverged from the serial broadcast"
        );
        assert!(serial.pipeline.is_none(), "one worker never pipelines");
        let stats = piped.pipeline.as_ref().expect("2+ workers run the pipelined scheduler");
        // Kernel groups (single lane) always pipeline when workers >= 2.
        assert_eq!(stats.pipelined_groups, 4);
        assert_eq!(stats.serial_groups, 0);
        assert_eq!(stats.batch_insts, crate::pipeline_batch_insts());
        assert_eq!(stats.channel_batches, crate::pipeline_channel_batches());
        let occupancy = stats.occupancy.expect("pipelined groups report occupancy");
        assert!((0.0..=1.0).contains(&occupancy), "occupancy {occupancy}");
        // The meta section carries the same numbers.
        let doc = piped.document_json();
        let pipeline = doc.get("meta").and_then(|m| m.get("pipeline")).expect("meta.pipeline");
        assert_eq!(
            pipeline.get("batch_insts").and_then(Value::as_i64),
            Some(stats.batch_insts as i64)
        );
        assert_eq!(pipeline.get("pipelined_groups").and_then(Value::as_i64), Some(4));
        assert!(pipeline.get("occupancy").and_then(Value::as_f64).is_some());
        // And the serial run's meta has no pipeline section.
        assert!(serial.document_json().get("meta").and_then(|m| m.get("pipeline")).is_none());
    }

    #[test]
    fn app_groups_fall_back_to_serial_when_workers_cannot_cover_their_lanes() {
        let spec = ExperimentSpec::builtin("figure7", 1, true).expect("figure7 is built in");
        // figure7 app groups span 4 ISA lanes; 2 workers cannot field an
        // interpreter plus one shard per lane, so the groups run serially —
        // but still through the pipelined scheduler's accounting.
        let narrow = run_with(&spec, 2);
        let stats = narrow.pipeline.as_ref().expect("pipelined scheduler ran");
        assert_eq!(stats.pipelined_groups, 0);
        assert!(stats.serial_groups > 0);
        assert!(stats.occupancy.is_none(), "no consumer shards ran");
        // With enough workers the same groups pipeline, byte-identically.
        let wide = run_with(&spec, 6);
        let wide_stats = wide.pipeline.as_ref().expect("pipelined scheduler ran");
        assert_eq!(wide_stats.serial_groups, 0);
        assert_eq!(wide_stats.pipelined_groups, stats.serial_groups);
        assert_eq!(narrow.results_json().to_pretty(), wide.results_json().to_pretty());
    }

    #[test]
    fn static_experiments_run_and_serialize() {
        for name in ["table1", "table2", "table3", "isa_inventory"] {
            let spec = ExperimentSpec::builtin(name, 1, false).unwrap();
            let result = run_with(&spec, 1);
            let json = result.results_json();
            assert_eq!(json.get("kind").and_then(Value::as_str), Some("static"));
            let rows = json.get("rows").and_then(Value::as_array).expect("rows array");
            assert!(!rows.is_empty(), "{name} produced no rows");
            // The full document reparses.
            let doc = result.document_json().to_pretty();
            Value::parse(&doc).expect("document parses");
        }
    }

    #[test]
    fn figure5_grid_baselines_are_unity() {
        let spec = figure5_spec(&[KernelKind::Compensation], 1, 1, false);
        let result = run_with(&spec, 2);
        let cells = result.cells().expect("grid cells");
        assert_eq!(cells.len(), 16);
        let baseline = cells
            .iter()
            .find(|c| c.isa == IsaKind::Alpha && c.way == 1)
            .expect("baseline cell present");
        assert!((baseline.speedup.unwrap() - 1.0).abs() < 1e-12);
        let mom1 = cells.iter().find(|c| c.isa == IsaKind::Mom && c.way == 1).unwrap();
        assert!(mom1.speedup.unwrap() > 1.0, "MOM outruns scalar Alpha");
        assert!(cells.iter().all(|c| c.cycles > 0 && c.instructions > 0));
    }

    #[test]
    fn mem_labels_distinguish_perfect_latencies() {
        assert_eq!(mem_label(MemModelKind::Perfect { latency: 1 }), "perfect-1");
        assert_eq!(mem_label(MemModelKind::Perfect { latency: 50 }), "perfect-50");
        assert_eq!(mem_label(MemModelKind::VectorCache), "vector-cache");
    }

    #[test]
    fn fanout_amortizes_figure5_groups_by_the_width_count() {
        // Each (kernel, isa) group of figure5 serves all four widths, so one
        // functional pass replaces four: sharing factor exactly 4.
        let spec = figure5_spec(&[KernelKind::Compensation, KernelKind::AddBlock], 1, 1, true);
        let result = run_with(&spec, 2);
        assert_eq!(result.mode, ExecMode::Fanout);
        let cells = result.cells().unwrap();
        assert_eq!(cells.len(), 2 * 4 * 4);
        assert_eq!(result.functional_passes, 2 * 4, "one pass per (kernel, isa)");
        let factor = result.sharing_factor().expect("grid has a sharing factor");
        assert!((factor - 4.0).abs() < 1e-9, "figure5 sharing factor {factor}");
        assert_eq!(
            result.functional_instructions * 4,
            cells.iter().map(|c| c.instructions).sum::<u64>()
        );
        assert_eq!(result.cell_wall_ns.len(), cells.len());
        // Members of one group share the same measured span.
        let group: Vec<&u64> = result
            .cell_wall_ns
            .iter()
            .take(4 * 4)
            .collect();
        let first_group = &group[..4];
        assert!(first_group.iter().all(|&&ns| ns == *first_group[0]));
    }

    #[test]
    fn shared_passes_meta_is_reported() {
        let spec = figure5_spec(&[KernelKind::Compensation], 1, 1, true);
        let result = run_with(&spec, 1);
        let doc = result.document_json();
        let meta = doc.get("meta").expect("meta present");
        assert_eq!(meta.get("mode").and_then(Value::as_str), Some("fanout"));
        assert_eq!(meta.get("streamed"), Some(&Value::Bool(true)));
        let sp = meta.get("shared_passes").expect("shared_passes present");
        assert_eq!(sp.get("cells").and_then(Value::as_i64), Some(16));
        assert_eq!(sp.get("functional_passes").and_then(Value::as_i64), Some(4));
        let factor = sp.get("sharing_factor").and_then(Value::as_f64).unwrap();
        assert!((factor - 4.0).abs() < 1e-9);
        let cell_insts = sp.get("cell_instructions").and_then(Value::as_i64).unwrap();
        let func_insts = sp.get("functional_instructions").and_then(Value::as_i64).unwrap();
        assert_eq!(cell_insts, func_insts * 4);
    }

    #[test]
    fn sweep_runs_and_reports_its_grid() {
        let spec = ExperimentSpec::builtin("sweep", 1, true).unwrap();
        let result = run_with(&spec, 2);
        let cells = result.cells().unwrap();
        // Fast dims: 4 ISAs x 2 ROBs x 2 latencies x 1 width.
        assert_eq!(cells.len(), 16);
        assert_eq!(result.functional_passes, 4, "one pass per ISA");
        assert!((result.sharing_factor().unwrap() - 4.0).abs() < 1e-9);
        assert!(cells.iter().all(|c| c.speedup.is_none()), "sweep has no baseline");
        // A bigger ROB at the same width/latency never hurts.
        let cycles_of = |label: &str| {
            cells.iter().find(|c| c.config_label == label).map(|c| c.cycles).unwrap()
        };
        assert!(cycles_of("mom/rob64/lat50") <= cycles_of("mom/rob16/lat50"));
        // The config array records the ROB override.
        let doc = result.results_json();
        let configs = doc.get("configs").and_then(Value::as_array).unwrap();
        assert!(configs.iter().all(|c| c.get("rob").and_then(Value::as_i64).is_some()));
    }

    #[test]
    fn exec_mode_labels() {
        assert_eq!(ExecMode::Fanout.label(), "fanout");
        assert_eq!(ExecMode::Streamed.label(), "streamed");
        assert_eq!(ExecMode::Materialized.label(), "materialized");
        assert!(ExecMode::Fanout.is_streamed());
        assert!(!ExecMode::Materialized.is_streamed());
        let sampled = ExecMode::Sampled {
            unit_insts: DEFAULT_SAMPLE_UNIT,
            warmup_insts: DEFAULT_SAMPLE_WARMUP,
            period: DEFAULT_SAMPLE_PERIOD,
        };
        assert_eq!(sampled.label(), "sampled");
        assert!(sampled.is_streamed());
        assert!(sampled.is_estimated());
        assert!(!ExecMode::Streamed.is_estimated());
        // Rate 1 (period 0) is exact, not an estimate.
        assert!(!ExecMode::Sampled { unit_insts: 1, warmup_insts: 0, period: 0 }.is_estimated());
    }

    #[test]
    fn sampled_estimate_statistics() {
        let unit = |committed: u64, cycles: u64| UnitDelta {
            committed,
            cycles,
            branches: committed / 10,
            mispredictions: committed / 100,
            mem_retries: 0,
            mem_accesses: committed / 2,
        };
        // Two units at IPC 2.0 and 1.0: mean 1.5, nonzero CI, exact
        // committed count, cycles = total / mean.
        let detailed = SimResult::default();
        let units = [unit(1000, 500), unit(1000, 1000)];
        let (sim, s) = sampled_estimate(&detailed, &units, 30_000, 4000);
        assert_eq!(s.units_measured, 2);
        assert_eq!(s.measured_insts, 2000);
        assert_eq!(s.warmup_insts, 4000);
        assert_eq!(s.total_insts, 30_000);
        assert!((s.ipc_mean - 1.5).abs() < 1e-12);
        assert!(s.ipc_ci95 > 0.0);
        assert_eq!(sim.committed, 30_000);
        assert_eq!(sim.cycles, 20_000);
        // Counters scale by total / measured = 15x.
        assert_eq!(sim.branches, 200 * 15);
        // A single unit has no confidence interval.
        let (_, single) = sampled_estimate(&detailed, &units[..1], 30_000, 2000);
        assert_eq!(single.ipc_ci95, 0.0);
    }

    #[test]
    fn sampled_estimate_falls_back_without_units() {
        // A fully detailed run (short workload) passes through exactly.
        let detailed = SimResult {
            cycles: 400,
            committed: 600,
            branches: 60,
            mispredictions: 6,
            mem_retries: 0,
            mem_accesses: 300,
        };
        let (sim, s) = sampled_estimate(&detailed, &[], 600, 600);
        assert_eq!(sim, detailed);
        assert_eq!(s.units_measured, 0);
        assert!((s.ipc_mean - detailed.ipc()).abs() < 1e-12);
        // A partially detailed run scales up to the exact instruction count.
        let (scaled, _) = sampled_estimate(&detailed, &[], 1200, 600);
        assert_eq!(scaled.committed, 1200);
        assert_eq!(scaled.cycles, 800);
        assert_eq!(scaled.branches, 120);
    }
}
