//! Declarative experiment specifications.
//!
//! An [`ExperimentSpec`] describes everything an experiment needs — which
//! workloads, ISAs, issue widths, memory models, workload scale and seed —
//! without running anything. Every table and figure of the paper is available
//! as a named built-in spec ([`ExperimentSpec::builtin`]); the CLI and the
//! legacy `mom-bench` binaries are thin layers over these.

use mom_apps::AppKind;
use mom_cpu::MachineDescriptor;
use mom_isa::trace::IsaKind;
use mom_kernels::KernelKind;
use mom_mem::MemModelKind;

/// The names of the built-in experiments: one per table/figure of the paper,
/// in presentation order, plus the `stress` scale study enabled by the
/// streaming pipeline and the `sweep` design-space study enabled by the
/// shared-functional-pass runner.
pub const BUILTIN_EXPERIMENTS: [&str; 9] = [
    "table1",
    "table2",
    "table3",
    "isa_inventory",
    "figure5",
    "latency_tolerance",
    "figure7",
    "stress",
    "sweep",
];

/// Workload-scale multiplier of the [`stress_spec`] experiment relative to
/// the requested `--scale`.
pub const STRESS_SCALE_FACTOR: usize = 8;

/// One workload of a simulation grid: a kernel or a whole application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Workload {
    /// One of the eight paper kernels.
    Kernel(KernelKind),
    /// One of the five Mediabench-like applications.
    App(AppKind),
}

impl Workload {
    /// The workload's display label (the kernel/app label).
    pub fn label(self) -> &'static str {
        match self {
            Workload::Kernel(k) => k.label(),
            Workload::App(a) => a.label(),
        }
    }

    /// `"kernel"` or `"app"` — the `workload_kind` field of the JSON schema.
    pub fn kind_label(self) -> &'static str {
        match self {
            Workload::Kernel(_) => "kernel",
            Workload::App(_) => "app",
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One machine configuration of a grid: an ISA paired with a memory model,
/// under a unique display label (Figure 7's legend entries, for example),
/// plus optional overrides of the Table 1 defaults (the `sweep` dimensions).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Unique display label within the spec.
    pub label: String,
    /// The ISA the workload is compiled for.
    pub isa: IsaKind,
    /// The memory system the machine uses.
    pub mem: MemModelKind,
    /// Reorder-buffer size override (`None` keeps the Table 1 size for the
    /// cell's issue width). Only the `sweep` experiment sets it today.
    pub rob: Option<usize>,
}

impl MachineConfig {
    /// A standard configuration with no overrides.
    pub fn new(label: impl Into<String>, isa: IsaKind, mem: MemModelKind) -> Self {
        Self { label: label.into(), isa, mem, rob: None }
    }

    /// Resolve this configuration at issue width `way` into the fully
    /// explicit [`MachineDescriptor`] the runner instantiates — the single
    /// place where a grid cell becomes a machine.
    pub fn descriptor(&self, way: usize) -> MachineDescriptor {
        let desc = MachineDescriptor::for_cell(way, self.isa, self.mem);
        match self.rob {
            Some(rob) => desc.with_rob(rob),
            None => desc,
        }
    }
}

/// How the derived `speedup` of each grid cell is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselinePolicy {
    /// No speed-up column.
    None,
    /// Baseline is the same workload on config `config` at issue width `way`
    /// (Figure 5: the 1-way Alpha run).
    ConfigAtWidth {
        /// Index into [`GridSpec::configs`].
        config: usize,
        /// Issue width of the baseline machine.
        way: usize,
    },
    /// Baseline is the same workload and width on config `config`
    /// (Figure 7: the same-width Alpha/conventional run).
    ConfigSameWidth {
        /// Index into [`GridSpec::configs`].
        config: usize,
    },
    /// Configs come in consecutive pairs and the even-indexed config is the
    /// baseline of both (the latency study: `lat1`/`lat50` per ISA).
    PairedPrevious,
}

/// One cell of a simulation grid (a single timing-simulator run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// The workload to trace and simulate.
    pub workload: Workload,
    /// Index into [`GridSpec::configs`].
    pub config: usize,
    /// Issue width of the machine.
    pub way: usize,
}

/// A full simulation grid: `workloads x configs x widths`.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Workloads (kernels or applications).
    pub workloads: Vec<Workload>,
    /// Machine configurations (ISA + memory pairs).
    pub configs: Vec<MachineConfig>,
    /// Issue widths.
    pub widths: Vec<usize>,
    /// Workload scale factor (1 = the paper's default working sets).
    pub scale: usize,
    /// Seed for the synthetic workload generators.
    pub seed: u64,
    /// How per-cell speed-ups are derived.
    pub baseline: BaselinePolicy,
}

impl GridSpec {
    /// Enumerate every cell in deterministic order: workload-major, then
    /// config, then width. The runner, the JSON writer and the renderers all
    /// share this order, which is what makes parallel runs byte-identical to
    /// serial ones.
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::with_capacity(self.workloads.len() * self.configs.len() * self.widths.len());
        for &workload in &self.workloads {
            for config in 0..self.configs.len() {
                for &way in &self.widths {
                    out.push(Cell { workload, config, way });
                }
            }
        }
        out
    }

    /// The distinct ISAs of the grid, in first-appearance order.
    pub fn isas(&self) -> Vec<IsaKind> {
        let mut out = Vec::new();
        for c in &self.configs {
            if !out.contains(&c.isa) {
                out.push(c.isa);
            }
        }
        out
    }

    /// Restrict the grid to the given kernels (applications are unaffected).
    pub fn retain_kernels(&mut self, allowed: &[KernelKind]) {
        self.workloads.retain(|w| match w {
            Workload::Kernel(k) => allowed.contains(k),
            Workload::App(_) => true,
        });
    }

    /// Restrict the grid to the given applications (kernels are unaffected).
    pub fn retain_apps(&mut self, allowed: &[AppKind]) {
        self.workloads.retain(|w| match w {
            Workload::Kernel(_) => true,
            Workload::App(a) => allowed.contains(a),
        });
    }

    /// Restrict the grid to configs whose ISA is in `allowed`.
    ///
    /// Config indices shift, so the baseline policy is re-anchored: if the
    /// baseline config is filtered out, the policy degrades to
    /// [`BaselinePolicy::None`] (a speed-up against a machine that no longer
    /// runs would be meaningless).
    pub fn retain_isas(&mut self, allowed: &[IsaKind]) {
        let baseline_config = match self.baseline {
            BaselinePolicy::ConfigAtWidth { config, .. } => Some(config),
            BaselinePolicy::ConfigSameWidth { config } => Some(config),
            _ => None,
        };
        let keep: Vec<bool> = self.configs.iter().map(|c| allowed.contains(&c.isa)).collect();
        let new_index = |old: usize| keep[..old].iter().filter(|&&k| k).count();
        self.baseline = match self.baseline {
            BaselinePolicy::ConfigAtWidth { config, way } if keep[config] => {
                BaselinePolicy::ConfigAtWidth { config: new_index(config), way }
            }
            BaselinePolicy::ConfigSameWidth { config } if keep[config] => {
                BaselinePolicy::ConfigSameWidth { config: new_index(config) }
            }
            BaselinePolicy::PairedPrevious => BaselinePolicy::PairedPrevious,
            BaselinePolicy::None => BaselinePolicy::None,
            _ => {
                debug_assert!(baseline_config.is_some());
                BaselinePolicy::None
            }
        };
        let mut keep_iter = keep.iter();
        self.configs.retain(|_| *keep_iter.next().expect("one flag per config"));
        if matches!(self.baseline, BaselinePolicy::PairedPrevious)
            && !self.configs.len().is_multiple_of(2)
        {
            // A filtered pair would mis-anchor every later config.
            self.baseline = BaselinePolicy::None;
        }
    }
}

/// The config-derived experiments that need no simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticKind {
    /// Table 1: processor configurations.
    Table1,
    /// Table 2: multimedia register files and area.
    Table2,
    /// Table 3: memory port configurations.
    Table3,
    /// Section 3.1 opcode inventories.
    IsaInventory,
}

/// The payload of an experiment: a simulation grid or a static table.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentKind {
    /// A config-derived table.
    Static(StaticKind),
    /// A simulation grid.
    Grid(GridSpec),
}

/// A complete, named experiment specification.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Machine-readable name (`figure5`, `table1`, ...) — also the stem of
    /// the `BENCH_<name>.json` result file.
    pub name: String,
    /// The text report's header line (without the fast-mode marker).
    pub title: String,
    /// Whether this spec describes a reduced fast-mode run.
    pub fast: bool,
    /// What to run.
    pub kind: ExperimentKind,
}

impl ExperimentSpec {
    /// Build a named built-in experiment, or `None` for an unknown name.
    ///
    /// `fast` selects the reduced workload subsets (the `MOM_BENCH_FAST`
    /// behaviour of the legacy binaries); `scale` is the workload scale.
    pub fn builtin(name: &str, scale: usize, fast: bool) -> Option<ExperimentSpec> {
        let spec = match name {
            "table1" => ExperimentSpec {
                name: name.into(),
                title: "Table 1: Processor configurations".into(),
                fast,
                kind: ExperimentKind::Static(StaticKind::Table1),
            },
            "table2" => ExperimentSpec {
                name: name.into(),
                title: "Table 2: Multimedia register file configurations (4-way machine)".into(),
                fast,
                kind: ExperimentKind::Static(StaticKind::Table2),
            },
            "table3" => ExperimentSpec {
                name: name.into(),
                title: "Table 3: Port configuration of the memory models".into(),
                fast,
                kind: ExperimentKind::Static(StaticKind::Table3),
            },
            "isa_inventory" => ExperimentSpec {
                name: name.into(),
                title: "Opcode inventories of the emulation libraries".into(),
                fast,
                kind: ExperimentKind::Static(StaticKind::IsaInventory),
            },
            "figure5" => figure5_spec(&kernel_selection(fast), scale, 1, fast),
            "latency_tolerance" => latency_spec(&kernel_selection(fast), scale, 4, fast),
            "figure7" => {
                let widths: &[usize] = if fast { &[4] } else { &[4, 8] };
                figure7_spec(&app_selection(fast), scale, widths, fast)
            }
            "stress" => stress_spec(scale, fast),
            "sweep" => sweep_spec(&SweepDims::for_mode(fast), scale, fast),
            _ => return None,
        };
        Some(spec)
    }

    /// All built-in experiments at the given scale/fast setting.
    pub fn all_builtin(scale: usize, fast: bool) -> Vec<ExperimentSpec> {
        BUILTIN_EXPERIMENTS
            .iter()
            .map(|name| ExperimentSpec::builtin(name, scale, fast).expect("builtin name"))
            .collect()
    }

    /// The grid, if this is a grid experiment.
    pub fn grid(&self) -> Option<&GridSpec> {
        match &self.kind {
            ExperimentKind::Grid(g) => Some(g),
            ExperimentKind::Static(_) => None,
        }
    }

    /// A stable FNV-1a hash of the full configuration, recorded in the JSON
    /// results so baseline diffs can flag config drift.
    pub fn config_hash(&self) -> String {
        let mut h = Fnv1a::new();
        h.update(self.name.as_bytes());
        h.update(&[self.fast as u8]);
        match &self.kind {
            ExperimentKind::Static(s) => h.update(format!("{s:?}").as_bytes()),
            ExperimentKind::Grid(g) => {
                h.update(&g.scale.to_le_bytes());
                h.update(&g.seed.to_le_bytes());
                for w in &g.workloads {
                    h.update(w.label().as_bytes());
                    h.update(b"|");
                }
                for c in &g.configs {
                    h.update(c.label.as_bytes());
                    h.update(c.isa.label().as_bytes());
                    h.update(format!("{:?}", c.mem).as_bytes());
                    // Overrides contribute only when present, so documents of
                    // the pre-override era keep their exact hashes.
                    if let Some(rob) = c.rob {
                        h.update(b"rob");
                        h.update(&rob.to_le_bytes());
                    }
                    h.update(b"|");
                }
                for w in &g.widths {
                    h.update(&w.to_le_bytes());
                }
                h.update(format!("{:?}", g.baseline).as_bytes());
            }
        }
        format!("fnv1a:{:016x}", h.finish())
    }
}

/// The kernels an experiment evaluates: all eight normally, a cheap
/// two-kernel subset when `fast`.
pub fn kernel_selection(fast: bool) -> Vec<KernelKind> {
    if fast {
        vec![KernelKind::Compensation, KernelKind::AddBlock]
    } else {
        KernelKind::ALL.to_vec()
    }
}

/// The applications an experiment evaluates: all five normally, a two-app
/// subset when `fast`.
pub fn app_selection(fast: bool) -> Vec<AppKind> {
    if fast {
        vec![AppKind::JpegDecode, AppKind::GsmEncode]
    } else {
        AppKind::ALL.to_vec()
    }
}

/// Figure 5: the four ISAs on 1/2/4/8-way machines with a perfect
/// fixed-latency memory, speed-ups relative to the 1-way Alpha run.
pub fn figure5_spec(kernels: &[KernelKind], scale: usize, mem_latency: u64, fast: bool) -> ExperimentSpec {
    ExperimentSpec {
        name: "figure5".into(),
        title: format!("Figure 5: kernel speed-ups vs 1-way Alpha (perfect cache, scale {scale})"),
        fast,
        kind: ExperimentKind::Grid(GridSpec {
            workloads: kernels.iter().map(|&k| Workload::Kernel(k)).collect(),
            configs: IsaKind::ALL
                .iter()
                .map(|&isa| {
                    MachineConfig::new(isa.label(), isa, MemModelKind::Perfect { latency: mem_latency })
                })
                .collect(),
            widths: vec![1, 2, 4, 8],
            scale,
            seed: 42,
            baseline: BaselinePolicy::ConfigAtWidth { config: 0, way: 1 },
        }),
    }
}

/// The Section 4.1 latency-tolerance study: each ISA with 1-cycle and
/// 50-cycle perfect memory on a machine of width `way`.
pub fn latency_spec(kernels: &[KernelKind], scale: usize, way: usize, fast: bool) -> ExperimentSpec {
    let mut configs = Vec::new();
    for &isa in &IsaKind::ALL {
        configs.push(MachineConfig::new(
            format!("{}@lat1", isa.label()),
            isa,
            MemModelKind::Perfect { latency: 1 },
        ));
        configs.push(MachineConfig::new(
            format!("{}@lat50", isa.label()),
            isa,
            MemModelKind::Perfect { latency: 50 },
        ));
    }
    ExperimentSpec {
        name: "latency_tolerance".into(),
        title: format!(
            "Latency tolerance: slow-down from 1-cycle to 50-cycle memory ({way}-way machine)"
        ),
        fast,
        kind: ExperimentKind::Grid(GridSpec {
            workloads: kernels.iter().map(|&k| Workload::Kernel(k)).collect(),
            configs,
            widths: vec![way],
            scale,
            seed: 42,
            baseline: BaselinePolicy::PairedPrevious,
        }),
    }
}

/// The streaming scale study: the heaviest kernel (`rgb2ycc`, whose scalar
/// trace is the longest of the eight; `compensation` in fast mode) at
/// [`STRESS_SCALE_FACTOR`]× the requested workload scale across all four
/// ISAs on the wide machines. At these trace lengths the materialized
/// two-stage runner has to hold multi-million-instruction `Vec<DynInst>`s
/// alive across the whole grid — the streamed pipeline
/// (`momlab run stress --streamed`) executes every cell in O(ROB) memory,
/// which is what makes the scale axis unbounded. Both modes remain
/// byte-identical whenever both can run.
pub fn stress_spec(scale: usize, fast: bool) -> ExperimentSpec {
    let kernel = if fast { KernelKind::Compensation } else { KernelKind::Rgb2Ycc };
    let scale = scale.max(1) * STRESS_SCALE_FACTOR;
    ExperimentSpec {
        name: "stress".into(),
        title: format!("Streaming stress: {kernel} speed-ups vs 4-way Alpha (perfect cache, scale {scale})"),
        fast,
        kind: ExperimentKind::Grid(GridSpec {
            workloads: vec![Workload::Kernel(kernel)],
            configs: IsaKind::ALL
                .iter()
                .map(|&isa| MachineConfig::new(isa.label(), isa, MemModelKind::Perfect { latency: 1 }))
                .collect(),
            widths: vec![4, 8],
            scale,
            seed: 42,
            baseline: BaselinePolicy::ConfigAtWidth { config: 0, way: 4 },
        }),
    }
}

/// The dimensions of the design-space `sweep` experiment: every combination
/// of reorder-buffer size x memory latency is a machine configuration, run
/// at every issue width, for every ISA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepDims {
    /// Reorder-buffer sizes to sweep.
    pub robs: Vec<usize>,
    /// Perfect-memory latencies (cycles) to sweep.
    pub latencies: Vec<u64>,
    /// Issue widths to sweep.
    pub widths: Vec<usize>,
}

impl SweepDims {
    /// The default full-mode grid: 3 ROB sizes x 2 latencies x 3 widths
    /// (x 4 ISAs = 72 cells, all fed by 4 functional passes).
    pub fn full() -> Self {
        Self { robs: vec![16, 32, 64], latencies: vec![1, 50], widths: vec![2, 4, 8] }
    }

    /// The reduced fast-mode grid (a strict subset of [`SweepDims::full`]).
    pub fn fast() -> Self {
        Self { robs: vec![16, 64], latencies: vec![1, 50], widths: vec![4] }
    }

    /// The dims for the given mode.
    pub fn for_mode(fast: bool) -> Self {
        if fast {
            SweepDims::fast()
        } else {
            SweepDims::full()
        }
    }

    /// Parse the `momlab --sweep-dims` syntax:
    /// `rob=16,32:lat=1,50:way=4,8` (any subset of the three axes; omitted
    /// axes keep the mode's defaults).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending axis or value.
    pub fn parse(spec: &str, fast: bool) -> Result<Self, String> {
        let mut dims = SweepDims::for_mode(fast);
        for part in spec.split(':').filter(|p| !p.trim().is_empty()) {
            let (axis, values) = part
                .split_once('=')
                .ok_or_else(|| format!("--sweep-dims: expected axis=v1,v2 in {part:?}"))?;
            let parse_list = |values: &str| -> Result<Vec<u64>, String> {
                let list: Result<Vec<u64>, _> =
                    values.split(',').map(|v| v.trim().parse::<u64>()).collect();
                let list = list.map_err(|e| format!("--sweep-dims: {axis}: {e}"))?;
                if list.is_empty() || list.contains(&0) {
                    return Err(format!("--sweep-dims: {axis} values must be >= 1"));
                }
                Ok(list)
            };
            match axis.trim() {
                "rob" => dims.robs = parse_list(values)?.into_iter().map(|v| v as usize).collect(),
                "lat" => dims.latencies = parse_list(values)?,
                "way" => {
                    let widths: Vec<usize> =
                        parse_list(values)?.into_iter().map(|v| v as usize).collect();
                    if widths.iter().any(|w| ![1, 2, 4, 8].contains(w)) {
                        return Err("--sweep-dims: way values must be one of 1, 2, 4, 8".into());
                    }
                    dims.widths = widths;
                }
                other => {
                    return Err(format!(
                        "--sweep-dims: unknown axis {other:?} (expected rob, lat or way)"
                    ))
                }
            }
        }
        Ok(dims)
    }
}

/// The design-space `sweep` experiment: one kernel (`compensation`, the
/// mid-weight member of the paper's set) evaluated over every combination of
/// ROB size x memory latency x issue width, per ISA. Each `(kernel, ISA)`
/// group of the grid shares a **single** functional interpretation fanned out
/// to all of its machine configurations, which is what makes a 72-cell sweep
/// cost 4 interpreter passes — the amortization the paper's own evaluation
/// methodology (one binary, many machines) relied on.
pub fn sweep_spec(dims: &SweepDims, scale: usize, fast: bool) -> ExperimentSpec {
    let kernel = KernelKind::Compensation;
    let mut configs = Vec::new();
    for &isa in &IsaKind::ALL {
        for &rob in &dims.robs {
            for &latency in &dims.latencies {
                configs.push(MachineConfig {
                    label: format!("{}/rob{rob}/lat{latency}", isa.label()),
                    isa,
                    mem: MemModelKind::Perfect { latency },
                    rob: Some(rob),
                });
            }
        }
    }
    ExperimentSpec {
        name: "sweep".into(),
        title: format!(
            "Design-space sweep: {kernel} IPC over ROB x latency x width (scale {scale})"
        ),
        fast,
        kind: ExperimentKind::Grid(GridSpec {
            workloads: vec![Workload::Kernel(kernel)],
            configs,
            widths: dims.widths.clone(),
            scale,
            seed: 42,
            baseline: BaselinePolicy::None,
        }),
    }
}

/// The five machine configurations of Figure 7, in legend order.
pub fn figure7_configs() -> Vec<MachineConfig> {
    vec![
        MachineConfig::new("Alpha conventional cache", IsaKind::Alpha, MemModelKind::Conventional),
        MachineConfig::new("MMX conventional cache", IsaKind::Mmx, MemModelKind::Conventional),
        MachineConfig::new("MOM multi-address cache", IsaKind::Mom, MemModelKind::MultiAddress),
        MachineConfig::new("MOM vector cache", IsaKind::Mom, MemModelKind::VectorCache),
        MachineConfig::new("MOM collapsing buffer cache", IsaKind::Mom, MemModelKind::CollapsingBuffer),
    ]
}

/// Figure 7: whole-program speed-ups with realistic cache hierarchies,
/// relative to the same-width Alpha/conventional configuration.
pub fn figure7_spec(apps: &[AppKind], scale: usize, widths: &[usize], fast: bool) -> ExperimentSpec {
    ExperimentSpec {
        name: "figure7".into(),
        title: format!(
            "Figure 7: whole-program speed-ups vs same-width Alpha/conventional (scale {scale})"
        ),
        fast,
        kind: ExperimentKind::Grid(GridSpec {
            workloads: apps.iter().map(|&a| Workload::App(a)).collect(),
            configs: figure7_configs(),
            widths: widths.to_vec(),
            scale,
            seed: 42,
            baseline: BaselinePolicy::ConfigSameWidth { config: 0 },
        }),
    }
}

/// Incremental 64-bit FNV-1a.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_name_resolves() {
        for name in BUILTIN_EXPERIMENTS {
            let spec = ExperimentSpec::builtin(name, 1, false).expect("builtin resolves");
            assert_eq!(spec.name, name);
        }
        assert!(ExperimentSpec::builtin("figure9", 1, false).is_none());
        assert_eq!(ExperimentSpec::all_builtin(1, true).len(), BUILTIN_EXPERIMENTS.len());
    }

    #[test]
    fn cell_order_is_workload_major() {
        let spec = figure5_spec(&[KernelKind::Idct, KernelKind::AddBlock], 1, 1, false);
        let grid = spec.grid().unwrap();
        let cells = grid.cells();
        assert_eq!(cells.len(), 2 * 4 * 4);
        assert_eq!(cells[0], Cell { workload: Workload::Kernel(KernelKind::Idct), config: 0, way: 1 });
        assert_eq!(cells[1].way, 2, "widths vary fastest");
        assert_eq!(cells[4].config, 1, "then configs");
        assert_eq!(cells[16].workload, Workload::Kernel(KernelKind::AddBlock));
    }

    #[test]
    fn fast_selections_are_strict_subsets() {
        let fast_kernels = kernel_selection(true);
        let all_kernels = kernel_selection(false);
        assert!(fast_kernels.len() < all_kernels.len());
        assert!(fast_kernels.iter().all(|k| all_kernels.contains(k)));
        let fast_apps = app_selection(true);
        assert!(fast_apps.len() < app_selection(false).len());
        assert!(fast_apps.iter().all(|a| AppKind::ALL.contains(a)));
    }

    #[test]
    fn retain_isas_reanchors_the_baseline() {
        let mut spec = figure5_spec(&[KernelKind::Idct], 1, 1, false);
        if let ExperimentKind::Grid(g) = &mut spec.kind {
            g.retain_isas(&[IsaKind::Mmx, IsaKind::Mom]);
            assert_eq!(g.configs.len(), 2);
            // Alpha (the baseline) was filtered out -> no speed-up column.
            assert_eq!(g.baseline, BaselinePolicy::None);
        }
        let mut spec = figure5_spec(&[KernelKind::Idct], 1, 1, false);
        if let ExperimentKind::Grid(g) = &mut spec.kind {
            g.retain_isas(&[IsaKind::Alpha, IsaKind::Mom]);
            assert_eq!(g.configs.len(), 2);
            assert_eq!(g.baseline, BaselinePolicy::ConfigAtWidth { config: 0, way: 1 });
        }
    }

    #[test]
    fn config_hash_tracks_the_configuration() {
        let a = ExperimentSpec::builtin("figure5", 1, false).unwrap();
        let b = ExperimentSpec::builtin("figure5", 1, false).unwrap();
        assert_eq!(a.config_hash(), b.config_hash(), "hash is deterministic");
        let fast = ExperimentSpec::builtin("figure5", 1, true).unwrap();
        assert_ne!(a.config_hash(), fast.config_hash());
        let scaled = ExperimentSpec::builtin("figure5", 2, false).unwrap();
        assert_ne!(a.config_hash(), scaled.config_hash());
        assert!(a.config_hash().starts_with("fnv1a:"));
    }

    #[test]
    fn sweep_spec_covers_the_dim_cross_product() {
        let spec = ExperimentSpec::builtin("sweep", 1, false).unwrap();
        let grid = spec.grid().unwrap();
        let dims = SweepDims::full();
        assert_eq!(grid.configs.len(), 4 * dims.robs.len() * dims.latencies.len());
        assert_eq!(grid.cells().len(), grid.configs.len() * dims.widths.len());
        assert_eq!(grid.baseline, BaselinePolicy::None);
        // Every config carries its ROB override and a distinguishing label.
        let mut labels: Vec<&str> = grid.configs.iter().map(|c| c.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), grid.configs.len(), "labels are unique");
        assert!(grid.configs.iter().all(|c| c.rob.is_some()));
        // Fast dims are a strict subset.
        let fast = ExperimentSpec::builtin("sweep", 1, true).unwrap();
        assert!(fast.grid().unwrap().cells().len() < grid.cells().len());
        assert_ne!(spec.config_hash(), fast.config_hash());
    }

    #[test]
    fn sweep_dims_parse_round_trips_and_rejects_garbage() {
        let dims = SweepDims::parse("rob=8,128:lat=1,10,100:way=2,8", false).unwrap();
        assert_eq!(dims.robs, [8, 128]);
        assert_eq!(dims.latencies, [1, 10, 100]);
        assert_eq!(dims.widths, [2, 8]);
        // Omitted axes keep the mode defaults.
        let partial = SweepDims::parse("lat=7", true).unwrap();
        assert_eq!(partial.latencies, [7]);
        assert_eq!(partial.robs, SweepDims::fast().robs);
        assert!(SweepDims::parse("rob=0", false).is_err());
        assert!(SweepDims::parse("way=3", false).is_err());
        assert!(SweepDims::parse("depth=2", false).is_err());
        assert!(SweepDims::parse("rob", false).is_err());
        assert!(SweepDims::parse("rob=x", false).is_err());
    }

    #[test]
    fn machine_config_resolves_to_the_descriptor() {
        let plain = MachineConfig::new("mom", IsaKind::Mom, MemModelKind::Perfect { latency: 1 });
        let desc = plain.descriptor(4);
        assert_eq!(desc.core.way, 4);
        assert_eq!(desc.core.rob_size, 32, "Table 1 default for 4-way");
        assert_eq!(desc.mem, MemModelKind::Perfect { latency: 1 });
        let swept = MachineConfig { rob: Some(16), ..plain };
        assert_eq!(swept.descriptor(4).core.rob_size, 16, "override wins");
    }

    #[test]
    fn rob_override_changes_the_config_hash_only_when_present() {
        // The override is hashed only when set, so documents from before the
        // field existed keep their exact config hashes (pinned in the
        // committed baselines, which CI diffs on every push).
        let a = ExperimentSpec::builtin("figure5", 1, false).unwrap();
        assert!(a.grid().unwrap().configs.iter().all(|c| c.rob.is_none()));
        assert_eq!(a.config_hash(), "fnv1a:96b386bdbfd15a49", "legacy hash drifted");
        let mut swept = a.clone();
        if let ExperimentKind::Grid(g) = &mut swept.kind {
            g.configs[0].rob = Some(32);
        }
        assert_ne!(a.config_hash(), swept.config_hash());
    }

    #[test]
    fn latency_spec_pairs_configs() {
        let spec = latency_spec(&[KernelKind::Idct], 1, 4, false);
        let grid = spec.grid().unwrap();
        assert_eq!(grid.configs.len(), 8);
        for pair in grid.configs.chunks(2) {
            assert_eq!(pair[0].isa, pair[1].isa);
            assert_eq!(pair[0].mem, MemModelKind::Perfect { latency: 1 });
            assert_eq!(pair[1].mem, MemModelKind::Perfect { latency: 50 });
        }
        assert_eq!(grid.baseline, BaselinePolicy::PairedPrevious);
    }
}
