//! Chrome trace-event export of the runner's scheduler spans.
//!
//! [`chrome_trace`] turns the per-run [`SpanRec`] lists collected by the
//! fan-out scheduler into the Trace Event Format consumed by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one process
//! per experiment spec, one track (`tid`) per worker thread, one complete
//! (`ph: "X"`) event per work item. Channel wait time and interpreted
//! instruction counts ride along in each event's `args`.
//!
//! Written by `momlab run --trace-out <file>`; the output is wall-clock
//! data and therefore *informational* — the deterministic results sections
//! never reference it.

use crate::json::Value;
use crate::runner::SpanRec;

/// Build a Trace Event Format document from per-spec span lists: each
/// `(name, spans)` pair becomes one trace process (pid = index + 1, named
/// via a `process_name` metadata event) whose spans appear as complete
/// events on their worker's track. Timestamps and durations convert from
/// the runner's nanoseconds to the format's microseconds.
pub fn chrome_trace(processes: &[(String, Vec<SpanRec>)]) -> Value {
    let mut events: Vec<Value> = Vec::new();
    for (i, (name, spans)) in processes.iter().enumerate() {
        let pid = (i + 1) as i64;
        events.push(Value::object(vec![
            ("name", Value::Str("process_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::Int(pid)),
            ("tid", Value::Int(0)),
            ("args", Value::object(vec![("name", Value::Str(name.clone()))])),
        ]));
        for span in spans {
            events.push(Value::object(vec![
                ("name", Value::Str(span.name.clone())),
                ("cat", Value::Str(span.cat.into())),
                ("ph", Value::Str("X".into())),
                ("ts", Value::Float(span.start_ns as f64 / 1000.0)),
                ("dur", Value::Float(span.dur_ns as f64 / 1000.0)),
                ("pid", Value::Int(pid)),
                ("tid", Value::Int(span.tid as i64)),
                (
                    "args",
                    Value::object(vec![
                        ("wait_us", Value::Float(span.wait_ns as f64 / 1000.0)),
                        ("insts", Value::Int(span.insts as i64)),
                    ]),
                ),
            ]));
        }
    }
    Value::object(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::Str("ms".into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, cat: &'static str, tid: usize, start_ns: u64, dur_ns: u64) -> SpanRec {
        SpanRec { name: name.into(), cat, tid, start_ns, dur_ns, wait_ns: 250, insts: 42 }
    }

    #[test]
    fn trace_document_has_one_process_per_spec() {
        let doc = chrome_trace(&[
            ("figure5".into(), vec![span("interpret idct", "produce", 0, 0, 5_000)]),
            ("figure7".into(), vec![span("jpeg / mom (4-way)", "consume", 1, 2_000, 3_000)]),
        ]);
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        // Two metadata events + two span events.
        assert_eq!(events.len(), 4);
        let phases: Vec<&str> =
            events.iter().filter_map(|e| e.get("ph").and_then(Value::as_str)).collect();
        assert_eq!(phases, ["M", "X", "M", "X"]);
        // Span timestamps are microseconds.
        let consume = &events[3];
        assert_eq!(consume.get("ts").and_then(Value::as_f64), Some(2.0));
        assert_eq!(consume.get("dur").and_then(Value::as_f64), Some(3.0));
        assert_eq!(consume.get("pid").and_then(Value::as_i64), Some(2));
        assert_eq!(consume.get("tid").and_then(Value::as_i64), Some(1));
        let args = consume.get("args").unwrap();
        assert_eq!(args.get("wait_us").and_then(Value::as_f64), Some(0.25));
        assert_eq!(args.get("insts").and_then(Value::as_i64), Some(42));
        // The document parses back as JSON (what --trace-out writes).
        let text = doc.to_pretty();
        assert!(Value::parse(&text).is_ok(), "trace JSON parses back: {text}");
    }

    #[test]
    fn empty_span_lists_still_name_their_process() {
        let doc = chrome_trace(&[("table1".into(), Vec::new())]);
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("ph").and_then(Value::as_str), Some("M"));
    }
}
