//! The config-derived (static) experiments: Tables 1-3 and the Section 3.1
//! opcode inventories. No simulation runs — the rows are read straight out of
//! the simulator's own configuration structures.

use mom_core::area::Table2Row;
use mom_core::inventory::{opcode_count, paper_opcode_count};
use mom_cpu::CoreConfig;
use mom_isa::trace::IsaKind;
use mom_mem::config::Table3Row;

/// Issue widths evaluated by the kernel study and Table 1.
pub const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// One row of the reproduced Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Issue width.
    pub way: usize,
    /// Reorder-buffer size.
    pub rob: usize,
    /// Load/store queue size.
    pub lsq: usize,
    /// Bimodal predictor entries.
    pub bimodal: usize,
    /// BTB entries.
    pub btb: usize,
    /// Integer units (simple/complex).
    pub int_units: (usize, usize),
    /// FP units (simple/complex).
    pub fp_units: (usize, usize),
    /// Media units (total, lanes each) for the MOM configuration.
    pub media_units: (usize, usize),
    /// Memory ports.
    pub mem_ports: usize,
    /// Integer logical/physical registers.
    pub int_regs: (usize, usize),
}

/// Reproduce Table 1 from the simulator's own configuration structures.
pub fn table1_rows() -> Vec<Table1Row> {
    WIDTHS
        .iter()
        .map(|&way| {
            let c = CoreConfig::for_width(way, IsaKind::Mom);
            Table1Row {
                way,
                rob: c.rob_size,
                lsq: c.lsq_size,
                bimodal: c.bimodal_entries,
                btb: c.btb_entries,
                int_units: (c.int_units.simple, c.int_units.complex),
                fp_units: (c.fp_units.simple, c.fp_units.complex),
                media_units: (c.media_units.total(), c.media_units.lanes),
                mem_ports: c.mem_ports,
                int_regs: (32, c.phys_regs.int),
            }
        })
        .collect()
}

/// One row of the opcode-inventory report.
#[derive(Debug, Clone)]
pub struct InventoryRow {
    /// The media ISA.
    pub isa: IsaKind,
    /// Opcodes modelled by the emulation library.
    pub modelled: usize,
    /// The paper's reported count, when it gives one.
    pub paper: Option<usize>,
}

/// The Section 3.1 opcode inventories of the three media ISAs.
pub fn inventory_rows() -> Vec<InventoryRow> {
    [IsaKind::Mmx, IsaKind::Mdmx, IsaKind::Mom]
        .iter()
        .map(|&isa| InventoryRow { isa, modelled: opcode_count(isa), paper: paper_opcode_count(isa) })
        .collect()
}

/// The typed rows of one static experiment.
#[derive(Debug, Clone)]
pub enum StaticRows {
    /// Table 1 rows.
    Table1(Vec<Table1Row>),
    /// Table 2 rows (re-exported from `mom_core::area`).
    Table2(Vec<Table2Row>),
    /// Table 3 rows (re-exported from `mom_mem::config`).
    Table3(Vec<Table3Row>),
    /// Opcode-inventory rows.
    Inventory(Vec<InventoryRow>),
}

/// Produce the rows of the named static experiment.
pub fn static_rows(kind: crate::spec::StaticKind) -> StaticRows {
    use crate::spec::StaticKind;
    match kind {
        StaticKind::Table1 => StaticRows::Table1(table1_rows()),
        StaticKind::Table2 => StaticRows::Table2(mom_core::area::table2()),
        StaticKind::Table3 => StaticRows::Table3(mom_mem::config::table3()),
        StaticKind::IsaInventory => StaticRows::Inventory(inventory_rows()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].rob, 8);
        assert_eq!(rows[3].rob, 64);
        assert_eq!(rows[3].media_units, (2, 2), "8-way MOM uses 2 double-width media units");
        assert_eq!(rows[2].mem_ports, 2);
    }

    #[test]
    fn inventory_covers_the_three_media_isas() {
        let rows = inventory_rows();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.modelled > 0));
        assert_eq!(rows[0].isa, IsaKind::Mmx);
    }
}
