//! The persistent content-addressed cell result cache.
//!
//! Every grid cell is a pure function of its inputs — the experiment's
//! [`config_hash`](crate::spec::ExperimentSpec::config_hash), the cell's
//! `(workload, config, way)` identity, the workload scale and seed, and the
//! sampling parameters — and the runner's determinism guarantee makes the
//! outputs byte-identical across execution modes and worker counts. That is
//! exactly the property a content-addressed cache needs: hash the inputs
//! once, never simulate the same cell twice. [`CellKey`] is the address,
//! [`CellRecord`] is the stored result (timing summary, stall attribution,
//! memory statistics and — for sampled cells — the confidence-interval
//! accounting), and [`CellCache`] is the on-disk store: one binary record
//! per cell under a directory, written through the `mom-isa` checkpoint
//! codec with explicit versioning and atomic rename.
//!
//! # Invalidation
//!
//! A key binds the [`engine_fingerprint`] (crate version plus the lane-kernel
//! backend — a `--features simd` build can never serve records to a portable
//! build or vice versa), the spec's `config_hash` (which already covers the
//! experiment name, fast flag, workload set, machine configs, ROB/latency
//! overrides, widths, scale and seed), the cell identity, and the sampling
//! knobs. Exact records carry no sampling knobs at all, so a cache filled by
//! any exact mode (fanout, streamed, materialized, or `--sampled
//! --sample-period 0`) serves hits to every other exact mode — their results
//! are byte-identical by the determinism guarantee. Sampled records with a
//! nonzero period key separately per `(unit, warmup, period)` triple.
//!
//! # Corruption is a miss
//!
//! Unlike checkpoint resume (where silently restarting would corrupt a
//! half-finished run, so a bad file panics), a cache record is purely an
//! optimization: a truncated, garbage or wrong-version record — or a file
//! whose stored key does not match the address that found it — is treated as
//! a clean miss. The cell is re-simulated and the bad record atomically
//! overwritten. [`CellCache::load`] never panics and never returns a wrong
//! result.

use std::path::{Path, PathBuf};
use std::time::SystemTime;

use mom_cpu::{ProbeReport, SimResult};
use mom_isa::codec::{CodecError, Decoder, Encoder};
use mom_mem::MemSystemStats;

use crate::runner::CellSampling;

/// Magic number leading every cache record file (`MOMCELL\0`, little-endian).
const CACHE_MAGIC: u64 = u64::from_le_bytes(*b"MOMCELL\0");

/// Version tag of the record layout. Bumping it invalidates every existing
/// record: old files decode to a version error, which is a clean miss.
pub const CACHE_VERSION: u32 = 1;

/// The execution-engine identity baked into every [`CellKey`]: crate version
/// plus which lane-kernel backend is active. Exec-mode-invariant (the three
/// exact modes produce byte-identical results, so they share records), but
/// distinct between a portable build and a `--features simd` build, and
/// between crate versions — stale results can never be served across engine
/// changes.
pub fn engine_fingerprint() -> String {
    format!("momlab {} swar simd:{}", env!("CARGO_PKG_VERSION"), mom_isa::simd_active())
}

/// 64-bit FNV-1a, the same construction `config_hash` uses — deterministic
/// across platforms and runs, which is what addresses record files.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The sampling knobs of an estimated record. Exact records (any exact mode,
/// including `--sampled --sample-period 0`) carry `None` instead, so they
/// share one address across execution modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingKnobs {
    /// Measured instructions per sampling unit.
    pub unit: u64,
    /// Detailed warm-up instructions before each unit.
    pub warmup: u64,
    /// Sampling period in dynamic instructions (always nonzero here).
    pub period: u64,
}

/// The content address of one cell result: everything that determines the
/// simulation's output, plus the [`engine_fingerprint`]. Two cells with equal
/// canonical keys are guaranteed byte-identical results; any field changing
/// (a seed override, a different ROB sweep point, an engine upgrade, new
/// sampling knobs) changes the address and forces re-simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellKey {
    /// The [`engine_fingerprint`] of the build that produced the record.
    pub engine: String,
    /// Experiment name (`figure5`, `sweep`, ...).
    pub experiment: String,
    /// Whether the spec describes a reduced fast-mode run.
    pub fast: bool,
    /// The spec's configuration hash (covers workloads, configs, overrides,
    /// widths, baseline policy, scale and seed).
    pub config_hash: String,
    /// The cell identity string `"{workload} / {config} / {way}-way"` — the
    /// same key `momlab diff` matches cells by.
    pub cell: String,
    /// ISA label of the cell's machine configuration.
    pub isa: String,
    /// Memory-model label (perfect models embed their latency).
    pub mem: String,
    /// Reorder-buffer override of the cell's config (`None` = Table 1 size).
    pub rob: Option<u64>,
    /// Workload scale factor.
    pub scale: u64,
    /// Workload generator seed.
    pub seed: u64,
    /// Sampling knobs for estimated records; `None` for exact records.
    pub sampling: Option<SamplingKnobs>,
}

impl CellKey {
    /// The canonical single-line form of the key — what gets hashed into the
    /// record file name and compared verbatim on load (the collision guard).
    pub fn canonical(&self) -> String {
        let rob = match self.rob {
            Some(rob) => rob.to_string(),
            None => "default".to_string(),
        };
        let sampling = match &self.sampling {
            None => "exact".to_string(),
            Some(k) => format!("sampled:{}/{}/{}", k.unit, k.warmup, k.period),
        };
        format!(
            "{} | {} fast:{} {} | {} | isa:{} mem:{} rob:{} | scale:{} seed:{} | {}",
            self.engine,
            self.experiment,
            self.fast,
            self.config_hash,
            self.cell,
            self.isa,
            self.mem,
            rob,
            self.scale,
            self.seed,
            sampling,
        )
    }

    /// The record file name: the FNV-1a hash of the canonical key, in hex.
    pub fn file_name(&self) -> String {
        format!("{:016x}.cell", fnv1a(self.canonical().as_bytes()))
    }

    fn save_state(&self, e: &mut Encoder) {
        e.blob(self.engine.as_bytes());
        e.blob(self.experiment.as_bytes());
        e.bool(self.fast);
        e.blob(self.config_hash.as_bytes());
        e.blob(self.cell.as_bytes());
        e.blob(self.isa.as_bytes());
        e.blob(self.mem.as_bytes());
        match self.rob {
            Some(rob) => {
                e.bool(true);
                e.u64(rob);
            }
            None => e.bool(false),
        }
        e.u64(self.scale);
        e.u64(self.seed);
        match &self.sampling {
            Some(k) => {
                e.bool(true);
                e.u64(k.unit);
                e.u64(k.warmup);
                e.u64(k.period);
            }
            None => e.bool(false),
        }
    }

    fn load_state(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let text = |bytes: &[u8], what: &'static str| -> Result<String, CodecError> {
            String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid { what })
        };
        let engine = text(d.blob("cache key engine")?, "cache key engine")?;
        let experiment = text(d.blob("cache key experiment")?, "cache key experiment")?;
        let fast = d.bool("cache key fast flag")?;
        let config_hash = text(d.blob("cache key config hash")?, "cache key config hash")?;
        let cell = text(d.blob("cache key cell")?, "cache key cell")?;
        let isa = text(d.blob("cache key isa")?, "cache key isa")?;
        let mem = text(d.blob("cache key mem")?, "cache key mem")?;
        let rob = if d.bool("cache key rob flag")? {
            Some(d.u64("cache key rob")?)
        } else {
            None
        };
        let scale = d.u64("cache key scale")?;
        let seed = d.u64("cache key seed")?;
        let sampling = if d.bool("cache key sampling flag")? {
            Some(SamplingKnobs {
                unit: d.u64("cache key sampling unit")?,
                warmup: d.u64("cache key sampling warmup")?,
                period: d.u64("cache key sampling period")?,
            })
        } else {
            None
        };
        Ok(CellKey {
            engine,
            experiment,
            fast,
            config_hash,
            cell,
            isa,
            mem,
            rob,
            scale,
            seed,
            sampling,
        })
    }
}

/// One cached cell result — exactly what the runner's assembly stage needs
/// to rebuild the cell without simulating: the timing summary, the verified
/// stall attribution and interval timeline, the memory-system statistics,
/// and (for sampled cells) the confidence-interval accounting. Speed-ups are
/// *not* cached: they depend on the baseline cell and are derived fresh at
/// assembly, so a record stays valid under any baseline policy.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// The cell's timing summary.
    pub sim: SimResult,
    /// Stall breakdown and interval timeline.
    pub probe: ProbeReport,
    /// Memory-system statistics.
    pub mem: MemSystemStats,
    /// Sampling accounting for estimated records; `None` for exact records.
    pub sampling: Option<CellSampling>,
}

impl CellRecord {
    /// Serialize the full record file: magic, version, the key it answers
    /// for, and the result payload. Deterministic — two encodings of equal
    /// records are byte-identical, which is what lets `momlab cache verify`
    /// compare re-simulated records file-byte for file-byte.
    pub fn to_bytes(&self, key: &CellKey) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(CACHE_MAGIC);
        e.u32(CACHE_VERSION);
        key.save_state(&mut e);
        let mut p = Encoder::new();
        self.save_payload(&mut p);
        e.blob(p.bytes());
        e.into_bytes()
    }

    /// Decode a record file written by [`CellRecord::to_bytes`].
    ///
    /// # Errors
    ///
    /// Fails on a wrong magic number, an unknown version, truncation at any
    /// field boundary, out-of-range values, or trailing bytes — every one of
    /// which [`CellCache::load`] turns into a clean miss.
    pub fn from_bytes(bytes: &[u8]) -> Result<(CellKey, CellRecord), CodecError> {
        let mut d = Decoder::new(bytes);
        d.expect_u64(CACHE_MAGIC, "cache record magic")?;
        let version = d.u32("cache record version")?;
        if version != CACHE_VERSION {
            return Err(CodecError::Version { what: "cache record", found: version });
        }
        let key = CellKey::load_state(&mut d)?;
        let payload = d.blob("cache record payload")?;
        d.finish("cache record")?;
        let mut p = Decoder::new(payload);
        let record = CellRecord::load_payload(&mut p)?;
        p.finish("cache record payload")?;
        Ok((key, record))
    }

    fn save_payload(&self, e: &mut Encoder) {
        e.u64(self.sim.cycles);
        e.u64(self.sim.committed);
        e.u64(self.sim.branches);
        e.u64(self.sim.mispredictions);
        e.u64(self.sim.mem_retries);
        e.u64(self.sim.mem_accesses);
        self.probe.save_state(e);
        self.mem.save_state(e);
        match &self.sampling {
            Some(s) => {
                e.bool(true);
                e.u64(s.units_measured);
                e.u64(s.measured_insts);
                e.u64(s.warmup_insts);
                e.u64(s.total_insts);
                e.f64(s.ipc_mean);
                e.f64(s.ipc_ci95);
            }
            None => e.bool(false),
        }
    }

    fn load_payload(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let sim = SimResult {
            cycles: d.u64("cached cycles")?,
            committed: d.u64("cached committed")?,
            branches: d.u64("cached branches")?,
            mispredictions: d.u64("cached mispredictions")?,
            mem_retries: d.u64("cached mem retries")?,
            mem_accesses: d.u64("cached mem accesses")?,
        };
        let probe = ProbeReport::load_state(d)?;
        let mem = MemSystemStats::load_state(d)?;
        let sampling = if d.bool("cached sampling flag")? {
            Some(CellSampling {
                units_measured: d.u64("cached units measured")?,
                measured_insts: d.u64("cached measured insts")?,
                warmup_insts: d.u64("cached warmup insts")?,
                total_insts: d.u64("cached total insts")?,
                ipc_mean: d.f64("cached ipc mean")?,
                ipc_ci95: d.f64("cached ipc ci95")?,
            })
        } else {
            None
        };
        Ok(CellRecord { sim, probe, mem, sampling })
    }
}

/// One record file as seen by `momlab cache ls`/`gc`: its path, size, last
/// access (hits touch the mtime — the LRU clock), and decoded key when the
/// file is a valid record (`None` marks a corrupt file, which `gc` still
/// evicts and a lookup treats as a miss).
#[derive(Debug)]
pub struct CacheEntry {
    /// Absolute or cache-relative path of the record file.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// Modification time — touched on every hit, so eviction is LRU.
    pub mtime: SystemTime,
    /// The record's key, or `None` when the file fails to decode.
    pub key: Option<CellKey>,
}

/// The `meta.cache` accounting of one run against a [`CellCache`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheMeta {
    /// Cells served from the cache.
    pub hits: u64,
    /// Cells that had to simulate.
    pub misses: u64,
    /// Records written (every miss fills).
    pub fills: u64,
    /// Total bytes of all record files after the run.
    pub bytes: u64,
    /// The cache directory.
    pub dir: String,
}

/// The on-disk store: a directory of `*.cell` record files addressed by
/// [`CellKey::file_name`]. Lookups treat every failure as a miss; fills are
/// atomic (tmp + rename), so concurrent readers never observe a torn record.
#[derive(Debug)]
pub struct CellCache {
    dir: PathBuf,
}

impl CellCache {
    /// Open (creating if missing) the cache directory.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<CellCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CellCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The record file path a key addresses.
    pub fn record_path(&self, key: &CellKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Look up a cell result. Every failure — missing file, unreadable file,
    /// wrong magic or version, truncation anywhere, trailing garbage, or a
    /// stored key that does not match `key` (an FNV collision or a tampered
    /// file) — is a clean miss: the caller re-simulates and overwrites. A hit
    /// touches the file's mtime (best-effort) so `gc` eviction is LRU.
    pub fn load(&self, key: &CellKey) -> Option<CellRecord> {
        let path = self.record_path(key);
        let bytes = std::fs::read(&path).ok()?;
        let (stored, record) = CellRecord::from_bytes(&bytes).ok()?;
        if stored.canonical() != key.canonical() {
            return None;
        }
        if let Ok(file) = std::fs::File::options().write(true).open(&path) {
            let _ = file.set_modified(SystemTime::now());
        }
        Some(record)
    }

    /// Write (or overwrite) a record atomically: the bytes land in a
    /// process-unique temporary file first and are renamed into place, so a
    /// concurrent reader sees either the old record or the new one, never a
    /// torn write.
    ///
    /// # Panics
    ///
    /// Panics when the record cannot be written — like a checkpoint, a cache
    /// directory that stops accepting writes mid-run is a configuration
    /// error worth failing loudly on.
    pub fn store(&self, key: &CellKey, record: &CellRecord) {
        let path = self.record_path(key);
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        std::fs::write(&tmp, record.to_bytes(key))
            .and_then(|()| std::fs::rename(&tmp, &path))
            .unwrap_or_else(|err| panic!("cannot write cache record {}: {err}", path.display()));
    }

    /// Total bytes of every record file currently in the cache.
    pub fn bytes(&self) -> u64 {
        std::fs::read_dir(&self.dir)
            .map(|it| {
                it.flatten()
                    .filter(|e| is_record(&e.path()))
                    .filter_map(|e| e.metadata().ok())
                    .map(|m| m.len())
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Every record file in the cache, sorted by path (deterministic), with
    /// keys decoded where possible.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be read.
    pub fn entries(&self) -> std::io::Result<Vec<CacheEntry>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            if !is_record(&path) {
                continue;
            }
            let meta = entry.metadata()?;
            let key = std::fs::read(&path)
                .ok()
                .and_then(|bytes| CellRecord::from_bytes(&bytes).ok())
                .map(|(key, _)| key);
            out.push(CacheEntry {
                path,
                bytes: meta.len(),
                mtime: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                key,
            });
        }
        out.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(out)
    }

    /// Evict least-recently-used records (oldest mtime first; hits touch the
    /// mtime) until the cache fits in `max_bytes`. Corrupt files evict like
    /// any other. Returns `(evicted_records, evicted_bytes, remaining_bytes)`.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be read or a record cannot be removed.
    pub fn gc(&self, max_bytes: u64) -> std::io::Result<(usize, u64, u64)> {
        let mut entries = self.entries()?;
        entries.sort_by(|a, b| (a.mtime, &a.path).cmp(&(b.mtime, &b.path)));
        let mut remaining: u64 = entries.iter().map(|e| e.bytes).sum();
        let (mut evicted, mut evicted_bytes) = (0usize, 0u64);
        for entry in &entries {
            if remaining <= max_bytes {
                break;
            }
            std::fs::remove_file(&entry.path)?;
            remaining -= entry.bytes;
            evicted += 1;
            evicted_bytes += entry.bytes;
        }
        Ok((evicted, evicted_bytes, remaining))
    }
}

/// Whether a path names a cache record file (`*.cell`).
fn is_record(path: &Path) -> bool {
    path.extension().and_then(|e| e.to_str()) == Some("cell")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> CellKey {
        CellKey {
            engine: engine_fingerprint(),
            experiment: "figure5".into(),
            fast: true,
            config_hash: "fnv1a:0123456789abcdef".into(),
            cell: "idct / mom / 4-way".into(),
            isa: "mom".into(),
            mem: "real".into(),
            rob: None,
            scale: 1,
            seed: 12345,
            sampling: None,
        }
    }

    fn record() -> CellRecord {
        CellRecord {
            sim: SimResult {
                cycles: 1000,
                committed: 2000,
                branches: 30,
                mispredictions: 4,
                mem_retries: 5,
                mem_accesses: 600,
            },
            probe: ProbeReport::default(),
            mem: MemSystemStats::default(),
            sampling: None,
        }
    }

    #[test]
    fn fingerprint_names_version_and_backend() {
        let fp = engine_fingerprint();
        assert!(fp.contains(env!("CARGO_PKG_VERSION")));
        assert!(fp.contains(&format!("simd:{}", mom_isa::simd_active())));
    }

    #[test]
    fn canonical_key_changes_with_every_field() {
        let base = key();
        let mut seen = vec![base.canonical()];
        let variants = [
            CellKey { engine: "momlab 0.0.0 swar simd:true".into(), ..base.clone() },
            CellKey { experiment: "sweep".into(), ..base.clone() },
            CellKey { fast: false, ..base.clone() },
            CellKey { config_hash: "fnv1a:0".into(), ..base.clone() },
            CellKey { cell: "fir / mom / 4-way".into(), ..base.clone() },
            CellKey { isa: "alpha".into(), ..base.clone() },
            CellKey { mem: "perfect-1".into(), ..base.clone() },
            CellKey { rob: Some(64), ..base.clone() },
            CellKey { scale: 2, ..base.clone() },
            CellKey { seed: 1, ..base.clone() },
            CellKey {
                sampling: Some(SamplingKnobs { unit: 1000, warmup: 2000, period: 100_000 }),
                ..base.clone()
            },
        ];
        for v in &variants {
            let canon = v.canonical();
            assert!(!seen.contains(&canon), "key variant collided: {canon}");
            seen.push(canon);
        }
    }

    #[test]
    fn record_roundtrip_is_byte_stable() {
        let (k, r) = (key(), record());
        let bytes = r.to_bytes(&k);
        let (k2, r2) = CellRecord::from_bytes(&bytes).expect("decodes");
        assert_eq!(k2, k);
        assert_eq!(r2, r);
        assert_eq!(r2.to_bytes(&k2), bytes, "encode -> decode -> encode must be stable");
    }

    #[test]
    fn store_load_gc_lifecycle() {
        let dir = std::env::temp_dir().join(format!("momlab-cache-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CellCache::open(&dir).expect("open");
        let (k, r) = (key(), record());
        assert!(cache.load(&k).is_none(), "empty cache misses");
        cache.store(&k, &r);
        assert_eq!(cache.load(&k).as_ref(), Some(&r), "stored record hits");
        assert_eq!(cache.bytes(), r.to_bytes(&k).len() as u64);
        let entries = cache.entries().expect("entries");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].key.as_ref().map(|k| k.cell.clone()), Some(k.cell.clone()));
        let (evicted, evicted_bytes, remaining) = cache.gc(0).expect("gc");
        assert_eq!((evicted, remaining), (1, 0));
        assert_eq!(evicted_bytes, r.to_bytes(&k).len() as u64);
        assert!(cache.load(&k).is_none(), "evicted record misses");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_records_are_clean_misses() {
        let dir = std::env::temp_dir().join(format!("momlab-cache-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CellCache::open(&dir).expect("open");
        let (k, r) = (key(), record());
        let good = r.to_bytes(&k);
        let path = cache.record_path(&k);
        // Truncation at every byte boundary is a miss, never a panic.
        for len in 0..good.len() {
            std::fs::write(&path, &good[..len]).expect("write truncated");
            assert!(cache.load(&k).is_none(), "truncated at {len} must miss");
        }
        // Trailing garbage is a miss.
        let mut long = good.clone();
        long.push(0);
        std::fs::write(&path, &long).expect("write oversized");
        assert!(cache.load(&k).is_none(), "trailing bytes must miss");
        // A flipped magic byte is a miss.
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        std::fs::write(&path, &bad_magic).expect("write bad magic");
        assert!(cache.load(&k).is_none(), "magic mismatch must miss");
        // A bumped version is a miss.
        let mut bad_version = good.clone();
        bad_version[8] = bad_version[8].wrapping_add(1);
        std::fs::write(&path, &bad_version).expect("write bad version");
        assert!(cache.load(&k).is_none(), "version bump must miss");
        // A re-fill overwrites the bad record and hits again.
        cache.store(&k, &r);
        assert_eq!(cache.load(&k).as_ref(), Some(&r));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_under_same_file_name_is_a_miss() {
        let dir = std::env::temp_dir().join(format!("momlab-cache-alias-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CellCache::open(&dir).expect("open");
        let (k, r) = (key(), record());
        // Simulate an FNV collision: a valid record for a *different* key
        // planted at this key's path must not be served.
        let other = CellKey { seed: 999, ..k.clone() };
        std::fs::write(cache.record_path(&k), r.to_bytes(&other)).expect("plant alias");
        assert!(cache.load(&k).is_none(), "stored key must match the address");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
