//! `momlab` — the experiment-orchestration CLI.
//!
//! ```text
//! momlab list [--experiment NAME]...
//! momlab describe <NAME>... [--sweep-dims SPEC]
//! momlab run <NAME>... | --all [options]
//! momlab --all                      # shorthand for `momlab run --all`
//! momlab diff <NEW.json> --baseline <OLD.json> [--tolerance F]
//! momlab cache ls|verify|gc [--cache-dir DIR] [--max-bytes N]
//! ```
//!
//! `momlab describe` prints the resolved machine grid of an experiment: one
//! line per cell with the full `MachineDescriptor` (core organisation, ROB,
//! memory system, register files) the runner would instantiate.
//!
//! Run options:
//!
//! * `--experiment NAME` — with `--all`, restrict which experiments run
//! * `--kernel K` / `--app A` / `--isa I` — restrict grid experiments
//!   (repeatable)
//! * `--scale N` — workload scale (default 1)
//! * `--seed N` — workload seed override (recorded in the spec and its
//!   `config_hash`)
//! * `--workers N` — worker threads (default: min(cpus, 8), overridable via
//!   `MOM_LAB_WORKERS`; 1 = serial)
//! * `--streamed` — fused *per-cell* streaming: each cell re-interprets its
//!   workload and feeds its simulator directly (byte-identical results;
//!   O(ROB) memory per cell). `MOM_LAB_STREAM=1` sets the same default
//! * `--materialized` — the classic two-stage path: build each distinct
//!   trace once, replay it per cell. Without either flag the runner uses the
//!   **fan-out** mode: one functional pass per `(workload, ISA)` group,
//!   fanned out to all member simulators (byte-identical, and the functional
//!   work drops by the factor reported in `meta.shared_passes`). With 2+
//!   workers the fan-out pipelines: the interpreter publishes instruction
//!   batches through bounded channels to one consumer thread per member
//!   (`meta.pipeline` records batch size, channel capacity and occupancy;
//!   `MOM_LAB_BATCH` / `MOM_LAB_CHANNEL` tune the knobs)
//! * `--sampled` — SMARTS-style sampled simulation: each cell simulates a
//!   detailed warm-up + measurement unit at the head of every sampling
//!   period and functionally fast-forwards the rest, so wall-clock scales
//!   with the number of samples instead of the workload length. Cells are
//!   IPC *estimates* with 95% confidence intervals (reported in a `sampling`
//!   results section); `--sample-period 0` measures everything and is
//!   byte-identical to `--streamed`
//! * `--sample-unit N` / `--sample-warmup N` / `--sample-period N` — the
//!   sampling knobs (defaults 1000 / 2000 / 100000 dynamic instructions;
//!   each implies `--sampled`)
//! * `--checkpoint-dir DIR` — persist a serialized checkpoint per kernel
//!   cell at every sampling period boundary (sampled runs only)
//! * `--resume` — resume cells from the checkpoint files in
//!   `--checkpoint-dir` instead of starting over (the completed run is
//!   byte-identical to an uninterrupted one)
//! * `--sweep-dims SPEC` — override the `sweep` experiment's grid, e.g.
//!   `rob=16,32:lat=1,50:way=4,8` (axes: `rob`, `lat`, `way`; omitted axes
//!   keep their defaults)
//! * `--json FILE` — result file path (single experiment only)
//! * `--out-dir DIR` — directory for `BENCH_<name>.json` files (default `.`)
//! * `--results-only` — write only the deterministic results document (no
//!   `meta` section with wall-clock/throughput data); use when regenerating
//!   the committed `baselines/`, so baseline diffs stay free of
//!   machine-specific noise
//! * `--no-json` — skip writing result files
//! * `--quiet` — suppress the text tables
//! * `--baseline FILE` — diff the result against a saved JSON document;
//!   exit code 2 when a regression is found
//! * `--compare FILE` — embed a `comparison` section into the written
//!   document: wall-clock speedup over the exact run saved in FILE plus the
//!   per-cell IPC error against it (how the committed sampled BENCH
//!   artifacts carry their own accuracy evidence)
//! * `--tolerance F` — relative cycle tolerance for `--baseline` (default 0.02)
//! * `--throughput-gate MINST` — exit 2 when an experiment's aggregate
//!   simulator throughput lands below MINST million instructions per second
//!   (full mode only; skipped with a stderr note under `MOM_BENCH_FAST=1`,
//!   and cache-hit cells are exempt from the aggregate — an all-hit run
//!   skips the gate with a note)
//! * `--cache-dir DIR` — persistent content-addressed cell cache: store
//!   every simulated cell as a binary record and serve identical cells from
//!   disk on later runs, byte-identically, across all execution modes
//!   (`MOM_LAB_CACHE=DIR` sets the same default; `--no-cache` disables both;
//!   `meta.cache` in the document and a stderr summary report hit counts)
//! * `--trace-out FILE` — write a Chrome trace-event JSON of the runner's
//!   scheduler spans (one trace process per experiment, one track per worker;
//!   load it in `chrome://tracing` or Perfetto)
//!
//! `momlab diff` (and `--baseline`) gate on simulated cycles only. When both
//! documents carry a `meta.throughput` section, the report additionally
//! prints informational per-cell `insts_per_sec` deltas (`throughput:`
//! lines), and when both carry `meta.shared_passes` it prints the
//! functional-sharing factors (`sharing:` line) — so simulator-performance
//! changes stay visible in CI logs without wall-clock noise ever affecting
//! the exit code.
//!
//! `MOM_BENCH_FAST=1` selects the same reduced workload subsets as the legacy
//! experiment binaries.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::str::FromStr;

use mom_apps::AppKind;
use mom_isa::trace::IsaKind;
use mom_kernels::KernelKind;
use mom_lab::baseline::{diff_documents, DEFAULT_TOLERANCE};
use mom_lab::cache::{CacheEntry, CellCache};
use mom_lab::json::Value;
use mom_lab::runner::ExecMode;
use mom_lab::spec::{sweep_spec, ExperimentKind, ExperimentSpec, SweepDims, BUILTIN_EXPERIMENTS};
use mom_lab::{report, runner};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
Usage:
  momlab list [--experiment NAME]...
  momlab describe <NAME>... [--sweep-dims SPEC]
  momlab run <NAME>... | --all [--experiment NAME]... [--kernel K]... [--app A]...
             [--isa I]... [--scale N] [--seed N] [--workers N] [--streamed]
             [--materialized] [--sampled] [--sample-unit N] [--sample-warmup N]
             [--sample-period N] [--checkpoint-dir DIR] [--resume]
             [--sweep-dims SPEC] [--json FILE] [--out-dir DIR] [--results-only]
             [--no-json] [--quiet] [--baseline FILE] [--compare FILE]
             [--tolerance F] [--trace-out FILE] [--throughput-gate MINST]
             [--cache-dir DIR] [--no-cache]
  momlab --all
  momlab diff <NEW.json> --baseline <OLD.json> [--tolerance F]
  momlab cache ls|verify|gc [--cache-dir DIR] [--max-bytes N] [--workers N]

Built-in experiments: table1 table2 table3 isa_inventory figure5
                      latency_tolerance figure7 stress sweep

Execution modes: the default fan-out runner shares one functional pass per
(workload, ISA) group across all member machines — pipelined across threads
at 2+ workers; --streamed runs the fused per-cell pipeline; --materialized
builds and replays traces. All three are byte-identical in their results.
--sampled trades exactness for wall-clock: per sampling period (default
100000 insts) it simulates a detailed warm-up (2000) plus a measured unit
(1000) and fast-forwards the rest, reporting per-cell IPC estimates with
95% confidence intervals in a `sampling` results section. --sample-period 0
measures every instruction and is byte-identical to --streamed. With
--checkpoint-dir, kernel cells persist a resumable checkpoint every period;
--resume continues from those files bit-exactly.

--sweep-dims overrides the sweep grid, e.g. rob=16,32:lat=1,50:way=4,8.

--trace-out FILE writes a Chrome trace-event JSON of the runner's scheduler
spans (one process per experiment; open in chrome://tracing or Perfetto).

--throughput-gate MINST exits 2 when any selected experiment's aggregate
simulator throughput falls below MINST million instructions per second.
Full-mode runs only: under MOM_BENCH_FAST=1 the gate is skipped (with a
note on stderr), since reduced workloads measure nothing comparable.
Cache hits skip simulation, so cached cells are exempt from the aggregate
and an all-hit run skips the gate entirely (with a stderr note).

--cache-dir DIR enables the persistent content-addressed cell cache: each
grid cell's simulation result is stored as one binary record keyed by the
experiment's config_hash, the cell identity and the engine fingerprint, so
re-running an identical cell costs a file read instead of a simulation —
byte-identical results, any execution mode can serve any other (sampled
runs key separately per sampling knobs). MOM_LAB_CACHE=DIR sets the same
default (--cache-dir wins); --no-cache disables both. Warm runs report
hits on stderr and in the document's meta.cache section.

momlab cache ls lists the records in a cache directory; cache verify
re-simulates every record this binary can rebuild and diffs at tolerance 0
(exit 2 on mismatch); cache gc --max-bytes N evicts least-recently-used
records until the directory fits in N bytes.

MOM_BENCH_FAST=1 selects the reduced fast-mode workload subsets.
MOM_LAB_CACHE=DIR enables the persistent cell cache by default.
MOM_LAB_STREAM=1 enables the fused per-cell streaming pipeline by default.
MOM_LAB_WORKERS=N overrides the default worker cap (--workers still wins).
MOM_LAB_BATCH=N / MOM_LAB_CHANNEL=N tune the pipelined fan-out's batch size
(default 1024 insts) and per-member channel capacity (default 4 batches).";

/// Everything `momlab run` / `momlab list` / `momlab diff` accept.
#[derive(Debug, Default)]
struct Options {
    all: bool,
    names: Vec<String>,
    experiments: Vec<String>,
    kernels: Vec<KernelKind>,
    isas: Vec<IsaKind>,
    apps: Vec<AppKind>,
    scale: usize,
    seed: Option<u64>,
    workers: Option<usize>,
    streamed: bool,
    materialized: bool,
    sampled: bool,
    sample_unit: Option<u64>,
    sample_warmup: Option<u64>,
    sample_period: Option<u64>,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    sweep_dims: Option<String>,
    json: Option<PathBuf>,
    out_dir: PathBuf,
    results_only: bool,
    no_json: bool,
    quiet: bool,
    baseline: Option<PathBuf>,
    compare: Option<PathBuf>,
    tolerance: f64,
    trace_out: Option<PathBuf>,
    throughput_gate: Option<f64>,
    cache_dir: Option<PathBuf>,
    no_cache: bool,
    max_bytes: Option<u64>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        scale: 1,
        out_dir: PathBuf::from("."),
        tolerance: DEFAULT_TOLERANCE,
        ..Options::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--all" => opts.all = true,
            "--experiment" => opts.experiments.push(value("--experiment")?.to_string()),
            "--kernel" => opts.kernels.push(KernelKind::from_str(value("--kernel")?)?),
            "--isa" => opts.isas.push(IsaKind::from_str(value("--isa")?)?),
            "--app" => opts.apps.push(AppKind::from_str(value("--app")?)?),
            "--scale" => {
                opts.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))
                    .and_then(|s| if s == 0 { Err("--scale must be >= 1".into()) } else { Ok(s) })?
            }
            "--workers" => {
                opts.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))
                        .and_then(|w| {
                            if w == 0 {
                                Err("--workers must be >= 1".to_string())
                            } else {
                                Ok(w)
                            }
                        })?,
                )
            }
            "--seed" => {
                opts.seed =
                    Some(value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?)
            }
            "--streamed" => opts.streamed = true,
            "--materialized" => opts.materialized = true,
            "--sampled" => opts.sampled = true,
            "--sample-unit" => {
                opts.sample_unit = Some(
                    value("--sample-unit")?
                        .parse()
                        .map_err(|e| format!("--sample-unit: {e}"))
                        .and_then(|u| {
                            if u == 0 {
                                Err("--sample-unit must be >= 1".to_string())
                            } else {
                                Ok(u)
                            }
                        })?,
                );
                opts.sampled = true;
            }
            "--sample-warmup" => {
                opts.sample_warmup = Some(
                    value("--sample-warmup")?
                        .parse()
                        .map_err(|e| format!("--sample-warmup: {e}"))?,
                );
                opts.sampled = true;
            }
            "--sample-period" => {
                opts.sample_period = Some(
                    value("--sample-period")?
                        .parse()
                        .map_err(|e| format!("--sample-period: {e}"))?,
                );
                opts.sampled = true;
            }
            "--checkpoint-dir" => {
                opts.checkpoint_dir = Some(PathBuf::from(value("--checkpoint-dir")?))
            }
            "--resume" => opts.resume = true,
            "--sweep-dims" => opts.sweep_dims = Some(value("--sweep-dims")?.to_string()),
            "--json" => opts.json = Some(PathBuf::from(value("--json")?)),
            "--out-dir" => opts.out_dir = PathBuf::from(value("--out-dir")?),
            "--results-only" => opts.results_only = true,
            "--no-json" => opts.no_json = true,
            "--quiet" => opts.quiet = true,
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--compare" => opts.compare = Some(PathBuf::from(value("--compare")?)),
            "--trace-out" => opts.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--cache-dir" => opts.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--no-cache" => opts.no_cache = true,
            "--max-bytes" => {
                opts.max_bytes = Some(
                    value("--max-bytes")?.parse().map_err(|e| format!("--max-bytes: {e}"))?,
                )
            }
            "--throughput-gate" => {
                opts.throughput_gate = Some(
                    value("--throughput-gate")?
                        .parse()
                        .map_err(|e| format!("--throughput-gate: {e}"))
                        .and_then(|g: f64| {
                            if g.is_finite() && g > 0.0 {
                                Ok(g)
                            } else {
                                Err("--throughput-gate must be a finite value > 0".to_string())
                            }
                        })?,
                )
            }
            "--tolerance" => {
                opts.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))
                    .and_then(|t: f64| {
                        if t.is_finite() && t >= 0.0 {
                            Ok(t)
                        } else {
                            Err("--tolerance must be a finite value >= 0".to_string())
                        }
                    })?
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            name => opts.names.push(name.to_string()),
        }
    }
    Ok(opts)
}

fn run_cli(args: &[String]) -> Result<ExitCode, String> {
    // `--help`/`-h` anywhere (including after a subcommand) prints usage and
    // succeeds.
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    match args.first().map(String::as_str) {
        None => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some("list") => cmd_list(&parse_options(&args[1..])?),
        Some("describe") => cmd_describe(&parse_options(&args[1..])?),
        Some("run") => cmd_run(&parse_options(&args[1..])?),
        Some("diff") => cmd_diff(&parse_options(&args[1..])?),
        Some("cache") => cmd_cache(&parse_options(&args[1..])?),
        // `momlab --all` is a shorthand for `momlab run --all`.
        Some(_) => cmd_run(&parse_options(args)?),
    }
}

/// Which experiments the name/--experiment/--all selection resolves to.
fn selected_specs(opts: &Options) -> Result<Vec<ExperimentSpec>, String> {
    let fast = mom_lab::fast_mode();
    // Validate --experiment names up front: with --all a misspelled filter
    // would otherwise silently select nothing and exit 0.
    for name in &opts.experiments {
        if !BUILTIN_EXPERIMENTS.contains(&name.as_str()) {
            return Err(format!(
                "unknown experiment {name:?} (try: {})",
                BUILTIN_EXPERIMENTS.join(", ")
            ));
        }
    }
    let mut names: Vec<String> = opts.names.clone();
    names.extend(opts.experiments.iter().cloned());
    if opts.all || names.is_empty() {
        names = BUILTIN_EXPERIMENTS.iter().map(|&n| n.to_string()).collect();
        if !opts.experiments.is_empty() {
            names.retain(|n| opts.experiments.contains(n));
        }
    }
    if opts.sweep_dims.is_some() && !names.iter().any(|n| n == "sweep") {
        return Err("--sweep-dims applies to the sweep experiment; select it explicitly".into());
    }
    let mut specs = Vec::new();
    for name in &names {
        let mut spec = if name == "sweep" && opts.sweep_dims.is_some() {
            let dims = SweepDims::parse(opts.sweep_dims.as_deref().unwrap_or_default(), fast)?;
            sweep_spec(&dims, opts.scale, fast)
        } else {
            ExperimentSpec::builtin(name, opts.scale, fast).ok_or_else(|| {
                format!("unknown experiment {name:?} (try: {})", BUILTIN_EXPERIMENTS.join(", "))
            })?
        };
        if let ExperimentKind::Grid(grid) = &mut spec.kind {
            // The seed is part of the spec, so the override flows into the
            // config_hash and the results document automatically.
            if let Some(seed) = opts.seed {
                grid.seed = seed;
            }
            if !opts.kernels.is_empty() {
                grid.retain_kernels(&opts.kernels);
            }
            if !opts.apps.is_empty() {
                grid.retain_apps(&opts.apps);
            }
            if !opts.isas.is_empty() {
                grid.retain_isas(&opts.isas);
            }
            if grid.workloads.is_empty() || grid.configs.is_empty() {
                return Err(format!(
                    "the --kernel/--app/--isa filters leave {name} with an empty grid"
                ));
            }
        }
        specs.push(spec);
    }
    Ok(specs)
}

fn cmd_list(opts: &Options) -> Result<ExitCode, String> {
    let specs = selected_specs(opts)?;
    println!("{:<20} {:<6} {:>6} title", "experiment", "kind", "cells");
    for spec in &specs {
        let (kind, cells) = match spec.grid() {
            Some(grid) => ("grid", grid.cells().len().to_string()),
            None => ("static", "-".to_string()),
        };
        println!("{:<20} {:<6} {:>6} {}", spec.name, kind, cells, spec.title);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_describe(opts: &Options) -> Result<ExitCode, String> {
    if opts.names.is_empty() && opts.experiments.is_empty() && !opts.all {
        return Err("describe takes at least one experiment name".into());
    }
    let specs = selected_specs(opts)?;
    for (i, spec) in specs.iter().enumerate() {
        if i > 0 {
            println!();
        }
        print!("{}", report::describe(spec));
    }
    Ok(ExitCode::SUCCESS)
}

fn read_document(path: &Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Value::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Build the `comparison` member `--compare` embeds in the written document:
/// wall-clock speedup against the exact baseline run plus the per-cell IPC
/// error of this run's estimates, so a committed sampled BENCH artifact
/// carries its own accuracy evidence. Both documents must be grid results of
/// the same experiment at the same scale, and the baseline must carry
/// `meta.wall_ms` (i.e. not be a `--results-only` document).
fn comparison_section(
    new: &Value,
    exact: &Value,
    exact_path: &Path,
    wall_ms: u64,
) -> Result<Value, String> {
    for field in ["experiment", "scale", "config_hash"] {
        let (a, b) = (new.get(field), exact.get(field));
        if a != b {
            return Err(format!(
                "--compare: {field} mismatch (this run: {}, {}: {})",
                a.map(Value::to_compact).unwrap_or_else(|| "absent".into()),
                exact_path.display(),
                b.map(Value::to_compact).unwrap_or_else(|| "absent".into()),
            ));
        }
    }
    let exact_wall = exact
        .get("meta")
        .and_then(|m| m.get("wall_ms"))
        .and_then(Value::as_i64)
        .ok_or_else(|| {
            format!(
                "--compare: {} carries no meta.wall_ms (written with --results-only?)",
                exact_path.display()
            )
        })?;
    let exact_mode = exact
        .get("meta")
        .and_then(|m| m.get("mode"))
        .and_then(Value::as_str)
        .unwrap_or("?")
        .to_string();
    let cells = |doc: &Value| -> Result<Vec<Value>, String> {
        doc.get("cells")
            .and_then(Value::as_array)
            .map(<[Value]>::to_vec)
            .ok_or_else(|| "--compare applies to grid results only".into())
    };
    let key = |c: &Value| {
        (
            c.get("workload").and_then(Value::as_str).unwrap_or("?").to_string(),
            c.get("config").and_then(Value::as_str).unwrap_or("?").to_string(),
            c.get("way").and_then(Value::as_i64).unwrap_or(-1),
        )
    };
    let ipc = |c: &Value| -> Option<f64> {
        let insts = c.get("instructions").and_then(Value::as_f64)?;
        let cycles = c.get("cycles").and_then(Value::as_f64).filter(|&v| v > 0.0)?;
        Some(insts / cycles)
    };
    let exact_cells = cells(exact)?;
    let mut rows = Vec::new();
    let mut max_error = 0.0f64;
    for cell in &cells(new)? {
        let (workload, config, way) = key(cell);
        let Some(exact_cell) = exact_cells.iter().find(|c| key(c) == key(cell)) else {
            return Err(format!(
                "--compare: cell {workload} / {config} / {way}-way is missing from {}",
                exact_path.display()
            ));
        };
        let (Some(this_ipc), Some(exact_ipc)) = (ipc(cell), ipc(exact_cell)) else {
            return Err(format!(
                "--compare: cell {workload} / {config} / {way}-way has unreadable IPC"
            ));
        };
        let error_pct = (this_ipc - exact_ipc).abs() / exact_ipc * 100.0;
        max_error = max_error.max(error_pct);
        rows.push(Value::object(vec![
            ("workload", Value::Str(workload)),
            ("config", Value::Str(config)),
            ("way", Value::Int(way)),
            ("ipc_exact", Value::Float(exact_ipc)),
            ("ipc_this", Value::Float(this_ipc)),
            ("ipc_error_pct", Value::Float(error_pct)),
        ]));
    }
    Ok(Value::object(vec![
        ("baseline", Value::Str(exact_path.display().to_string())),
        ("baseline_mode", Value::Str(exact_mode)),
        ("baseline_wall_ms", Value::Int(exact_wall)),
        ("wall_ms", Value::Int(wall_ms as i64)),
        ("speedup", Value::Float(exact_wall as f64 / (wall_ms.max(1)) as f64)),
        ("max_ipc_error_pct", Value::Float(max_error)),
        ("cells", Value::Array(rows)),
    ]))
}

fn cmd_run(opts: &Options) -> Result<ExitCode, String> {
    let specs = selected_specs(opts)?;
    if opts.json.is_some() && specs.len() != 1 {
        return Err("--json FILE applies to a single experiment; use --out-dir for several".into());
    }
    if opts.baseline.is_some() && specs.len() != 1 {
        return Err("--baseline applies to a single experiment; use `momlab diff` per file".into());
    }
    if opts.compare.is_some() && specs.len() != 1 {
        return Err("--compare applies to a single experiment".into());
    }
    let workers = opts.workers.unwrap_or_else(runner::default_workers);
    if [opts.streamed, opts.materialized, opts.sampled].iter().filter(|&&f| f).count() > 1 {
        return Err("--streamed, --materialized and --sampled are mutually exclusive".into());
    }
    let mode = if opts.materialized {
        ExecMode::Materialized
    } else if opts.sampled {
        let unit_insts = opts.sample_unit.unwrap_or(runner::DEFAULT_SAMPLE_UNIT);
        let warmup_insts = opts.sample_warmup.unwrap_or(runner::DEFAULT_SAMPLE_WARMUP);
        let period = opts.sample_period.unwrap_or(runner::DEFAULT_SAMPLE_PERIOD);
        if period != 0 && period < warmup_insts + unit_insts {
            return Err(format!(
                "--sample-period {period} is shorter than --sample-warmup {warmup_insts} \
                 + --sample-unit {unit_insts} (use 0 to measure everything)"
            ));
        }
        ExecMode::Sampled { unit_insts, warmup_insts, period }
    } else if opts.streamed || mom_lab::stream_mode() {
        ExecMode::Streamed
    } else {
        ExecMode::Fanout
    };
    if opts.checkpoint_dir.is_some() && !opts.sampled {
        return Err("--checkpoint-dir applies to sampled runs; add --sampled".into());
    }
    if opts.resume && opts.checkpoint_dir.is_none() {
        return Err("--resume needs --checkpoint-dir DIR".into());
    }
    let checkpoints = opts
        .checkpoint_dir
        .as_ref()
        .map(|dir| runner::CheckpointConfig { dir: dir.clone(), resume: opts.resume });
    // --cache-dir wins over MOM_LAB_CACHE; --no-cache disables both.
    let cache_dir =
        if opts.no_cache { None } else { opts.cache_dir.clone().or_else(mom_lab::cache_env_dir) };
    let cache = cache_dir
        .map(|dir| {
            CellCache::open(&dir)
                .map_err(|e| format!("cannot open cache directory {}: {e}", dir.display()))
        })
        .transpose()?;

    let mut exit = ExitCode::SUCCESS;
    // The throughput gate compares against full-mode workloads; fast mode's
    // reduced subsets would pass or fail it meaninglessly.
    let gate = opts.throughput_gate.filter(|_| {
        if mom_lab::fast_mode() {
            eprintln!("throughput gate skipped: fast mode (MOM_BENCH_FAST=1) runs reduced workloads");
            false
        } else {
            true
        }
    });
    let mut trace_processes: Vec<(String, Vec<runner::SpanRec>)> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let result = runner::run_cached(
            spec,
            workers,
            mode,
            !opts.quiet,
            checkpoints.as_ref(),
            cache.as_ref(),
        );
        if let Some(meta) = &result.cache {
            eprintln!(
                "cache: {} hit(s), {} miss(es), {} fill(s), {} bytes in {}",
                meta.hits, meta.misses, meta.fills, meta.bytes, meta.dir
            );
        }
        if opts.trace_out.is_some() {
            trace_processes.push((spec.name.clone(), result.spans.clone()));
        }
        if !opts.quiet {
            if i > 0 {
                println!();
            }
            print!("{}", report::render(&result));
            if let Some(stack) = report::render_breakdown(&result) {
                println!();
                print!("{stack}");
            }
        }
        if !opts.no_json {
            let path = match &opts.json {
                Some(path) => path.clone(),
                None => opts.out_dir.join(format!("BENCH_{}.json", spec.name)),
            };
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            }
            let mut document = if opts.results_only {
                result.results_json()
            } else {
                result.document_json()
            };
            if let Some(exact_path) = &opts.compare {
                let exact = read_document(exact_path)?;
                let section = comparison_section(&document, &exact, exact_path, result.wall_ms)?;
                let Value::Object(members) = &mut document else {
                    return Err("result document is not a JSON object".into());
                };
                members.push(("comparison".into(), section));
            }
            std::fs::write(&path, document.to_pretty())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            let throughput = result
                .total_insts_per_sec()
                .map(|ips| format!(", {:.1} Minst/s", ips / 1e6))
                .unwrap_or_default();
            let sharing = result
                .sharing_factor()
                .filter(|&f| f > 1.0)
                .map(|f| format!(", {f:.1}x shared functional pass"))
                .unwrap_or_default();
            eprintln!(
                "wrote {} ({} workers, {} ms, {}{}{})",
                path.display(),
                result.workers,
                result.wall_ms,
                result.mode.label(),
                throughput,
                sharing,
            );
        }
        if let Some(baseline_path) = &opts.baseline {
            let baseline = read_document(baseline_path)?;
            let diff = diff_documents(&result.document_json(), &baseline, opts.tolerance)?;
            eprint!("{diff}");
            if diff.has_regressions() {
                exit = ExitCode::from(2);
            }
        }
        // Static experiments read configuration tables and time nothing, so
        // they are exempt rather than failed — `run --all --throughput-gate`
        // must stay usable. A *grid* run with no measurement still fails:
        // a gate that silently passes unmeasured runs is no gate.
        if let Some(gate_minst) = gate.filter(|_| !matches!(spec.kind, ExperimentKind::Static(_))) {
            // Cache hits skip simulation entirely, so an all-hit run measures
            // cache I/O, not simulator throughput — exempt, like fast mode.
            if result.all_cells_cached() {
                eprintln!(
                    "throughput gate: {}: skipped (all {} cell(s) served from cache)",
                    spec.name,
                    result.cells().map_or(0, <[runner::CellResult]>::len)
                );
                continue;
            }
            match result.total_insts_per_sec() {
                Some(ips) if ips >= gate_minst * 1e6 => {
                    eprintln!(
                        "throughput gate: {}: {:.1} Minst/s >= {gate_minst} Minst/s",
                        spec.name,
                        ips / 1e6
                    );
                }
                Some(ips) => {
                    eprintln!(
                        "throughput gate FAILED: {}: {:.1} Minst/s < {gate_minst} Minst/s",
                        spec.name,
                        ips / 1e6
                    );
                    exit = ExitCode::from(2);
                }
                None => {
                    eprintln!(
                        "throughput gate FAILED: {}: run produced no throughput measurement",
                        spec.name
                    );
                    exit = ExitCode::from(2);
                }
            }
        }
    }
    if let Some(path) = &opts.trace_out {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
        let document = mom_lab::trace::chrome_trace(&trace_processes);
        std::fs::write(path, document.to_pretty())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        let spans: usize = trace_processes.iter().map(|(_, s)| s.len()).sum();
        eprintln!("wrote {} ({spans} span(s))", path.display());
    }
    Ok(exit)
}

/// `momlab cache <ls|verify|gc>` — inspect and maintain a persistent cell
/// cache. The directory comes from `--cache-dir` or `MOM_LAB_CACHE`.
fn cmd_cache(opts: &Options) -> Result<ExitCode, String> {
    let verb = opts
        .names
        .first()
        .map(String::as_str)
        .ok_or_else(|| "cache takes a subcommand: ls, verify or gc".to_string())?;
    let dir = opts
        .cache_dir
        .clone()
        .or_else(mom_lab::cache_env_dir)
        .ok_or_else(|| "cache needs --cache-dir DIR (or MOM_LAB_CACHE=DIR)".to_string())?;
    let cache = CellCache::open(&dir)
        .map_err(|e| format!("cannot open cache directory {}: {e}", dir.display()))?;
    match verb {
        "ls" => cmd_cache_ls(&cache),
        "verify" => cmd_cache_verify(&cache, opts),
        "gc" => {
            let max = opts.max_bytes.ok_or("cache gc needs --max-bytes N")?;
            let (evicted, evicted_bytes, remaining) = cache
                .gc(max)
                .map_err(|e| format!("cache gc in {}: {e}", cache.dir().display()))?;
            eprintln!(
                "evicted {evicted} record(s) ({evicted_bytes} bytes); {remaining} bytes remain in {}",
                cache.dir().display()
            );
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown cache subcommand {other:?} (try: ls, verify, gc)")),
    }
}

fn cmd_cache_ls(cache: &CellCache) -> Result<ExitCode, String> {
    let entries = cache
        .entries()
        .map_err(|e| format!("cannot list cache {}: {e}", cache.dir().display()))?;
    println!("{:<22} {:>8} key", "record", "bytes");
    let mut total = 0u64;
    for entry in &entries {
        total += entry.bytes;
        let name = entry.path.file_name().unwrap_or_default().to_string_lossy().into_owned();
        match &entry.key {
            Some(key) => println!("{name:<22} {:>8} {}", entry.bytes, key.canonical()),
            None => println!("{name:<22} {:>8} (unreadable record)", entry.bytes),
        }
    }
    println!("{} record(s), {total} bytes in {}", entries.len(), cache.dir().display());
    Ok(ExitCode::SUCCESS)
}

/// `momlab cache verify` — re-simulate every verifiable record and diff at
/// tolerance 0. Records are grouped by (experiment, fast, scale, seed,
/// sampling, config_hash) so each group costs one run of its spec into a
/// throwaway cache; the freshly filled record files are then compared
/// byte-for-byte against the stored ones (records carry no timestamps, so
/// equal bytes means equal results). Records from another engine fingerprint
/// or a spec this binary cannot rebuild (custom `--sweep-dims`, filtered
/// grids) are skipped with a note — they are unverifiable here, not wrong.
fn cmd_cache_verify(cache: &CellCache, opts: &Options) -> Result<ExitCode, String> {
    let entries = cache
        .entries()
        .map_err(|e| format!("cannot list cache {}: {e}", cache.dir().display()))?;
    let engine = mom_lab::engine_fingerprint();
    let workers = opts.workers.unwrap_or_else(runner::default_workers);
    let mut groups: Vec<(String, Vec<&CacheEntry>)> = Vec::new();
    let mut skipped = 0usize;
    for entry in &entries {
        let name = entry.path.file_name().unwrap_or_default().to_string_lossy().into_owned();
        let Some(key) = &entry.key else {
            eprintln!("skip {name}: unreadable record (a clean miss on the next run)");
            skipped += 1;
            continue;
        };
        if key.engine != engine {
            eprintln!("skip {name}: engine {:?} (this binary is {engine:?})", key.engine);
            skipped += 1;
            continue;
        }
        let group_id = format!(
            "{} fast:{} {} scale:{} seed:{} {:?}",
            key.experiment, key.fast, key.config_hash, key.scale, key.seed, key.sampling
        );
        match groups.iter_mut().find(|(id, _)| *id == group_id) {
            Some((_, members)) => members.push(entry),
            None => groups.push((group_id, vec![entry])),
        }
    }
    let tmp_dir = std::env::temp_dir().join(format!("momlab-verify-{}", std::process::id()));
    let tmp = CellCache::open(&tmp_dir)
        .map_err(|e| format!("cannot create scratch cache {}: {e}", tmp_dir.display()))?;
    let mut verified = 0usize;
    let mut mismatches = 0usize;
    for (group_id, members) in &groups {
        let key = members[0].key.as_ref().expect("grouped entries have keys");
        let spec = ExperimentSpec::builtin(&key.experiment, key.scale as usize, key.fast)
            .map(|mut spec| {
                if let ExperimentKind::Grid(grid) = &mut spec.kind {
                    grid.seed = key.seed;
                }
                spec
            })
            .filter(|spec| spec.config_hash() == key.config_hash);
        let Some(spec) = spec else {
            eprintln!(
                "skip {} record(s) of [{group_id}]: cannot rebuild the spec \
                 (filtered grid, custom --sweep-dims, or a renamed experiment)",
                members.len()
            );
            skipped += members.len();
            continue;
        };
        let mode = match key.sampling {
            Some(s) => {
                ExecMode::Sampled { unit_insts: s.unit, warmup_insts: s.warmup, period: s.period }
            }
            None => ExecMode::Streamed,
        };
        runner::run_cached(&spec, workers, mode, false, None, Some(&tmp));
        for entry in members {
            let key = entry.key.as_ref().expect("grouped entries have keys");
            let stored = std::fs::read(&entry.path)
                .map_err(|e| format!("cannot read {}: {e}", entry.path.display()))?;
            let fresh = std::fs::read(tmp.record_path(key)).ok();
            if fresh.as_deref() == Some(stored.as_slice()) {
                verified += 1;
            } else {
                mismatches += 1;
                eprintln!(
                    "MISMATCH {}: re-simulation disagrees with the stored record ({})",
                    entry.path.file_name().unwrap_or_default().to_string_lossy(),
                    key.canonical()
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&tmp_dir);
    eprintln!(
        "verified {verified} record(s) across {} group(s); {skipped} skipped, {mismatches} mismatch(es)",
        groups.len()
    );
    Ok(if mismatches > 0 { ExitCode::from(2) } else { ExitCode::SUCCESS })
}

fn cmd_diff(opts: &Options) -> Result<ExitCode, String> {
    let [new_path] = opts.names.as_slice() else {
        return Err("diff takes exactly one result file plus --baseline <file>".into());
    };
    let baseline_path =
        opts.baseline.as_ref().ok_or_else(|| "diff needs --baseline <file>".to_string())?;
    let new_doc = read_document(Path::new(new_path))?;
    let baseline = read_document(baseline_path)?;
    let diff = diff_documents(&new_doc, &baseline, opts.tolerance)?;
    print!("{diff}");
    Ok(if diff.has_regressions() { ExitCode::from(2) } else { ExitCode::SUCCESS })
}
