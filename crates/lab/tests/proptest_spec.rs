//! Property-based tests of the spec filters: for *any* combination of
//! `--kernel`/`--isa` filters, the filtered grid is a subset of the full
//! grid, contains exactly the cells matching the filter, and filtering is
//! idempotent.

use mom_isa::trace::IsaKind;
use mom_kernels::KernelKind;
use mom_lab::spec::{figure5_spec, GridSpec, Workload};
use proptest::prelude::*;

/// Resolve a grid's cells to comparable (workload, config-label, way)
/// identity tuples.
fn cell_keys(grid: &GridSpec) -> Vec<(Workload, String, usize)> {
    grid.cells()
        .into_iter()
        .map(|c| (c.workload, grid.configs[c.config].label.clone(), c.way))
        .collect()
}

fn subset<T: Copy>(all: &[T], mask: usize) -> Vec<T> {
    all.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, &x)| x).collect()
}

proptest! {
    // Each case enumerates a few hundred cells; no simulation runs.
    #![proptest_config(Config::with_cases(64))]

    #[test]
    fn any_filter_selects_a_subset_of_the_full_grid(
        kernel_mask in 1usize..(1 << 8),
        isa_mask in 1usize..(1 << 4),
    ) {
        let kernels = subset(&KernelKind::ALL, kernel_mask);
        let isas = subset(&IsaKind::ALL, isa_mask);

        let full = figure5_spec(&KernelKind::ALL, 1, 1, false);
        let full_keys = cell_keys(full.grid().unwrap());

        let mut filtered = full.clone();
        if let mom_lab::spec::ExperimentKind::Grid(grid) = &mut filtered.kind {
            grid.retain_kernels(&kernels);
            grid.retain_isas(&isas);
        }
        let grid = filtered.grid().unwrap();
        let keys = cell_keys(grid);

        // Subset of the full grid.
        for key in &keys {
            prop_assert!(full_keys.contains(key), "cell {key:?} is not in the full grid");
        }
        // Exactly the matching cells: count = kernels x isas x widths.
        prop_assert_eq!(keys.len(), kernels.len() * isas.len() * 4);
        for key in &keys {
            let Workload::Kernel(k) = key.0 else { panic!("figure5 grid holds kernels") };
            prop_assert!(kernels.contains(&k));
        }
        for config in &grid.configs {
            prop_assert!(isas.contains(&config.isa));
        }
    }

    #[test]
    fn filtering_is_idempotent(
        kernel_mask in 1usize..(1 << 8),
        isa_mask in 1usize..(1 << 4),
    ) {
        let kernels = subset(&KernelKind::ALL, kernel_mask);
        let isas = subset(&IsaKind::ALL, isa_mask);
        let mut spec = figure5_spec(&KernelKind::ALL, 1, 1, false);
        if let mom_lab::spec::ExperimentKind::Grid(grid) = &mut spec.kind {
            grid.retain_kernels(&kernels);
            grid.retain_isas(&isas);
        }
        let once = spec.clone();
        if let mom_lab::spec::ExperimentKind::Grid(grid) = &mut spec.kind {
            grid.retain_kernels(&kernels);
            grid.retain_isas(&isas);
        }
        prop_assert_eq!(once, spec);
    }

    #[test]
    fn the_identity_filter_keeps_the_full_grid(scale in 1usize..4) {
        let full = figure5_spec(&KernelKind::ALL, scale, 1, false);
        let mut filtered = full.clone();
        if let mom_lab::spec::ExperimentKind::Grid(grid) = &mut filtered.kind {
            grid.retain_kernels(&KernelKind::ALL);
            grid.retain_isas(&IsaKind::ALL);
        }
        prop_assert_eq!(full, filtered);
    }
}
