//! The runner's determinism guarantee: for any spec, a parallel run and a
//! serial run produce **byte-identical** results documents. Wall-clock and
//! worker count live only in the `meta` section, which is excluded from
//! `results_json` by construction.

use mom_lab::json::Value;
use mom_lab::runner::run_with;
use mom_lab::spec::ExperimentSpec;

/// A representative grid spec (the reduced Figure 5: 2 kernels x 4 ISAs x
/// 4 widths = 32 simulations) run serially and with 4 workers must serialize
/// to the same bytes.
#[test]
fn figure5_parallel_and_serial_runs_are_byte_identical() {
    let spec = ExperimentSpec::builtin("figure5", 1, true).expect("built-in spec");
    let serial = run_with(&spec, 1);
    let parallel = run_with(&spec, 4);
    assert_eq!(serial.workers, 1);
    assert_eq!(parallel.workers, 4);

    let serial_bytes = serial.results_json().to_pretty();
    let parallel_bytes = parallel.results_json().to_pretty();
    assert_eq!(serial_bytes, parallel_bytes, "worker count leaked into the results");

    // The structured cells agree too (not just their serialization).
    assert_eq!(serial.cells().unwrap(), parallel.cells().unwrap());
}

/// The guarantee holds across every built-in experiment, including the
/// paired-config latency study and the application-level Figure 7, and for an
/// oversubscribed worker count (more threads than cells of some stages).
#[test]
fn every_builtin_experiment_is_deterministic_across_worker_counts() {
    for name in mom_lab::BUILTIN_EXPERIMENTS {
        let spec = ExperimentSpec::builtin(name, 1, true).expect("built-in spec");
        let reference = run_with(&spec, 1).results_json().to_pretty();
        for workers in [2, 7] {
            let run = run_with(&spec, workers).results_json().to_pretty();
            assert_eq!(reference, run, "{name} differed at {workers} workers");
        }
    }
}

/// The guarantee also spans the execution mode: the default fan-out runner
/// (one shared functional pass per `(workload, ISA)` group broadcast to all
/// member simulators), the fused per-cell streaming pipeline and the
/// two-stage materialized runner all serialize byte-identically for every
/// built-in experiment.
#[test]
fn all_three_execution_modes_are_byte_identical() {
    use mom_lab::runner::{run_with_mode, ExecMode};
    for name in mom_lab::BUILTIN_EXPERIMENTS {
        let spec = ExperimentSpec::builtin(name, 1, true).expect("built-in spec");
        let fanout = run_with_mode(&spec, 2, ExecMode::Fanout);
        let streamed = run_with_mode(&spec, 2, ExecMode::Streamed);
        let materialized = run_with_mode(&spec, 2, ExecMode::Materialized);
        assert_eq!(fanout.mode, ExecMode::Fanout);
        assert!(fanout.mode.is_streamed() && streamed.mode.is_streamed());
        assert!(!materialized.mode.is_streamed());
        let reference = fanout.results_json().to_pretty();
        assert_eq!(
            reference,
            streamed.results_json().to_pretty(),
            "{name}: fan-out and streamed runs diverged"
        );
        assert_eq!(
            reference,
            materialized.results_json().to_pretty(),
            "{name}: fan-out and materialized runs diverged"
        );
        // The sharing accounting: fan-out shares functional passes across
        // grid cells (and scalar app phases across ISA lanes, so it can do
        // strictly better than materialized stage-1 sharing); the per-cell
        // streamed mode shares nothing.
        if let Some(cells) = fanout.cells() {
            assert!(fanout.functional_passes <= materialized.functional_passes);
            assert!(materialized.functional_passes <= cells.len());
            assert_eq!(streamed.functional_passes, cells.len());
            assert!(fanout.functional_instructions <= materialized.functional_instructions);
            assert!(fanout.sharing_factor() >= materialized.sharing_factor());
            assert!(streamed.sharing_factor().is_none_or(|f| (f - 1.0).abs() < 1e-12));
        }
    }
}

/// The full document (with `meta`) differs from the results document only by
/// the `meta` member, and both reparse.
#[test]
fn meta_is_the_only_nondeterministic_section() {
    let spec = ExperimentSpec::builtin("latency_tolerance", 1, true).expect("built-in spec");
    let result = run_with(&spec, 3);
    let results = result.results_json();
    let document = Value::parse(&result.document_json().to_pretty()).expect("document parses");
    let Value::Object(mut members) = document else { panic!("document is an object") };
    let meta_pos = members.iter().position(|(k, _)| k == "meta").expect("meta present");
    let (_, meta) = members.remove(meta_pos);
    assert_eq!(meta.get("workers").and_then(Value::as_i64), Some(3));
    assert!(meta.get("wall_ms").and_then(Value::as_i64).is_some());
    assert_eq!(Value::Object(members), Value::parse(&results.to_pretty()).unwrap());
}
