//! The sampled execution mode's correctness contracts.
//!
//! * **Rate 1 is exact**: `ExecMode::Sampled` with `period == 0` routes
//!   through the literal streamed code path, so its results document is
//!   byte-identical to [`ExecMode::Streamed`] for every built-in experiment.
//!   This is the gate that keeps the sampling machinery honest — any drift
//!   in the shared plumbing shows up as a byte diff here.
//! * **Sampling is deterministic**: the periodic schedule depends only on
//!   instruction indices, never on worker count or timing.
//! * **Estimates are anchored**: committed-instruction counts stay exact
//!   (the functional interpreter executes the whole workload either way) and
//!   every cell carries a [`CellSampling`] section.
//! * **Checkpoints resume exactly**: a run that persists checkpoints and a
//!   run resumed from those files serialize byte-identically.

use mom_lab::runner::{
    run_with_mode, run_with_options, CheckpointConfig, ExecMode, DEFAULT_SAMPLE_UNIT,
    DEFAULT_SAMPLE_WARMUP,
};
use mom_lab::spec::ExperimentSpec;

/// A sampled mode whose period is small enough that scale-1 fast kernels
/// alternate between detailed and fast-forwarded execution several times.
const SMALL_SAMPLED: ExecMode =
    ExecMode::Sampled { unit_insts: 100, warmup_insts: 100, period: 500 };

#[test]
fn rate1_sampled_is_byte_identical_to_streamed_for_every_builtin() {
    let rate1 = ExecMode::Sampled {
        unit_insts: DEFAULT_SAMPLE_UNIT,
        warmup_insts: DEFAULT_SAMPLE_WARMUP,
        period: 0,
    };
    assert!(rate1.is_streamed() && !rate1.is_estimated());
    for name in mom_lab::BUILTIN_EXPERIMENTS {
        let spec = ExperimentSpec::builtin(name, 1, true).expect("built-in spec");
        let exact = run_with_mode(&spec, 2, ExecMode::Streamed).results_json().to_pretty();
        let sampled = run_with_mode(&spec, 2, rate1).results_json().to_pretty();
        assert_eq!(exact, sampled, "{name}: rate-1 sampling diverged from streamed");
    }
}

#[test]
fn sampled_runs_are_deterministic_across_worker_counts() {
    for name in ["figure5", "figure7"] {
        let spec = ExperimentSpec::builtin(name, 1, true).expect("built-in spec");
        let reference = run_with_mode(&spec, 1, SMALL_SAMPLED).results_json().to_pretty();
        for workers in [2, 7] {
            let run = run_with_mode(&spec, workers, SMALL_SAMPLED).results_json().to_pretty();
            assert_eq!(reference, run, "{name} differed at {workers} workers");
        }
    }
}

#[test]
fn sampled_estimates_stay_anchored_to_the_exact_run() {
    let spec = ExperimentSpec::builtin("figure5", 1, true).expect("built-in spec");
    let exact = run_with_mode(&spec, 2, ExecMode::Streamed);
    let sampled = run_with_mode(&spec, 2, SMALL_SAMPLED);
    let exact_cells = exact.cells().expect("grid");
    let sampled_cells = sampled.cells().expect("grid");
    assert_eq!(exact_cells.len(), sampled_cells.len());
    for (e, s) in exact_cells.iter().zip(sampled_cells) {
        assert_eq!((&e.workload, &e.config_label, e.way), (&s.workload, &s.config_label, s.way));
        // Committed work is exact by construction; only cycles are estimated.
        assert_eq!(e.instructions, s.instructions, "{} committed count drifted", e.workload);
        let sampling = s.sampling.as_ref().expect("sampled cells carry a sampling section");
        assert_eq!(sampling.total_insts, s.instructions);
        assert!(sampling.measured_insts <= sampling.total_insts);
        assert!(sampling.ipc_mean > 0.0 && sampling.ipc_mean.is_finite());
        assert!(sampling.ipc_ci95 >= 0.0);
        assert!(s.cycles > 0);
        // A loose accuracy envelope: with a 500-instruction period most of
        // the stream is detailed, so the estimate must land in the right
        // ballpark (the tight ≤2% bound is asserted on the committed BENCH
        // artifacts, not here, where units are deliberately tiny).
        let err = (s.ipc() - e.ipc()).abs() / e.ipc();
        assert!(err < 0.5, "{}: sampled IPC {} vs exact {}", e.workload, s.ipc(), e.ipc());
        // Exact cells never carry the section.
        assert!(e.sampling.is_none());
    }
    // The sampling section serializes.
    let doc = sampled.results_json().to_pretty();
    assert!(doc.contains("\"sampling\""), "results document lacks a sampling section");
    assert!(doc.contains("\"ipc_mean\""));
}

#[test]
fn checkpointed_and_resumed_runs_are_byte_identical() {
    let spec = ExperimentSpec::builtin("figure5", 1, true).expect("built-in spec");
    let dir = std::env::temp_dir().join(format!("momlab-sampled-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Plain sampled run: the reference bytes.
    let reference = run_with_mode(&spec, 2, SMALL_SAMPLED).results_json().to_pretty();

    // Same run while persisting checkpoints: identical results, files exist.
    let cfg = CheckpointConfig { dir: dir.clone(), resume: false };
    let saved = run_with_options(&spec, 2, SMALL_SAMPLED, false, Some(&cfg));
    assert_eq!(reference, saved.results_json().to_pretty(), "checkpointing changed the results");
    let ckpts: Vec<_> = std::fs::read_dir(&dir)
        .expect("checkpoint dir exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
        .collect();
    assert!(!ckpts.is_empty(), "no checkpoint files were written to {}", dir.display());

    // Resuming from the persisted (final) checkpoints replays only the tail
    // of each cell and must reproduce the uninterrupted bytes exactly.
    let cfg = CheckpointConfig { dir: dir.clone(), resume: true };
    let resumed = run_with_options(&spec, 2, SMALL_SAMPLED, false, Some(&cfg));
    assert_eq!(reference, resumed.results_json().to_pretty(), "resumed run diverged");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
