//! Golden-output tests: the renderers must reproduce the legacy `mom-bench`
//! binary output **byte-for-byte**. The files under `tests/golden/` were
//! captured from the pre-`mom-lab` binaries running with `MOM_BENCH_FAST=1`
//! and scale 1; these tests rebuild the same specs in-process (explicit
//! `fast = true`, no environment dependence) and compare bytes.

use mom_lab::report::render;
use mom_lab::runner::run_with;
use mom_lab::spec::ExperimentSpec;

fn check(name: &str, golden: &str) {
    let spec = ExperimentSpec::builtin(name, 1, true).expect("built-in spec");
    let rendered = render(&run_with(&spec, 4));
    assert_eq!(
        rendered, golden,
        "{name}: rendered output drifted from the legacy binary format"
    );
}

#[test]
fn table1_matches_the_legacy_binary() {
    check("table1", include_str!("golden/table1_fast.txt"));
}

#[test]
fn table2_matches_the_legacy_binary() {
    check("table2", include_str!("golden/table2_fast.txt"));
}

#[test]
fn table3_matches_the_legacy_binary() {
    check("table3", include_str!("golden/table3_fast.txt"));
}

#[test]
fn isa_inventory_matches_the_legacy_binary() {
    check("isa_inventory", include_str!("golden/isa_inventory_fast.txt"));
}

#[test]
fn figure5_matches_the_legacy_binary() {
    check("figure5", include_str!("golden/figure5_fast.txt"));
}

#[test]
fn latency_tolerance_matches_the_legacy_binary() {
    check("latency_tolerance", include_str!("golden/latency_tolerance_fast.txt"));
}

#[test]
fn figure7_matches_the_legacy_binary() {
    check("figure7", include_str!("golden/figure7_fast.txt"));
}
