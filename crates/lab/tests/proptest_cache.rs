//! Property-based tests of the persistent cell-cache record codec: for *any*
//! record the cache can store, encode → decode → re-encode reproduces the
//! exact bytes (so `momlab cache verify`'s byte-for-byte file comparison is a
//! sound equality test), the decoded key answers the same canonical address,
//! and no truncated prefix of a record ever decodes successfully — truncation
//! is always a detectable (clean-miss) error, never a silently-wrong result.

use mom_cpu::probe::{IntervalStats, IntervalWindow, ProbeReport, StallBreakdown, StallCause};
use mom_cpu::SimResult;
use mom_lab::runner::CellSampling;
use mom_lab::{CellKey, CellRecord, SamplingKnobs};
use mom_mem::cache::CacheStats;
use mom_mem::dram::DramStats;
use mom_mem::MemSystemStats;
use proptest::prelude::*;

/// Derive one interval window from a generator word: the split keeps every
/// field in range while still exercising all twelve stall causes.
fn window_from(word: u64) -> IntervalWindow {
    IntervalWindow {
        committed: word >> 24,
        cycles: word & 0xff_ffff,
        top: StallCause::ALL[(word % StallCause::COUNT as u64) as usize],
    }
}

/// Assemble a full record from generator words. The breakdown total is the
/// component sum, matching the structural invariant `ProbeReport::load_state`
/// enforces on every decode.
fn record_from(
    sim_words: &[u64],
    components: &[u64],
    shift: usize,
    window_words: &[u64],
    mem_words: &[u64],
    sampling_words: Option<&[u64; 6]>,
) -> CellRecord {
    let mut parts = [0u64; StallCause::COUNT];
    parts.copy_from_slice(components);
    let breakdown = StallBreakdown::from_parts(parts.iter().sum(), parts);
    let intervals = IntervalStats {
        window_cycles: 1024u64 << shift,
        windows: window_words.iter().map(|&w| window_from(w)).collect(),
    };
    CellRecord {
        sim: SimResult {
            cycles: sim_words[0],
            committed: sim_words[1],
            branches: sim_words[2],
            mispredictions: sim_words[3],
            mem_retries: sim_words[4],
            mem_accesses: sim_words[5],
        },
        probe: ProbeReport { breakdown, intervals },
        mem: MemSystemStats {
            requests: mem_words[0],
            element_accesses: mem_words[1],
            port_stalls: mem_words[2],
            bank_conflicts: mem_words[3],
            mshr_stalls: mem_words[4],
            vector_transactions: mem_words[5],
            l1: CacheStats { hits: mem_words[6], misses: mem_words[7], writebacks: mem_words[8] },
            l2: CacheStats { hits: mem_words[9], misses: mem_words[10], writebacks: mem_words[11] },
            dram: DramStats {
                transfers: mem_words[12],
                busy_cycles: mem_words[13],
                queue_cycles: mem_words[14],
            },
        },
        sampling: sampling_words.map(|w| CellSampling {
            units_measured: w[0],
            measured_insts: w[1],
            warmup_insts: w[2],
            total_insts: w[3],
            // Bit-pattern f64s: the codec stores IEEE bits verbatim, so even
            // NaN payloads must survive the roundtrip byte-exactly.
            ipc_mean: f64::from_bits(w[4]),
            ipc_ci95: f64::from_bits(w[5]),
        }),
    }
}

/// A key varying along every axis the generator words select.
fn key_from(words: &[u64; 6], sampled: bool) -> CellKey {
    let workloads = ["idct", "fir16", "motion / estimation"];
    let isas = ["alpha", "mom", "mmx"];
    CellKey {
        engine: mom_lab::engine_fingerprint(),
        experiment: ["figure5", "stress", "sweep"][(words[0] % 3) as usize].to_string(),
        fast: words[0].is_multiple_of(2),
        config_hash: format!("fnv1a:{:016x}", words[1]),
        cell: format!("{} / {} / {}-way", workloads[(words[2] % 3) as usize],
            isas[(words[3] % 3) as usize], 1u64 << (words[2] % 4)),
        isa: isas[(words[3] % 3) as usize].to_string(),
        mem: ["perfect-1", "mom"][(words[3] % 2) as usize].to_string(),
        rob: words[4].is_multiple_of(2).then_some(words[4] % 1024),
        scale: words[4] % 16 + 1,
        seed: words[5],
        sampling: sampled.then_some(SamplingKnobs {
            unit: words[5] % 10_000 + 1,
            warmup: words[5] % 20_000,
            period: words[5] % 1_000_000,
        }),
    }
}

proptest! {
    #![proptest_config(Config::with_cases(64))]

    #[test]
    fn records_roundtrip_byte_stably(
        sim_words in prop::collection::vec(0u64..1 << 40, 6),
        components in prop::collection::vec(0u64..1 << 40, StallCause::COUNT),
        shift in 0usize..12,
        window_words in prop::collection::vec(0u64..u64::MAX, 0..32),
        mem_words in prop::collection::vec(0u64..1 << 40, 15),
        key_words in prop::collection::vec(0u64..u64::MAX, 6),
        sampled in 0u64..2,
    ) {
        let sampling_words =
            (sampled == 1).then(|| [key_words[0], key_words[1], key_words[2], key_words[3], key_words[4], key_words[5]]);
        let record = record_from(
            &sim_words, &components, shift, &window_words, &mem_words, sampling_words.as_ref(),
        );
        let mut kw = [0u64; 6];
        kw.copy_from_slice(&key_words);
        let key = key_from(&kw, sampled == 1);

        let bytes = record.to_bytes(&key);
        let (decoded_key, decoded) = CellRecord::from_bytes(&bytes)
            .expect("a freshly encoded record always decodes");

        // The decoded key answers the same address (same canonical form,
        // hence the same record file name) ...
        prop_assert_eq!(decoded_key.canonical(), key.canonical());
        prop_assert_eq!(decoded_key.file_name(), key.file_name());
        // ... and re-encoding the decoded record reproduces the exact bytes,
        // so byte comparison of record files is a sound equality test.
        prop_assert_eq!(decoded.to_bytes(&decoded_key), bytes);
    }

    #[test]
    fn truncated_records_never_decode(
        sim_words in prop::collection::vec(0u64..1 << 40, 6),
        components in prop::collection::vec(0u64..1 << 40, StallCause::COUNT),
        mem_words in prop::collection::vec(0u64..1 << 40, 15),
        key_words in prop::collection::vec(0u64..u64::MAX, 6),
        cut_word in 0u64..u64::MAX,
    ) {
        let record = record_from(&sim_words, &components, 3, &[1, 2, 3], &mem_words, None);
        let mut kw = [0u64; 6];
        kw.copy_from_slice(&key_words);
        let bytes = record.to_bytes(&key_from(&kw, false));
        // Every proper prefix fails to decode; sample one per case.
        let cut = (cut_word % bytes.len() as u64) as usize;
        prop_assert!(CellRecord::from_bytes(&bytes[..cut]).is_err(),
            "a {cut}-byte prefix of a {}-byte record must not decode", bytes.len());
    }
}
