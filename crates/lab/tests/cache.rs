//! Integration tests of the persistent cell cache: a warm run serves every
//! cell from disk (100% hits, zero simulation) and still produces
//! byte-identical results documents — in every execution mode, including a
//! cache filled by one mode and served to all the others, and for sampled
//! runs whose records carry the confidence-interval section. Also covers the
//! throughput accounting (cached cells are exempt) and partial warmth.

use std::path::PathBuf;

use mom_lab::runner::{run_cached, ExecMode};
use mom_lab::spec::ExperimentSpec;
use mom_lab::{CellCache, RunResult};

/// A scratch cache directory unique to this process and test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("momlab-cachetest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(spec: &ExperimentSpec, mode: ExecMode, cache: Option<&CellCache>) -> RunResult {
    run_cached(spec, 2, mode, false, None, cache)
}

fn meta(result: &RunResult) -> &mom_lab::CacheMeta {
    result.cache.as_ref().expect("cached runs carry cache metadata")
}

/// Cold fill then warm re-run in the same mode: the warm run reports 100%
/// hits and zero fills, serializes byte-identically, and every cell is
/// flagged cached (so the aggregate throughput measurement is empty rather
/// than a bogus file-read rate).
#[test]
fn warm_rerun_is_all_hits_and_byte_identical() {
    let dir = scratch("warm");
    let cache = CellCache::open(&dir).expect("create cache dir");
    let spec = ExperimentSpec::builtin("figure5", 1, true).expect("built-in spec");

    let cold = run(&spec, ExecMode::Fanout, Some(&cache));
    let cells = cold.cells().expect("grid result").len() as u64;
    assert_eq!(meta(&cold).hits, 0);
    assert_eq!(meta(&cold).misses, cells);
    assert_eq!(meta(&cold).fills, cells);
    assert!(meta(&cold).bytes > 0, "fills must land on disk");
    assert!(!cold.all_cells_cached());
    assert!(cold.total_insts_per_sec().is_some());

    let warm = run(&spec, ExecMode::Fanout, Some(&cache));
    assert_eq!(meta(&warm).hits, cells, "warm run must hit every cell");
    assert_eq!(meta(&warm).misses, 0);
    assert_eq!(meta(&warm).fills, 0);
    assert!(warm.all_cells_cached());
    assert_eq!(
        warm.total_insts_per_sec(),
        None,
        "an all-hit run simulated nothing, so it measures no throughput"
    );
    assert_eq!(
        cold.results_json().to_pretty(),
        warm.results_json().to_pretty(),
        "cache hits changed the results document"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A cache filled by ONE exact mode serves every other exact mode
/// byte-identically: fanout fills; streamed, materialized and
/// `--sampled --sample-period 0` (the exact sampled degenerate) all run at
/// 100% hits without simulating anything.
#[test]
fn one_exact_mode_fills_for_all_the_others() {
    let dir = scratch("crossmode");
    let cache = CellCache::open(&dir).expect("create cache dir");
    let spec = ExperimentSpec::builtin("figure5", 1, true).expect("built-in spec");

    let cold = run(&spec, ExecMode::Fanout, Some(&cache));
    let cells = cold.cells().expect("grid result").len() as u64;
    let reference = cold.results_json().to_pretty();

    for mode in [
        ExecMode::Streamed,
        ExecMode::Materialized,
        ExecMode::Sampled { unit_insts: 1000, warmup_insts: 2000, period: 0 },
    ] {
        let warm = run(&spec, mode, Some(&cache));
        assert_eq!(meta(&warm).hits, cells, "{mode:?} missed a fanout-filled cell");
        assert_eq!(meta(&warm).fills, 0);
        assert_eq!(warm.results_json().to_pretty(), reference, "{mode:?} diverged");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Sampled records (nonzero period) key separately from exact ones — filling
/// the exact cache leaves sampled runs cold — and a warm sampled run serves
/// the full confidence-interval `sampling` section byte-identically.
#[test]
fn sampled_records_key_separately_and_roundtrip_their_ci_section() {
    let dir = scratch("sampled");
    let cache = CellCache::open(&dir).expect("create cache dir");
    let spec = ExperimentSpec::builtin("figure5", 1, true).expect("built-in spec");
    let sampled = ExecMode::Sampled { unit_insts: 200, warmup_insts: 400, period: 5_000 };

    let exact = run(&spec, ExecMode::Streamed, Some(&cache));
    let cells = exact.cells().expect("grid result").len() as u64;

    let cold = run(&spec, sampled, Some(&cache));
    assert_eq!(meta(&cold).hits, 0, "sampled cells must not hit exact records");
    assert_eq!(meta(&cold).fills, cells);

    let warm = run(&spec, sampled, Some(&cache));
    assert_eq!(meta(&warm).hits, cells);
    let cold_doc = cold.results_json().to_pretty();
    assert_eq!(cold_doc, warm.results_json().to_pretty(), "sampled warm run diverged");
    assert!(cold_doc.contains("\"sampling\""), "sampled documents carry a sampling section");
    // Different knobs are a different address again.
    let other = run(
        &spec,
        ExecMode::Sampled { unit_insts: 200, warmup_insts: 400, period: 6_000 },
        Some(&cache),
    );
    assert_eq!(meta(&other).hits, 0, "different sampling knobs must not share records");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Partial warmth: filtering the grid changes the config_hash, so a run of a
/// *differently filtered* spec shares nothing; but re-running the same spec
/// after deleting some records re-simulates exactly the missing cells and
/// still serializes byte-identically.
#[test]
fn partially_evicted_caches_resimulate_only_the_missing_cells() {
    let dir = scratch("partial");
    let cache = CellCache::open(&dir).expect("create cache dir");
    let spec = ExperimentSpec::builtin("figure5", 1, true).expect("built-in spec");

    let cold = run(&spec, ExecMode::Fanout, Some(&cache));
    let cells = cold.cells().expect("grid result").len() as u64;
    let reference = cold.results_json().to_pretty();

    // Evict half the records (the oldest half by mtime — all equal here, so
    // ties break by path; which half is immaterial).
    let before = cache.entries().expect("listable cache");
    let keep = cache.bytes() / 2;
    cache.gc(keep).expect("gc succeeds");
    let after = cache.entries().expect("listable cache").len() as u64;
    assert!(after < before.len() as u64, "gc must evict something");

    let mixed = run(&spec, ExecMode::Fanout, Some(&cache));
    assert_eq!(meta(&mixed).hits, after);
    assert_eq!(meta(&mixed).misses, cells - after);
    assert_eq!(meta(&mixed).fills, cells - after, "misses must be re-filled");
    assert!(!mixed.all_cells_cached());
    assert_eq!(mixed.results_json().to_pretty(), reference, "mixed hit/miss run diverged");

    // And now the cache is whole again.
    let warm = run(&spec, ExecMode::Fanout, Some(&cache));
    assert_eq!(meta(&warm).hits, cells);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupting a record on disk demotes its cell to a clean miss: the run
/// re-simulates it, overwrites the bad file, and the results stay
/// byte-identical throughout. No panic, no wrong answer.
#[test]
fn corrupted_records_are_resimulated_and_overwritten() {
    let dir = scratch("corrupt");
    let cache = CellCache::open(&dir).expect("create cache dir");
    let spec = ExperimentSpec::builtin("figure5", 1, true).expect("built-in spec");

    let cold = run(&spec, ExecMode::Fanout, Some(&cache));
    let cells = cold.cells().expect("grid result").len() as u64;
    let reference = cold.results_json().to_pretty();

    // Truncate one record, garble another, leave the rest intact.
    let entries = cache.entries().expect("listable cache");
    let good = std::fs::read(&entries[0].path).expect("readable record");
    std::fs::write(&entries[0].path, &good[..good.len() / 2]).expect("truncate");
    std::fs::write(&entries[1].path, b"not a record at all").expect("garble");

    let mixed = run(&spec, ExecMode::Fanout, Some(&cache));
    assert_eq!(meta(&mixed).hits, cells - 2);
    assert_eq!(meta(&mixed).misses, 2, "both corrupt records must read as misses");
    assert_eq!(meta(&mixed).fills, 2, "both must be re-filled");
    assert_eq!(mixed.results_json().to_pretty(), reference, "corruption leaked into results");

    // The overwritten records are valid again.
    let warm = run(&spec, ExecMode::Fanout, Some(&cache));
    assert_eq!(meta(&warm).hits, cells);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The document's cache accounting: `meta.cache` reports the counters, each
/// cached cell's throughput entry is `insts_per_sec: null` plus a
/// `cached: true` marker, and a cache-free run writes neither (so existing
/// documents are byte-identical to pre-cache ones).
#[test]
fn documents_report_cache_metadata_and_cached_cells() {
    let dir = scratch("doc");
    let cache = CellCache::open(&dir).expect("create cache dir");
    let spec = ExperimentSpec::builtin("figure5", 1, true).expect("built-in spec");

    run(&spec, ExecMode::Fanout, Some(&cache));
    let warm = run(&spec, ExecMode::Fanout, Some(&cache));
    let doc = warm.document_json();
    let cache_meta = doc.get("meta").and_then(|m| m.get("cache")).expect("meta.cache present");
    let field = |k: &str| cache_meta.get(k).and_then(mom_lab::json::Value::as_i64);
    assert_eq!(field("hits"), Some(warm.cells().unwrap().len() as i64));
    assert_eq!(field("misses"), Some(0));
    assert_eq!(field("fills"), Some(0));
    assert!(field("bytes").unwrap_or(0) > 0);
    let throughput = doc
        .get("meta")
        .and_then(|m| m.get("throughput"))
        .and_then(mom_lab::json::Value::as_array)
        .expect("throughput entries");
    for entry in throughput {
        assert!(matches!(entry.get("insts_per_sec"), Some(mom_lab::json::Value::Null)));
        assert_eq!(entry.get("cached").and_then(mom_lab::json::Value::as_bool), Some(true));
    }

    let plain = run(&spec, ExecMode::Fanout, None);
    assert!(plain.cache.is_none());
    let doc = plain.document_json();
    assert!(doc.get("meta").and_then(|m| m.get("cache")).is_none(), "cache-free meta.cache");

    let _ = std::fs::remove_dir_all(&dir);
}
