//! Differential proptests: the SWAR (and, when the `simd` feature is active,
//! intrinsics) backends of every rewired `PackedWord` operation must agree
//! with the retained lane-at-a-time scalar reference (`*_scalar`) on every
//! lane type, saturation mode and input — including the saturation boundary
//! values where the carry/borrow/overflow bit tricks are easiest to get
//! wrong.

use mom_isa::accumulator::Accumulator;
use mom_isa::packed::{Lane, PackedWord, Saturation};
use proptest::prelude::*;

fn lanes() -> impl Strategy<Value = Lane> {
    prop_oneof![
        Just(Lane::U8),
        Just(Lane::I8),
        Just(Lane::U16),
        Just(Lane::I16),
        Just(Lane::U32),
        Just(Lane::I32)
    ]
}

fn sats() -> impl Strategy<Value = Saturation> {
    prop_oneof![Just(Saturation::Wrapping), Just(Saturation::Saturating)]
}

/// Words biased toward saturation boundaries: each 8-bit chunk is drawn from
/// the interesting edge set half the time, so 16/32-bit lanes also see MIN,
/// MAX, −1, 0 and ±1 patterns frequently.
fn edge_byte() -> impl Strategy<Value = u8> {
    prop_oneof![
        Just(0x00u8),
        Just(0x01),
        Just(0x7F),
        Just(0x80),
        Just(0xFF),
        any::<u8>()
    ]
}

fn edge_half() -> impl Strategy<Value = u32> {
    (edge_byte(), edge_byte(), edge_byte(), edge_byte())
        .prop_map(|(a, b, c, d)| u32::from_le_bytes([a, b, c, d]))
}

fn words() -> impl Strategy<Value = u64> {
    prop_oneof![
        any::<u64>(),
        (edge_half(), edge_half()).prop_map(|(lo, hi)| u64::from(hi) << 32 | u64::from(lo)),
    ]
}

proptest! {
    #![proptest_config(Config::with_cases(1024))]

    #[test]
    fn add_matches_scalar(a in words(), b in words(), lane in lanes(), sat in sats()) {
        let (x, y) = (PackedWord::new(a), PackedWord::new(b));
        prop_assert_eq!(x.add(y, lane, sat), x.add_scalar(y, lane, sat));
    }

    #[test]
    fn sub_matches_scalar(a in words(), b in words(), lane in lanes(), sat in sats()) {
        let (x, y) = (PackedWord::new(a), PackedWord::new(b));
        prop_assert_eq!(x.sub(y, lane, sat), x.sub_scalar(y, lane, sat));
    }

    #[test]
    fn abs_diff_matches_scalar(a in words(), b in words(), lane in lanes()) {
        let (x, y) = (PackedWord::new(a), PackedWord::new(b));
        prop_assert_eq!(x.abs_diff(y, lane), x.abs_diff_scalar(y, lane));
    }

    #[test]
    fn avg_matches_scalar(a in words(), b in words(), lane in lanes()) {
        let (x, y) = (PackedWord::new(a), PackedWord::new(b));
        prop_assert_eq!(x.avg(y, lane), x.avg_scalar(y, lane));
    }

    #[test]
    fn min_max_match_scalar(a in words(), b in words(), lane in lanes()) {
        let (x, y) = (PackedWord::new(a), PackedWord::new(b));
        prop_assert_eq!(x.min(y, lane), x.min_scalar(y, lane));
        prop_assert_eq!(x.max(y, lane), x.max_scalar(y, lane));
    }

    #[test]
    fn compares_match_scalar(a in words(), b in words(), lane in lanes()) {
        let (x, y) = (PackedWord::new(a), PackedWord::new(b));
        prop_assert_eq!(x.cmp_eq(y, lane), x.cmp_eq_scalar(y, lane));
        prop_assert_eq!(x.cmp_gt(y, lane), x.cmp_gt_scalar(y, lane));
    }

    #[test]
    fn select_matches_scalar(m in words(), a in words(), b in words(), lane in lanes()) {
        let (mask, x, y) = (PackedWord::new(m), PackedWord::new(a), PackedWord::new(b));
        prop_assert_eq!(
            PackedWord::select(mask, x, y, lane),
            PackedWord::select_scalar(mask, x, y, lane)
        );
    }

    #[test]
    fn abs_neg_match_scalar(a in words(), lane in lanes()) {
        let x = PackedWord::new(a);
        prop_assert_eq!(x.abs(lane), x.abs_scalar(lane));
        prop_assert_eq!(x.neg(lane), x.neg_scalar(lane));
    }

    #[test]
    fn shifts_match_scalar(a in words(), lane in lanes(), amount in 0u32..40) {
        // `amount` deliberately overshoots every lane width to exercise the
        // shift-by-full-width zeroing and the arithmetic-shift clamp.
        let x = PackedWord::new(a);
        prop_assert_eq!(x.shl(lane, amount), x.shl_scalar(lane, amount));
        prop_assert_eq!(x.shr_logical(lane, amount), x.shr_logical_scalar(lane, amount));
        prop_assert_eq!(x.shr_arith(lane, amount), x.shr_arith_scalar(lane, amount));
    }

    #[test]
    fn reductions_match_scalar(a in words(), b in words(), lane in lanes()) {
        let (x, y) = (PackedWord::new(a), PackedWord::new(b));
        prop_assert_eq!(x.reduce_sum(lane), x.reduce_sum_scalar(lane));
        prop_assert_eq!(x.sad(y, lane), x.sad_scalar(y, lane));
    }

    #[test]
    fn accumulator_abs_diff_add_matches_lane_reference(a in words(), b in words(), lane in lanes()) {
        let (x, y) = (PackedWord::new(a), PackedWord::new(b));
        let mut acc = Accumulator::new();
        acc.abs_diff_add(x, y, lane);
        let (av, bv) = (x.lanes(lane), y.lanes(lane));
        for i in 0..av.len() {
            prop_assert_eq!(acc.lane(i), (av[i] - bv[i]).abs());
        }
    }

    // 32-bit lanes are excluded: a squared 32-bit difference can exceed
    // `i64`, which panics in debug builds — in the old lane-at-a-time loop
    // just as in the SWAR path. Kernels only square 8/16-bit data.
    #[test]
    fn accumulator_sqr_diff_add_matches_lane_reference(
        a in words(),
        b in words(),
        lane in prop_oneof![Just(Lane::U8), Just(Lane::I8), Just(Lane::U16), Just(Lane::I16)],
    ) {
        let (x, y) = (PackedWord::new(a), PackedWord::new(b));
        let mut acc = Accumulator::new();
        acc.sqr_diff_add(x, y, lane);
        let (av, bv) = (x.lanes(lane), y.lanes(lane));
        for i in 0..av.len() {
            let d = av[i] - bv[i];
            prop_assert_eq!(acc.lane(i), d * d);
        }
    }
}

/// Exhaustive 8-bit two-lane sweep: every (a, b) byte pair through every
/// 8-bit op in both saturation modes. 64k pairs per op — small enough to run
/// in a normal test pass, and it removes any reliance on the proptest
/// sampler finding the carry/borrow corner cases.
#[test]
fn exhaustive_byte_pairs() {
    for a in 0..=255u8 {
        for b in 0..=255u8 {
            let x = PackedWord::from_u8_lanes([a, 0, 0, 0, 0, 0, 0, b]);
            let y = PackedWord::from_u8_lanes([b, 0, 0, 0, 0, 0, 0, a]);
            for lane in [Lane::U8, Lane::I8] {
                for sat in [Saturation::Wrapping, Saturation::Saturating] {
                    assert_eq!(x.add(y, lane, sat), x.add_scalar(y, lane, sat), "add {a} {b} {lane:?} {sat:?}");
                    assert_eq!(x.sub(y, lane, sat), x.sub_scalar(y, lane, sat), "sub {a} {b} {lane:?} {sat:?}");
                }
                assert_eq!(x.min(y, lane), x.min_scalar(y, lane), "min {a} {b} {lane:?}");
                assert_eq!(x.max(y, lane), x.max_scalar(y, lane), "max {a} {b} {lane:?}");
                assert_eq!(x.avg(y, lane), x.avg_scalar(y, lane), "avg {a} {b} {lane:?}");
                assert_eq!(x.abs_diff(y, lane), x.abs_diff_scalar(y, lane), "abs_diff {a} {b} {lane:?}");
                assert_eq!(x.cmp_gt(y, lane), x.cmp_gt_scalar(y, lane), "cmp_gt {a} {b} {lane:?}");
            }
        }
    }
}
