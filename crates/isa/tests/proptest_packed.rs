//! Property-based tests of the packed sub-word arithmetic and accumulators:
//! lane isolation, saturation bounds, pack/unpack round trips and equivalence
//! with wide scalar arithmetic.

use mom_isa::accumulator::Accumulator;
use mom_isa::packed::{Lane, PackedWord, Saturation};
use proptest::prelude::*;

fn lanes() -> impl Strategy<Value = Lane> {
    prop_oneof![
        Just(Lane::U8),
        Just(Lane::I8),
        Just(Lane::U16),
        Just(Lane::I16),
        Just(Lane::U32),
        Just(Lane::I32)
    ]
}

proptest! {
    // Packed-word ops are cheap; 256 cases still finish in well under a
    // second. `PROPTEST_CASES` overrides this for deeper local runs.
    #![proptest_config(Config::with_cases(256))]

    #[test]
    fn lane_roundtrip(bits in any::<u64>(), lane in lanes()) {
        let w = PackedWord::new(bits);
        let rebuilt = PackedWord::from_lanes(lane, w.lanes(lane).into_iter());
        prop_assert_eq!(rebuilt, w);
    }

    #[test]
    fn lanes_array_agrees_with_per_index_extraction(bits in any::<u64>(), lane in lanes()) {
        // The non-allocating `Lanes` array is exactly the sequence of
        // per-index `lane()` reads: same length, same values, slice access
        // included.
        let w = PackedWord::new(bits);
        let vals = w.lanes(lane);
        prop_assert_eq!(vals.len(), lane.count());
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(*v, w.lane(lane, i));
        }
        prop_assert_eq!(vals.as_slice().iter().sum::<i64>(), w.reduce_sum(lane));
    }

    #[test]
    fn saturating_results_stay_in_range(a in any::<u64>(), b in any::<u64>(), lane in lanes()) {
        let x = PackedWord::new(a);
        let y = PackedWord::new(b);
        for op in [x.add(y, lane, Saturation::Saturating), x.sub(y, lane, Saturation::Saturating)] {
            for i in 0..lane.count() {
                let v = op.lane(lane, i);
                prop_assert!(v >= lane.min_value() && v <= lane.max_value());
            }
        }
    }

    #[test]
    fn wrapping_add_matches_scalar_wrapping(a in any::<u64>(), b in any::<u64>()) {
        let x = PackedWord::new(a);
        let y = PackedWord::new(b);
        let sum = x.add(y, Lane::U8, Saturation::Wrapping);
        for i in 0..8 {
            let expect = (x.to_u8_lanes()[i]).wrapping_add(y.to_u8_lanes()[i]);
            prop_assert_eq!(sum.to_u8_lanes()[i], expect);
        }
    }

    #[test]
    fn abs_diff_is_symmetric_and_bounded(a in any::<u64>(), b in any::<u64>()) {
        let x = PackedWord::new(a);
        let y = PackedWord::new(b);
        prop_assert_eq!(x.abs_diff(y, Lane::U8), y.abs_diff(x, Lane::U8));
        prop_assert_eq!(x.sad(y, Lane::U8), y.sad(x, Lane::U8));
        prop_assert!(x.sad(y, Lane::U8) <= 8 * 255);
        prop_assert_eq!(x.abs_diff(x, Lane::U8), PackedWord::ZERO);
    }

    #[test]
    fn unpack_lo_hi_cover_all_lanes(a in any::<u64>(), b in any::<u64>()) {
        let x = PackedWord::new(a);
        let y = PackedWord::new(b);
        let lo = x.unpack_lo(y, Lane::U8).to_u8_lanes();
        let hi = x.unpack_hi(y, Lane::U8).to_u8_lanes();
        let mut seen: Vec<u8> = lo.iter().chain(hi.iter()).copied().collect();
        let mut expected: Vec<u8> = x.to_u8_lanes().iter().chain(y.to_u8_lanes().iter()).copied().collect();
        seen.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(seen, expected);
    }

    #[test]
    fn pack_saturates_to_destination_range(a in any::<u64>(), b in any::<u64>()) {
        let x = PackedWord::new(a);
        let y = PackedWord::new(b);
        let packed = x.pack(y, Lane::I16, false);
        for i in 0..8 {
            let v = packed.lane(Lane::U8, i);
            prop_assert!((0..=255).contains(&v));
        }
        let source = if i32::from(x.to_i16_lanes()[0]) < 0 { 0 } else { x.to_i16_lanes()[0].min(255) as i64 };
        prop_assert_eq!(packed.lane(Lane::U8, 0), source);
    }

    #[test]
    fn select_picks_only_from_inputs(mask in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        let m = PackedWord::new(mask);
        let x = PackedWord::new(a);
        let y = PackedWord::new(b);
        let sel = PackedWord::select(m, x, y, Lane::U8);
        for i in 0..8 {
            let v = sel.lane(Lane::U8, i);
            prop_assert!(v == x.lane(Lane::U8, i) || v == y.lane(Lane::U8, i));
        }
    }

    #[test]
    fn accumulator_mul_add_matches_scalar(a in prop::collection::vec(-3000i64..3000, 4),
                                          b in prop::collection::vec(-3000i64..3000, 4),
                                          reps in 1usize..5) {
        let x = PackedWord::from_lanes(Lane::I16, a.iter().copied());
        let y = PackedWord::from_lanes(Lane::I16, b.iter().copied());
        let mut acc = Accumulator::new();
        for _ in 0..reps {
            acc.mul_add(x, y, Lane::I16);
        }
        let expect: i64 = a.iter().zip(&b).map(|(p, q)| p * q).sum::<i64>() * reps as i64;
        prop_assert_eq!(acc.reduce_sum(), expect);
    }

    #[test]
    fn accumulator_read_back_is_saturated(values in prop::collection::vec(-(1i64<<40)..(1i64<<40), 4),
                                          shift in 0u32..16) {
        let mut acc = Accumulator::new();
        for (i, v) in values.iter().enumerate() {
            acc.set_lane(Lane::I16, i, *v);
        }
        let packed = acc.read_packed(Lane::I16, shift, Saturation::Saturating);
        for i in 0..4 {
            let v = packed.lane(Lane::I16, i);
            prop_assert!((i16::MIN as i64..=i16::MAX as i64).contains(&v));
        }
    }
}
