//! Property-based tests of `MemList`, the small-buffer access list inside
//! `DynInst`: for any access sequence it behaves exactly like a
//! `Vec<MemAccess>`, stays inline up to `MEM_INLINE` entries and spills
//! transparently past them.

use mom_isa::trace::{MemAccess, MemKind, MemList, MEM_INLINE};
use proptest::prelude::*;

fn access(bits: u64) -> MemAccess {
    MemAccess {
        addr: bits >> 8,
        size: 1 << (bits & 3),
        kind: if bits & 4 == 0 { MemKind::Load } else { MemKind::Store },
    }
}

proptest! {
    #![proptest_config(Config::with_cases(256))]

    #[test]
    fn mem_list_mirrors_vec_semantics(raw in prop::collection::vec(any::<u64>(), 0..40)) {
        let accesses: Vec<MemAccess> = raw.iter().map(|&b| access(b)).collect();

        // Pushed one at a time.
        let mut pushed = MemList::new();
        for &a in &accesses {
            pushed.push(a);
        }
        // Collected and converted.
        let collected: MemList = accesses.iter().copied().collect();
        let converted: MemList = accesses.clone().into();

        for list in [&pushed, &collected, &converted] {
            prop_assert_eq!(list.as_slice(), &accesses[..]);
            prop_assert_eq!(list.len(), accesses.len());
            prop_assert_eq!(list.is_empty(), accesses.is_empty());
            // The inline/spill boundary is exactly MEM_INLINE.
            prop_assert_eq!(list.is_spilled(), accesses.len() > MEM_INLINE);
        }
        prop_assert_eq!(&pushed, &collected);
        prop_assert_eq!(&pushed, &converted);

        // Cloning preserves contents and representation.
        let clone = pushed.clone();
        prop_assert_eq!(clone.as_slice(), &accesses[..]);
        prop_assert_eq!(clone.is_spilled(), pushed.is_spilled());

        // Borrowed iteration agrees with slice iteration.
        let via_iter: Vec<MemAccess> = (&pushed).into_iter().copied().collect();
        prop_assert_eq!(via_iter, accesses);
    }
}
