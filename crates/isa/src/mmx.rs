//! The MMX-like multimedia extension.
//!
//! This models the paper's *extended* MMX emulation library: 64-bit packed
//! operations over a dedicated 32-entry media register file, three logical
//! source/destination operands, plus the extra instructions the authors added
//! to make the comparison fair (packed average, conditional move / select and
//! "enhanced reduction operations" such as a packed sum-of-absolute-differences
//! and a horizontal sum).
//!
//! Reductions that need more precision than a lane provides must still go
//! through explicit widening (`WidenLo`/`WidenHi` + 16- or 32-bit adds), which
//! is the data-promotion overhead the paper contrasts with MDMX accumulators
//! and MOM matrix accumulators.

use crate::packed::{Lane, PackedWord, Saturation};
use crate::regs::{IntReg, MediaReg};
use crate::state::{CoreState, Outcome};
use crate::trace::{ArchReg, InstClass, MemAccess, MemKind};

/// Element-wise binary operations shared by the packed `Packed` instruction
/// form (and reused by MDMX and MOM for their SIMD and matrix forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PackedBinOp {
    /// Lane-wise addition (modular or saturating).
    Add,
    /// Lane-wise subtraction (modular or saturating).
    Sub,
    /// Lane-wise absolute difference.
    AbsDiff,
    /// Lane-wise rounding average.
    Avg,
    /// Lane-wise minimum.
    Min,
    /// Lane-wise maximum.
    Max,
    /// Lane-wise multiply, low half of the product.
    MulLo,
    /// Lane-wise multiply, high half of the product.
    MulHi,
    /// 16-bit multiply with pairwise 32-bit add (`pmaddwd`).
    MulAddPairs,
    /// Bit-wise AND.
    And,
    /// Bit-wise OR.
    Or,
    /// Bit-wise XOR.
    Xor,
    /// Bit-wise AND-NOT.
    AndNot,
    /// Lane-wise equality compare (mask result).
    CmpEq,
    /// Lane-wise greater-than compare (mask result).
    CmpGt,
}

impl PackedBinOp {
    /// Apply the operation to two packed words.
    pub fn apply(self, a: PackedWord, b: PackedWord, lane: Lane, sat: Saturation) -> PackedWord {
        match self {
            PackedBinOp::Add => a.add(b, lane, sat),
            PackedBinOp::Sub => a.sub(b, lane, sat),
            PackedBinOp::AbsDiff => a.abs_diff(b, lane),
            PackedBinOp::Avg => a.avg(b, lane),
            PackedBinOp::Min => a.min(b, lane),
            PackedBinOp::Max => a.max(b, lane),
            PackedBinOp::MulLo => a.mul_lo(b, lane),
            PackedBinOp::MulHi => a.mul_hi(b, lane),
            PackedBinOp::MulAddPairs => a.mul_add_pairs(b),
            PackedBinOp::And => a.and(b),
            PackedBinOp::Or => a.or(b),
            PackedBinOp::Xor => a.xor(b),
            PackedBinOp::AndNot => a.andnot(b),
            PackedBinOp::CmpEq => a.cmp_eq(b, lane),
            PackedBinOp::CmpGt => a.cmp_gt(b, lane),
        }
    }

    /// Whether the operation uses the complex (multiplier) media unit.
    pub fn is_complex(self) -> bool {
        matches!(self, PackedBinOp::MulLo | PackedBinOp::MulHi | PackedBinOp::MulAddPairs)
    }

    /// All binary operations (used for the opcode inventory).
    pub const ALL: [PackedBinOp; 15] = [
        PackedBinOp::Add,
        PackedBinOp::Sub,
        PackedBinOp::AbsDiff,
        PackedBinOp::Avg,
        PackedBinOp::Min,
        PackedBinOp::Max,
        PackedBinOp::MulLo,
        PackedBinOp::MulHi,
        PackedBinOp::MulAddPairs,
        PackedBinOp::And,
        PackedBinOp::Or,
        PackedBinOp::Xor,
        PackedBinOp::AndNot,
        PackedBinOp::CmpEq,
        PackedBinOp::CmpGt,
    ];
}

/// Packed shift directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftKind {
    /// Logical shift left.
    LeftLogical,
    /// Logical (zero-filling) shift right.
    RightLogical,
    /// Arithmetic (sign-preserving) shift right.
    RightArith,
}

/// MMX-like instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MmxOp {
    /// Load a 64-bit packed word from `[base + offset]`.
    Ld {
        /// Destination media register.
        md: MediaReg,
        /// Base address register.
        base: IntReg,
        /// Byte offset.
        offset: i64,
    },
    /// Store a 64-bit packed word to `[base + offset]`.
    St {
        /// Source media register.
        ms: MediaReg,
        /// Base address register.
        base: IntReg,
        /// Byte offset.
        offset: i64,
    },
    /// Broadcast the low lane of an integer register into every lane.
    Splat {
        /// Destination media register.
        md: MediaReg,
        /// Integer source register.
        rs: IntReg,
        /// Lane interpretation.
        lane: Lane,
    },
    /// Move a full 64-bit value from the integer file into a media register.
    FromInt {
        /// Destination media register.
        md: MediaReg,
        /// Integer source register.
        rs: IntReg,
    },
    /// Extract one lane into an integer register (sign-/zero-extended per the
    /// lane type).
    ToInt {
        /// Destination integer register.
        rd: IntReg,
        /// Source media register.
        ms: MediaReg,
        /// Lane interpretation.
        lane: Lane,
        /// Lane index to extract.
        idx: u8,
    },
    /// Lane-wise binary operation `md = ma <op> mb`.
    Packed {
        /// Operation.
        op: PackedBinOp,
        /// Destination media register.
        md: MediaReg,
        /// First source.
        ma: MediaReg,
        /// Second source.
        mb: MediaReg,
        /// Lane interpretation.
        lane: Lane,
        /// Saturation behaviour (for add/sub).
        sat: Saturation,
    },
    /// Lane-wise shift by an immediate amount.
    Shift {
        /// Shift kind.
        kind: ShiftKind,
        /// Destination media register.
        md: MediaReg,
        /// Source media register.
        ms: MediaReg,
        /// Lane interpretation.
        lane: Lane,
        /// Shift amount in bits.
        amount: u8,
    },
    /// Per-lane select: `md[i] = mask[i] != 0 ? ma[i] : mb[i]` (the packed
    /// conditional move added to all emulated ISAs).
    Select {
        /// Destination media register.
        md: MediaReg,
        /// Mask register.
        mask: MediaReg,
        /// Value when the mask lane is non-zero.
        ma: MediaReg,
        /// Value when the mask lane is zero.
        mb: MediaReg,
        /// Lane interpretation.
        lane: Lane,
    },
    /// Narrow two registers into one with saturation (`pack`).
    Pack {
        /// Destination media register.
        md: MediaReg,
        /// Low-half source.
        ma: MediaReg,
        /// High-half source.
        mb: MediaReg,
        /// Source lane type (16- or 32-bit).
        from: Lane,
        /// Whether the narrowed lanes are signed.
        to_signed: bool,
    },
    /// Interleave low-half lanes of two registers (`punpckl*`).
    UnpackLo {
        /// Destination media register.
        md: MediaReg,
        /// First source.
        ma: MediaReg,
        /// Second source.
        mb: MediaReg,
        /// Lane interpretation.
        lane: Lane,
    },
    /// Interleave high-half lanes of two registers (`punpckh*`).
    UnpackHi {
        /// Destination media register.
        md: MediaReg,
        /// First source.
        ma: MediaReg,
        /// Second source.
        mb: MediaReg,
        /// Lane interpretation.
        lane: Lane,
    },
    /// Widen the low half of the lanes to the next wider type.
    WidenLo {
        /// Destination media register.
        md: MediaReg,
        /// Source media register.
        ms: MediaReg,
        /// Source lane type.
        lane: Lane,
    },
    /// Widen the high half of the lanes to the next wider type.
    WidenHi {
        /// Destination media register.
        md: MediaReg,
        /// Source media register.
        ms: MediaReg,
        /// Source lane type.
        lane: Lane,
    },
    /// Packed sum of absolute differences reduced into lane 0 (32-bit) of the
    /// destination — one of the paper's "enhanced reduction operations".
    Sad {
        /// Destination media register (lane 0 receives the sum).
        md: MediaReg,
        /// First source.
        ma: MediaReg,
        /// Second source.
        mb: MediaReg,
        /// Lane interpretation of the sources.
        lane: Lane,
    },
    /// Horizontal sum of all lanes into an integer register.
    ReduceSum {
        /// Destination integer register.
        rd: IntReg,
        /// Source media register.
        ms: MediaReg,
        /// Lane interpretation.
        lane: Lane,
    },
}

impl MmxOp {
    /// Functional-unit class of this instruction.
    pub fn class(&self) -> InstClass {
        match self {
            MmxOp::Ld { .. } => InstClass::Load,
            MmxOp::St { .. } => InstClass::Store,
            MmxOp::Packed { op, .. } if op.is_complex() => InstClass::MediaComplex,
            MmxOp::Sad { .. } | MmxOp::ReduceSum { .. } => InstClass::MediaComplex,
            _ => InstClass::MediaSimple,
        }
    }

    /// Source registers read by this instruction.
    pub fn srcs(&self) -> Vec<ArchReg> {
        let m = |r: &MediaReg| ArchReg::media(r.index() as u8);
        let i = |r: &IntReg| ArchReg::int(r.index() as u8);
        match self {
            MmxOp::Ld { base, .. } => vec![i(base)],
            MmxOp::St { ms, base, .. } => vec![m(ms), i(base)],
            MmxOp::Splat { rs, .. } | MmxOp::FromInt { rs, .. } => vec![i(rs)],
            MmxOp::ToInt { ms, .. } => vec![m(ms)],
            MmxOp::Packed { ma, mb, .. } => vec![m(ma), m(mb)],
            MmxOp::Shift { ms, .. } => vec![m(ms)],
            MmxOp::Select { mask, ma, mb, .. } => vec![m(mask), m(ma), m(mb)],
            MmxOp::Pack { ma, mb, .. } | MmxOp::UnpackLo { ma, mb, .. } | MmxOp::UnpackHi { ma, mb, .. } => {
                vec![m(ma), m(mb)]
            }
            MmxOp::WidenLo { ms, .. } | MmxOp::WidenHi { ms, .. } => vec![m(ms)],
            MmxOp::Sad { ma, mb, .. } => vec![m(ma), m(mb)],
            MmxOp::ReduceSum { ms, .. } => vec![m(ms)],
        }
    }

    /// Destination registers written by this instruction.
    pub fn dsts(&self) -> Vec<ArchReg> {
        let m = |r: &MediaReg| ArchReg::media(r.index() as u8);
        let i = |r: &IntReg| ArchReg::int(r.index() as u8);
        match self {
            MmxOp::Ld { md, .. }
            | MmxOp::Splat { md, .. }
            | MmxOp::FromInt { md, .. }
            | MmxOp::Packed { md, .. }
            | MmxOp::Shift { md, .. }
            | MmxOp::Select { md, .. }
            | MmxOp::Pack { md, .. }
            | MmxOp::UnpackLo { md, .. }
            | MmxOp::UnpackHi { md, .. }
            | MmxOp::WidenLo { md, .. }
            | MmxOp::WidenHi { md, .. }
            | MmxOp::Sad { md, .. } => vec![m(md)],
            MmxOp::ToInt { rd, .. } | MmxOp::ReduceSum { rd, .. } => vec![i(rd)],
            MmxOp::St { .. } => vec![],
        }
    }

    /// Execute the instruction against the architectural state.
    pub fn execute(&self, st: &mut CoreState) -> Outcome {
        match self {
            MmxOp::Ld { md, base, offset } => {
                let addr = (st.int.read(*base) + offset) as u64;
                let v = PackedWord::new(st.mem.read_u64(addr));
                st.media.write(*md, v);
                Outcome::with_access(MemAccess { addr, size: 8, kind: MemKind::Load })
            }
            MmxOp::St { ms, base, offset } => {
                let addr = (st.int.read(*base) + offset) as u64;
                st.mem.write_u64(addr, st.media.read(*ms).bits());
                Outcome::with_access(MemAccess { addr, size: 8, kind: MemKind::Store })
            }
            MmxOp::Splat { md, rs, lane } => {
                let v = PackedWord::splat(*lane, st.int.read(*rs));
                st.media.write(*md, v);
                Outcome::fall()
            }
            MmxOp::FromInt { md, rs } => {
                st.media.write(*md, PackedWord::new(st.int.read(*rs) as u64));
                Outcome::fall()
            }
            MmxOp::ToInt { rd, ms, lane, idx } => {
                let v = st.media.read(*ms).lane(*lane, *idx as usize);
                st.int.write(*rd, v);
                Outcome::fall()
            }
            MmxOp::Packed { op, md, ma, mb, lane, sat } => {
                let v = op.apply(st.media.read(*ma), st.media.read(*mb), *lane, *sat);
                st.media.write(*md, v);
                Outcome::fall()
            }
            MmxOp::Shift { kind, md, ms, lane, amount } => {
                let a = st.media.read(*ms);
                let v = match kind {
                    ShiftKind::LeftLogical => a.shl(*lane, *amount as u32),
                    ShiftKind::RightLogical => a.shr_logical(*lane, *amount as u32),
                    ShiftKind::RightArith => a.shr_arith(*lane, *amount as u32),
                };
                st.media.write(*md, v);
                Outcome::fall()
            }
            MmxOp::Select { md, mask, ma, mb, lane } => {
                let v = PackedWord::select(
                    st.media.read(*mask),
                    st.media.read(*ma),
                    st.media.read(*mb),
                    *lane,
                );
                st.media.write(*md, v);
                Outcome::fall()
            }
            MmxOp::Pack { md, ma, mb, from, to_signed } => {
                let v = st.media.read(*ma).pack(st.media.read(*mb), *from, *to_signed);
                st.media.write(*md, v);
                Outcome::fall()
            }
            MmxOp::UnpackLo { md, ma, mb, lane } => {
                let v = st.media.read(*ma).unpack_lo(st.media.read(*mb), *lane);
                st.media.write(*md, v);
                Outcome::fall()
            }
            MmxOp::UnpackHi { md, ma, mb, lane } => {
                let v = st.media.read(*ma).unpack_hi(st.media.read(*mb), *lane);
                st.media.write(*md, v);
                Outcome::fall()
            }
            MmxOp::WidenLo { md, ms, lane } => {
                let v = st.media.read(*ms).widen_lo(*lane);
                st.media.write(*md, v);
                Outcome::fall()
            }
            MmxOp::WidenHi { md, ms, lane } => {
                let v = st.media.read(*ms).widen_hi(*lane);
                st.media.write(*md, v);
                Outcome::fall()
            }
            MmxOp::Sad { md, ma, mb, lane } => {
                let s = st.media.read(*ma).sad(st.media.read(*mb), *lane);
                st.media.write(*md, PackedWord::ZERO.with_lane(Lane::I32, 0, s));
                Outcome::fall()
            }
            MmxOp::ReduceSum { rd, ms, lane } => {
                let s = st.media.read(*ms).reduce_sum(*lane);
                st.int.write(*rd, s);
                Outcome::fall()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemImage;
    use crate::regs::{m, r};

    fn state() -> CoreState {
        CoreState::new(MemImage::new(0x1000, 256))
    }

    #[test]
    fn load_store_roundtrip() {
        let mut st = state();
        st.int.write(r(1), 0x1000);
        st.media.write(m(2), PackedWord::from_u8_lanes([1, 2, 3, 4, 5, 6, 7, 8]));
        let o = MmxOp::St { ms: m(2), base: r(1), offset: 16 }.execute(&mut st);
        assert_eq!(o.mem[0].size, 8);
        MmxOp::Ld { md: m(3), base: r(1), offset: 16 }.execute(&mut st);
        assert_eq!(st.media.read(m(3)).to_u8_lanes(), [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn splat_and_int_moves() {
        let mut st = state();
        st.int.write(r(1), 7);
        MmxOp::Splat { md: m(0), rs: r(1), lane: Lane::I16 }.execute(&mut st);
        assert_eq!(st.media.read(m(0)).to_i16_lanes(), [7; 4]);
        st.int.write(r(2), 0x1122_3344_5566_7788u64 as i64);
        MmxOp::FromInt { md: m(1), rs: r(2) }.execute(&mut st);
        assert_eq!(st.media.read(m(1)).bits(), 0x1122_3344_5566_7788);
        MmxOp::ToInt { rd: r(3), ms: m(1), lane: Lane::U16, idx: 0 }.execute(&mut st);
        assert_eq!(st.int.read(r(3)), 0x7788);
    }

    #[test]
    fn packed_binop_saturating_add() {
        let mut st = state();
        st.media.write(m(1), PackedWord::from_u8_lanes([250; 8]));
        st.media.write(m(2), PackedWord::from_u8_lanes([20; 8]));
        MmxOp::Packed {
            op: PackedBinOp::Add,
            md: m(3),
            ma: m(1),
            mb: m(2),
            lane: Lane::U8,
            sat: Saturation::Saturating,
        }
        .execute(&mut st);
        assert_eq!(st.media.read(m(3)).to_u8_lanes(), [255; 8]);
    }

    #[test]
    fn shift_select_pack_unpack_widen() {
        let mut st = state();
        st.media.write(m(1), PackedWord::from_i16_lanes([4, -4, 100, -100]));
        MmxOp::Shift { kind: ShiftKind::RightArith, md: m(2), ms: m(1), lane: Lane::I16, amount: 2 }
            .execute(&mut st);
        assert_eq!(st.media.read(m(2)).to_i16_lanes(), [1, -1, 25, -25]);

        st.media.write(m(3), PackedWord::from_i16_lanes([-1, 0, -1, 0]));
        st.media.write(m(4), PackedWord::from_i16_lanes([9, 9, 9, 9]));
        MmxOp::Select { md: m(5), mask: m(3), ma: m(1), mb: m(4), lane: Lane::I16 }.execute(&mut st);
        assert_eq!(st.media.read(m(5)).to_i16_lanes(), [4, 9, 100, 9]);

        MmxOp::Pack { md: m(6), ma: m(1), mb: m(4), from: Lane::I16, to_signed: false }.execute(&mut st);
        assert_eq!(st.media.read(m(6)).to_u8_lanes(), [4, 0, 100, 0, 9, 9, 9, 9]);

        st.media.write(m(7), PackedWord::from_u8_lanes([1, 2, 3, 4, 5, 6, 7, 8]));
        st.media.write(m(8), PackedWord::ZERO);
        MmxOp::UnpackLo { md: m(9), ma: m(7), mb: m(8), lane: Lane::U8 }.execute(&mut st);
        assert_eq!(st.media.read(m(9)).to_u8_lanes(), [1, 0, 2, 0, 3, 0, 4, 0]);
        MmxOp::UnpackHi { md: m(10), ma: m(7), mb: m(8), lane: Lane::U8 }.execute(&mut st);
        assert_eq!(st.media.read(m(10)).to_u8_lanes(), [5, 0, 6, 0, 7, 0, 8, 0]);

        MmxOp::WidenLo { md: m(11), ms: m(7), lane: Lane::U8 }.execute(&mut st);
        assert_eq!(st.media.read(m(11)).to_i16_lanes(), [1, 2, 3, 4]);
        MmxOp::WidenHi { md: m(12), ms: m(7), lane: Lane::U8 }.execute(&mut st);
        assert_eq!(st.media.read(m(12)).to_i16_lanes(), [5, 6, 7, 8]);
    }

    #[test]
    fn sad_and_reduce() {
        let mut st = state();
        let a = PackedWord::from_u8_lanes([10, 20, 30, 40, 50, 60, 70, 80]);
        let b = PackedWord::from_u8_lanes([11, 19, 33, 40, 55, 60, 60, 90]);
        st.media.write(m(1), a);
        st.media.write(m(2), b);
        MmxOp::Sad { md: m(3), ma: m(1), mb: m(2), lane: Lane::U8 }.execute(&mut st);
        assert_eq!(st.media.read(m(3)).lane(Lane::I32, 0), a.sad(b, Lane::U8));
        st.media.write(m(4), PackedWord::from_i16_lanes([1, 2, 3, 4]));
        MmxOp::ReduceSum { rd: r(5), ms: m(4), lane: Lane::I16 }.execute(&mut st);
        assert_eq!(st.int.read(r(5)), 10);
    }

    #[test]
    fn classes_and_metadata() {
        let mul = MmxOp::Packed {
            op: PackedBinOp::MulLo,
            md: m(1),
            ma: m(2),
            mb: m(3),
            lane: Lane::I16,
            sat: Saturation::Wrapping,
        };
        assert_eq!(mul.class(), InstClass::MediaComplex);
        let add = MmxOp::Packed {
            op: PackedBinOp::Add,
            md: m(1),
            ma: m(2),
            mb: m(3),
            lane: Lane::I16,
            sat: Saturation::Wrapping,
        };
        assert_eq!(add.class(), InstClass::MediaSimple);
        assert_eq!(add.srcs(), vec![ArchReg::media(2), ArchReg::media(3)]);
        assert_eq!(add.dsts(), vec![ArchReg::media(1)]);
        let ld = MmxOp::Ld { md: m(1), base: r(2), offset: 0 };
        assert_eq!(ld.class(), InstClass::Load);
        assert_eq!(ld.srcs(), vec![ArchReg::int(2)]);
        let st_op = MmxOp::St { ms: m(1), base: r(2), offset: 0 };
        assert_eq!(st_op.class(), InstClass::Store);
        assert!(st_op.dsts().is_empty());
        let red = MmxOp::ReduceSum { rd: r(1), ms: m(2), lane: Lane::I16 };
        assert_eq!(red.class(), InstClass::MediaComplex);
        assert_eq!(red.dsts(), vec![ArchReg::int(1)]);
    }

    #[test]
    fn packed_binop_all_inventory_applies() {
        // Every op in the inventory must be applicable without panicking.
        let a = PackedWord::from_i16_lanes([1, -2, 3, -4]);
        let b = PackedWord::from_i16_lanes([5, 6, -7, 8]);
        for op in PackedBinOp::ALL {
            let _ = op.apply(a, b, Lane::I16, Saturation::Saturating);
        }
    }
}
