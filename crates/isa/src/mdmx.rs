//! The MDMX-like multimedia extension: MMX-style packed SIMD plus packed
//! accumulators.
//!
//! MDMX's distinguishing feature is the 192-bit *packed accumulator*: wide
//! per-lane accumulation registers that make reductions (dot products, sums of
//! absolute differences) possible without the pack/unpack data-promotion
//! overhead MMX needs. The drawback the paper highlights is the architectural
//! recurrence — every accumulate instruction reads the accumulator it writes —
//! which limits ILP for long-latency operations; MOM removes that recurrence by
//! streaming a whole matrix through a single accumulate instruction.
//!
//! All plain SIMD instructions are shared with the MMX model through
//! [`MmxOp`]; this module adds only the accumulator forms.

use crate::mmx::MmxOp;
use crate::packed::{Lane, Saturation};
use crate::regs::{AccReg, IntReg, MediaReg};
use crate::state::{CoreState, Outcome};
use crate::trace::{ArchReg, InstClass};

/// Accumulating operations (`acc <op>= f(a, b)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccOp {
    /// `acc[i] += a[i] * b[i]` (MDMX `MULA`).
    MulAdd,
    /// `acc[i] -= a[i] * b[i]` (MDMX `MULS`).
    MulSub,
    /// `acc[i] += a[i]` (MDMX `ADDA`; the second operand is ignored).
    Add,
    /// `acc[i] -= a[i]` (MDMX `SUBA`; the second operand is ignored).
    Sub,
    /// `acc[i] += |a[i] - b[i]|` (sum of absolute differences).
    AbsDiffAdd,
    /// `acc[i] += (a[i] - b[i])^2` (sum of quadratic differences).
    SqrDiffAdd,
}

impl AccOp {
    /// Whether the operation needs the packed multiplier.
    pub fn is_complex(self) -> bool {
        matches!(self, AccOp::MulAdd | AccOp::MulSub | AccOp::SqrDiffAdd)
    }

    /// All accumulate operations (for the opcode inventory).
    pub const ALL: [AccOp; 6] = [
        AccOp::MulAdd,
        AccOp::MulSub,
        AccOp::Add,
        AccOp::Sub,
        AccOp::AbsDiffAdd,
        AccOp::SqrDiffAdd,
    ];

    /// Apply the operation to one accumulator.
    pub fn apply(
        self,
        acc: &mut crate::accumulator::Accumulator,
        a: crate::packed::PackedWord,
        b: crate::packed::PackedWord,
        lane: Lane,
    ) {
        match self {
            AccOp::MulAdd => acc.mul_add(a, b, lane),
            AccOp::MulSub => acc.mul_sub(a, b, lane),
            AccOp::Add => acc.add(a, lane),
            AccOp::Sub => acc.sub(a, lane),
            AccOp::AbsDiffAdd => acc.abs_diff_add(a, b, lane),
            AccOp::SqrDiffAdd => acc.sqr_diff_add(a, b, lane),
        }
    }
}

/// MDMX-like instructions: every MMX instruction plus the accumulator forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MdmxOp {
    /// A plain packed SIMD instruction shared with the MMX model.
    Simd(MmxOp),
    /// Clear an accumulator.
    AccClear {
        /// Accumulator to clear.
        acc: AccReg,
    },
    /// Accumulate into `acc` from two media registers.
    Acc {
        /// Accumulating operation.
        op: AccOp,
        /// Destination (and implicit source) accumulator.
        acc: AccReg,
        /// First media source.
        ma: MediaReg,
        /// Second media source (ignored by `Add`/`Sub`).
        mb: MediaReg,
        /// Lane interpretation.
        lane: Lane,
    },
    /// Read the accumulator back into a media register with shift, rounding
    /// and saturation (the MDMX `RAC` family).
    ReadAcc {
        /// Destination media register.
        md: MediaReg,
        /// Source accumulator.
        acc: AccReg,
        /// Destination lane type.
        lane: Lane,
        /// Right shift (fractional bits discarded, with rounding).
        shift: u8,
        /// Saturation behaviour.
        sat: Saturation,
    },
    /// Horizontal-sum the accumulator lanes into an integer register (the
    /// final step of the reductions used by the kernels).
    ReduceAcc {
        /// Destination integer register.
        rd: IntReg,
        /// Source accumulator.
        acc: AccReg,
    },
}

impl MdmxOp {
    /// Functional-unit class of this instruction.
    pub fn class(&self) -> InstClass {
        match self {
            MdmxOp::Simd(op) => op.class(),
            MdmxOp::AccClear { .. } => InstClass::MediaSimple,
            MdmxOp::Acc { op, .. } if op.is_complex() => InstClass::MediaComplex,
            MdmxOp::Acc { .. } => InstClass::MediaSimple,
            MdmxOp::ReadAcc { .. } | MdmxOp::ReduceAcc { .. } => InstClass::MediaSimple,
        }
    }

    /// Source registers read by this instruction.
    ///
    /// Accumulating forms list the accumulator as a source as well as a
    /// destination: that is exactly the recurrence the paper criticises.
    pub fn srcs(&self) -> Vec<ArchReg> {
        let m = |r: &MediaReg| ArchReg::media(r.index() as u8);
        let a = |r: &AccReg| ArchReg::acc(r.index() as u8);
        match self {
            MdmxOp::Simd(op) => op.srcs(),
            MdmxOp::AccClear { .. } => vec![],
            MdmxOp::Acc { acc, ma, mb, .. } => vec![a(acc), m(ma), m(mb)],
            MdmxOp::ReadAcc { acc, .. } | MdmxOp::ReduceAcc { acc, .. } => vec![a(acc)],
        }
    }

    /// Destination registers written by this instruction.
    pub fn dsts(&self) -> Vec<ArchReg> {
        let m = |r: &MediaReg| ArchReg::media(r.index() as u8);
        let a = |r: &AccReg| ArchReg::acc(r.index() as u8);
        let i = |r: &IntReg| ArchReg::int(r.index() as u8);
        match self {
            MdmxOp::Simd(op) => op.dsts(),
            MdmxOp::AccClear { acc } | MdmxOp::Acc { acc, .. } => vec![a(acc)],
            MdmxOp::ReadAcc { md, .. } => vec![m(md)],
            MdmxOp::ReduceAcc { rd, .. } => vec![i(rd)],
        }
    }

    /// Execute the instruction against the architectural state.
    pub fn execute(&self, st: &mut CoreState) -> Outcome {
        match self {
            MdmxOp::Simd(op) => op.execute(st),
            MdmxOp::AccClear { acc } => {
                st.accs[acc.index()].clear();
                Outcome::fall()
            }
            MdmxOp::Acc { op, acc, ma, mb, lane } => {
                let a = st.media.read(*ma);
                let b = st.media.read(*mb);
                op.apply(&mut st.accs[acc.index()], a, b, *lane);
                Outcome::fall()
            }
            MdmxOp::ReadAcc { md, acc, lane, shift, sat } => {
                let v = st.accs[acc.index()].read_packed(*lane, *shift as u32, *sat);
                st.media.write(*md, v);
                Outcome::fall()
            }
            MdmxOp::ReduceAcc { rd, acc } => {
                let v = st.accs[acc.index()].reduce_sum();
                st.int.write(*rd, v);
                Outcome::fall()
            }
        }
    }
}

impl From<MmxOp> for MdmxOp {
    fn from(op: MmxOp) -> Self {
        MdmxOp::Simd(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemImage;
    use crate::packed::PackedWord;
    use crate::regs::{a, m, r};

    fn state() -> CoreState {
        CoreState::new(MemImage::new(0x1000, 256))
    }

    #[test]
    fn accumulate_dot_product() {
        let mut st = state();
        st.media.write(m(1), PackedWord::from_i16_lanes([1, 2, 3, 4]));
        st.media.write(m(2), PackedWord::from_i16_lanes([10, 20, 30, 40]));
        MdmxOp::AccClear { acc: a(0) }.execute(&mut st);
        MdmxOp::Acc { op: AccOp::MulAdd, acc: a(0), ma: m(1), mb: m(2), lane: Lane::I16 }.execute(&mut st);
        MdmxOp::Acc { op: AccOp::MulAdd, acc: a(0), ma: m(1), mb: m(2), lane: Lane::I16 }.execute(&mut st);
        MdmxOp::ReduceAcc { rd: r(3), acc: a(0) }.execute(&mut st);
        assert_eq!(st.int.read(r(3)), 2 * (10 + 40 + 90 + 160));
    }

    #[test]
    fn accumulate_sad_and_sqd() {
        let mut st = state();
        let x = PackedWord::from_u8_lanes([10, 20, 30, 40, 50, 60, 70, 80]);
        let y = PackedWord::from_u8_lanes([12, 18, 35, 40, 52, 60, 70, 81]);
        st.media.write(m(1), x);
        st.media.write(m(2), y);
        MdmxOp::Acc { op: AccOp::AbsDiffAdd, acc: a(1), ma: m(1), mb: m(2), lane: Lane::U8 }.execute(&mut st);
        MdmxOp::ReduceAcc { rd: r(3), acc: a(1) }.execute(&mut st);
        assert_eq!(st.int.read(r(3)), x.sad(y, Lane::U8));
        MdmxOp::AccClear { acc: a(1) }.execute(&mut st);
        MdmxOp::Acc { op: AccOp::SqrDiffAdd, acc: a(1), ma: m(1), mb: m(2), lane: Lane::U8 }.execute(&mut st);
        MdmxOp::ReduceAcc { rd: r(4), acc: a(1) }.execute(&mut st);
        assert_eq!(st.int.read(r(4)), x.sqd(y, Lane::U8));
    }

    #[test]
    fn read_acc_applies_shift_and_saturation() {
        let mut st = state();
        st.media.write(m(1), PackedWord::from_i16_lanes([1000, -1000, 30000, 5]));
        st.media.write(m(2), PackedWord::from_i16_lanes([4, 4, 4, 4]));
        MdmxOp::Acc { op: AccOp::MulAdd, acc: a(0), ma: m(1), mb: m(2), lane: Lane::I16 }.execute(&mut st);
        MdmxOp::ReadAcc { md: m(3), acc: a(0), lane: Lane::I16, shift: 2, sat: Saturation::Saturating }
            .execute(&mut st);
        assert_eq!(st.media.read(m(3)).to_i16_lanes(), [1000, -1000, 30000, 5]);
        // Without the shift, 30000*4 saturates on read-back.
        MdmxOp::ReadAcc { md: m(4), acc: a(0), lane: Lane::I16, shift: 0, sat: Saturation::Saturating }
            .execute(&mut st);
        assert_eq!(st.media.read(m(4)).to_i16_lanes()[2], 32767);
    }

    #[test]
    fn simd_ops_pass_through() {
        let mut st = state();
        st.media.write(m(1), PackedWord::from_u8_lanes([1; 8]));
        st.media.write(m(2), PackedWord::from_u8_lanes([2; 8]));
        let op = MdmxOp::Simd(MmxOp::Packed {
            op: crate::mmx::PackedBinOp::Add,
            md: m(3),
            ma: m(1),
            mb: m(2),
            lane: Lane::U8,
            sat: Saturation::Wrapping,
        });
        op.execute(&mut st);
        assert_eq!(st.media.read(m(3)).to_u8_lanes(), [3; 8]);
        assert_eq!(op.class(), InstClass::MediaSimple);
    }

    #[test]
    fn accumulator_recurrence_is_visible_in_metadata() {
        let op = MdmxOp::Acc { op: AccOp::MulAdd, acc: a(2), ma: m(1), mb: m(2), lane: Lane::I16 };
        // The accumulator appears both as a source and a destination: this is
        // the recurrence that limits MDMX ILP in the paper's analysis.
        assert!(op.srcs().contains(&ArchReg::acc(2)));
        assert!(op.dsts().contains(&ArchReg::acc(2)));
        assert_eq!(op.class(), InstClass::MediaComplex);
        let adda = MdmxOp::Acc { op: AccOp::Add, acc: a(0), ma: m(1), mb: m(1), lane: Lane::U8 };
        assert_eq!(adda.class(), InstClass::MediaSimple);
    }

    #[test]
    fn from_mmx_conversion() {
        let op: MdmxOp = MmxOp::Ld { md: m(1), base: r(2), offset: 8 }.into();
        assert_eq!(op.class(), InstClass::Load);
    }
}
