//! x86_64 SSE2 backends for the packed lane kernels (`simd` cargo feature).
//!
//! Each function here mirrors one SWAR kernel family in [`crate::swar`] and
//! must be byte-identical to it — the differential proptests in
//! `tests/proptest_swar.rs` run against whichever backend is active, so a
//! `--features simd` test run pins these paths against the scalar reference.
//!
//! SSE2 is part of the x86_64 baseline ABI, so no runtime feature detection
//! is needed. Lane/saturation combinations SSE2 has no instruction for
//! (32-bit saturating adds, signed averages, unsigned 8-bit compares, …)
//! fall back to the portable SWAR kernels, which keeps every combination
//! exact without emulating missing instructions out of multi-op sequences.

use core::arch::x86_64::{
    __m128i, _mm_add_epi16, _mm_add_epi32, _mm_add_epi8, _mm_adds_epi16, _mm_adds_epi8,
    _mm_adds_epu16, _mm_adds_epu8, _mm_avg_epu16, _mm_avg_epu8, _mm_cmpeq_epi16, _mm_cmpeq_epi32,
    _mm_cmpeq_epi8, _mm_cmpgt_epi16, _mm_cmpgt_epi32, _mm_cmpgt_epi8, _mm_cvtsi128_si64,
    _mm_cvtsi64_si128, _mm_max_epi16, _mm_max_epu8, _mm_min_epi16, _mm_min_epu8, _mm_sad_epu8,
    _mm_set1_epi16, _mm_set1_epi32, _mm_set1_epi8, _mm_sub_epi16, _mm_sub_epi32, _mm_sub_epi8,
    _mm_subs_epi16, _mm_subs_epi8, _mm_subs_epu16, _mm_subs_epu8, _mm_xor_si128,
};

use crate::packed::{by_width, Lane, Saturation};

#[inline(always)]
fn load(x: u64) -> __m128i {
    // SAFETY: SSE2 is unconditionally available on x86_64.
    unsafe { _mm_cvtsi64_si128(x as i64) }
}

#[inline(always)]
fn store(v: __m128i) -> u64 {
    // SAFETY: SSE2 is unconditionally available on x86_64.
    unsafe { _mm_cvtsi128_si64(v) as u64 }
}

/// Lane-wise add, wrapping or saturating. 32-bit saturation has no SSE2
/// instruction and falls back to SWAR.
pub fn add(a: u64, b: u64, lane: Lane, sat: Saturation) -> u64 {
    let (va, vb) = (load(a), load(b));
    // SAFETY: SSE2 baseline.
    unsafe {
        match (sat, lane) {
            (Saturation::Wrapping, Lane::U8 | Lane::I8) => store(_mm_add_epi8(va, vb)),
            (Saturation::Wrapping, Lane::U16 | Lane::I16) => store(_mm_add_epi16(va, vb)),
            (Saturation::Wrapping, Lane::U32 | Lane::I32) => store(_mm_add_epi32(va, vb)),
            (Saturation::Saturating, Lane::U8) => store(_mm_adds_epu8(va, vb)),
            (Saturation::Saturating, Lane::I8) => store(_mm_adds_epi8(va, vb)),
            (Saturation::Saturating, Lane::U16) => store(_mm_adds_epu16(va, vb)),
            (Saturation::Saturating, Lane::I16) => store(_mm_adds_epi16(va, vb)),
            (Saturation::Saturating, Lane::U32) => crate::swar::add_sat_u::<32>(a, b),
            (Saturation::Saturating, Lane::I32) => crate::swar::add_sat_s::<32>(a, b),
        }
    }
}

/// Lane-wise subtract, wrapping or saturating. 32-bit saturation falls back
/// to SWAR.
pub fn sub(a: u64, b: u64, lane: Lane, sat: Saturation) -> u64 {
    let (va, vb) = (load(a), load(b));
    // SAFETY: SSE2 baseline.
    unsafe {
        match (sat, lane) {
            (Saturation::Wrapping, Lane::U8 | Lane::I8) => store(_mm_sub_epi8(va, vb)),
            (Saturation::Wrapping, Lane::U16 | Lane::I16) => store(_mm_sub_epi16(va, vb)),
            (Saturation::Wrapping, Lane::U32 | Lane::I32) => store(_mm_sub_epi32(va, vb)),
            (Saturation::Saturating, Lane::U8) => store(_mm_subs_epu8(va, vb)),
            (Saturation::Saturating, Lane::I8) => store(_mm_subs_epi8(va, vb)),
            (Saturation::Saturating, Lane::U16) => store(_mm_subs_epu16(va, vb)),
            (Saturation::Saturating, Lane::I16) => store(_mm_subs_epi16(va, vb)),
            (Saturation::Saturating, Lane::U32) => crate::swar::sub_sat_u::<32>(a, b),
            (Saturation::Saturating, Lane::I32) => crate::swar::sub_sat_s::<32>(a, b),
        }
    }
}

/// Lane-wise rounding average. SSE2 only has the unsigned 8/16-bit forms
/// (`pavgb`/`pavgw`); everything else falls back to SWAR.
pub fn avg(a: u64, b: u64, lane: Lane) -> u64 {
    // SAFETY: SSE2 baseline.
    unsafe {
        match lane {
            Lane::U8 => store(_mm_avg_epu8(load(a), load(b))),
            Lane::U16 => store(_mm_avg_epu16(load(a), load(b))),
            _ if lane.is_signed() => by_width!(lane, avg_s(a, b)),
            _ => by_width!(lane, avg_u(a, b)),
        }
    }
}

/// Lane-wise minimum. SSE2 covers unsigned bytes (`pminub`) and signed
/// halfwords (`pminsw`); the rest falls back to SWAR.
pub fn min(a: u64, b: u64, lane: Lane) -> u64 {
    // SAFETY: SSE2 baseline.
    unsafe {
        match lane {
            Lane::U8 => store(_mm_min_epu8(load(a), load(b))),
            Lane::I16 => store(_mm_min_epi16(load(a), load(b))),
            _ if lane.is_signed() => by_width!(lane, min_s(a, b)),
            _ => by_width!(lane, min_u(a, b)),
        }
    }
}

/// Lane-wise maximum. SSE2 covers unsigned bytes (`pmaxub`) and signed
/// halfwords (`pmaxsw`); the rest falls back to SWAR.
pub fn max(a: u64, b: u64, lane: Lane) -> u64 {
    // SAFETY: SSE2 baseline.
    unsafe {
        match lane {
            Lane::U8 => store(_mm_max_epu8(load(a), load(b))),
            Lane::I16 => store(_mm_max_epi16(load(a), load(b))),
            _ if lane.is_signed() => by_width!(lane, max_s(a, b)),
            _ => by_width!(lane, max_u(a, b)),
        }
    }
}

/// Sum of absolute differences reduced to one scalar. Unsigned bytes use
/// `psadbw` (the upper 8 register bytes are zero in both operands, so they
/// contribute nothing); other lane types fall back to SWAR.
pub fn sad(a: u64, b: u64, lane: Lane) -> i64 {
    match lane {
        // SAFETY: SSE2 baseline.
        Lane::U8 => unsafe { store(_mm_sad_epu8(load(a), load(b))) as i64 },
        _ if lane.is_signed() => by_width!(lane, sad_s(a, b)),
        _ => by_width!(lane, sad_u(a, b)),
    }
}

/// Lane-wise equality mask. Equality ignores signedness, so `pcmpeq*`
/// covers every lane type.
pub fn cmp_eq(a: u64, b: u64, lane: Lane) -> u64 {
    let (va, vb) = (load(a), load(b));
    // SAFETY: SSE2 baseline.
    unsafe {
        match lane.bits() {
            8 => store(_mm_cmpeq_epi8(va, vb)),
            16 => store(_mm_cmpeq_epi16(va, vb)),
            _ => store(_mm_cmpeq_epi32(va, vb)),
        }
    }
}

/// Lane-wise greater-than mask. SSE2 only compares signed; unsigned lanes
/// are biased by the sign bit first (`x ^ MIN_SIGNED` preserves order), the
/// same trick the SWAR kernels use.
pub fn cmp_gt(a: u64, b: u64, lane: Lane) -> u64 {
    let (mut va, mut vb) = (load(a), load(b));
    // SAFETY: SSE2 baseline.
    unsafe {
        if !lane.is_signed() {
            let bias = match lane.bits() {
                8 => _mm_set1_epi8(i8::MIN),
                16 => _mm_set1_epi16(i16::MIN),
                _ => _mm_set1_epi32(i32::MIN),
            };
            va = _mm_xor_si128(va, bias);
            vb = _mm_xor_si128(vb, bias);
        }
        match lane.bits() {
            8 => store(_mm_cmpgt_epi8(va, vb)),
            16 => store(_mm_cmpgt_epi16(va, vb)),
            _ => store(_mm_cmpgt_epi32(va, vb)),
        }
    }
}
