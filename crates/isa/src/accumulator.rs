//! Packed wide accumulators (MDMX-style, reused by MOM).
//!
//! MDMX introduced *packed accumulators*: wide registers whose lanes are wide
//! enough to accumulate many products of narrow elements without losing
//! precision (24 bits per lane for 8-bit data, 48 bits per lane for 16-bit
//! data, 192 bits total). MOM uses the same structure, but a single MOM matrix
//! instruction streams up to 16 rows into the accumulator, which lets the
//! hardware pipeline the accumulation instead of serialising on a register
//! recurrence (see Figure 4 of the paper).
//!
//! The functional model here stores each lane in an `i64`, which is wider than
//! the architected 24/48 bits; [`Accumulator::saturate_architected`] clamps the
//! lanes back to the architected width so tests can check that no kernel
//! actually relies on more precision than the real hardware would have.

use crate::packed::{Lane, PackedWord, Saturation};

/// Maximum number of lanes an accumulator may hold (8-bit element mode).
pub const MAX_ACC_LANES: usize = 8;

/// A packed wide accumulator.
///
/// The lane layout mirrors the packed word that feeds it: accumulating 8-bit
/// data uses 8 lanes, 16-bit data uses 4 lanes and 32-bit data uses 2 lanes.
/// The lane mode is fixed the first time the accumulator is written and reset
/// by [`Accumulator::clear`].
///
/// # Examples
///
/// ```
/// use mom_isa::accumulator::Accumulator;
/// use mom_isa::packed::{Lane, PackedWord};
///
/// let mut acc = Accumulator::new();
/// let a = PackedWord::from_i16_lanes([1, 2, 3, 4]);
/// let b = PackedWord::from_i16_lanes([10, 20, 30, 40]);
/// acc.mul_add(a, b, Lane::I16);
/// assert_eq!(acc.reduce_sum(), 1 * 10 + 2 * 20 + 3 * 30 + 4 * 40);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Accumulator {
    lanes: [i64; MAX_ACC_LANES],
    mode: Option<Lane>,
}

impl Accumulator {
    /// A cleared accumulator with no lane mode yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset every lane to zero and forget the lane mode.
    pub fn clear(&mut self) {
        self.lanes = [0; MAX_ACC_LANES];
        self.mode = None;
    }

    /// The lane interpretation currently accumulated into, if any.
    pub fn mode(&self) -> Option<Lane> {
        self.mode
    }

    /// Number of active lanes (0 when the accumulator is clear).
    pub fn lane_count(&self) -> usize {
        self.mode.map_or(0, Lane::count)
    }

    /// Raw lane values (active lanes first; inactive lanes are zero).
    pub fn lanes(&self) -> &[i64; MAX_ACC_LANES] {
        &self.lanes
    }

    /// Read one lane value.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= MAX_ACC_LANES`.
    pub fn lane(&self, idx: usize) -> i64 {
        self.lanes[idx]
    }

    /// Overwrite one lane value, setting the lane mode if not yet set.
    pub fn set_lane(&mut self, lane: Lane, idx: usize, value: i64) {
        self.bind_mode(lane);
        self.lanes[idx] = value;
    }

    fn bind_mode(&mut self, lane: Lane) {
        match self.mode {
            None => self.mode = Some(lane),
            Some(m) if m.count() == lane.count() => {}
            Some(m) => {
                // Switching element width mid-accumulation is architecturally
                // undefined in MDMX; the functional model resolves it by
                // restarting the accumulation in the new mode, which is the
                // behaviour the emulation libraries of the paper exhibit.
                debug_assert!(
                    false,
                    "accumulator lane mode switched from {m:?} to {lane:?} without clear"
                );
                self.lanes = [0; MAX_ACC_LANES];
                self.mode = Some(lane);
            }
        }
    }

    /// Accumulate the lane-wise product of `a` and `b` (`acc[i] += a[i] * b[i]`),
    /// the MDMX `MULA` operation.
    pub fn mul_add(&mut self, a: PackedWord, b: PackedWord, lane: Lane) {
        self.bind_mode(lane);
        let (av, bv) = (a.lanes(lane), b.lanes(lane));
        for i in 0..av.len() {
            self.lanes[i] += av[i] * bv[i];
        }
    }

    /// Subtract the lane-wise product of `a` and `b` (`acc[i] -= a[i] * b[i]`),
    /// the MDMX `MULS` operation.
    pub fn mul_sub(&mut self, a: PackedWord, b: PackedWord, lane: Lane) {
        self.bind_mode(lane);
        let (av, bv) = (a.lanes(lane), b.lanes(lane));
        for i in 0..av.len() {
            self.lanes[i] -= av[i] * bv[i];
        }
    }

    /// Accumulate the lanes of `a` (`acc[i] += a[i]`), the MDMX `ADDA` operation.
    pub fn add(&mut self, a: PackedWord, lane: Lane) {
        self.bind_mode(lane);
        let av = a.lanes(lane);
        for i in 0..av.len() {
            self.lanes[i] += av[i];
        }
    }

    /// Subtract the lanes of `a` (`acc[i] -= a[i]`), the MDMX `SUBA` operation.
    pub fn sub(&mut self, a: PackedWord, lane: Lane) {
        self.bind_mode(lane);
        let av = a.lanes(lane);
        for i in 0..av.len() {
            self.lanes[i] -= av[i];
        }
    }

    /// Accumulate lane-wise absolute differences (`acc[i] += |a[i] - b[i]|`).
    ///
    /// This is the accumulator form of the sum-of-absolute-differences used by
    /// MPEG motion estimation (`motion1` in the paper's kernel set).
    pub fn abs_diff_add(&mut self, a: PackedWord, b: PackedWord, lane: Lane) {
        self.bind_mode(lane);
        // `|a[i] - b[i]|` always fits *unsigned* in the lane width (even for
        // signed lanes: |MIN - MAX| = 2^bits - 1), so the packed SWAR
        // difference can be folded in with plain zero-extending extracts.
        let d = a.abs_diff(b, lane).bits();
        match lane.bits() {
            8 => {
                for (i, slot) in self.lanes.iter_mut().enumerate() {
                    *slot += ((d >> (8 * i)) & 0xFF) as i64;
                }
            }
            16 => {
                for (i, slot) in self.lanes[..4].iter_mut().enumerate() {
                    *slot += ((d >> (16 * i)) & 0xFFFF) as i64;
                }
            }
            _ => {
                self.lanes[0] += (d & 0xFFFF_FFFF) as i64;
                self.lanes[1] += (d >> 32) as i64;
            }
        }
    }

    /// Accumulate lane-wise squared differences (`acc[i] += (a[i] - b[i])^2`),
    /// the accumulator form of the sum-of-quadratic-differences (`motion2`).
    pub fn sqr_diff_add(&mut self, a: PackedWord, b: PackedWord, lane: Lane) {
        self.bind_mode(lane);
        // (a - b)^2 = |a - b|^2, so square the zero-extended lanes of the
        // packed SWAR absolute difference.
        let d = a.abs_diff(b, lane).bits();
        match lane.bits() {
            8 => {
                for (i, slot) in self.lanes.iter_mut().enumerate() {
                    let v = ((d >> (8 * i)) & 0xFF) as i64;
                    *slot += v * v;
                }
            }
            16 => {
                for (i, slot) in self.lanes[..4].iter_mut().enumerate() {
                    let v = ((d >> (16 * i)) & 0xFFFF) as i64;
                    *slot += v * v;
                }
            }
            _ => {
                let (lo, hi) = ((d & 0xFFFF_FFFF) as i64, (d >> 32) as i64);
                self.lanes[0] += lo * lo;
                self.lanes[1] += hi * hi;
            }
        }
    }

    /// Horizontal sum of every active lane — the final step of a reduction.
    pub fn reduce_sum(&self) -> i64 {
        let n = self.lane_count();
        self.lanes[..n].iter().sum()
    }

    /// Round, shift right and saturate each lane back into a packed word, the
    /// MDMX "read accumulator" family (`RAC`).
    ///
    /// `shift` is the number of fractional bits discarded; rounding adds half
    /// an ULP before shifting. `sat` selects wrapping or clamping into the
    /// destination lane range.
    ///
    /// Returns the all-zero word if the accumulator has never been written.
    pub fn read_packed(&self, dest_lane: Lane, shift: u32, sat: Saturation) -> PackedWord {
        let Some(mode) = self.mode else {
            return PackedWord::ZERO;
        };
        let n = mode.count().min(dest_lane.count());
        let mut out = PackedWord::ZERO;
        for i in 0..n {
            let rounded = if shift > 0 {
                (self.lanes[i] + (1i64 << (shift - 1))) >> shift
            } else {
                self.lanes[i]
            };
            let v = match sat {
                Saturation::Wrapping => rounded,
                Saturation::Saturating => dest_lane.clamp(rounded),
            };
            out = out.with_lane(dest_lane, i, v);
        }
        out
    }

    /// Architected per-lane width in bits for a given element lane type
    /// (24 bits for byte elements, 48 bits for halfword elements, 64 for word
    /// elements), per the MDMX/MOM accumulator definition.
    pub fn architected_lane_bits(lane: Lane) -> u32 {
        match lane.bits() {
            8 => 24,
            16 => 48,
            _ => 64,
        }
    }

    /// Clamp every lane to the architected accumulator width.
    ///
    /// Returns `true` if any lane actually overflowed the architected range —
    /// kernels in this repository assert this never happens for their data.
    pub fn saturate_architected(&mut self) -> bool {
        let Some(mode) = self.mode else { return false };
        let bits = Self::architected_lane_bits(mode);
        let max = (1i64 << (bits - 1)) - 1;
        let min = -(1i64 << (bits - 1));
        let mut clamped = false;
        for lane in self.lanes.iter_mut().take(mode.count()) {
            if *lane > max || *lane < min {
                *lane = (*lane).clamp(min, max);
                clamped = true;
            }
        }
        clamped
    }
}

impl std::fmt::Display for Accumulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.mode {
            None => write!(f, "acc(clear)"),
            Some(mode) => {
                write!(f, "acc[{:?}](", mode)?;
                for (i, l) in self.lanes[..mode.count()].iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accumulator_is_clear() {
        let acc = Accumulator::new();
        assert_eq!(acc.mode(), None);
        assert_eq!(acc.lane_count(), 0);
        assert_eq!(acc.reduce_sum(), 0);
        assert_eq!(acc.read_packed(Lane::I16, 0, Saturation::Wrapping), PackedWord::ZERO);
    }

    #[test]
    fn mul_add_matches_dot_product() {
        let mut acc = Accumulator::new();
        let a = PackedWord::from_i16_lanes([1, -2, 3, 4]);
        let b = PackedWord::from_i16_lanes([5, 6, -7, 8]);
        acc.mul_add(a, b, Lane::I16);
        acc.mul_add(a, b, Lane::I16);
        assert_eq!(acc.reduce_sum(), 2 * (5 - 12 - 21 + 32));
        assert_eq!(acc.mode(), Some(Lane::I16));
        assert_eq!(acc.lane_count(), 4);
    }

    #[test]
    fn mul_sub_reverses_mul_add() {
        let mut acc = Accumulator::new();
        let a = PackedWord::from_i16_lanes([3, 1, 4, 1]);
        let b = PackedWord::from_i16_lanes([2, 7, 1, 8]);
        acc.mul_add(a, b, Lane::I16);
        acc.mul_sub(a, b, Lane::I16);
        assert_eq!(acc.reduce_sum(), 0);
    }

    #[test]
    fn add_sub_lanes() {
        let mut acc = Accumulator::new();
        let a = PackedWord::from_u8_lanes([1, 2, 3, 4, 5, 6, 7, 8]);
        acc.add(a, Lane::U8);
        acc.add(a, Lane::U8);
        acc.sub(a, Lane::U8);
        assert_eq!(acc.lane(0), 1);
        assert_eq!(acc.lane(7), 8);
        assert_eq!(acc.reduce_sum(), 36);
    }

    #[test]
    fn abs_diff_add_accumulates_sad() {
        let mut acc = Accumulator::new();
        let a = PackedWord::from_u8_lanes([10, 20, 30, 40, 50, 60, 70, 80]);
        let b = PackedWord::from_u8_lanes([12, 18, 30, 45, 40, 60, 75, 80]);
        acc.abs_diff_add(a, b, Lane::U8);
        assert_eq!(acc.reduce_sum(), a.sad(b, Lane::U8));
    }

    #[test]
    fn sqr_diff_add_accumulates_sqd() {
        let mut acc = Accumulator::new();
        let a = PackedWord::from_u8_lanes([10, 20, 30, 40, 50, 60, 70, 80]);
        let b = PackedWord::from_u8_lanes([12, 18, 30, 45, 40, 60, 75, 80]);
        acc.sqr_diff_add(a, b, Lane::U8);
        assert_eq!(acc.reduce_sum(), a.sqd(b, Lane::U8));
    }

    #[test]
    fn read_packed_rounds_shifts_saturates() {
        let mut acc = Accumulator::new();
        acc.set_lane(Lane::I16, 0, 1000);
        acc.set_lane(Lane::I16, 1, -1000);
        acc.set_lane(Lane::I16, 2, 70000);
        acc.set_lane(Lane::I16, 3, 5);
        // shift by 2 with rounding: 1000 -> 250, -1000 -> -250 (rounded), 70000 -> 17500 -> clamps fine
        let r = acc.read_packed(Lane::I16, 2, Saturation::Saturating);
        assert_eq!(r.lane(Lane::I16, 0), 250);
        assert_eq!(r.lane(Lane::I16, 2), 17500);
        // no shift, saturating: 70000 clamps to 32767
        let r0 = acc.read_packed(Lane::I16, 0, Saturation::Saturating);
        assert_eq!(r0.lane(Lane::I16, 2), 32767);
        assert_eq!(r0.lane(Lane::I16, 1), -1000);
    }

    #[test]
    fn read_packed_rounding_adds_half_ulp() {
        let mut acc = Accumulator::new();
        acc.set_lane(Lane::I16, 0, 3); // 3/2 = 1.5 rounds to 2
        let r = acc.read_packed(Lane::I16, 1, Saturation::Wrapping);
        assert_eq!(r.lane(Lane::I16, 0), 2);
    }

    #[test]
    fn clear_resets_mode() {
        let mut acc = Accumulator::new();
        acc.add(PackedWord::splat(Lane::U8, 1), Lane::U8);
        assert_eq!(acc.mode(), Some(Lane::U8));
        acc.clear();
        assert_eq!(acc.mode(), None);
        assert_eq!(acc.reduce_sum(), 0);
    }

    #[test]
    fn architected_widths() {
        assert_eq!(Accumulator::architected_lane_bits(Lane::U8), 24);
        assert_eq!(Accumulator::architected_lane_bits(Lane::I16), 48);
        assert_eq!(Accumulator::architected_lane_bits(Lane::I32), 64);
    }

    #[test]
    fn saturate_architected_detects_overflow() {
        let mut acc = Accumulator::new();
        acc.set_lane(Lane::U8, 0, 1 << 30); // exceeds 24-bit lane
        assert!(acc.saturate_architected());
        assert_eq!(acc.lane(0), (1 << 23) - 1);
        let mut ok = Accumulator::new();
        ok.set_lane(Lane::U8, 0, 1000);
        assert!(!ok.saturate_architected());
    }

    #[test]
    fn display_is_never_empty() {
        let mut acc = Accumulator::new();
        assert!(!format!("{acc}").is_empty());
        acc.add(PackedWord::splat(Lane::I16, 2), Lane::I16);
        assert!(format!("{acc}").contains("2"));
    }
}
