//! SWAR ("SIMD within a register") lane kernels over packed `u64` words.
//!
//! The scalar [`crate::packed::PackedWord`] reference operates one lane at a
//! time: extract each lane to `i64`, apply the operation, truncate back. That
//! is the interpreter's innermost loop — one such kernel per matrix row per
//! MOM instruction — and for the constant-trip-count ops (add, sub, min, max,
//! average, compares, shifts, absolute difference, reductions) the whole
//! 8-lane loop collapses into a handful of 64-bit bitwise operations using
//! classic carry-partitioned arithmetic.
//!
//! Every function here is **exactly** lane-wise equivalent to the scalar
//! reference, including wrapping truncation, saturation boundaries, signed
//! bias and rounding direction; the equivalence is pinned by unit tests below
//! and by the exhaustive differential proptests in
//! `crates/isa/tests/proptest_swar.rs`. The kernels are width-generic over
//! `BITS` ∈ {8, 16, 32} so the three packed layouts share one implementation,
//! monomorphized with all masks constant-folded.
//!
//! Conventions used throughout (for lane width `B`):
//!
//! * `L`  — a 1 in the least-significant bit of every lane (`rep(1)`).
//! * `H`  — a 1 in the sign (most-significant) bit of every lane.
//! * `NH` — the complement of `H`: all bits of every lane except the sign.
//! * "H-mask" — a word whose per-lane sign bit encodes a boolean.
//! * "full mask" — a word whose lanes are all-ones or all-zero.

/// Replicate the lane-wide value `v` (which must fit in `BITS` bits) into
/// every lane of a `u64`.
pub const fn rep<const BITS: u32>(v: u64) -> u64 {
    let lane_max = if BITS == 64 { u64::MAX } else { (1u64 << BITS) - 1 };
    v * (u64::MAX / lane_max)
}

/// A 1 in the sign bit of every lane.
pub const fn high<const BITS: u32>() -> u64 {
    rep::<BITS>(1u64 << (BITS - 1))
}

/// Every bit of every lane except the sign bit.
pub const fn not_high<const BITS: u32>() -> u64 {
    !high::<BITS>()
}

/// Expand an H-mask (per-lane boolean in the sign bit) to a full mask
/// (per-lane all-ones / all-zero).
///
/// The shift moves each lane's sign bit to its least-significant bit; the
/// multiply by the lane-max constant then smears it across the lane. The
/// partial products never cross a lane boundary because each contribution is
/// `lane_max << (i * BITS)`.
pub const fn spread<const BITS: u32>(h_mask: u64) -> u64 {
    let lane_max = (1u64 << (BITS - 1) << 1).wrapping_sub(1);
    (h_mask >> (BITS - 1)).wrapping_mul(lane_max)
}

/// H-mask of lanes that are non-zero (exact: no false positives in any lane).
///
/// `(x & NH) + NH` carries into the sign bit exactly when the low `B-1` bits
/// of the lane are non-zero; OR-ing `x` itself folds in the lane's own sign
/// bit.
pub const fn nonzero_h<const BITS: u32>(x: u64) -> u64 {
    let nh = not_high::<BITS>();
    (((x & nh) + nh) | x) & high::<BITS>()
}

/// Lane-wise wrapping addition.
pub const fn add_wrap<const BITS: u32>(a: u64, b: u64) -> u64 {
    let nh = not_high::<BITS>();
    ((a & nh) + (b & nh)) ^ ((a ^ b) & high::<BITS>())
}

/// Lane-wise wrapping subtraction (`a - b`).
pub const fn sub_wrap<const BITS: u32>(a: u64, b: u64) -> u64 {
    let h = high::<BITS>();
    ((a | h) - (b & !h)) ^ ((a ^ !b) & h)
}

/// H-mask of lanes whose **unsigned** addition carried out (overflowed).
const fn add_carry_h<const BITS: u32>(a: u64, b: u64, sum: u64) -> u64 {
    ((a & b) | ((a ^ b) & !sum)) & high::<BITS>()
}

/// H-mask of lanes whose **unsigned** subtraction borrowed (went negative).
const fn sub_borrow_h<const BITS: u32>(a: u64, b: u64, diff: u64) -> u64 {
    ((!a & b) | (!(a ^ b) & diff)) & high::<BITS>()
}

/// Lane-wise unsigned saturating addition (clamps to lane max).
pub const fn add_sat_u<const BITS: u32>(a: u64, b: u64) -> u64 {
    let sum = add_wrap::<BITS>(a, b);
    sum | spread::<BITS>(add_carry_h::<BITS>(a, b, sum))
}

/// Lane-wise unsigned saturating subtraction (clamps at zero).
pub const fn sub_sat_u<const BITS: u32>(a: u64, b: u64) -> u64 {
    let diff = sub_wrap::<BITS>(a, b);
    diff & !spread::<BITS>(sub_borrow_h::<BITS>(a, b, diff))
}

/// The per-lane saturation value selected by the sign of `a`: lane max
/// (`0x7F…`) where `a`'s lane is non-negative, lane min (`0x80…`) where it is
/// negative. Adding the sign bit to `0x7F…` cannot carry across lanes.
const fn signed_sat_word<const BITS: u32>(a: u64) -> u64 {
    rep::<BITS>((1u64 << (BITS - 1)) - 1) + ((a & high::<BITS>()) >> (BITS - 1))
}

/// Lane-wise signed saturating addition.
pub const fn add_sat_s<const BITS: u32>(a: u64, b: u64) -> u64 {
    let sum = add_wrap::<BITS>(a, b);
    // Signed overflow: operands agree in sign, result disagrees.
    let ovf = spread::<BITS>(!(a ^ b) & (a ^ sum) & high::<BITS>());
    (sum & !ovf) | (signed_sat_word::<BITS>(a) & ovf)
}

/// Lane-wise signed saturating subtraction.
pub const fn sub_sat_s<const BITS: u32>(a: u64, b: u64) -> u64 {
    let diff = sub_wrap::<BITS>(a, b);
    // Signed overflow: operands disagree in sign, result disagrees with `a`.
    let ovf = spread::<BITS>((a ^ b) & (a ^ diff) & high::<BITS>());
    (diff & !ovf) | (signed_sat_word::<BITS>(a) & ovf)
}

/// Full mask of lanes where `a == b`.
pub const fn eq_mask<const BITS: u32>(a: u64, b: u64) -> u64 {
    !spread::<BITS>(nonzero_h::<BITS>(a ^ b))
}

/// Full mask of lanes where `a > b` as **unsigned** values.
pub const fn gt_mask_u<const BITS: u32>(a: u64, b: u64) -> u64 {
    // a > b  ⇔  saturating a - b is non-zero.
    spread::<BITS>(nonzero_h::<BITS>(sub_sat_u::<BITS>(a, b)))
}

/// Full mask of lanes where `a > b` as **signed** values (bias to unsigned).
pub const fn gt_mask_s<const BITS: u32>(a: u64, b: u64) -> u64 {
    let h = high::<BITS>();
    gt_mask_u::<BITS>(a ^ h, b ^ h)
}

/// Lane-wise unsigned minimum.
pub const fn min_u<const BITS: u32>(a: u64, b: u64) -> u64 {
    let a_gt = gt_mask_u::<BITS>(a, b);
    (b & a_gt) | (a & !a_gt)
}

/// Lane-wise unsigned maximum.
pub const fn max_u<const BITS: u32>(a: u64, b: u64) -> u64 {
    let a_gt = gt_mask_u::<BITS>(a, b);
    (a & a_gt) | (b & !a_gt)
}

/// Lane-wise signed minimum.
pub const fn min_s<const BITS: u32>(a: u64, b: u64) -> u64 {
    let a_gt = gt_mask_s::<BITS>(a, b);
    (b & a_gt) | (a & !a_gt)
}

/// Lane-wise signed maximum.
pub const fn max_s<const BITS: u32>(a: u64, b: u64) -> u64 {
    let a_gt = gt_mask_s::<BITS>(a, b);
    (a & a_gt) | (b & !a_gt)
}

/// Lane-wise unsigned rounding average `(a + b + 1) >> 1` (MMX `pavg`).
pub const fn avg_u<const BITS: u32>(a: u64, b: u64) -> u64 {
    // avg_ceil(a, b) = (a | b) - ((a ^ b) >> 1), with a lane-masked shift.
    (a | b) - shr_logical::<BITS>(a ^ b, 1)
}

/// Lane-wise signed rounding average `(a + b + 1) >> 1` (arithmetic shift).
pub const fn avg_s<const BITS: u32>(a: u64, b: u64) -> u64 {
    let h = high::<BITS>();
    avg_u::<BITS>(a ^ h, b ^ h) ^ h
}

/// Lane-wise absolute difference `|a - b|` for unsigned lanes.
pub const fn abs_diff_u<const BITS: u32>(a: u64, b: u64) -> u64 {
    sub_wrap::<BITS>(max_u::<BITS>(a, b), min_u::<BITS>(a, b))
}

/// Lane-wise absolute difference `|a - b|` for signed lanes.
///
/// The result is the truncation of the true `i64` difference magnitude to the
/// lane width, exactly as the scalar reference computes it (e.g. for 8-bit
/// lanes `|127 - (-128)| = 255 → 0xFF`).
pub const fn abs_diff_s<const BITS: u32>(a: u64, b: u64) -> u64 {
    sub_wrap::<BITS>(max_s::<BITS>(a, b), min_s::<BITS>(a, b))
}

/// Lane-wise wrapping absolute value for signed lanes (`|MIN|` wraps to MIN,
/// matching the scalar reference's truncation of `i64::abs`).
pub const fn abs_s<const BITS: u32>(x: u64) -> u64 {
    let m = spread::<BITS>(x & high::<BITS>());
    sub_wrap::<BITS>(x ^ m, m)
}

/// Lane-wise wrapping negation.
pub const fn neg_wrap<const BITS: u32>(x: u64) -> u64 {
    sub_wrap::<BITS>(0, x)
}

/// Lane-wise logical shift left by `n` (caller guarantees `n < BITS`).
pub const fn shl<const BITS: u32>(x: u64, n: u32) -> u64 {
    let lane_max = (1u64 << (BITS - 1) << 1).wrapping_sub(1);
    (x & rep::<BITS>(lane_max >> n)) << n
}

/// Lane-wise logical shift right by `n` (caller guarantees `n < BITS`).
pub const fn shr_logical<const BITS: u32>(x: u64, n: u32) -> u64 {
    let lane_max = (1u64 << (BITS - 1) << 1).wrapping_sub(1);
    (x >> n) & rep::<BITS>(lane_max >> n)
}

/// Lane-wise arithmetic shift right by `n` (caller guarantees `n < BITS`).
pub const fn shr_arith<const BITS: u32>(x: u64, n: u32) -> u64 {
    if n == 0 {
        return x;
    }
    let logical = shr_logical::<BITS>(x, n);
    // Refill the vacated top `n` bits of each negative lane. The per-lane
    // fill pattern times the per-lane sign bit cannot cross lanes.
    let fill = ((1u64 << n) - 1) << (BITS - n);
    let signs = (x & high::<BITS>()) >> (BITS - 1);
    logical | signs.wrapping_mul(fill)
}

/// Lane-wise select: `a` where the lane of `mask` is non-zero, else `b`.
pub const fn select<const BITS: u32>(mask: u64, a: u64, b: u64) -> u64 {
    let full = spread::<BITS>(nonzero_h::<BITS>(mask));
    (a & full) | (b & !full)
}

/// Horizontal sum of all lanes as **unsigned** values.
pub const fn horizontal_sum_u<const BITS: u32>(x: u64) -> u64 {
    // Pairwise widening adds: each step doubles the lane width, so partial
    // sums never overflow their slot.
    let mut sum = x;
    if BITS == 8 {
        sum = (sum & 0x00FF_00FF_00FF_00FF) + ((sum >> 8) & 0x00FF_00FF_00FF_00FF);
        sum = (sum & 0x0000_FFFF_0000_FFFF) + ((sum >> 16) & 0x0000_FFFF_0000_FFFF);
        sum = (sum & 0x0000_0000_FFFF_FFFF) + (sum >> 32);
    } else if BITS == 16 {
        sum = (sum & 0x0000_FFFF_0000_FFFF) + ((sum >> 16) & 0x0000_FFFF_0000_FFFF);
        sum = (sum & 0x0000_0000_FFFF_FFFF) + (sum >> 32);
    } else {
        sum = (sum & 0x0000_0000_FFFF_FFFF) + (sum >> 32);
    }
    sum
}

/// Horizontal sum of all lanes as **signed** (sign-extended) values.
///
/// Each negative lane's unsigned residue over-counts its true value by
/// exactly `2^BITS`, so subtract that once per set sign bit.
pub const fn horizontal_sum_s<const BITS: u32>(x: u64) -> i64 {
    let unsigned = horizontal_sum_u::<BITS>(x) as i64;
    let negatives = (x & high::<BITS>()).count_ones() as i64;
    unsigned - (negatives << BITS)
}

/// Sum of lane-wise absolute differences (`psadbw`-style reduction).
///
/// Works for signed and unsigned interpretations alike: the in-lane residue
/// of `|a - b|` is always the true magnitude (it is at most `2^BITS - 1`), so
/// an unsigned horizontal sum of the signed/unsigned absolute-difference word
/// is the exact scalar answer.
pub const fn sad_u<const BITS: u32>(a: u64, b: u64) -> i64 {
    horizontal_sum_u::<BITS>(abs_diff_u::<BITS>(a, b)) as i64
}

/// Signed-lane variant of [`sad_u`].
pub const fn sad_s<const BITS: u32>(a: u64, b: u64) -> i64 {
    horizontal_sum_u::<BITS>(abs_diff_s::<BITS>(a, b)) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rep_patterns() {
        assert_eq!(rep::<8>(1), 0x0101_0101_0101_0101);
        assert_eq!(rep::<16>(1), 0x0001_0001_0001_0001);
        assert_eq!(rep::<8>(0x7F), 0x7F7F_7F7F_7F7F_7F7F);
        assert_eq!(high::<8>(), 0x8080_8080_8080_8080);
        assert_eq!(high::<32>(), 0x8000_0000_8000_0000);
    }

    #[test]
    fn spread_smears_sign_bits() {
        assert_eq!(spread::<8>(0x8000_0000_0000_0080), 0xFF00_0000_0000_00FF);
        assert_eq!(spread::<16>(0x8000_0000_8000_0000), 0xFFFF_0000_FFFF_0000);
        assert_eq!(spread::<32>(0x8000_0000_0000_0000), 0xFFFF_FFFF_0000_0000);
    }

    #[test]
    fn nonzero_detect_is_per_lane_exact() {
        // 0x80 and 0x01 and 0xFF are non-zero; 0x00 is zero — no false
        // positives from neighbouring lanes.
        let x = u64::from_le_bytes([0x00, 0x80, 0x01, 0xFF, 0x00, 0x00, 0x10, 0x00]);
        let h = nonzero_h::<8>(x);
        assert_eq!(spread::<8>(h).to_le_bytes(), [0x00, 0xFF, 0xFF, 0xFF, 0x00, 0x00, 0xFF, 0x00]);
    }

    #[test]
    fn wrap_add_sub_match_per_lane() {
        let a = u64::from_le_bytes([250, 1, 0x80, 0x7F, 0, 255, 3, 128]);
        let b = u64::from_le_bytes([10, 1, 0x80, 0x01, 0, 1, 250, 127]);
        let sum = add_wrap::<8>(a, b);
        let diff = sub_wrap::<8>(a, b);
        for i in 0..8 {
            let (x, y) = (a.to_le_bytes()[i], b.to_le_bytes()[i]);
            assert_eq!(sum.to_le_bytes()[i], x.wrapping_add(y), "add lane {i}");
            assert_eq!(diff.to_le_bytes()[i], x.wrapping_sub(y), "sub lane {i}");
        }
    }

    #[test]
    fn saturating_boundaries() {
        // u8: 250 + 10 saturates to 255; 3 - 250 saturates to 0.
        let a = u64::from_le_bytes([250, 3, 0, 0, 0, 0, 0, 0]);
        let b = u64::from_le_bytes([10, 250, 0, 0, 0, 0, 0, 0]);
        assert_eq!(add_sat_u::<8>(a, b).to_le_bytes()[0], 255);
        assert_eq!(sub_sat_u::<8>(a, b).to_le_bytes()[1], 0);
        // i8: 0x7F + 1 saturates to 0x7F; 0x80 - 1 saturates to 0x80.
        let a = u64::from_le_bytes([0x7F, 0x80, 0, 0, 0, 0, 0, 0]);
        let b = u64::from_le_bytes([1, 1, 0, 0, 0, 0, 0, 0]);
        assert_eq!(add_sat_s::<8>(a, b).to_le_bytes()[0], 0x7F);
        assert_eq!(sub_sat_s::<8>(a, b).to_le_bytes()[1], 0x80);
    }

    #[test]
    fn compares_and_minmax() {
        let a = u64::from_le_bytes([5, 200, 0x80, 0x7F, 9, 9, 0, 1]);
        let b = u64::from_le_bytes([5, 100, 0x7F, 0x80, 10, 8, 0, 0]);
        assert_eq!(
            eq_mask::<8>(a, b).to_le_bytes(),
            [0xFF, 0, 0, 0, 0, 0, 0xFF, 0]
        );
        // Unsigned: 0x80 > 0x7F. Signed: 0x80 (-128) < 0x7F (127).
        assert_eq!(gt_mask_u::<8>(a, b).to_le_bytes()[2], 0xFF);
        assert_eq!(gt_mask_s::<8>(a, b).to_le_bytes()[2], 0x00);
        assert_eq!(gt_mask_s::<8>(a, b).to_le_bytes()[3], 0xFF);
        assert_eq!(min_u::<8>(a, b).to_le_bytes()[1], 100);
        assert_eq!(max_s::<8>(a, b).to_le_bytes()[2], 0x7F);
    }

    #[test]
    fn averages_round_up() {
        // Unsigned: (1 + 2 + 1) >> 1 = 2.
        let a = u64::from_le_bytes([1, 255, 0, 0, 0, 0, 0, 0]);
        let b = u64::from_le_bytes([2, 255, 0, 0, 0, 0, 0, 0]);
        assert_eq!(avg_u::<8>(a, b).to_le_bytes()[0], 2);
        assert_eq!(avg_u::<8>(a, b).to_le_bytes()[1], 255);
        // Signed: (-3 + 0 + 1) >> 1 = -1; (-1 + 0 + 1) >> 1 = 0.
        let a = u64::from_le_bytes([0xFD, 0xFF, 0, 0, 0, 0, 0, 0]);
        let b = 0u64;
        assert_eq!(avg_s::<8>(a, b).to_le_bytes()[0], 0xFF);
        assert_eq!(avg_s::<8>(a, b).to_le_bytes()[1], 0x00);
    }

    #[test]
    fn shifts_are_lane_masked() {
        let x = u64::from_le_bytes([0b1000_0001, 0xFF, 1, 0x80, 0, 0, 0, 0]);
        assert_eq!(shl::<8>(x, 1).to_le_bytes(), [0b0000_0010, 0xFE, 2, 0, 0, 0, 0, 0]);
        assert_eq!(shr_logical::<8>(x, 1).to_le_bytes(), [0b0100_0000, 0x7F, 0, 0x40, 0, 0, 0, 0]);
        // Arithmetic shift sign-fills negative lanes only.
        assert_eq!(shr_arith::<8>(x, 1).to_le_bytes(), [0b1100_0000, 0xFF, 0, 0xC0, 0, 0, 0, 0]);
        assert_eq!(shr_arith::<8>(x, 7).to_le_bytes(), [0xFF, 0xFF, 0, 0xFF, 0, 0, 0, 0]);
    }

    #[test]
    fn reductions() {
        let x = u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 255]);
        assert_eq!(horizontal_sum_u::<8>(x), 1 + 2 + 3 + 4 + 5 + 6 + 7 + 255);
        // Signed: 255 reads as -1.
        assert_eq!(horizontal_sum_s::<8>(x), 1 + 2 + 3 + 4 + 5 + 6 + 7 - 1);
        let a = u64::from_le_bytes([10, 0, 0, 0, 0, 0, 0, 200]);
        let b = u64::from_le_bytes([0, 0, 0, 0, 0, 0, 0, 255]);
        assert_eq!(sad_u::<8>(a, b), 10 + 55);
    }

    #[test]
    fn abs_and_neg_wrap_at_lane_min() {
        let x = u64::from_le_bytes([0x80, 0xFF, 1, 0, 0, 0, 0, 0]);
        // |−128| wraps back to 0x80, matching truncated scalar abs.
        assert_eq!(abs_s::<8>(x).to_le_bytes(), [0x80, 1, 1, 0, 0, 0, 0, 0]);
        assert_eq!(neg_wrap::<8>(x).to_le_bytes(), [0x80, 1, 0xFF, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn wide_lane_widths_share_the_formulas() {
        // 16-bit saturating add at the boundary.
        let a = 0x7FFF_0000_8000_FFFFu64; // lanes: 0xFFFF, 0x8000, 0x0000, 0x7FFF
        let b = 0x0001_0001_FFFF_0001u64;
        let s = add_sat_s::<16>(a, b);
        // lane 0: −1 + 1 = 0, no saturation.
        assert_eq!(s & 0xFFFF, 0);
        // lane 3 (top): 0x7FFF + 1 saturates to 0x7FFF.
        assert_eq!(s >> 48, 0x7FFF);
        // lane 1: 0x8000 + 0xFFFF (−32768 + −1) saturates to 0x8000.
        assert_eq!((add_sat_s::<16>(a, b) >> 16) & 0xFFFF, 0x8000);
        // 32-bit compare.
        let a = 0x0000_0001_FFFF_FFFFu64; // lanes: 0xFFFF_FFFF, 1
        let b = 0x0000_0002_0000_0000u64; // lanes: 0, 2
        assert_eq!(gt_mask_u::<32>(a, b), 0x0000_0000_FFFF_FFFF);
        assert_eq!(gt_mask_s::<32>(a, b), 0); // −1 < 0 signed
    }
}
