//! Shared architectural state operated on by the functional interpreters.

use crate::accumulator::Accumulator;
use crate::mem::MemImage;
use crate::regs::{FpRegFile, IntRegFile, MediaRegFile, NUM_MDMX_ACCS};
use crate::trace::{MemAccess, MemList};

/// Architectural state common to the scalar baseline and the MMX/MDMX
/// extensions: scalar register files, the 64-bit media register file, the
/// MDMX packed accumulators and the data memory image.
///
/// The MOM extension adds matrix registers, MOM accumulators and the
/// vector-length/stride registers on top of this state; those live in
/// `mom-core`, which embeds a `CoreState`.
#[derive(Debug, Clone)]
pub struct CoreState {
    /// Integer register file (register 31 is hard-wired to zero).
    pub int: IntRegFile,
    /// Floating-point register file.
    pub fp: FpRegFile,
    /// 64-bit multimedia register file.
    pub media: MediaRegFile,
    /// MDMX packed accumulators.
    pub accs: [Accumulator; NUM_MDMX_ACCS],
    /// Data memory image.
    pub mem: MemImage,
}

impl CoreState {
    /// Create a state with zeroed registers around the given memory image.
    pub fn new(mem: MemImage) -> Self {
        Self {
            int: IntRegFile::new(),
            fp: FpRegFile::new(),
            media: MediaRegFile::new(),
            accs: std::array::from_fn(|_| Accumulator::new()),
            mem,
        }
    }
}

/// Where control flow goes after executing an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlFlow {
    /// Fall through to the next static instruction.
    Fall,
    /// Branch to the given label (conditional branch taken, or jump).
    Branch(crate::scalar::Label),
    /// Stop execution (end of program).
    Halt,
}

/// The side effects of executing one instruction that the trace generator
/// needs to observe: the control-flow decision and the element memory
/// accesses performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Control-flow decision.
    pub flow: ControlFlow,
    /// Element-level memory accesses performed by the instruction.
    pub mem: MemList,
}

impl Outcome {
    /// An outcome that falls through with no memory activity.
    pub fn fall() -> Self {
        Self { flow: ControlFlow::Fall, mem: MemList::new() }
    }

    /// A fall-through outcome carrying memory accesses.
    pub fn with_mem(mem: impl Into<MemList>) -> Self {
        Self { flow: ControlFlow::Fall, mem: mem.into() }
    }

    /// A fall-through outcome carrying a single element access (the scalar
    /// and MMX load/store case — stays inline, no allocation).
    pub fn with_access(access: MemAccess) -> Self {
        Self { flow: ControlFlow::Fall, mem: MemList::one(access) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::r;

    #[test]
    fn fresh_state_is_zeroed() {
        let st = CoreState::new(MemImage::new(0, 64));
        assert_eq!(st.int.read(r(5)), 0);
        assert_eq!(st.media.read(crate::regs::m(3)).bits(), 0);
        assert_eq!(st.accs[0].reduce_sum(), 0);
    }

    #[test]
    fn outcome_constructors() {
        assert_eq!(Outcome::fall().flow, ControlFlow::Fall);
        assert!(Outcome::fall().mem.is_empty());
        let o = Outcome::with_mem(MemList::new());
        assert_eq!(o.flow, ControlFlow::Fall);
        let a = Outcome::with_access(MemAccess {
            addr: 8,
            size: 8,
            kind: crate::trace::MemKind::Load,
        });
        assert_eq!(a.mem.len(), 1);
        assert!(!a.mem.is_spilled(), "single accesses stay inline");
    }
}
