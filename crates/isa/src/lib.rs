//! # mom-isa — instruction-set substrates for the MOM reproduction
//!
//! This crate provides the building blocks shared by every instruction-set
//! architecture evaluated in *"Exploiting a New Level of DLP in Multimedia
//! Applications"* (MICRO 1999):
//!
//! * [`packed`] — 64-bit packed sub-word arithmetic (the lane semantics of
//!   MMX/MDMX/MOM computation instructions).
//! * [`accumulator`] — MDMX-style packed wide accumulators, reused by MOM.
//! * [`regs`] — architectural register names and register files.
//! * [`mem`] — the byte-addressable memory image kernels execute against.
//! * [`scalar`] — the scalar baseline ISA (the paper's "Alpha" code).
//! * [`mmx`] — the extended MMX-like media ISA.
//! * [`mdmx`] — the MDMX-like media ISA (MMX + packed accumulators).
//! * [`state`] — the architectural state those ISAs execute against.
//! * [`trace`] — dynamic-instruction traces, the contract with the timing
//!   simulator in `mom-cpu`.
//! * [`pipe`] — bounded batch channels for pipelining one trace producer
//!   against N simulator threads.
//!
//! The MOM matrix extension itself — the paper's contribution — lives in the
//! `mom-core` crate, which builds on these substrates.
//!
//! ## Example
//!
//! ```
//! use mom_isa::packed::{Lane, PackedWord, Saturation};
//! use mom_isa::accumulator::Accumulator;
//!
//! // Packed SIMD: eight saturating byte adds in one operation.
//! let a = PackedWord::from_u8_lanes([200, 1, 2, 3, 4, 5, 6, 7]);
//! let b = PackedWord::from_u8_lanes([100, 1, 1, 1, 1, 1, 1, 1]);
//! assert_eq!(a.add(b, Lane::U8, Saturation::Saturating).to_u8_lanes()[0], 255);
//!
//! // A packed accumulator performing a dot product without precision loss.
//! let mut acc = Accumulator::new();
//! acc.mul_add(
//!     PackedWord::from_i16_lanes([1, 2, 3, 4]),
//!     PackedWord::from_i16_lanes([5, 6, 7, 8]),
//!     Lane::I16,
//! );
//! assert_eq!(acc.reduce_sum(), 70);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accumulator;
pub mod codec;
pub mod mdmx;
pub mod mem;
pub mod mmx;
pub mod packed;
pub mod pipe;
pub mod regs;
pub mod scalar;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub mod simd;
pub mod state;
pub mod swar;
pub mod trace;

/// Whether the `simd` cargo feature is active **and** this build targets
/// x86_64 (the only architecture with an intrinsics backend). When false the
/// packed kernels use the portable SWAR paths; results are identical either
/// way.
pub const fn simd_active() -> bool {
    cfg!(all(feature = "simd", target_arch = "x86_64"))
}

pub use accumulator::Accumulator;
pub use mem::MemImage;
pub use packed::{Lane, Lanes, PackedWord, Saturation};
pub use regs::{AccReg, FpReg, IntReg, MediaReg};
pub use state::{ControlFlow, CoreState, Outcome};
pub use trace::{ArchReg, DynInst, InstClass, IsaKind, MemAccess, MemKind, RegClass, Trace};
