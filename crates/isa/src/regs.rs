//! Architectural register names and register files.
//!
//! Every ISA modelled by the workspace addresses registers through small
//! newtype indices so that kernels cannot accidentally mix an integer register
//! with a media register or a MOM matrix register. The timing simulator
//! receives the same information through [`crate::trace::ArchReg`], which is a
//! class-tagged erased form of these newtypes.

/// Number of architectural integer registers (Alpha-like baseline).
pub const NUM_INT_REGS: usize = 32;
/// Number of architectural floating-point registers.
pub const NUM_FP_REGS: usize = 32;
/// Number of architectural media (MMX/MDMX) registers modelled by the paper's
/// emulation libraries (extended from the real 8 of MMX to 32).
pub const NUM_MEDIA_REGS: usize = 32;
/// Number of MDMX packed accumulators.
pub const NUM_MDMX_ACCS: usize = 4;

macro_rules! reg_newtype {
    ($(#[$doc:meta])* $name:ident, $max:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(u8);

        impl $name {
            /// Create a register name.
            ///
            /// # Panics
            ///
            /// Panics if `idx` is outside the architectural register file.
            pub fn new(idx: usize) -> Self {
                assert!(idx < $max, concat!(stringify!($name), " index {} out of range"), idx);
                Self(idx as u8)
            }

            /// Architectural index of this register.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", stringify!($name), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(r: $name) -> usize {
                r.index()
            }
        }
    };
}

reg_newtype!(
    /// An integer (scalar) register, `R0`..`R31`. `R31` reads as zero by Alpha
    /// convention and writes to it are discarded.
    IntReg,
    NUM_INT_REGS
);
reg_newtype!(
    /// A floating-point register, `F0`..`F31`.
    FpReg,
    NUM_FP_REGS
);
reg_newtype!(
    /// A 64-bit multimedia register (MMX/MDMX), `M0`..`M31`.
    MediaReg,
    NUM_MEDIA_REGS
);
reg_newtype!(
    /// An MDMX packed accumulator, `A0`..`A3`.
    AccReg,
    NUM_MDMX_ACCS
);

/// Shorthand constructor for an integer register.
pub fn r(idx: usize) -> IntReg {
    IntReg::new(idx)
}

/// Shorthand constructor for a media register.
pub fn m(idx: usize) -> MediaReg {
    MediaReg::new(idx)
}

/// Shorthand constructor for an accumulator register.
pub fn a(idx: usize) -> AccReg {
    AccReg::new(idx)
}

/// The architectural zero register (`R31` in the Alpha convention).
pub const ZERO_REG: IntReg = IntReg(31);

/// Integer register file.
///
/// Register 31 is hard-wired to zero, matching the Alpha baseline the paper's
/// emulation libraries extend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntRegFile {
    regs: [i64; NUM_INT_REGS],
}

impl Default for IntRegFile {
    fn default() -> Self {
        Self { regs: [0; NUM_INT_REGS] }
    }
}

impl IntRegFile {
    /// A register file with every register zeroed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read a register (the zero register always reads 0).
    pub fn read(&self, reg: IntReg) -> i64 {
        if reg == ZERO_REG {
            0
        } else {
            self.regs[reg.index()]
        }
    }

    /// Write a register (writes to the zero register are ignored).
    pub fn write(&mut self, reg: IntReg, value: i64) {
        if reg != ZERO_REG {
            self.regs[reg.index()] = value;
        }
    }
}

/// Floating-point register file.
#[derive(Debug, Clone, PartialEq)]
pub struct FpRegFile {
    regs: [f64; NUM_FP_REGS],
}

impl Default for FpRegFile {
    fn default() -> Self {
        Self { regs: [0.0; NUM_FP_REGS] }
    }
}

impl FpRegFile {
    /// A register file with every register zeroed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read a register.
    pub fn read(&self, reg: FpReg) -> f64 {
        self.regs[reg.index()]
    }

    /// Write a register.
    pub fn write(&mut self, reg: FpReg, value: f64) {
        self.regs[reg.index()] = value;
    }
}

/// 64-bit multimedia register file shared by the MMX- and MDMX-like models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MediaRegFile {
    regs: [crate::packed::PackedWord; NUM_MEDIA_REGS],
}

impl Default for MediaRegFile {
    fn default() -> Self {
        Self { regs: [crate::packed::PackedWord::ZERO; NUM_MEDIA_REGS] }
    }
}

impl MediaRegFile {
    /// A register file with every register zeroed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read a register.
    pub fn read(&self, reg: MediaReg) -> crate::packed::PackedWord {
        self.regs[reg.index()]
    }

    /// Write a register.
    pub fn write(&mut self, reg: MediaReg, value: crate::packed::PackedWord) {
        self.regs[reg.index()] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::PackedWord;

    #[test]
    fn newtype_bounds_are_enforced() {
        assert_eq!(IntReg::new(5).index(), 5);
        assert_eq!(MediaReg::new(31).index(), 31);
        assert_eq!(AccReg::new(3).index(), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_range_int_reg_panics() {
        let _ = IntReg::new(32);
    }

    #[test]
    #[should_panic]
    fn out_of_range_acc_panics() {
        let _ = AccReg::new(4);
    }

    #[test]
    fn zero_register_reads_zero_and_ignores_writes() {
        let mut rf = IntRegFile::new();
        rf.write(ZERO_REG, 42);
        assert_eq!(rf.read(ZERO_REG), 0);
        rf.write(r(3), -7);
        assert_eq!(rf.read(r(3)), -7);
    }

    #[test]
    fn fp_regfile_roundtrip() {
        let mut rf = FpRegFile::new();
        rf.write(FpReg::new(2), 3.25);
        assert_eq!(rf.read(FpReg::new(2)), 3.25);
        assert_eq!(rf.read(FpReg::new(3)), 0.0);
    }

    #[test]
    fn media_regfile_roundtrip() {
        let mut rf = MediaRegFile::new();
        let w = PackedWord::from_u8_lanes([1, 2, 3, 4, 5, 6, 7, 8]);
        rf.write(m(9), w);
        assert_eq!(rf.read(m(9)), w);
        assert_eq!(rf.read(m(10)), PackedWord::ZERO);
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", r(4)), "IntReg4");
        assert_eq!(format!("{}", m(2)), "MediaReg2");
    }
}
