//! The scalar baseline ISA (the paper's "Alpha" code).
//!
//! Kernels written for the plain superscalar machine use only these
//! instructions. They form a compact load/store RISC subset: immediate
//! materialisation, three-operand ALU operations, compares that set a
//! register, conditional moves, sign-/zero-extending loads, stores and
//! conditional branches against a label.
//!
//! Each operation knows how to execute itself against a
//! [`CoreState`] and how to describe itself to the
//! timing model (functional-unit class, source and destination registers).

use crate::regs::IntReg;
use crate::state::{ControlFlow, CoreState, Outcome};
use crate::trace::{ArchReg, InstClass, MemAccess, MemKind, MemList};

/// A branch target label, resolved to an instruction index by the program
/// builder in `mom-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u32);

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Condition codes for scalar branches and compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl Cond {
    /// Evaluate the condition on two signed operands.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
        }
    }
}

/// Two-operand ALU operations (register-register or register-immediate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (uses the complex integer unit).
    Mul,
    /// Bit-wise AND.
    And,
    /// Bit-wise OR.
    Or,
    /// Bit-wise XOR.
    Xor,
    /// Logical shift left.
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Signed minimum (modelled as a simple ALU op; real Alpha code would use
    /// a compare plus conditional move, which the scalar kernels also do where
    /// the comparison result is live).
    Min,
    /// Signed maximum.
    Max,
}

impl AluOp {
    /// Apply the operation.
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl((b & 63) as u32),
            AluOp::Srl => ((a as u64).wrapping_shr((b & 63) as u32)) as i64,
            AluOp::Sra => a.wrapping_shr((b & 63) as u32),
            AluOp::Min => a.min(b),
            AluOp::Max => a.max(b),
        }
    }

    /// Whether the operation uses the complex (multiply/divide) integer unit.
    pub fn is_complex(self) -> bool {
        matches!(self, AluOp::Mul)
    }
}

/// Scalar (baseline) instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScalarOp {
    /// Load an immediate into `rd`.
    Li {
        /// Destination register.
        rd: IntReg,
        /// Immediate value.
        imm: i64,
    },
    /// Copy `rs` into `rd`.
    Mov {
        /// Destination register.
        rd: IntReg,
        /// Source register.
        rs: IntReg,
    },
    /// Three-operand ALU operation `rd = ra <op> rb`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: IntReg,
        /// First source.
        ra: IntReg,
        /// Second source.
        rb: IntReg,
    },
    /// ALU operation with an immediate second operand `rd = ra <op> imm`.
    AluI {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: IntReg,
        /// First source.
        ra: IntReg,
        /// Immediate second operand.
        imm: i64,
    },
    /// Compare and set: `rd = (ra <cond> rb) ? 1 : 0`.
    CmpSet {
        /// Condition.
        cond: Cond,
        /// Destination register.
        rd: IntReg,
        /// First source.
        ra: IntReg,
        /// Second source.
        rb: IntReg,
    },
    /// Conditional move: `rd = rs` if `rc != 0`.
    CMov {
        /// Destination register.
        rd: IntReg,
        /// Condition register.
        rc: IntReg,
        /// Source moved when the condition holds.
        rs: IntReg,
    },
    /// Absolute value `rd = |ra|`.
    Abs {
        /// Destination register.
        rd: IntReg,
        /// Source register.
        ra: IntReg,
    },
    /// Load `size` bytes from `[base + offset]` into `rd`.
    Ld {
        /// Destination register.
        rd: IntReg,
        /// Base address register.
        base: IntReg,
        /// Byte offset added to the base.
        offset: i64,
        /// Access size in bytes (1, 2, 4 or 8).
        size: u8,
        /// Whether to sign-extend the loaded value.
        signed: bool,
    },
    /// Store the low `size` bytes of `rs` to `[base + offset]`.
    St {
        /// Source register.
        rs: IntReg,
        /// Base address register.
        base: IntReg,
        /// Byte offset added to the base.
        offset: i64,
        /// Access size in bytes (1, 2, 4 or 8).
        size: u8,
    },
    /// Conditional branch to `target` when `ra <cond> rb`.
    Br {
        /// Condition.
        cond: Cond,
        /// First source.
        ra: IntReg,
        /// Second source.
        rb: IntReg,
        /// Branch target.
        target: Label,
    },
    /// Unconditional jump to `target`.
    Jmp {
        /// Branch target.
        target: Label,
    },
    /// No operation (consumes fetch/ROB resources only).
    Nop,
    /// Stop the program.
    Halt,
}

impl ScalarOp {
    /// Functional-unit class of this instruction.
    pub fn class(&self) -> InstClass {
        match self {
            ScalarOp::Alu { op, .. } | ScalarOp::AluI { op, .. } if op.is_complex() => {
                InstClass::IntComplex
            }
            ScalarOp::Li { .. }
            | ScalarOp::Mov { .. }
            | ScalarOp::Alu { .. }
            | ScalarOp::AluI { .. }
            | ScalarOp::CmpSet { .. }
            | ScalarOp::CMov { .. }
            | ScalarOp::Abs { .. } => InstClass::IntSimple,
            ScalarOp::Ld { .. } => InstClass::Load,
            ScalarOp::St { .. } => InstClass::Store,
            ScalarOp::Br { .. } | ScalarOp::Jmp { .. } => InstClass::Branch,
            ScalarOp::Nop | ScalarOp::Halt => InstClass::Nop,
        }
    }

    /// Source registers read by this instruction (for dependence tracking).
    pub fn srcs(&self) -> Vec<ArchReg> {
        let int = |r: &IntReg| ArchReg::int(r.index() as u8);
        match self {
            ScalarOp::Li { .. } | ScalarOp::Nop | ScalarOp::Halt | ScalarOp::Jmp { .. } => vec![],
            ScalarOp::Mov { rs, .. } => vec![int(rs)],
            ScalarOp::Alu { ra, rb, .. } | ScalarOp::CmpSet { ra, rb, .. } | ScalarOp::Br { ra, rb, .. } => {
                vec![int(ra), int(rb)]
            }
            ScalarOp::AluI { ra, .. } | ScalarOp::Abs { ra, .. } => vec![int(ra)],
            ScalarOp::CMov { rd, rc, rs } => vec![int(rd), int(rc), int(rs)],
            ScalarOp::Ld { base, .. } => vec![int(base)],
            ScalarOp::St { rs, base, .. } => vec![int(rs), int(base)],
        }
    }

    /// Destination registers written by this instruction.
    pub fn dsts(&self) -> Vec<ArchReg> {
        let int = |r: &IntReg| ArchReg::int(r.index() as u8);
        match self {
            ScalarOp::Li { rd, .. }
            | ScalarOp::Mov { rd, .. }
            | ScalarOp::Alu { rd, .. }
            | ScalarOp::AluI { rd, .. }
            | ScalarOp::CmpSet { rd, .. }
            | ScalarOp::CMov { rd, .. }
            | ScalarOp::Abs { rd, .. }
            | ScalarOp::Ld { rd, .. } => vec![int(rd)],
            _ => vec![],
        }
    }

    /// Execute the instruction against the architectural state.
    pub fn execute(&self, st: &mut CoreState) -> Outcome {
        match self {
            ScalarOp::Li { rd, imm } => {
                st.int.write(*rd, *imm);
                Outcome::fall()
            }
            ScalarOp::Mov { rd, rs } => {
                let v = st.int.read(*rs);
                st.int.write(*rd, v);
                Outcome::fall()
            }
            ScalarOp::Alu { op, rd, ra, rb } => {
                let v = op.apply(st.int.read(*ra), st.int.read(*rb));
                st.int.write(*rd, v);
                Outcome::fall()
            }
            ScalarOp::AluI { op, rd, ra, imm } => {
                let v = op.apply(st.int.read(*ra), *imm);
                st.int.write(*rd, v);
                Outcome::fall()
            }
            ScalarOp::CmpSet { cond, rd, ra, rb } => {
                let v = cond.eval(st.int.read(*ra), st.int.read(*rb));
                st.int.write(*rd, v as i64);
                Outcome::fall()
            }
            ScalarOp::CMov { rd, rc, rs } => {
                if st.int.read(*rc) != 0 {
                    let v = st.int.read(*rs);
                    st.int.write(*rd, v);
                }
                Outcome::fall()
            }
            ScalarOp::Abs { rd, ra } => {
                let v = st.int.read(*ra).wrapping_abs();
                st.int.write(*rd, v);
                Outcome::fall()
            }
            ScalarOp::Ld { rd, base, offset, size, signed } => {
                let addr = (st.int.read(*base) + offset) as u64;
                let v = if *signed {
                    st.mem.read_signed(addr, *size as usize)
                } else {
                    st.mem.read_unsigned(addr, *size as usize) as i64
                };
                st.int.write(*rd, v);
                Outcome::with_access(MemAccess { addr, size: *size, kind: MemKind::Load })
            }
            ScalarOp::St { rs, base, offset, size } => {
                let addr = (st.int.read(*base) + offset) as u64;
                st.mem.write_value(addr, *size as usize, st.int.read(*rs) as u64);
                Outcome::with_access(MemAccess { addr, size: *size, kind: MemKind::Store })
            }
            ScalarOp::Br { cond, ra, rb, target } => {
                let taken = cond.eval(st.int.read(*ra), st.int.read(*rb));
                Outcome {
                    flow: if taken { ControlFlow::Branch(*target) } else { ControlFlow::Fall },
                    mem: MemList::new(),
                }
            }
            ScalarOp::Jmp { target } => {
                Outcome { flow: ControlFlow::Branch(*target), mem: MemList::new() }
            }
            ScalarOp::Nop => Outcome::fall(),
            ScalarOp::Halt => Outcome { flow: ControlFlow::Halt, mem: MemList::new() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemImage;
    use crate::regs::r;

    fn state() -> CoreState {
        CoreState::new(MemImage::new(0x1000, 256))
    }

    #[test]
    fn cond_eval_covers_all_cases() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval(-1, 0));
        assert!(Cond::Le.eval(0, 0));
        assert!(Cond::Gt.eval(5, 4));
        assert!(Cond::Ge.eval(5, 5));
        assert!(!Cond::Lt.eval(5, 5));
    }

    #[test]
    fn alu_ops_apply() {
        assert_eq!(AluOp::Add.apply(3, 4), 7);
        assert_eq!(AluOp::Sub.apply(3, 4), -1);
        assert_eq!(AluOp::Mul.apply(3, 4), 12);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Sll.apply(1, 4), 16);
        assert_eq!(AluOp::Srl.apply(-1, 60), 15);
        assert_eq!(AluOp::Sra.apply(-16, 2), -4);
        assert_eq!(AluOp::Min.apply(-2, 7), -2);
        assert_eq!(AluOp::Max.apply(-2, 7), 7);
        assert!(AluOp::Mul.is_complex());
        assert!(!AluOp::Add.is_complex());
    }

    #[test]
    fn li_mov_alu_roundtrip() {
        let mut st = state();
        ScalarOp::Li { rd: r(1), imm: 40 }.execute(&mut st);
        ScalarOp::Li { rd: r(2), imm: 2 }.execute(&mut st);
        ScalarOp::Alu { op: AluOp::Add, rd: r(3), ra: r(1), rb: r(2) }.execute(&mut st);
        ScalarOp::Mov { rd: r(4), rs: r(3) }.execute(&mut st);
        assert_eq!(st.int.read(r(4)), 42);
        ScalarOp::AluI { op: AluOp::Mul, rd: r(5), ra: r(4), imm: 2 }.execute(&mut st);
        assert_eq!(st.int.read(r(5)), 84);
    }

    #[test]
    fn cmp_cmov_abs() {
        let mut st = state();
        st.int.write(r(1), -9);
        st.int.write(r(2), 4);
        ScalarOp::CmpSet { cond: Cond::Lt, rd: r(3), ra: r(1), rb: r(2) }.execute(&mut st);
        assert_eq!(st.int.read(r(3)), 1);
        ScalarOp::CMov { rd: r(4), rc: r(3), rs: r(2) }.execute(&mut st);
        assert_eq!(st.int.read(r(4)), 4);
        st.int.write(r(3), 0);
        ScalarOp::CMov { rd: r(4), rc: r(3), rs: r(1) }.execute(&mut st);
        assert_eq!(st.int.read(r(4)), 4, "cmov with false condition leaves rd unchanged");
        ScalarOp::Abs { rd: r(5), ra: r(1) }.execute(&mut st);
        assert_eq!(st.int.read(r(5)), 9);
    }

    #[test]
    fn load_store_roundtrip_and_trace_info() {
        let mut st = state();
        st.int.write(r(1), 0x1010);
        st.int.write(r(2), -123456);
        let o = ScalarOp::St { rs: r(2), base: r(1), offset: 8, size: 4 }.execute(&mut st);
        assert_eq!(o.mem.len(), 1);
        assert_eq!(o.mem[0].addr, 0x1018);
        assert_eq!(o.mem[0].kind, MemKind::Store);
        let o = ScalarOp::Ld { rd: r(3), base: r(1), offset: 8, size: 4, signed: true }.execute(&mut st);
        assert_eq!(st.int.read(r(3)), -123456);
        assert_eq!(o.mem[0].kind, MemKind::Load);
        // unsigned byte load
        st.mem.write_u8(0x1020, 0xfe);
        ScalarOp::Ld { rd: r(4), base: r(1), offset: 0x10, size: 1, signed: false }.execute(&mut st);
        assert_eq!(st.int.read(r(4)), 0xfe);
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let mut st = state();
        st.int.write(r(1), 5);
        st.int.write(r(2), 5);
        let o = ScalarOp::Br { cond: Cond::Eq, ra: r(1), rb: r(2), target: Label(7) }.execute(&mut st);
        assert_eq!(o.flow, ControlFlow::Branch(Label(7)));
        let o = ScalarOp::Br { cond: Cond::Ne, ra: r(1), rb: r(2), target: Label(7) }.execute(&mut st);
        assert_eq!(o.flow, ControlFlow::Fall);
        let o = ScalarOp::Jmp { target: Label(3) }.execute(&mut st);
        assert_eq!(o.flow, ControlFlow::Branch(Label(3)));
        let o = ScalarOp::Halt.execute(&mut st);
        assert_eq!(o.flow, ControlFlow::Halt);
    }

    #[test]
    fn classes_and_reg_metadata() {
        assert_eq!(ScalarOp::Li { rd: r(1), imm: 0 }.class(), InstClass::IntSimple);
        assert_eq!(
            ScalarOp::Alu { op: AluOp::Mul, rd: r(1), ra: r(2), rb: r(3) }.class(),
            InstClass::IntComplex
        );
        assert_eq!(
            ScalarOp::Ld { rd: r(1), base: r(2), offset: 0, size: 8, signed: false }.class(),
            InstClass::Load
        );
        assert_eq!(
            ScalarOp::Br { cond: Cond::Eq, ra: r(1), rb: r(2), target: Label(0) }.class(),
            InstClass::Branch
        );
        let st = ScalarOp::St { rs: r(4), base: r(5), offset: 0, size: 8 };
        assert_eq!(st.class(), InstClass::Store);
        assert_eq!(st.srcs().len(), 2);
        assert!(st.dsts().is_empty());
        let alu = ScalarOp::Alu { op: AluOp::Add, rd: r(1), ra: r(2), rb: r(3) };
        assert_eq!(alu.srcs(), vec![ArchReg::int(2), ArchReg::int(3)]);
        assert_eq!(alu.dsts(), vec![ArchReg::int(1)]);
        let cmov = ScalarOp::CMov { rd: r(1), rc: r(2), rs: r(3) };
        assert_eq!(cmov.srcs().len(), 3, "cmov reads its destination");
    }

    #[test]
    fn label_display() {
        assert_eq!(Label(4).to_string(), "L4");
    }
}
