//! Bounded batch channels: the pipelined sibling of
//! [`Broadcast`](crate::trace::Broadcast).
//!
//! [`Broadcast`](crate::trace::Broadcast) drives its children serially on the
//! interpreter's thread — one thread does 1 interpret + N simulates. This
//! module splits that into a producer/consumer pipeline: the interpreter
//! publishes *batches* of [`DynInst`]s (contiguous `Arc<[DynInst]>` slices,
//! shared by all members without cloning the instructions) into one bounded
//! SPSC channel per member, and each member's simulator drains its channel on
//! its own thread. The bound provides backpressure: total buffered memory
//! stays O(batch × capacity × members), never O(trace).
//!
//! The building blocks:
//!
//! * [`batch_channel`] — a bounded single-producer single-consumer channel of
//!   [`Batch`]es, hand-rolled on [`Mutex`] + [`Condvar`] (no external crates).
//!   Dropping either endpoint closes the channel: a closed-receiver `send`
//!   returns [`Disconnected`], a closed-sender `recv` drains the queue and
//!   then returns `None`.
//! * [`BatchSink`] — a [`TraceSink`] that accumulates instructions into a
//!   batch and, when full, sends one `Arc` clone of the batch to every member
//!   channel in member order. Call [`BatchSink::finish`] to flush the final
//!   partial batch and close the channels; merely *dropping* the sink closes
//!   the channels **without flushing** (so a panicking producer unblocks its
//!   consumers instead of blocking on a full channel during unwind).
//!
//! Batches are contiguous slices so a future SIMD decode/execute stage can
//! process them without re-gathering (ROADMAP item 2).

use crate::trace::{DynInst, TraceSink};
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// A contiguous, immutable run of dynamic instructions in program order,
/// cheaply shareable across consumer threads.
pub type Batch = Arc<[DynInst]>;

/// Default number of instructions per batch published by a [`BatchSink`].
pub const DEFAULT_BATCH_INSTS: usize = 1024;

/// Default per-member channel capacity, in batches.
pub const DEFAULT_CHANNEL_BATCHES: usize = 4;

/// Error returned by [`BatchSender::send`] when the receiving end has been
/// dropped: nobody will ever consume the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl fmt::Display for Disconnected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("batch channel receiver disconnected")
    }
}

impl std::error::Error for Disconnected {}

#[derive(Debug)]
struct Inner {
    queue: VecDeque<Batch>,
    capacity: usize,
    sender_alive: bool,
    receiver_alive: bool,
}

#[derive(Debug)]
struct Shared {
    inner: Mutex<Inner>,
    /// Signalled when a slot frees up or the receiver goes away.
    not_full: Condvar,
    /// Signalled when a batch arrives or the sender goes away.
    not_empty: Condvar,
}

/// Producer endpoint of a bounded batch channel (see [`batch_channel`]).
#[derive(Debug)]
pub struct BatchSender {
    shared: Arc<Shared>,
}

/// Consumer endpoint of a bounded batch channel (see [`batch_channel`]).
#[derive(Debug)]
pub struct BatchReceiver {
    shared: Arc<Shared>,
}

/// Create a bounded SPSC channel carrying [`Batch`]es.
///
/// `capacity` is the maximum number of batches buffered in flight (clamped to
/// at least 1). A full channel blocks [`BatchSender::send`] until the
/// receiver drains a batch — this backpressure is what bounds the pipeline's
/// memory. Both endpoints are `Send`, so producer and consumer can live on
/// different threads; neither is `Clone` (single producer, single consumer).
pub fn batch_channel(capacity: usize) -> (BatchSender, BatchReceiver) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            sender_alive: true,
            receiver_alive: true,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (BatchSender { shared: Arc::clone(&shared) }, BatchReceiver { shared })
}

impl BatchSender {
    /// Enqueue a batch, blocking while the channel is full.
    ///
    /// Returns [`Disconnected`] if the receiver has been dropped (including
    /// while blocked waiting for space) — the batch is discarded in that case.
    pub fn send(&self, batch: Batch) -> Result<(), Disconnected> {
        let mut inner = self.shared.inner.lock().expect("batch channel poisoned");
        loop {
            if !inner.receiver_alive {
                return Err(Disconnected);
            }
            if inner.queue.len() < inner.capacity {
                inner.queue.push_back(batch);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self.shared.not_full.wait(inner).expect("batch channel poisoned");
        }
    }
}

impl Drop for BatchSender {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("batch channel poisoned");
        inner.sender_alive = false;
        drop(inner);
        self.shared.not_empty.notify_all();
    }
}

impl BatchReceiver {
    /// Dequeue the next batch, blocking while the channel is empty.
    ///
    /// Returns `None` once the sender has been dropped *and* the queue is
    /// drained — already-enqueued batches are always delivered first, so a
    /// producer that `finish()`es and exits loses nothing.
    pub fn recv(&self) -> Option<Batch> {
        let mut inner = self.shared.inner.lock().expect("batch channel poisoned");
        loop {
            if let Some(batch) = inner.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Some(batch);
            }
            if !inner.sender_alive {
                return None;
            }
            inner = self.shared.not_empty.wait(inner).expect("batch channel poisoned");
        }
    }
}

impl Drop for BatchReceiver {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("batch channel poisoned");
        inner.receiver_alive = false;
        inner.queue.clear();
        drop(inner);
        self.shared.not_full.notify_all();
    }
}

/// A [`TraceSink`] that batches instructions and fans the batches out to N
/// member channels — the channel-backed sibling of
/// [`Broadcast`](crate::trace::Broadcast).
///
/// Each full batch is sent to every live member in member order (one `Arc`
/// clone per member; the instructions themselves are shared, not copied). A
/// member whose receiver has hung up is skipped from then on. The producer
/// must call [`BatchSink::finish`] when the stream ends: it flushes the final
/// partial batch and closes all channels. Dropping the sink without
/// `finish()` closes the channels **without flushing** — deliberate, so an
/// unwinding producer never blocks on a full channel and its consumers see
/// end-of-stream promptly.
#[derive(Debug)]
pub struct BatchSink {
    buf: Vec<DynInst>,
    batch_insts: usize,
    outputs: Vec<Option<BatchSender>>,
}

impl BatchSink {
    /// Build a sink fanning out to `outputs` with `batch_insts` instructions
    /// per batch (clamped to at least 1).
    pub fn new(outputs: Vec<BatchSender>, batch_insts: usize) -> Self {
        let batch_insts = batch_insts.max(1);
        Self {
            buf: Vec::with_capacity(batch_insts),
            batch_insts,
            outputs: outputs.into_iter().map(Some).collect(),
        }
    }

    /// Number of member channels (live or hung-up).
    pub fn members(&self) -> usize {
        self.outputs.len()
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let batch: Batch = std::mem::take(&mut self.buf).into();
        self.buf.reserve(self.batch_insts);
        for slot in &mut self.outputs {
            if let Some(tx) = slot {
                if tx.send(Arc::clone(&batch)).is_err() {
                    *slot = None;
                }
            }
        }
    }

    /// Flush the final partial batch and close every member channel, marking
    /// a clean end-of-stream for the consumers.
    pub fn finish(mut self) {
        self.flush();
        // Dropping `self` drops the senders, which closes the channels.
    }
}

impl TraceSink for BatchSink {
    fn emit(&mut self, inst: DynInst) {
        self.buf.push(inst);
        if self.buf.len() >= self.batch_insts {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::InstClass;
    use std::thread;

    fn inst(pc: u64) -> DynInst {
        DynInst::new(InstClass::IntSimple, pc)
    }

    #[test]
    fn batches_arrive_in_fifo_order_and_close_cleanly() {
        let (tx, rx) = batch_channel(2);
        let producer = thread::spawn(move || {
            for base in 0..5u64 {
                let batch: Batch = vec![inst(base * 2), inst(base * 2 + 1)].into();
                tx.send(batch).expect("receiver alive");
            }
            // tx dropped here: clean close.
        });
        let mut pcs = Vec::new();
        while let Some(batch) = rx.recv() {
            pcs.extend(batch.iter().map(|i| i.pc));
        }
        producer.join().unwrap();
        assert_eq!(pcs, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn capacity_one_backpressure_still_delivers_everything() {
        let (tx, rx) = batch_channel(1);
        let producer = thread::spawn(move || {
            for pc in 0..64u64 {
                tx.send(vec![inst(pc)].into()).expect("receiver alive");
            }
        });
        let mut seen = 0u64;
        while let Some(batch) = rx.recv() {
            for i in batch.iter() {
                assert_eq!(i.pc, seen);
                seen += 1;
            }
        }
        producer.join().unwrap();
        assert_eq!(seen, 64);
    }

    #[test]
    fn send_fails_once_receiver_is_gone() {
        let (tx, rx) = batch_channel(4);
        drop(rx);
        assert_eq!(tx.send(vec![inst(0)].into()), Err(Disconnected));
    }

    #[test]
    fn dropping_receiver_unblocks_a_full_sender() {
        let (tx, rx) = batch_channel(1);
        tx.send(vec![inst(0)].into()).expect("space for one");
        let blocked = thread::spawn(move || tx.send(vec![inst(1)].into()));
        // Give the sender a chance to block on the full channel, then hang up.
        thread::sleep(std::time::Duration::from_millis(10));
        drop(rx);
        assert_eq!(blocked.join().unwrap(), Err(Disconnected));
    }

    #[test]
    fn batch_sink_flushes_full_batches_and_finish_flushes_the_tail() {
        let (tx_a, rx_a) = batch_channel(8);
        let (tx_b, rx_b) = batch_channel(8);
        let mut sink = BatchSink::new(vec![tx_a, tx_b], 3);
        assert_eq!(sink.members(), 2);
        for pc in 0..7u64 {
            sink.emit(inst(pc));
        }
        sink.finish();
        for rx in [rx_a, rx_b] {
            let sizes: Vec<usize> = std::iter::from_fn(|| rx.recv()).map(|b| b.len()).collect();
            assert_eq!(sizes, vec![3, 3, 1], "two full batches plus the tail");
        }
    }

    #[test]
    fn dropping_batch_sink_closes_without_flushing() {
        let (tx, rx) = batch_channel(8);
        let mut sink = BatchSink::new(vec![tx], 100);
        sink.emit(inst(0));
        drop(sink); // no finish(): the partial batch is discarded
        assert!(rx.recv().is_none(), "drop must close without flushing");
    }

    #[test]
    fn batch_sink_survives_a_hung_up_member() {
        let (tx_a, rx_a) = batch_channel(8);
        let (tx_b, rx_b) = batch_channel(8);
        drop(rx_b); // member B gives up immediately
        let mut sink = BatchSink::new(vec![tx_a, tx_b], 2);
        for pc in 0..4u64 {
            sink.emit(inst(pc));
        }
        sink.finish();
        let total: usize = std::iter::from_fn(|| rx_a.recv()).map(|b| b.len()).sum();
        assert_eq!(total, 4, "member A still sees the full stream");
    }
}
