//! Byte-addressable memory image used by the functional interpreters.
//!
//! Kernels and applications lay their working sets out in a flat little-endian
//! memory image, just like the traced Alpha binaries of the original study.
//! The image records nothing about timing — the timing simulator only sees the
//! addresses through the dynamic trace.

/// A flat, little-endian, byte-addressable memory image.
///
/// Addresses are `u64` but must fall inside `[base, base + len)`. Reads and
/// writes outside the image panic: a kernel touching unmapped memory is a bug
/// in the kernel builder, not a recoverable condition.
///
/// # Examples
///
/// ```
/// use mom_isa::mem::MemImage;
///
/// let mut mem = MemImage::new(0x1000, 64);
/// mem.write_u32(0x1010, 0xdeadbeef);
/// assert_eq!(mem.read_u32(0x1010), 0xdeadbeef);
/// assert_eq!(mem.read_u8(0x1010), 0xef); // little endian
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemImage {
    base: u64,
    bytes: Vec<u8>,
}

impl MemImage {
    /// Create an image of `len` zero bytes starting at virtual address `base`.
    pub fn new(base: u64, len: usize) -> Self {
        Self { base, bytes: vec![0; len] }
    }

    /// Base virtual address of the image.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size of the image in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Whether `addr..addr+size` lies entirely inside the image.
    pub fn contains(&self, addr: u64, size: usize) -> bool {
        addr >= self.base && addr + size as u64 <= self.base + self.bytes.len() as u64
    }

    fn offset(&self, addr: u64, size: usize) -> usize {
        assert!(
            self.contains(addr, size),
            "memory access {addr:#x}+{size} outside image [{:#x}, {:#x})",
            self.base,
            self.base + self.bytes.len() as u64
        );
        (addr - self.base) as usize
    }

    /// Read one byte.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the image (same for all accessors).
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.bytes[self.offset(addr, 1)]
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let o = self.offset(addr, 1);
        self.bytes[o] = value;
    }

    /// Read a little-endian 16-bit value.
    pub fn read_u16(&self, addr: u64) -> u16 {
        let o = self.offset(addr, 2);
        u16::from_le_bytes([self.bytes[o], self.bytes[o + 1]])
    }

    /// Write a little-endian 16-bit value.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        let o = self.offset(addr, 2);
        self.bytes[o..o + 2].copy_from_slice(&value.to_le_bytes());
    }

    /// Read a little-endian 32-bit value.
    pub fn read_u32(&self, addr: u64) -> u32 {
        let o = self.offset(addr, 4);
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.bytes[o..o + 4]);
        u32::from_le_bytes(b)
    }

    /// Write a little-endian 32-bit value.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        let o = self.offset(addr, 4);
        self.bytes[o..o + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Read a little-endian 64-bit value.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let o = self.offset(addr, 8);
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.bytes[o..o + 8]);
        u64::from_le_bytes(b)
    }

    /// Write a little-endian 64-bit value.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        let o = self.offset(addr, 8);
        self.bytes[o..o + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Read a signed value of `size` bytes (1, 2, 4 or 8), sign-extended.
    ///
    /// # Panics
    ///
    /// Panics for unsupported sizes.
    pub fn read_signed(&self, addr: u64, size: usize) -> i64 {
        match size {
            1 => self.read_u8(addr) as i8 as i64,
            2 => self.read_u16(addr) as i16 as i64,
            4 => self.read_u32(addr) as i32 as i64,
            8 => self.read_u64(addr) as i64,
            _ => panic!("unsupported access size {size}"),
        }
    }

    /// Read an unsigned value of `size` bytes (1, 2, 4 or 8), zero-extended.
    ///
    /// # Panics
    ///
    /// Panics for unsupported sizes.
    pub fn read_unsigned(&self, addr: u64, size: usize) -> u64 {
        match size {
            1 => self.read_u8(addr) as u64,
            2 => self.read_u16(addr) as u64,
            4 => self.read_u32(addr) as u64,
            8 => self.read_u64(addr),
            _ => panic!("unsupported access size {size}"),
        }
    }

    /// Write the low `size` bytes (1, 2, 4 or 8) of `value`.
    ///
    /// # Panics
    ///
    /// Panics for unsupported sizes.
    pub fn write_value(&mut self, addr: u64, size: usize, value: u64) {
        match size {
            1 => self.write_u8(addr, value as u8),
            2 => self.write_u16(addr, value as u16),
            4 => self.write_u32(addr, value as u32),
            8 => self.write_u64(addr, value),
            _ => panic!("unsupported access size {size}"),
        }
    }

    /// Copy a byte slice into the image starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        let o = self.offset(addr, data.len());
        self.bytes[o..o + data.len()].copy_from_slice(data);
    }

    /// Read `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> &[u8] {
        let o = self.offset(addr, len);
        &self.bytes[o..o + len]
    }
}

/// A simple bump allocator over a [`MemImage`] address range, used by the
/// workload generators to lay out arrays without overlapping.
#[derive(Debug, Clone)]
pub struct Allocator {
    next: u64,
    limit: u64,
}

impl Allocator {
    /// Allocator handing out addresses in `[image.base(), image.base()+image.len())`.
    pub fn for_image(image: &MemImage) -> Self {
        Self { next: image.base(), limit: image.base() + image.len() as u64 }
    }

    /// Allocate `size` bytes aligned to `align` (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if the region is exhausted or `align` is not a power of two.
    pub fn alloc(&mut self, size: usize, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = (self.next + align - 1) & !(align - 1);
        assert!(
            addr + size as u64 <= self.limit,
            "memory image exhausted: need {size} bytes at {addr:#x}, limit {:#x}",
            self.limit
        );
        self.next = addr + size as u64;
        addr
    }

    /// Remaining free bytes (ignoring alignment padding of future requests).
    pub fn remaining(&self) -> u64 {
        self.limit - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_sizes() {
        let mut m = MemImage::new(0x2000, 128);
        m.write_u8(0x2000, 0xab);
        m.write_u16(0x2002, 0xbeef);
        m.write_u32(0x2004, 0xdead_beef);
        m.write_u64(0x2008, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u8(0x2000), 0xab);
        assert_eq!(m.read_u16(0x2002), 0xbeef);
        assert_eq!(m.read_u32(0x2004), 0xdead_beef);
        assert_eq!(m.read_u64(0x2008), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = MemImage::new(0, 16);
        m.write_u32(0, 0x0102_0304);
        assert_eq!(m.read_u8(0), 0x04);
        assert_eq!(m.read_u8(3), 0x01);
    }

    #[test]
    fn signed_and_unsigned_reads() {
        let mut m = MemImage::new(0, 16);
        m.write_u8(0, 0xff);
        m.write_u16(2, 0x8000);
        assert_eq!(m.read_signed(0, 1), -1);
        assert_eq!(m.read_unsigned(0, 1), 255);
        assert_eq!(m.read_signed(2, 2), -32768);
        assert_eq!(m.read_unsigned(2, 2), 32768);
    }

    #[test]
    fn write_value_truncates() {
        let mut m = MemImage::new(0, 16);
        m.write_value(0, 1, 0x1234);
        assert_eq!(m.read_u8(0), 0x34);
        assert_eq!(m.read_u8(1), 0);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = MemImage::new(0x100, 32);
        m.write_bytes(0x104, &[1, 2, 3, 4]);
        assert_eq!(m.read_bytes(0x104, 4), &[1, 2, 3, 4]);
    }

    #[test]
    fn contains_checks_bounds() {
        let m = MemImage::new(0x100, 32);
        assert!(m.contains(0x100, 32));
        assert!(!m.contains(0xff, 1));
        assert!(!m.contains(0x11f, 2));
        assert!(!m.is_empty());
        assert_eq!(m.len(), 32);
        assert_eq!(m.base(), 0x100);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let m = MemImage::new(0x100, 32);
        let _ = m.read_u64(0x11d);
    }

    #[test]
    fn allocator_respects_alignment_and_limit() {
        let m = MemImage::new(0x1000, 256);
        let mut alloc = Allocator::for_image(&m);
        let a = alloc.alloc(10, 1);
        let b = alloc.alloc(8, 64);
        assert_eq!(a, 0x1000);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 10);
        assert!(alloc.remaining() < 256);
    }

    #[test]
    #[should_panic]
    fn allocator_exhaustion_panics() {
        let m = MemImage::new(0, 16);
        let mut alloc = Allocator::for_image(&m);
        let _ = alloc.alloc(32, 1);
    }
}
