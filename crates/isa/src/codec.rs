//! Hand-rolled binary codec primitives for simulator checkpoints.
//!
//! The sampled execution mode serializes warm microarchitectural state
//! (caches, predictors, reorder-window history) and architectural state into
//! checkpoint files so long cells can be paused, resumed and distributed.
//! Like the JSON layer in `mom-lab`, the codec is written by hand — the
//! offline build has no serde — and is deliberately boring: little-endian
//! fixed-width integers, `u64` length prefixes for variable-length data, and
//! explicit version tags at every container boundary.
//!
//! Encoding is infallible and deterministic: the same state always produces
//! the same bytes, which is what lets checkpoint round-trip tests assert
//! byte-identity (`encode → decode → encode` must reproduce the input
//! exactly). Decoding validates everything it reads and fails with a
//! [`CodecError`] rather than panicking, so a truncated or mismatched
//! checkpoint file surfaces as a clean error.

use std::fmt;

/// Error produced when decoding a checkpoint byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the expected value could be read.
    Eof {
        /// What the decoder was trying to read.
        what: &'static str,
    },
    /// A value was read but failed validation against the live structure.
    Invalid {
        /// What failed to validate.
        what: &'static str,
    },
    /// A container version tag is not supported by this build.
    Version {
        /// Which container carried the unsupported version.
        what: &'static str,
        /// The version found in the stream.
        found: u32,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Eof { what } => write!(f, "checkpoint stream truncated reading {what}"),
            CodecError::Invalid { what } => {
                write!(f, "checkpoint field failed validation: {what}")
            }
            CodecError::Version { what, found } => {
                write!(f, "unsupported {what} checkpoint version {found}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// An append-only little-endian byte encoder.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append raw bytes with no length prefix (for fixed-size fields whose
    /// length is implied by the structure).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u64` length prefix followed by the bytes.
    pub fn blob(&mut self, bytes: &[u8]) {
        self.u64(bytes.len() as u64);
        self.raw(bytes);
    }
}

/// A cursor decoding the byte stream produced by [`Encoder`].
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Eof { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a bool (any nonzero byte is `true`).
    pub fn bool(&mut self, what: &'static str) -> Result<bool, CodecError> {
        Ok(self.u8(what)? != 0)
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self, what: &'static str) -> Result<i64, CodecError> {
        Ok(self.u64(what)? as i64)
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Read a `u64` and convert to `usize`.
    pub fn usize(&mut self, what: &'static str) -> Result<usize, CodecError> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| CodecError::Invalid { what })
    }

    /// Read exactly `n` raw bytes.
    pub fn raw(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        self.take(n, what)
    }

    /// Read a `u64`-length-prefixed byte blob.
    pub fn blob(&mut self, what: &'static str) -> Result<&'a [u8], CodecError> {
        let len = self.usize(what)?;
        self.take(len, what)
    }

    /// Read a `u64` and require it to equal `expected` (structural fields
    /// like table sizes that must match the live configuration).
    pub fn expect_u64(&mut self, expected: u64, what: &'static str) -> Result<(), CodecError> {
        if self.u64(what)? != expected {
            return Err(CodecError::Invalid { what });
        }
        Ok(())
    }

    /// Require the stream to be fully consumed.
    pub fn finish(&self, what: &'static str) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::Invalid { what });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Encoder::new();
        e.u8(7);
        e.bool(true);
        e.u32(0xdead_beef);
        e.u64(u64::MAX - 3);
        e.i64(-42);
        e.f64(3.25);
        e.usize(99);
        e.blob(b"warm");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8("a").unwrap(), 7);
        assert!(d.bool("b").unwrap());
        assert_eq!(d.u32("c").unwrap(), 0xdead_beef);
        assert_eq!(d.u64("d").unwrap(), u64::MAX - 3);
        assert_eq!(d.i64("e").unwrap(), -42);
        assert_eq!(d.f64("f").unwrap(), 3.25);
        assert_eq!(d.usize("g").unwrap(), 99);
        assert_eq!(d.blob("h").unwrap(), b"warm");
        d.finish("tail").unwrap();
    }

    #[test]
    fn truncation_is_an_eof_error() {
        let mut e = Encoder::new();
        e.u64(1);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes[..4]);
        assert_eq!(d.u64("field"), Err(CodecError::Eof { what: "field" }));
    }

    #[test]
    fn expect_and_finish_validate() {
        let mut e = Encoder::new();
        e.u64(8);
        e.u8(1);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        d.expect_u64(8, "size").unwrap();
        assert!(d.finish("tail").is_err(), "one unread byte remains");
        assert_eq!(d.u8("last").unwrap(), 1);
        d.finish("tail").unwrap();

        let mut d2 = Decoder::new(&bytes);
        assert_eq!(d2.expect_u64(9, "size"), Err(CodecError::Invalid { what: "size" }));
    }

    #[test]
    fn f64_roundtrip_is_bit_exact() {
        for v in [0.0, -0.0, f64::INFINITY, f64::MIN_POSITIVE, 1.0 / 3.0] {
            let mut e = Encoder::new();
            e.f64(v);
            let b = e.into_bytes();
            let got = Decoder::new(&b).f64("v").unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn errors_display() {
        assert!(CodecError::Eof { what: "x" }.to_string().contains("truncated"));
        assert!(CodecError::Version { what: "cpu", found: 9 }.to_string().contains('9'));
    }
}
