//! Packed sub-word SIMD arithmetic on 64-bit words.
//!
//! Every multimedia ISA modelled by this workspace (MMX-like, MDMX-like and the
//! MOM matrix extension) operates on 64-bit registers that are interpreted as a
//! vector of narrow *lanes*: eight 8-bit, four 16-bit or two 32-bit elements.
//! This module provides the lane-wise semantics shared by all of them:
//! modular and saturating add/sub, multiplies, absolute differences, averages,
//! min/max, comparisons, shifts, packs and unpacks.
//!
//! The representation is a plain [`PackedWord`] newtype around `u64`; lanes are
//! stored little-endian (lane 0 in the least-significant bits), matching how the
//! emulation libraries of the original paper laid data out in Alpha registers.
//!
//! # Examples
//!
//! ```
//! use mom_isa::packed::{PackedWord, Lane, Saturation};
//!
//! let a = PackedWord::from_u8_lanes([250, 1, 2, 3, 4, 5, 6, 7]);
//! let b = PackedWord::from_u8_lanes([10, 1, 1, 1, 1, 1, 1, 1]);
//! let sat = a.add(b, Lane::U8, Saturation::Saturating);
//! assert_eq!(sat.to_u8_lanes()[0], 255); // saturated, not wrapped
//! ```

/// Dispatch a width-generic [`crate::swar`] kernel on a runtime [`Lane`]:
/// `by_width!(lane, f(args…))` monomorphizes `f` at 8, 16 and 32-bit lane
/// widths and selects the right one.
macro_rules! by_width {
    ($lane:expr, $f:ident ( $($args:expr),* $(,)? )) => {
        match $lane.bits() {
            8 => crate::swar::$f::<8>($($args),*),
            16 => crate::swar::$f::<16>($($args),*),
            _ => crate::swar::$f::<32>($($args),*),
        }
    };
}
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) use by_width;

/// Lane interpretation of a 64-bit packed word.
///
/// The variant selects both the element width and its signedness, which
/// matters for saturation, comparisons, min/max and widening operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lane {
    /// Eight unsigned 8-bit elements (pixels).
    U8,
    /// Eight signed 8-bit elements.
    I8,
    /// Four unsigned 16-bit elements.
    U16,
    /// Four signed 16-bit elements (fixed-point coefficients).
    I16,
    /// Two unsigned 32-bit elements.
    U32,
    /// Two signed 32-bit elements.
    I32,
}

impl Lane {
    /// Number of elements packed in a 64-bit word for this lane type.
    pub const fn count(self) -> usize {
        match self {
            Lane::U8 | Lane::I8 => 8,
            Lane::U16 | Lane::I16 => 4,
            Lane::U32 | Lane::I32 => 2,
        }
    }

    /// Width of one element in bits.
    pub const fn bits(self) -> u32 {
        match self {
            Lane::U8 | Lane::I8 => 8,
            Lane::U16 | Lane::I16 => 16,
            Lane::U32 | Lane::I32 => 32,
        }
    }

    /// Width of one element in bytes.
    pub const fn bytes(self) -> usize {
        (self.bits() / 8) as usize
    }

    /// Whether elements are interpreted as signed two's-complement values.
    pub const fn is_signed(self) -> bool {
        matches!(self, Lane::I8 | Lane::I16 | Lane::I32)
    }

    /// The lane type with the same width but signed interpretation.
    pub const fn as_signed(self) -> Lane {
        match self {
            Lane::U8 | Lane::I8 => Lane::I8,
            Lane::U16 | Lane::I16 => Lane::I16,
            Lane::U32 | Lane::I32 => Lane::I32,
        }
    }

    /// The lane type with the same width but unsigned interpretation.
    pub const fn as_unsigned(self) -> Lane {
        match self {
            Lane::U8 | Lane::I8 => Lane::U8,
            Lane::U16 | Lane::I16 => Lane::U16,
            Lane::U32 | Lane::I32 => Lane::U32,
        }
    }

    /// The lane type of twice the width (used by widening operations).
    ///
    /// 32-bit lanes widen conceptually to 64-bit; this returns `None` in that
    /// case because the result no longer fits a packed sub-word layout.
    pub const fn widened(self) -> Option<Lane> {
        match self {
            Lane::U8 => Some(Lane::U16),
            Lane::I8 => Some(Lane::I16),
            Lane::U16 => Some(Lane::U32),
            Lane::I16 => Some(Lane::I32),
            Lane::U32 | Lane::I32 => None,
        }
    }

    /// Minimum representable element value (as `i64`).
    pub const fn min_value(self) -> i64 {
        match self {
            Lane::U8 | Lane::U16 | Lane::U32 => 0,
            Lane::I8 => i8::MIN as i64,
            Lane::I16 => i16::MIN as i64,
            Lane::I32 => i32::MIN as i64,
        }
    }

    /// Maximum representable element value (as `i64`).
    pub const fn max_value(self) -> i64 {
        match self {
            Lane::U8 => u8::MAX as i64,
            Lane::U16 => u16::MAX as i64,
            Lane::U32 => u32::MAX as i64,
            Lane::I8 => i8::MAX as i64,
            Lane::I16 => i16::MAX as i64,
            Lane::I32 => i32::MAX as i64,
        }
    }

    /// Clamp `v` into the representable range of this lane type.
    pub fn clamp(self, v: i64) -> i64 {
        v.clamp(self.min_value(), self.max_value())
    }
}

/// Overflow behaviour of packed arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Saturation {
    /// Wrap modulo the lane width (C-style unsigned overflow).
    #[default]
    Wrapping,
    /// Clamp to the lane's representable range (multimedia saturation).
    Saturating,
}

/// The lane values of a packed word as a fixed-capacity stack array.
///
/// This is the allocation-free replacement for the old `Vec<i64>`-returning
/// lane extraction: up to eight `i64` values (the 8-bit lane count) live
/// inline, and only the first `len()` entries — one per lane of the
/// extracting [`Lane`] type — are active. `Lanes` dereferences to a slice,
/// so indexing, iteration and slice methods all work as they did on the
/// vector form — without touching the heap in the interpreter's per-element
/// inner loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lanes {
    buf: [i64; 8],
    len: u8,
}

impl Lanes {
    /// The active lane values as a slice (also available through deref).
    pub fn as_slice(&self) -> &[i64] {
        &self.buf[..self.len as usize]
    }
}

impl std::ops::Deref for Lanes {
    type Target = [i64];

    fn deref(&self) -> &[i64] {
        self.as_slice()
    }
}

impl IntoIterator for Lanes {
    type Item = i64;
    type IntoIter = std::iter::Take<std::array::IntoIter<i64, 8>>;

    fn into_iter(self) -> Self::IntoIter {
        self.buf.into_iter().take(self.len as usize)
    }
}

impl<'a> IntoIterator for &'a Lanes {
    type Item = &'a i64;
    type IntoIter = std::slice::Iter<'a, i64>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A 64-bit word interpreted as a vector of packed sub-word lanes.
///
/// `PackedWord` is a plain value type: it is `Copy`, ordered by its raw bits
/// and convertible from/to `u64` with [`PackedWord::bits`] and `From<u64>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct PackedWord(u64);

impl From<u64> for PackedWord {
    fn from(v: u64) -> Self {
        PackedWord(v)
    }
}

impl From<PackedWord> for u64 {
    fn from(v: PackedWord) -> Self {
        v.0
    }
}

impl std::fmt::Display for PackedWord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

impl std::fmt::LowerHex for PackedWord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

impl std::fmt::UpperHex for PackedWord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::UpperHex::fmt(&self.0, f)
    }
}

impl std::fmt::Binary for PackedWord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Binary::fmt(&self.0, f)
    }
}

impl std::fmt::Octal for PackedWord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Octal::fmt(&self.0, f)
    }
}

impl PackedWord {
    /// The all-zero word.
    pub const ZERO: PackedWord = PackedWord(0);

    /// Construct from raw bits.
    pub const fn new(bits: u64) -> Self {
        PackedWord(bits)
    }

    /// Raw 64-bit contents.
    pub const fn bits(self) -> u64 {
        self.0
    }

    // ------------------------------------------------------------------
    // Lane extraction / insertion
    // ------------------------------------------------------------------

    /// Read lane `idx` interpreted according to `lane`, sign- or zero-extended
    /// to `i64`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= lane.count()`.
    pub fn lane(self, lane: Lane, idx: usize) -> i64 {
        assert!(idx < lane.count(), "lane index {idx} out of range for {lane:?}");
        let bits = lane.bits();
        let shift = (idx as u32) * bits;
        let mask: u64 = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let raw = (self.0 >> shift) & mask;
        if lane.is_signed() {
            // Sign extend.
            let sign_bit = 1u64 << (bits - 1);
            if raw & sign_bit != 0 {
                (raw | !mask) as i64
            } else {
                raw as i64
            }
        } else {
            raw as i64
        }
    }

    /// Return a copy with lane `idx` replaced by the low bits of `value`.
    ///
    /// The value is truncated to the lane width (no saturation); use
    /// [`Lane::clamp`] first if saturating insertion is desired.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= lane.count()`.
    pub fn with_lane(self, lane: Lane, idx: usize, value: i64) -> PackedWord {
        assert!(idx < lane.count(), "lane index {idx} out of range for {lane:?}");
        let bits = lane.bits();
        let shift = (idx as u32) * bits;
        let mask: u64 = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let cleared = self.0 & !(mask << shift);
        PackedWord(cleared | (((value as u64) & mask) << shift))
    }

    /// All lanes of the word as `i64` values (sign/zero extended), in a
    /// fixed-capacity stack array — no allocation. The old `Vec<i64>` form is
    /// gone; [`Lanes`] dereferences to a slice, so existing indexing and
    /// iteration patterns keep working.
    pub fn lanes(self, lane: Lane) -> Lanes {
        let mut buf = [0i64; 8];
        let x = self.0;
        let n: u8 = match lane {
            Lane::U8 => {
                for (i, slot) in buf.iter_mut().enumerate() {
                    *slot = (x >> (8 * i)) as u8 as i64;
                }
                8
            }
            Lane::I8 => {
                for (i, slot) in buf.iter_mut().enumerate() {
                    *slot = (x >> (8 * i)) as i8 as i64;
                }
                8
            }
            Lane::U16 => {
                for (i, slot) in buf[..4].iter_mut().enumerate() {
                    *slot = (x >> (16 * i)) as u16 as i64;
                }
                4
            }
            Lane::I16 => {
                for (i, slot) in buf[..4].iter_mut().enumerate() {
                    *slot = (x >> (16 * i)) as i16 as i64;
                }
                4
            }
            Lane::U32 => {
                buf[0] = x as u32 as i64;
                buf[1] = (x >> 32) as u32 as i64;
                2
            }
            Lane::I32 => {
                buf[0] = x as i32 as i64;
                buf[1] = (x >> 32) as i32 as i64;
                2
            }
        };
        Lanes { buf, len: n }
    }

    /// Build a word from an iterator of lane values (truncating each).
    ///
    /// Missing lanes are zero; extra values are ignored.
    pub fn from_lanes<I: IntoIterator<Item = i64>>(lane: Lane, values: I) -> PackedWord {
        let mut w = PackedWord::ZERO;
        for (i, v) in values.into_iter().take(lane.count()).enumerate() {
            w = w.with_lane(lane, i, v);
        }
        w
    }

    /// Build from eight unsigned bytes, lane 0 first.
    pub fn from_u8_lanes(v: [u8; 8]) -> PackedWord {
        PackedWord(u64::from_le_bytes(v))
    }

    /// Extract eight unsigned bytes, lane 0 first.
    pub fn to_u8_lanes(self) -> [u8; 8] {
        self.0.to_le_bytes()
    }

    /// Build from four signed 16-bit values, lane 0 first.
    pub fn from_i16_lanes(v: [i16; 4]) -> PackedWord {
        PackedWord::from_lanes(Lane::I16, v.iter().map(|&x| x as i64))
    }

    /// Extract four signed 16-bit values, lane 0 first.
    pub fn to_i16_lanes(self) -> [i16; 4] {
        let mut out = [0i16; 4];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.lane(Lane::I16, i) as i16;
        }
        out
    }

    /// Build from two signed 32-bit values, lane 0 first.
    pub fn from_i32_lanes(v: [i32; 2]) -> PackedWord {
        PackedWord::from_lanes(Lane::I32, v.iter().map(|&x| x as i64))
    }

    /// Extract two signed 32-bit values, lane 0 first.
    pub fn to_i32_lanes(self) -> [i32; 2] {
        [self.lane(Lane::I32, 0) as i32, self.lane(Lane::I32, 1) as i32]
    }

    /// Replicate `value` into every lane (a "splat"/broadcast).
    pub fn splat(lane: Lane, value: i64) -> PackedWord {
        PackedWord::from_lanes(lane, std::iter::repeat_n(value, lane.count()))
    }

    // ------------------------------------------------------------------
    // Element-wise helpers
    // ------------------------------------------------------------------

    // The binary/unary element kernels dispatch once on the lane width and
    // then run a fixed-trip-count loop, so the compiler can fully unroll the
    // per-lane extraction/insertion (the interpreter executes one of these per
    // matrix row per MOM instruction — this is the innermost loop of the whole
    // workspace).
    fn zip_map(self, other: PackedWord, lane: Lane, f: impl FnMut(i64, i64) -> i64) -> PackedWord {
        match lane.count() {
            8 => self.zip_map_n::<8>(other, lane, f),
            4 => self.zip_map_n::<4>(other, lane, f),
            _ => self.zip_map_n::<2>(other, lane, f),
        }
    }

    #[inline]
    fn zip_map_n<const N: usize>(
        self,
        other: PackedWord,
        lane: Lane,
        mut f: impl FnMut(i64, i64) -> i64,
    ) -> PackedWord {
        let mut out = PackedWord::ZERO;
        for i in 0..N {
            out = out.with_lane(lane, i, f(self.lane(lane, i), other.lane(lane, i)));
        }
        out
    }

    fn map(self, lane: Lane, f: impl FnMut(i64) -> i64) -> PackedWord {
        match lane.count() {
            8 => self.map_n::<8>(lane, f),
            4 => self.map_n::<4>(lane, f),
            _ => self.map_n::<2>(lane, f),
        }
    }

    #[inline]
    fn map_n<const N: usize>(self, lane: Lane, mut f: impl FnMut(i64) -> i64) -> PackedWord {
        let mut out = PackedWord::ZERO;
        for i in 0..N {
            out = out.with_lane(lane, i, f(self.lane(lane, i)));
        }
        out
    }

    fn finish(lane: Lane, sat: Saturation, v: i64) -> i64 {
        match sat {
            Saturation::Wrapping => v, // truncation in with_lane performs the wrap
            Saturation::Saturating => lane.clamp(v),
        }
    }

    // ------------------------------------------------------------------
    // Arithmetic
    //
    // The public entry points lower onto the chunked-u64 SWAR kernels in
    // [`crate::swar`] (or the x86_64 intrinsics backend when the `simd`
    // feature is active); the `*_scalar` twins keep the original
    // lane-at-a-time reference semantics and pin them differentially in
    // `tests/proptest_swar.rs`.
    // ------------------------------------------------------------------

    /// Lane-wise addition.
    pub fn add(self, other: PackedWord, lane: Lane, sat: Saturation) -> PackedWord {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        return PackedWord(crate::simd::add(self.0, other.0, lane, sat));
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        PackedWord(match (sat, lane.is_signed()) {
            (Saturation::Wrapping, _) => by_width!(lane, add_wrap(self.0, other.0)),
            (Saturation::Saturating, false) => by_width!(lane, add_sat_u(self.0, other.0)),
            (Saturation::Saturating, true) => by_width!(lane, add_sat_s(self.0, other.0)),
        })
    }

    /// The lane-at-a-time reference implementation of [`PackedWord::add`].
    pub fn add_scalar(self, other: PackedWord, lane: Lane, sat: Saturation) -> PackedWord {
        self.zip_map(other, lane, |a, b| Self::finish(lane, sat, a + b))
    }

    /// Lane-wise subtraction (`self - other`).
    ///
    /// With [`Saturation::Saturating`] and an unsigned lane type the result
    /// clamps at zero, which is how MMX `psubus*` behaves.
    pub fn sub(self, other: PackedWord, lane: Lane, sat: Saturation) -> PackedWord {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        return PackedWord(crate::simd::sub(self.0, other.0, lane, sat));
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        PackedWord(match (sat, lane.is_signed()) {
            (Saturation::Wrapping, _) => by_width!(lane, sub_wrap(self.0, other.0)),
            (Saturation::Saturating, false) => by_width!(lane, sub_sat_u(self.0, other.0)),
            (Saturation::Saturating, true) => by_width!(lane, sub_sat_s(self.0, other.0)),
        })
    }

    /// The lane-at-a-time reference implementation of [`PackedWord::sub`].
    pub fn sub_scalar(self, other: PackedWord, lane: Lane, sat: Saturation) -> PackedWord {
        self.zip_map(other, lane, |a, b| Self::finish(lane, sat, a - b))
    }

    /// Lane-wise absolute difference `|a - b|`.
    pub fn abs_diff(self, other: PackedWord, lane: Lane) -> PackedWord {
        PackedWord(if lane.is_signed() {
            by_width!(lane, abs_diff_s(self.0, other.0))
        } else {
            by_width!(lane, abs_diff_u(self.0, other.0))
        })
    }

    /// The lane-at-a-time reference implementation of [`PackedWord::abs_diff`].
    pub fn abs_diff_scalar(self, other: PackedWord, lane: Lane) -> PackedWord {
        self.zip_map(other, lane, |a, b| (a - b).abs())
    }

    /// Lane-wise rounding average `(a + b + 1) >> 1` (MMX `pavg`).
    pub fn avg(self, other: PackedWord, lane: Lane) -> PackedWord {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        return PackedWord(crate::simd::avg(self.0, other.0, lane));
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        PackedWord(if lane.is_signed() {
            by_width!(lane, avg_s(self.0, other.0))
        } else {
            by_width!(lane, avg_u(self.0, other.0))
        })
    }

    /// The lane-at-a-time reference implementation of [`PackedWord::avg`].
    pub fn avg_scalar(self, other: PackedWord, lane: Lane) -> PackedWord {
        self.zip_map(other, lane, |a, b| (a + b + 1) >> 1)
    }

    /// Lane-wise minimum.
    pub fn min(self, other: PackedWord, lane: Lane) -> PackedWord {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        return PackedWord(crate::simd::min(self.0, other.0, lane));
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        PackedWord(if lane.is_signed() {
            by_width!(lane, min_s(self.0, other.0))
        } else {
            by_width!(lane, min_u(self.0, other.0))
        })
    }

    /// The lane-at-a-time reference implementation of [`PackedWord::min`].
    pub fn min_scalar(self, other: PackedWord, lane: Lane) -> PackedWord {
        self.zip_map(other, lane, |a, b| a.min(b))
    }

    /// Lane-wise maximum.
    pub fn max(self, other: PackedWord, lane: Lane) -> PackedWord {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        return PackedWord(crate::simd::max(self.0, other.0, lane));
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        PackedWord(if lane.is_signed() {
            by_width!(lane, max_s(self.0, other.0))
        } else {
            by_width!(lane, max_u(self.0, other.0))
        })
    }

    /// The lane-at-a-time reference implementation of [`PackedWord::max`].
    pub fn max_scalar(self, other: PackedWord, lane: Lane) -> PackedWord {
        self.zip_map(other, lane, |a, b| a.max(b))
    }

    /// Lane-wise multiply keeping the low half of each product (MMX `pmullw`).
    pub fn mul_lo(self, other: PackedWord, lane: Lane) -> PackedWord {
        self.zip_map(other, lane, |a, b| a.wrapping_mul(b))
    }

    /// Lane-wise multiply keeping the high half of each product (MMX `pmulhw`).
    pub fn mul_hi(self, other: PackedWord, lane: Lane) -> PackedWord {
        let bits = lane.bits();
        self.zip_map(other, lane, |a, b| (a.wrapping_mul(b)) >> bits)
    }

    /// Multiply 16-bit lanes and add adjacent pairs of 32-bit products
    /// (MMX `pmaddwd`): result lane `i` (32-bit) = `a[2i]*b[2i] + a[2i+1]*b[2i+1]`.
    pub fn mul_add_pairs(self, other: PackedWord) -> PackedWord {
        let mut out = PackedWord::ZERO;
        for i in 0..2 {
            let p0 = self.lane(Lane::I16, 2 * i) * other.lane(Lane::I16, 2 * i);
            let p1 = self.lane(Lane::I16, 2 * i + 1) * other.lane(Lane::I16, 2 * i + 1);
            out = out.with_lane(Lane::I32, i, p0 + p1);
        }
        out
    }

    /// Sum of lane-wise absolute differences reduced to a single scalar
    /// (the SSE `psadbw` style "enhanced reduction" the paper grants its
    /// extended MMX model).
    pub fn sad(self, other: PackedWord, lane: Lane) -> i64 {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        return crate::simd::sad(self.0, other.0, lane);
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        if lane.is_signed() {
            by_width!(lane, sad_s(self.0, other.0))
        } else {
            by_width!(lane, sad_u(self.0, other.0))
        }
    }

    /// The lane-at-a-time reference implementation of [`PackedWord::sad`].
    pub fn sad_scalar(self, other: PackedWord, lane: Lane) -> i64 {
        let (a, b) = (self.lanes(lane), other.lanes(lane));
        a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum()
    }

    /// Sum of lane-wise squared differences reduced to a single scalar.
    pub fn sqd(self, other: PackedWord, lane: Lane) -> i64 {
        let (a, b) = (self.lanes(lane), other.lanes(lane));
        a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    /// Horizontal sum of all lanes as a scalar.
    pub fn reduce_sum(self, lane: Lane) -> i64 {
        if lane.is_signed() {
            by_width!(lane, horizontal_sum_s(self.0))
        } else {
            by_width!(lane, horizontal_sum_u(self.0)) as i64
        }
    }

    /// The lane-at-a-time reference implementation of [`PackedWord::reduce_sum`].
    pub fn reduce_sum_scalar(self, lane: Lane) -> i64 {
        self.lanes(lane).iter().sum()
    }

    /// Lane-wise absolute value.
    pub fn abs(self, lane: Lane) -> PackedWord {
        if lane.is_signed() {
            PackedWord(by_width!(lane, abs_s(self.0)))
        } else {
            // Unsigned lanes are their own absolute value.
            self
        }
    }

    /// The lane-at-a-time reference implementation of [`PackedWord::abs`].
    pub fn abs_scalar(self, lane: Lane) -> PackedWord {
        self.map(lane, |a| a.abs())
    }

    /// Lane-wise negation (wrapping).
    pub fn neg(self, lane: Lane) -> PackedWord {
        PackedWord(by_width!(lane, neg_wrap(self.0)))
    }

    /// The lane-at-a-time reference implementation of [`PackedWord::neg`].
    pub fn neg_scalar(self, lane: Lane) -> PackedWord {
        self.map(lane, |a| -a)
    }

    // ------------------------------------------------------------------
    // Logic and shifts
    // ------------------------------------------------------------------

    /// Bit-wise AND.
    pub fn and(self, other: PackedWord) -> PackedWord {
        PackedWord(self.0 & other.0)
    }

    /// Bit-wise OR.
    pub fn or(self, other: PackedWord) -> PackedWord {
        PackedWord(self.0 | other.0)
    }

    /// Bit-wise XOR.
    pub fn xor(self, other: PackedWord) -> PackedWord {
        PackedWord(self.0 ^ other.0)
    }

    /// Bit-wise AND-NOT (`!self & other`), as MMX `pandn`.
    pub fn andnot(self, other: PackedWord) -> PackedWord {
        PackedWord(!self.0 & other.0)
    }

    /// Lane-wise logical shift left by `amount` bits.
    pub fn shl(self, lane: Lane, amount: u32) -> PackedWord {
        if amount >= lane.bits() {
            return PackedWord::ZERO;
        }
        PackedWord(by_width!(lane, shl(self.0, amount)))
    }

    /// The lane-at-a-time reference implementation of [`PackedWord::shl`].
    pub fn shl_scalar(self, lane: Lane, amount: u32) -> PackedWord {
        let bits = lane.bits();
        if amount >= bits {
            return PackedWord::ZERO;
        }
        self.map(lane.as_unsigned(), |a| ((a as u64) << amount) as i64)
    }

    /// Lane-wise logical (zero-filling) shift right by `amount` bits.
    pub fn shr_logical(self, lane: Lane, amount: u32) -> PackedWord {
        if amount >= lane.bits() {
            return PackedWord::ZERO;
        }
        PackedWord(by_width!(lane, shr_logical(self.0, amount)))
    }

    /// The lane-at-a-time reference implementation of [`PackedWord::shr_logical`].
    pub fn shr_logical_scalar(self, lane: Lane, amount: u32) -> PackedWord {
        let bits = lane.bits();
        if amount >= bits {
            return PackedWord::ZERO;
        }
        self.map(lane.as_unsigned(), |a| ((a as u64 & ((1u64 << bits) - 1)) >> amount) as i64)
    }

    /// Lane-wise arithmetic (sign-preserving) shift right by `amount` bits.
    pub fn shr_arith(self, lane: Lane, amount: u32) -> PackedWord {
        let amount = amount.min(lane.bits() - 1);
        PackedWord(by_width!(lane, shr_arith(self.0, amount)))
    }

    /// The lane-at-a-time reference implementation of [`PackedWord::shr_arith`].
    pub fn shr_arith_scalar(self, lane: Lane, amount: u32) -> PackedWord {
        let bits = lane.bits();
        let amount = amount.min(bits - 1);
        self.map(lane.as_signed(), |a| a >> amount)
    }

    // ------------------------------------------------------------------
    // Comparisons and selection
    // ------------------------------------------------------------------

    /// Lane-wise equality compare producing an all-ones / all-zero mask per lane.
    pub fn cmp_eq(self, other: PackedWord, lane: Lane) -> PackedWord {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        return PackedWord(crate::simd::cmp_eq(self.0, other.0, lane));
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        PackedWord(by_width!(lane, eq_mask(self.0, other.0)))
    }

    /// The lane-at-a-time reference implementation of [`PackedWord::cmp_eq`].
    pub fn cmp_eq_scalar(self, other: PackedWord, lane: Lane) -> PackedWord {
        self.zip_map(other, lane, |a, b| if a == b { -1 } else { 0 })
    }

    /// Lane-wise greater-than compare producing an all-ones / all-zero mask per lane.
    pub fn cmp_gt(self, other: PackedWord, lane: Lane) -> PackedWord {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        return PackedWord(crate::simd::cmp_gt(self.0, other.0, lane));
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        PackedWord(if lane.is_signed() {
            by_width!(lane, gt_mask_s(self.0, other.0))
        } else {
            by_width!(lane, gt_mask_u(self.0, other.0))
        })
    }

    /// The lane-at-a-time reference implementation of [`PackedWord::cmp_gt`].
    pub fn cmp_gt_scalar(self, other: PackedWord, lane: Lane) -> PackedWord {
        self.zip_map(other, lane, |a, b| if a > b { -1 } else { 0 })
    }

    /// Lane-wise select: where the corresponding lane of `mask` is non-zero
    /// take the lane of `self`, otherwise the lane of `other`.
    ///
    /// This is the "conditional move" extension the paper adds to all three
    /// emulated ISAs.
    pub fn select(mask: PackedWord, self_: PackedWord, other: PackedWord, lane: Lane) -> PackedWord {
        PackedWord(by_width!(lane, select(mask.0, self_.0, other.0)))
    }

    /// The lane-at-a-time reference implementation of [`PackedWord::select`].
    pub fn select_scalar(
        mask: PackedWord,
        self_: PackedWord,
        other: PackedWord,
        lane: Lane,
    ) -> PackedWord {
        let mut out = PackedWord::ZERO;
        for i in 0..lane.count() {
            let v = if mask.lane(lane, i) != 0 {
                self_.lane(lane, i)
            } else {
                other.lane(lane, i)
            };
            out = out.with_lane(lane, i, v);
        }
        out
    }

    // ------------------------------------------------------------------
    // Pack / unpack
    // ------------------------------------------------------------------

    /// Narrow the lanes of `self` and `other` to half width with saturation and
    /// concatenate them: the low half of the result comes from `self`.
    ///
    /// `from` is the source lane type (e.g. [`Lane::I16`]); the destination
    /// lane type is the half-width type with the signedness of `to_signed`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is an 8-bit lane type (nothing narrower exists).
    pub fn pack(self, other: PackedWord, from: Lane, to_signed: bool) -> PackedWord {
        let to = match (from.bits(), to_signed) {
            (16, true) => Lane::I8,
            (16, false) => Lane::U8,
            (32, true) => Lane::I16,
            (32, false) => Lane::U16,
            _ => panic!("cannot pack from 8-bit lanes"),
        };
        let n = from.count();
        let mut out = PackedWord::ZERO;
        for i in 0..n {
            out = out.with_lane(to, i, to.clamp(self.lane(from, i)));
        }
        for i in 0..n {
            out = out.with_lane(to, n + i, to.clamp(other.lane(from, i)));
        }
        out
    }

    /// Interleave the low-half lanes of `self` and `other`, widening each to
    /// twice the width (MMX `punpcklbw`-style when `other` is zero).
    ///
    /// Result lane `2i` is `self`'s lane `i`, result lane `2i+1` is `other`'s
    /// lane `i`, for `i` in the low half of the source lanes.
    pub fn unpack_lo(self, other: PackedWord, lane: Lane) -> PackedWord {
        let n = lane.count();
        let mut out = PackedWord::ZERO;
        for i in 0..n / 2 {
            out = out.with_lane(lane, 2 * i, self.lane(lane, i));
            out = out.with_lane(lane, 2 * i + 1, other.lane(lane, i));
        }
        out
    }

    /// Interleave the high-half lanes of `self` and `other` (MMX `punpckhbw`).
    pub fn unpack_hi(self, other: PackedWord, lane: Lane) -> PackedWord {
        let n = lane.count();
        let mut out = PackedWord::ZERO;
        for i in 0..n / 2 {
            out = out.with_lane(lane, 2 * i, self.lane(lane, n / 2 + i));
            out = out.with_lane(lane, 2 * i + 1, other.lane(lane, n / 2 + i));
        }
        out
    }

    /// Widen the low half of the lanes to the next wider lane type.
    ///
    /// For [`Lane::U8`] this produces four `u16` lanes holding bytes 0..4,
    /// zero-extended; for [`Lane::I8`] they are sign-extended, and so on.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is a 32-bit type (no wider packed type exists).
    pub fn widen_lo(self, lane: Lane) -> PackedWord {
        let wide = lane.widened().expect("cannot widen 32-bit lanes");
        let mut out = PackedWord::ZERO;
        for i in 0..wide.count() {
            out = out.with_lane(wide, i, self.lane(lane, i));
        }
        out
    }

    /// Widen the high half of the lanes to the next wider lane type.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is a 32-bit type (no wider packed type exists).
    pub fn widen_hi(self, lane: Lane) -> PackedWord {
        let wide = lane.widened().expect("cannot widen 32-bit lanes");
        let mut out = PackedWord::ZERO;
        for i in 0..wide.count() {
            out = out.with_lane(wide, i, self.lane(lane, wide.count() + i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_counts_and_widths() {
        assert_eq!(Lane::U8.count(), 8);
        assert_eq!(Lane::I16.count(), 4);
        assert_eq!(Lane::I32.count(), 2);
        assert_eq!(Lane::U8.bits(), 8);
        assert_eq!(Lane::I16.bytes(), 2);
        assert!(Lane::I16.is_signed());
        assert!(!Lane::U32.is_signed());
    }

    #[test]
    fn lane_extremes() {
        assert_eq!(Lane::U8.max_value(), 255);
        assert_eq!(Lane::U8.min_value(), 0);
        assert_eq!(Lane::I16.max_value(), 32767);
        assert_eq!(Lane::I16.min_value(), -32768);
        assert_eq!(Lane::I32.clamp(5_000_000_000), i32::MAX as i64);
        assert_eq!(Lane::U16.clamp(-3), 0);
    }

    #[test]
    fn lane_roundtrip_u8() {
        let w = PackedWord::from_u8_lanes([1, 2, 3, 4, 5, 250, 7, 255]);
        assert_eq!(w.to_u8_lanes(), [1, 2, 3, 4, 5, 250, 7, 255]);
        assert_eq!(w.lane(Lane::U8, 5), 250);
        assert_eq!(w.lane(Lane::I8, 7), -1);
    }

    #[test]
    fn lane_roundtrip_i16() {
        let w = PackedWord::from_i16_lanes([-100, 32767, -32768, 7]);
        assert_eq!(w.to_i16_lanes(), [-100, 32767, -32768, 7]);
        assert_eq!(w.lane(Lane::I16, 2), -32768);
        assert_eq!(w.lane(Lane::U16, 2), 32768);
    }

    #[test]
    fn lane_roundtrip_i32() {
        let w = PackedWord::from_i32_lanes([-5, 1_000_000]);
        assert_eq!(w.to_i32_lanes(), [-5, 1_000_000]);
    }

    #[test]
    fn lanes_array_behaves_like_a_slice() {
        let w = PackedWord::from_u8_lanes([1, 2, 3, 4, 5, 6, 7, 255]);
        let lanes = w.lanes(Lane::U8);
        assert_eq!(lanes.len(), 8);
        assert_eq!(lanes[7], 255);
        assert_eq!(lanes.as_slice(), &[1, 2, 3, 4, 5, 6, 7, 255]);
        let signed = w.lanes(Lane::I8);
        assert_eq!(signed[7], -1);
        // Narrower interpretations expose fewer active lanes.
        assert_eq!(w.lanes(Lane::I16).len(), 4);
        assert_eq!(w.lanes(Lane::I32).len(), 2);
        // Owned and borrowed iteration both work.
        let owned: Vec<i64> = lanes.into_iter().collect();
        let borrowed: Vec<i64> = (&lanes).into_iter().copied().collect();
        assert_eq!(owned, borrowed);
        // Round-trip through from_lanes reproduces the word.
        assert_eq!(PackedWord::from_lanes(Lane::U8, lanes.into_iter()), w);
    }

    #[test]
    fn with_lane_truncates() {
        let w = PackedWord::ZERO.with_lane(Lane::U8, 0, 0x1ff);
        assert_eq!(w.lane(Lane::U8, 0), 0xff);
        assert_eq!(w.lane(Lane::U8, 1), 0);
    }

    #[test]
    fn splat_fills_all_lanes() {
        let w = PackedWord::splat(Lane::I16, -7);
        assert_eq!(w.to_i16_lanes(), [-7; 4]);
    }

    #[test]
    fn add_wrapping_vs_saturating_u8() {
        let a = PackedWord::from_u8_lanes([250, 10, 0, 1, 2, 3, 4, 5]);
        let b = PackedWord::from_u8_lanes([10, 250, 0, 1, 2, 3, 4, 5]);
        let wrap = a.add(b, Lane::U8, Saturation::Wrapping);
        let sat = a.add(b, Lane::U8, Saturation::Saturating);
        assert_eq!(wrap.to_u8_lanes()[0], 4); // 260 mod 256
        assert_eq!(sat.to_u8_lanes()[0], 255);
        assert_eq!(sat.to_u8_lanes()[1], 255);
        assert_eq!(sat.to_u8_lanes()[2], 0);
    }

    #[test]
    fn sub_saturating_unsigned_clamps_at_zero() {
        let a = PackedWord::from_u8_lanes([5, 200, 0, 0, 0, 0, 0, 0]);
        let b = PackedWord::from_u8_lanes([10, 100, 0, 0, 0, 0, 0, 0]);
        let r = a.sub(b, Lane::U8, Saturation::Saturating);
        assert_eq!(r.to_u8_lanes()[0], 0);
        assert_eq!(r.to_u8_lanes()[1], 100);
    }

    #[test]
    fn add_saturating_signed_i16() {
        let a = PackedWord::from_i16_lanes([32000, -32000, 100, -100]);
        let b = PackedWord::from_i16_lanes([1000, -1000, 100, -100]);
        let r = a.add(b, Lane::I16, Saturation::Saturating);
        assert_eq!(r.to_i16_lanes(), [32767, -32768, 200, -200]);
    }

    #[test]
    fn abs_diff_u8() {
        let a = PackedWord::from_u8_lanes([10, 200, 0, 7, 9, 30, 100, 255]);
        let b = PackedWord::from_u8_lanes([20, 100, 5, 7, 4, 50, 90, 0]);
        let r = a.abs_diff(b, Lane::U8);
        assert_eq!(r.to_u8_lanes(), [10, 100, 5, 0, 5, 20, 10, 255]);
    }

    #[test]
    fn avg_rounds_up() {
        let a = PackedWord::from_u8_lanes([1, 2, 255, 0, 0, 0, 0, 0]);
        let b = PackedWord::from_u8_lanes([2, 2, 255, 0, 0, 0, 0, 0]);
        let r = a.avg(b, Lane::U8);
        assert_eq!(r.to_u8_lanes()[0], 2); // (1+2+1)>>1
        assert_eq!(r.to_u8_lanes()[1], 2);
        assert_eq!(r.to_u8_lanes()[2], 255);
    }

    #[test]
    fn min_max_signed_vs_unsigned() {
        let a = PackedWord::from_u8_lanes([0xff, 1, 0, 0, 0, 0, 0, 0]);
        let b = PackedWord::from_u8_lanes([1, 2, 0, 0, 0, 0, 0, 0]);
        // Unsigned: 0xff is large.
        assert_eq!(a.max(b, Lane::U8).to_u8_lanes()[0], 0xff);
        // Signed: 0xff is -1, so max is 1.
        assert_eq!(a.max(b, Lane::I8).to_u8_lanes()[0], 1);
        assert_eq!(a.min(b, Lane::I8).to_u8_lanes()[0], 0xff);
    }

    #[test]
    fn mul_lo_hi_i16() {
        let a = PackedWord::from_i16_lanes([300, -300, 1000, 2]);
        let b = PackedWord::from_i16_lanes([300, 300, -1000, 3]);
        let lo = a.mul_lo(b, Lane::I16);
        let hi = a.mul_hi(b, Lane::I16);
        // 300*300 = 90000 = 0x15F90 -> lo 0x5F90, hi 0x1
        assert_eq!(lo.lane(Lane::U16, 0), 0x5F90);
        assert_eq!(hi.lane(Lane::I16, 0), 1);
        // -300*300 = -90000 -> hi = -2 (floor division by 65536)
        assert_eq!(hi.lane(Lane::I16, 1), -2);
        assert_eq!(lo.lane(Lane::I16, 3), 6);
    }

    #[test]
    #[allow(clippy::identity_op)] // spell out every product
    fn mul_add_pairs_matches_manual() {
        let a = PackedWord::from_i16_lanes([1, 2, 3, -4]);
        let b = PackedWord::from_i16_lanes([10, 20, 30, 40]);
        let r = a.mul_add_pairs(b);
        assert_eq!(r.to_i32_lanes(), [1 * 10 + 2 * 20, 3 * 30 + (-4) * 40]);
    }

    #[test]
    #[allow(clippy::identity_op)] // spell out every per-lane difference
    fn sad_and_sqd_reduce() {
        let a = PackedWord::from_u8_lanes([10, 20, 30, 40, 50, 60, 70, 80]);
        let b = PackedWord::from_u8_lanes([11, 18, 30, 44, 45, 60, 71, 70]);
        assert_eq!(a.sad(b, Lane::U8), 1 + 2 + 0 + 4 + 5 + 0 + 1 + 10);
        assert_eq!(a.sqd(b, Lane::U8), 1 + 4 + 0 + 16 + 25 + 0 + 1 + 100);
    }

    #[test]
    fn reduce_sum_i16() {
        let a = PackedWord::from_i16_lanes([1, -2, 3, -4]);
        assert_eq!(a.reduce_sum(Lane::I16), -2);
    }

    #[test]
    fn logic_ops() {
        let a = PackedWord::new(0xF0F0_F0F0_F0F0_F0F0);
        let b = PackedWord::new(0xFF00_FF00_FF00_FF00);
        assert_eq!(a.and(b).bits(), 0xF000_F000_F000_F000);
        assert_eq!(a.or(b).bits(), 0xFFF0_FFF0_FFF0_FFF0);
        assert_eq!(a.xor(b).bits(), 0x0FF0_0FF0_0FF0_0FF0);
        assert_eq!(a.andnot(b).bits(), 0x0F00_0F00_0F00_0F00);
    }

    #[test]
    fn shifts_respect_lane_boundaries() {
        let a = PackedWord::from_i16_lanes([1, -1, 0x4000, 2]);
        let l = a.shl(Lane::I16, 2);
        assert_eq!(l.lane(Lane::U16, 0), 4);
        assert_eq!(l.lane(Lane::U16, 2), 0); // 0x4000 << 2 wraps within the lane
        let r = a.shr_logical(Lane::I16, 1);
        assert_eq!(r.lane(Lane::U16, 1), 0x7FFF); // logical shift of 0xFFFF
        let ra = a.shr_arith(Lane::I16, 1);
        assert_eq!(ra.lane(Lane::I16, 1), -1); // arithmetic shift keeps the sign
    }

    #[test]
    fn shift_by_full_width_zeroes() {
        let a = PackedWord::from_i16_lanes([1234, -1, 55, 2]);
        assert_eq!(a.shl(Lane::I16, 16), PackedWord::ZERO);
        assert_eq!(a.shr_logical(Lane::I16, 16), PackedWord::ZERO);
    }

    #[test]
    fn compares_produce_masks() {
        let a = PackedWord::from_i16_lanes([5, -3, 7, 7]);
        let b = PackedWord::from_i16_lanes([5, 0, 2, 9]);
        let eq = a.cmp_eq(b, Lane::I16);
        assert_eq!(eq.to_i16_lanes(), [-1, 0, 0, 0]);
        let gt = a.cmp_gt(b, Lane::I16);
        assert_eq!(gt.to_i16_lanes(), [0, 0, -1, 0]);
    }

    #[test]
    fn select_picks_per_lane() {
        let mask = PackedWord::from_i16_lanes([-1, 0, -1, 0]);
        let a = PackedWord::from_i16_lanes([1, 2, 3, 4]);
        let b = PackedWord::from_i16_lanes([10, 20, 30, 40]);
        let r = PackedWord::select(mask, a, b, Lane::I16);
        assert_eq!(r.to_i16_lanes(), [1, 20, 3, 40]);
    }

    #[test]
    fn pack_i16_to_u8_saturates() {
        let a = PackedWord::from_i16_lanes([-5, 300, 100, 255]);
        let b = PackedWord::from_i16_lanes([0, 1, 2, 256]);
        let r = a.pack(b, Lane::I16, false);
        assert_eq!(r.to_u8_lanes(), [0, 255, 100, 255, 0, 1, 2, 255]);
    }

    #[test]
    fn pack_i32_to_i16_saturates() {
        let a = PackedWord::from_i32_lanes([100_000, -100_000]);
        let b = PackedWord::from_i32_lanes([7, -7]);
        let r = a.pack(b, Lane::I32, true);
        assert_eq!(r.to_i16_lanes(), [32767, -32768, 7, -7]);
    }

    #[test]
    fn unpack_interleaves() {
        let a = PackedWord::from_u8_lanes([1, 2, 3, 4, 5, 6, 7, 8]);
        let b = PackedWord::from_u8_lanes([11, 12, 13, 14, 15, 16, 17, 18]);
        assert_eq!(a.unpack_lo(b, Lane::U8).to_u8_lanes(), [1, 11, 2, 12, 3, 13, 4, 14]);
        assert_eq!(a.unpack_hi(b, Lane::U8).to_u8_lanes(), [5, 15, 6, 16, 7, 17, 8, 18]);
    }

    #[test]
    fn widen_lo_hi_zero_and_sign_extend() {
        let a = PackedWord::from_u8_lanes([1, 255, 3, 4, 5, 6, 7, 128]);
        let lo_u = a.widen_lo(Lane::U8);
        assert_eq!(lo_u.lane(Lane::U16, 1), 255);
        let lo_s = a.widen_lo(Lane::I8);
        assert_eq!(lo_s.lane(Lane::I16, 1), -1);
        let hi_s = a.widen_hi(Lane::I8);
        assert_eq!(hi_s.lane(Lane::I16, 3), -128);
        let hi_u = a.widen_hi(Lane::U8);
        assert_eq!(hi_u.lane(Lane::U16, 3), 128);
    }

    #[test]
    fn display_and_formatting() {
        let w = PackedWord::new(0xdead_beef);
        assert_eq!(format!("{w}"), "0x00000000deadbeef");
        assert_eq!(format!("{w:x}"), "deadbeef");
        assert!(!format!("{w:?}").is_empty());
    }
}
