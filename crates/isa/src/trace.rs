//! Dynamic instruction traces — the contract between the functional
//! interpreters and the timing simulator.
//!
//! The original study instrumented Alpha binaries with ATOM and fed the
//! resulting dynamic instruction stream to the Jinks out-of-order simulator.
//! This workspace does the equivalent in-process: the functional interpreter
//! (in `mom-core`) executes a kernel program and emits one [`DynInst`] per
//! graduated instruction, carrying everything the timing model needs — the
//! functional-unit class, the architectural registers read and written, the
//! individual memory element accesses and the branch outcome.

/// Which of the evaluated instruction-set architectures a program targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IsaKind {
    /// Plain scalar baseline (the paper's Alpha code).
    Alpha,
    /// MMX-like 64-bit sub-word SIMD extension.
    Mmx,
    /// MDMX-like extension: MMX-style SIMD plus packed accumulators.
    Mdmx,
    /// The MOM matrix extension (vector-of-SIMD with wide accumulators).
    Mom,
}

impl IsaKind {
    /// All evaluated ISAs in the order the paper's figures use.
    pub const ALL: [IsaKind; 4] = [IsaKind::Alpha, IsaKind::Mmx, IsaKind::Mdmx, IsaKind::Mom];

    /// Short lower-case label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            IsaKind::Alpha => "alpha",
            IsaKind::Mmx => "mmx",
            IsaKind::Mdmx => "mdmx",
            IsaKind::Mom => "mom",
        }
    }
}

impl std::fmt::Display for IsaKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for IsaKind {
    type Err = String;

    /// Parse the [`IsaKind::label`] form (case-insensitive), so CLI filters
    /// round-trip: `kind.label().parse() == Ok(kind)`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let needle = s.trim().to_ascii_lowercase();
        IsaKind::ALL
            .iter()
            .copied()
            .find(|k| k.label() == needle)
            .ok_or_else(|| format!("unknown ISA {s:?} (expected one of: alpha, mmx, mdmx, mom)"))
    }
}

/// Architectural register class, used for renaming in the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// Scalar integer registers (also hold the MOM vector-length register,
    /// which the paper renames through the integer pool).
    Int,
    /// Scalar floating-point registers.
    Fp,
    /// 64-bit multimedia registers (MMX/MDMX).
    Media,
    /// MDMX packed accumulators.
    Acc,
    /// MOM matrix registers (16 x 64-bit words each).
    Mom,
    /// MOM packed accumulators.
    MomAcc,
}

impl RegClass {
    /// Every register class.
    pub const ALL: [RegClass; 6] = [
        RegClass::Int,
        RegClass::Fp,
        RegClass::Media,
        RegClass::Acc,
        RegClass::Mom,
        RegClass::MomAcc,
    ];
}

/// A class-tagged architectural register identifier as seen by the renamer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchReg {
    /// Register class (selects the physical register pool).
    pub class: RegClass,
    /// Architectural index within the class.
    pub index: u8,
}

impl ArchReg {
    /// Construct a register identifier.
    pub fn new(class: RegClass, index: u8) -> Self {
        Self { class, index }
    }

    /// Integer register shorthand.
    pub fn int(index: u8) -> Self {
        Self::new(RegClass::Int, index)
    }

    /// Media register shorthand.
    pub fn media(index: u8) -> Self {
        Self::new(RegClass::Media, index)
    }

    /// MDMX accumulator shorthand.
    pub fn acc(index: u8) -> Self {
        Self::new(RegClass::Acc, index)
    }

    /// MOM matrix register shorthand.
    pub fn mom(index: u8) -> Self {
        Self::new(RegClass::Mom, index)
    }

    /// MOM accumulator shorthand.
    pub fn mom_acc(index: u8) -> Self {
        Self::new(RegClass::MomAcc, index)
    }
}

impl std::fmt::Display for ArchReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let prefix = match self.class {
            RegClass::Int => "r",
            RegClass::Fp => "f",
            RegClass::Media => "m",
            RegClass::Acc => "a",
            RegClass::Mom => "v",
            RegClass::MomAcc => "va",
        };
        write!(f, "{prefix}{}", self.index)
    }
}

/// Functional-unit / latency class of a dynamic instruction.
///
/// The classes mirror Table 1 of the paper: integer and floating-point units
/// come in *simple* (logic, shift, add) and *complex* (multiply, divide)
/// flavours, the multimedia unit likewise, and memory operations occupy the
/// memory ports. MOM instructions use the same media/memory units but occupy
/// them for multiple beats (see [`DynInst::elems`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InstClass {
    /// Integer add/sub/logic/shift/compare and control-register moves.
    IntSimple,
    /// Integer multiply and divide.
    IntComplex,
    /// Floating-point add/sub/convert.
    FpSimple,
    /// Floating-point multiply/divide.
    FpComplex,
    /// Multimedia packed add/sub/logic/shift/min/max/average/pack/unpack.
    MediaSimple,
    /// Multimedia packed multiply and multiply-accumulate.
    MediaComplex,
    /// A load from memory (scalar or one MOM vector load).
    Load,
    /// A store to memory (scalar or one MOM vector store).
    Store,
    /// A conditional or unconditional branch.
    Branch,
    /// An instruction with no functional unit requirement (e.g. `nop`,
    /// vector-length set) — it still occupies a ROB slot and fetch bandwidth.
    Nop,
}

impl InstClass {
    /// Whether the instruction accesses memory.
    pub fn is_mem(self) -> bool {
        matches!(self, InstClass::Load | InstClass::Store)
    }

    /// Whether the instruction executes on the multimedia unit.
    pub fn is_media(self) -> bool {
        matches!(self, InstClass::MediaSimple | InstClass::MediaComplex)
    }
}

/// Whether a memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// Read access.
    Load,
    /// Write access.
    Store,
}

/// One element-level memory access.
///
/// A scalar load/store contributes exactly one; a MOM memory instruction with
/// vector length `VL` contributes `VL` of them (one per 64-bit row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Virtual byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
    /// Load or store.
    pub kind: MemKind,
}

/// Branch outcome information attached to control-flow instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Whether the branch was taken in the dynamic execution.
    pub taken: bool,
    /// Whether the branch is conditional (unconditional jumps are always taken
    /// and perfectly predictable by the BTB once seen).
    pub conditional: bool,
    /// Identifier of the static branch site, used to index the predictor
    /// tables; kernel builders derive it from the static program counter.
    pub pc: u64,
    /// Target static program counter (index), for BTB modelling.
    pub target: u64,
}

/// Maximum number of source registers a dynamic instruction can carry.
pub const MAX_SRCS: usize = 4;
/// Maximum number of destination registers a dynamic instruction can carry.
pub const MAX_DSTS: usize = 2;

/// One graduated dynamic instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct DynInst {
    /// Functional-unit class.
    pub class: InstClass,
    /// Source architectural registers (`None` entries are unused slots).
    pub srcs: [Option<ArchReg>; MAX_SRCS],
    /// Destination architectural registers (`None` entries are unused slots).
    pub dsts: [Option<ArchReg>; MAX_DSTS],
    /// Element memory accesses (empty for non-memory instructions).
    pub mem: Vec<MemAccess>,
    /// Branch outcome (only for [`InstClass::Branch`]).
    pub branch: Option<BranchInfo>,
    /// Number of vector elements processed (1 for scalar/MMX/MDMX
    /// instructions, the vector length for MOM instructions). The timing model
    /// uses it to compute functional-unit occupancy.
    pub elems: u16,
    /// Static program counter (instruction index within the program), used for
    /// the fetch model and branch predictor indexing.
    pub pc: u64,
}

impl DynInst {
    /// Create a dynamic instruction with no register, memory or branch
    /// information (a skeleton the builder methods then fill in).
    pub fn new(class: InstClass, pc: u64) -> Self {
        Self {
            class,
            srcs: [None; MAX_SRCS],
            dsts: [None; MAX_DSTS],
            mem: Vec::new(),
            branch: None,
            elems: 1,
            pc,
        }
    }

    /// Add a source register (ignored once all [`MAX_SRCS`] slots are full —
    /// additional sources beyond the modelled read-port count do not create
    /// extra dependences the timing model could track anyway).
    pub fn with_src(mut self, reg: ArchReg) -> Self {
        if let Some(slot) = self.srcs.iter_mut().find(|s| s.is_none()) {
            *slot = Some(reg);
        }
        self
    }

    /// Add a destination register.
    pub fn with_dst(mut self, reg: ArchReg) -> Self {
        if let Some(slot) = self.dsts.iter_mut().find(|s| s.is_none()) {
            *slot = Some(reg);
        }
        self
    }

    /// Set the vector element count.
    pub fn with_elems(mut self, elems: u16) -> Self {
        self.elems = elems.max(1);
        self
    }

    /// Attach memory accesses.
    pub fn with_mem(mut self, accesses: Vec<MemAccess>) -> Self {
        self.mem = accesses;
        self
    }

    /// Attach a branch outcome.
    pub fn with_branch(mut self, branch: BranchInfo) -> Self {
        self.branch = Some(branch);
        self
    }

    /// Iterator over the populated source registers.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// Iterator over the populated destination registers.
    pub fn dests(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.dsts.iter().flatten().copied()
    }
}

/// A complete dynamic trace plus summary statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Graduated dynamic instructions in program order.
    pub insts: Vec<DynInst>,
    /// ISA the trace was generated for (informational).
    pub isa: Option<IsaKind>,
}

/// Instruction-mix statistics of a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total dynamic instructions.
    pub total: usize,
    /// Loads (scalar or vector).
    pub loads: usize,
    /// Stores (scalar or vector).
    pub stores: usize,
    /// Branches.
    pub branches: usize,
    /// Instructions executing on the multimedia unit.
    pub media: usize,
    /// Total vector elements processed by MOM instructions (sum of `elems`
    /// over instructions with `elems > 1`).
    pub vector_elems: usize,
    /// Total element-level memory accesses.
    pub mem_accesses: usize,
}

impl Trace {
    /// An empty trace for the given ISA.
    pub fn new(isa: IsaKind) -> Self {
        Self { insts: Vec::new(), isa: Some(isa) }
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Append an instruction.
    pub fn push(&mut self, inst: DynInst) {
        self.insts.push(inst);
    }

    /// Append all instructions of another trace (used to stitch application
    /// phases together).
    pub fn extend_from(&mut self, other: &Trace) {
        self.insts.extend(other.insts.iter().cloned());
    }

    /// Compute instruction-mix statistics.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats { total: self.insts.len(), ..TraceStats::default() };
        for i in &self.insts {
            match i.class {
                InstClass::Load => s.loads += 1,
                InstClass::Store => s.stores += 1,
                InstClass::Branch => s.branches += 1,
                InstClass::MediaSimple | InstClass::MediaComplex => s.media += 1,
                _ => {}
            }
            if i.elems > 1 {
                s.vector_elems += i.elems as usize;
            }
            s.mem_accesses += i.mem.len();
        }
        s
    }
}

impl std::iter::FromIterator<DynInst> for Trace {
    fn from_iter<T: IntoIterator<Item = DynInst>>(iter: T) -> Self {
        Trace { insts: iter.into_iter().collect(), isa: None }
    }
}

impl Extend<DynInst> for Trace {
    fn extend<T: IntoIterator<Item = DynInst>>(&mut self, iter: T) {
        self.insts.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_labels() {
        assert_eq!(IsaKind::Alpha.label(), "alpha");
        assert_eq!(IsaKind::Mom.to_string(), "mom");
        assert_eq!(IsaKind::ALL.len(), 4);
    }

    #[test]
    fn isa_from_str_round_trips_every_variant() {
        for kind in IsaKind::ALL {
            assert_eq!(kind.label().parse::<IsaKind>(), Ok(kind));
            assert_eq!(kind.to_string().parse::<IsaKind>(), Ok(kind));
            assert_eq!(kind.label().to_uppercase().parse::<IsaKind>(), Ok(kind));
        }
        assert!(" mom ".parse::<IsaKind>().is_ok(), "surrounding whitespace is tolerated");
        assert!("vax".parse::<IsaKind>().is_err());
        assert!("".parse::<IsaKind>().is_err());
    }

    #[test]
    fn traces_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        // The parallel experiment runner in `mom-lab` shares pre-built traces
        // across scoped worker threads; these bounds are part of the contract.
        assert_send_sync::<Trace>();
        assert_send_sync::<DynInst>();
        assert_send_sync::<IsaKind>();
    }

    #[test]
    fn arch_reg_display() {
        assert_eq!(ArchReg::int(3).to_string(), "r3");
        assert_eq!(ArchReg::media(7).to_string(), "m7");
        assert_eq!(ArchReg::mom(1).to_string(), "v1");
        assert_eq!(ArchReg::mom_acc(0).to_string(), "va0");
    }

    #[test]
    fn inst_class_queries() {
        assert!(InstClass::Load.is_mem());
        assert!(!InstClass::IntSimple.is_mem());
        assert!(InstClass::MediaComplex.is_media());
        assert!(!InstClass::Branch.is_media());
    }

    #[test]
    fn dyn_inst_builder_fills_slots() {
        let i = DynInst::new(InstClass::IntSimple, 4)
            .with_src(ArchReg::int(1))
            .with_src(ArchReg::int(2))
            .with_dst(ArchReg::int(3))
            .with_elems(0);
        assert_eq!(i.sources().count(), 2);
        assert_eq!(i.dests().count(), 1);
        assert_eq!(i.elems, 1, "elems is clamped to at least 1");
        assert_eq!(i.pc, 4);
    }

    #[test]
    fn dyn_inst_extra_sources_are_dropped() {
        let mut i = DynInst::new(InstClass::IntSimple, 0);
        for n in 0..6 {
            i = i.with_src(ArchReg::int(n));
        }
        assert_eq!(i.sources().count(), MAX_SRCS);
    }

    #[test]
    fn trace_stats_count_classes() {
        let mut t = Trace::new(IsaKind::Mom);
        t.push(DynInst::new(InstClass::Load, 0).with_mem(vec![MemAccess {
            addr: 0x10,
            size: 8,
            kind: MemKind::Load,
        }]));
        t.push(
            DynInst::new(InstClass::Load, 1)
                .with_elems(16)
                .with_mem((0..16).map(|i| MemAccess { addr: 0x100 + i * 32, size: 8, kind: MemKind::Load }).collect()),
        );
        t.push(DynInst::new(InstClass::MediaSimple, 2).with_elems(16));
        t.push(DynInst::new(InstClass::Branch, 3).with_branch(BranchInfo {
            taken: true,
            conditional: true,
            pc: 3,
            target: 0,
        }));
        t.push(DynInst::new(InstClass::Store, 4).with_mem(vec![MemAccess {
            addr: 0x20,
            size: 4,
            kind: MemKind::Store,
        }]));
        let s = t.stats();
        assert_eq!(s.total, 5);
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 1);
        assert_eq!(s.branches, 1);
        assert_eq!(s.media, 1);
        assert_eq!(s.vector_elems, 32);
        assert_eq!(s.mem_accesses, 18);
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
    }

    #[test]
    fn trace_extend_concatenates() {
        let mut a = Trace::new(IsaKind::Alpha);
        a.push(DynInst::new(InstClass::IntSimple, 0));
        let mut b = Trace::new(IsaKind::Alpha);
        b.push(DynInst::new(InstClass::IntSimple, 1));
        b.push(DynInst::new(InstClass::IntSimple, 2));
        a.extend_from(&b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn trace_from_iterator() {
        let t: Trace = (0..4).map(|pc| DynInst::new(InstClass::Nop, pc)).collect();
        assert_eq!(t.len(), 4);
        assert_eq!(t.isa, None);
    }
}
