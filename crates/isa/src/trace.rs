//! Dynamic instruction traces — the contract between the functional
//! interpreters and the timing simulator.
//!
//! The original study instrumented Alpha binaries with ATOM and fed the
//! resulting dynamic instruction stream to the Jinks out-of-order simulator.
//! This workspace does the equivalent in-process: the functional interpreter
//! (in `mom-core`) executes a kernel program and emits one [`DynInst`] per
//! graduated instruction, carrying everything the timing model needs — the
//! functional-unit class, the architectural registers read and written, the
//! individual memory element accesses and the branch outcome.
//!
//! # The streaming contract
//!
//! The contract is a **stream**, not a materialized vector. Producers (the
//! interpreter, synthetic generators) push instructions into a [`TraceSink`];
//! consumers either collect them — [`Trace`] is the canonical collecting sink
//! — or process them on the fly, like the timing simulator's incremental
//! `StreamSim` in `mom-cpu`, which retires each instruction with O(ROB-size)
//! state and never holds the whole trace. Collected [`Trace`]s remain fully
//! supported (they are `Extend`, `FromIterator` and `IntoIterator` over
//! [`DynInst`]) and a streamed pipeline produces bit-identical timing results
//! to replaying the equivalent collected trace.
//!
//! Per-instruction memory accesses use [`MemList`], a small-buffer list that
//! stores up to [`MEM_INLINE`] element accesses inline (every scalar and MMX
//! memory instruction fits) and spills to the heap only for MOM vector
//! accesses, keeping the interpreter hot path allocation-free.

/// Which of the evaluated instruction-set architectures a program targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IsaKind {
    /// Plain scalar baseline (the paper's Alpha code).
    Alpha,
    /// MMX-like 64-bit sub-word SIMD extension.
    Mmx,
    /// MDMX-like extension: MMX-style SIMD plus packed accumulators.
    Mdmx,
    /// The MOM matrix extension (vector-of-SIMD with wide accumulators).
    Mom,
}

impl IsaKind {
    /// All evaluated ISAs in the order the paper's figures use.
    pub const ALL: [IsaKind; 4] = [IsaKind::Alpha, IsaKind::Mmx, IsaKind::Mdmx, IsaKind::Mom];

    /// Short lower-case label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            IsaKind::Alpha => "alpha",
            IsaKind::Mmx => "mmx",
            IsaKind::Mdmx => "mdmx",
            IsaKind::Mom => "mom",
        }
    }
}

impl std::fmt::Display for IsaKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for IsaKind {
    type Err = String;

    /// Parse the [`IsaKind::label`] form (case-insensitive), so CLI filters
    /// round-trip: `kind.label().parse() == Ok(kind)`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let needle = s.trim().to_ascii_lowercase();
        IsaKind::ALL
            .iter()
            .copied()
            .find(|k| k.label() == needle)
            .ok_or_else(|| format!("unknown ISA {s:?} (expected one of: alpha, mmx, mdmx, mom)"))
    }
}

/// Architectural register class, used for renaming in the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// Scalar integer registers (also hold the MOM vector-length register,
    /// which the paper renames through the integer pool).
    Int,
    /// Scalar floating-point registers.
    Fp,
    /// 64-bit multimedia registers (MMX/MDMX).
    Media,
    /// MDMX packed accumulators.
    Acc,
    /// MOM matrix registers (16 x 64-bit words each).
    Mom,
    /// MOM packed accumulators.
    MomAcc,
}

impl RegClass {
    /// Every register class.
    pub const ALL: [RegClass; 6] = [
        RegClass::Int,
        RegClass::Fp,
        RegClass::Media,
        RegClass::Acc,
        RegClass::Mom,
        RegClass::MomAcc,
    ];
}

/// A class-tagged architectural register identifier as seen by the renamer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchReg {
    /// Register class (selects the physical register pool).
    pub class: RegClass,
    /// Architectural index within the class.
    pub index: u8,
}

impl ArchReg {
    /// Construct a register identifier.
    pub fn new(class: RegClass, index: u8) -> Self {
        Self { class, index }
    }

    /// Integer register shorthand.
    pub fn int(index: u8) -> Self {
        Self::new(RegClass::Int, index)
    }

    /// Media register shorthand.
    pub fn media(index: u8) -> Self {
        Self::new(RegClass::Media, index)
    }

    /// MDMX accumulator shorthand.
    pub fn acc(index: u8) -> Self {
        Self::new(RegClass::Acc, index)
    }

    /// MOM matrix register shorthand.
    pub fn mom(index: u8) -> Self {
        Self::new(RegClass::Mom, index)
    }

    /// MOM accumulator shorthand.
    pub fn mom_acc(index: u8) -> Self {
        Self::new(RegClass::MomAcc, index)
    }
}

impl std::fmt::Display for ArchReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let prefix = match self.class {
            RegClass::Int => "r",
            RegClass::Fp => "f",
            RegClass::Media => "m",
            RegClass::Acc => "a",
            RegClass::Mom => "v",
            RegClass::MomAcc => "va",
        };
        write!(f, "{prefix}{}", self.index)
    }
}

/// Functional-unit / latency class of a dynamic instruction.
///
/// The classes mirror Table 1 of the paper: integer and floating-point units
/// come in *simple* (logic, shift, add) and *complex* (multiply, divide)
/// flavours, the multimedia unit likewise, and memory operations occupy the
/// memory ports. MOM instructions use the same media/memory units but occupy
/// them for multiple beats (see [`DynInst::elems`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InstClass {
    /// Integer add/sub/logic/shift/compare and control-register moves.
    IntSimple,
    /// Integer multiply and divide.
    IntComplex,
    /// Floating-point add/sub/convert.
    FpSimple,
    /// Floating-point multiply/divide.
    FpComplex,
    /// Multimedia packed add/sub/logic/shift/min/max/average/pack/unpack.
    MediaSimple,
    /// Multimedia packed multiply and multiply-accumulate.
    MediaComplex,
    /// A load from memory (scalar or one MOM vector load).
    Load,
    /// A store to memory (scalar or one MOM vector store).
    Store,
    /// A conditional or unconditional branch.
    Branch,
    /// An instruction with no functional unit requirement (e.g. `nop`,
    /// vector-length set) — it still occupies a ROB slot and fetch bandwidth.
    Nop,
}

impl InstClass {
    /// Whether the instruction accesses memory.
    pub fn is_mem(self) -> bool {
        matches!(self, InstClass::Load | InstClass::Store)
    }

    /// Whether the instruction executes on the multimedia unit.
    pub fn is_media(self) -> bool {
        matches!(self, InstClass::MediaSimple | InstClass::MediaComplex)
    }
}

/// Whether a memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// Read access.
    Load,
    /// Write access.
    Store,
}

/// One element-level memory access.
///
/// A scalar load/store contributes exactly one; a MOM memory instruction with
/// vector length `VL` contributes `VL` of them (one per 64-bit row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Virtual byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
    /// Load or store.
    pub kind: MemKind,
}

/// Number of element accesses a [`MemList`] stores inline before spilling to
/// the heap. Scalar and MMX memory instructions perform exactly one element
/// access, so only MOM vector memory instructions (up to 16 rows) ever spill.
pub const MEM_INLINE: usize = 4;

const EMPTY_ACCESS: MemAccess = MemAccess { addr: 0, size: 0, kind: MemKind::Load };

/// The element memory accesses of one dynamic instruction, with a small
/// inline buffer.
///
/// Behaves like a `Vec<MemAccess>` (it dereferences to `[MemAccess]`) but
/// keeps up to [`MEM_INLINE`] accesses inline in the [`DynInst`] itself, so
/// building and cloning scalar/MMX memory instructions never touches the
/// heap. Pushing beyond the inline capacity spills the list to a heap vector,
/// which is transparent to readers.
#[derive(Clone)]
pub struct MemList(MemListRepr);

#[derive(Clone)]
enum MemListRepr {
    Inline { buf: [MemAccess; MEM_INLINE], len: u8 },
    Spilled(Vec<MemAccess>),
}

impl MemList {
    /// An empty access list (no allocation).
    pub const fn new() -> Self {
        MemList(MemListRepr::Inline { buf: [EMPTY_ACCESS; MEM_INLINE], len: 0 })
    }

    /// A list holding a single access (the scalar load/store case).
    pub fn one(access: MemAccess) -> Self {
        let mut list = MemList::new();
        list.push(access);
        list
    }

    /// An empty list with room for `capacity` accesses: inline when it fits,
    /// pre-spilled in one exact allocation otherwise. MOM vector memory
    /// instructions know their element count (the vector length) up front,
    /// so they pay at most one allocation instead of growing through the
    /// spill path.
    pub fn with_capacity(capacity: usize) -> Self {
        if capacity <= MEM_INLINE {
            MemList::new()
        } else {
            MemList(MemListRepr::Spilled(Vec::with_capacity(capacity)))
        }
    }

    /// Append an access, spilling to the heap past [`MEM_INLINE`] entries.
    pub fn push(&mut self, access: MemAccess) {
        match &mut self.0 {
            MemListRepr::Inline { buf, len } => {
                if (*len as usize) < MEM_INLINE {
                    buf[*len as usize] = access;
                    *len += 1;
                } else {
                    let mut spilled = Vec::with_capacity(MEM_INLINE * 2);
                    spilled.extend_from_slice(&buf[..]);
                    spilled.push(access);
                    self.0 = MemListRepr::Spilled(spilled);
                }
            }
            MemListRepr::Spilled(v) => v.push(access),
        }
    }

    /// The accesses as a slice (also available through deref).
    pub fn as_slice(&self) -> &[MemAccess] {
        match &self.0 {
            MemListRepr::Inline { buf, len } => &buf[..*len as usize],
            MemListRepr::Spilled(v) => v,
        }
    }

    /// Whether the list has spilled to the heap (diagnostics/tests only;
    /// readers never need to care).
    pub fn is_spilled(&self) -> bool {
        matches!(self.0, MemListRepr::Spilled(_))
    }

    /// Empty the list, keeping any spilled heap capacity for reuse. The
    /// interpreter's hot loop recycles one spilled list across MOM vector
    /// memory instructions so steady-state execution stops allocating.
    pub fn clear(&mut self) {
        match &mut self.0 {
            MemListRepr::Inline { len, .. } => *len = 0,
            MemListRepr::Spilled(v) => v.clear(),
        }
    }
}

impl Default for MemList {
    fn default() -> Self {
        MemList::new()
    }
}

impl std::ops::Deref for MemList {
    type Target = [MemAccess];

    fn deref(&self) -> &[MemAccess] {
        self.as_slice()
    }
}

impl std::fmt::Debug for MemList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// Equality is by contents — an inline list equals a spilled list holding the
/// same accesses.
impl PartialEq for MemList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for MemList {}

impl From<Vec<MemAccess>> for MemList {
    fn from(accesses: Vec<MemAccess>) -> Self {
        if accesses.len() <= MEM_INLINE {
            let mut buf = [EMPTY_ACCESS; MEM_INLINE];
            buf[..accesses.len()].copy_from_slice(&accesses);
            MemList(MemListRepr::Inline { buf, len: accesses.len() as u8 })
        } else {
            MemList(MemListRepr::Spilled(accesses))
        }
    }
}

impl FromIterator<MemAccess> for MemList {
    fn from_iter<T: IntoIterator<Item = MemAccess>>(iter: T) -> Self {
        let mut list = MemList::new();
        for access in iter {
            list.push(access);
        }
        list
    }
}

impl<'a> IntoIterator for &'a MemList {
    type Item = &'a MemAccess;
    type IntoIter = std::slice::Iter<'a, MemAccess>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Branch outcome information attached to control-flow instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Whether the branch was taken in the dynamic execution.
    pub taken: bool,
    /// Whether the branch is conditional (unconditional jumps are always taken
    /// and perfectly predictable by the BTB once seen).
    pub conditional: bool,
    /// Identifier of the static branch site, used to index the predictor
    /// tables; kernel builders derive it from the static program counter.
    pub pc: u64,
    /// Target static program counter (index), for BTB modelling.
    pub target: u64,
}

/// Maximum number of source registers a dynamic instruction can carry.
pub const MAX_SRCS: usize = 4;
/// Maximum number of destination registers a dynamic instruction can carry.
pub const MAX_DSTS: usize = 2;

/// One graduated dynamic instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct DynInst {
    /// Functional-unit class.
    pub class: InstClass,
    /// Source architectural registers (`None` entries are unused slots).
    pub srcs: [Option<ArchReg>; MAX_SRCS],
    /// Destination architectural registers (`None` entries are unused slots).
    pub dsts: [Option<ArchReg>; MAX_DSTS],
    /// Element memory accesses (empty for non-memory instructions).
    pub mem: MemList,
    /// Branch outcome (only for [`InstClass::Branch`]).
    pub branch: Option<BranchInfo>,
    /// Number of vector elements processed (1 for scalar/MMX/MDMX
    /// instructions, the vector length for MOM instructions). The timing model
    /// uses it to compute functional-unit occupancy.
    pub elems: u16,
    /// Static program counter (instruction index within the program), used for
    /// the fetch model and branch predictor indexing.
    pub pc: u64,
}

impl DynInst {
    /// Create a dynamic instruction with no register, memory or branch
    /// information (a skeleton the builder methods then fill in).
    pub fn new(class: InstClass, pc: u64) -> Self {
        Self {
            class,
            srcs: [None; MAX_SRCS],
            dsts: [None; MAX_DSTS],
            mem: MemList::new(),
            branch: None,
            elems: 1,
            pc,
        }
    }

    /// Add a source register (ignored once all [`MAX_SRCS`] slots are full —
    /// additional sources beyond the modelled read-port count do not create
    /// extra dependences the timing model could track anyway).
    #[must_use = "builder methods return the modified instruction"]
    pub fn with_src(mut self, reg: ArchReg) -> Self {
        if let Some(slot) = self.srcs.iter_mut().find(|s| s.is_none()) {
            *slot = Some(reg);
        }
        self
    }

    /// Add a destination register.
    #[must_use = "builder methods return the modified instruction"]
    pub fn with_dst(mut self, reg: ArchReg) -> Self {
        if let Some(slot) = self.dsts.iter_mut().find(|s| s.is_none()) {
            *slot = Some(reg);
        }
        self
    }

    /// Set the vector element count.
    #[must_use = "builder methods return the modified instruction"]
    pub fn with_elems(mut self, elems: u16) -> Self {
        self.elems = elems.max(1);
        self
    }

    /// Attach memory accesses.
    #[must_use = "builder methods return the modified instruction"]
    pub fn with_mem(mut self, accesses: impl Into<MemList>) -> Self {
        self.mem = accesses.into();
        self
    }

    /// Attach a branch outcome.
    #[must_use = "builder methods return the modified instruction"]
    pub fn with_branch(mut self, branch: BranchInfo) -> Self {
        self.branch = Some(branch);
        self
    }

    /// Iterator over the populated source registers.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// Iterator over the populated destination registers.
    pub fn dests(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.dsts.iter().flatten().copied()
    }
}

/// A consumer of graduated dynamic instructions.
///
/// The functional interpreter pushes one [`DynInst`] per graduated
/// instruction into a sink. [`Trace`] is the canonical *collecting* sink;
/// the timing simulator in `mom-cpu` provides a *streaming* sink that
/// retires each instruction immediately with O(ROB-size) memory, so the
/// interpreter and the simulator fuse into a pipeline that never
/// materializes the trace.
pub trait TraceSink {
    /// Accept the next graduated instruction, in program order.
    fn emit(&mut self, inst: DynInst);

    /// Accept the next graduated instruction by reference.
    ///
    /// Sinks that only *inspect* instructions (the streaming timing
    /// simulator, counting probes, fan-out combinators over such sinks)
    /// override this to skip the clone; collecting sinks keep the default,
    /// which clones and forwards to [`TraceSink::emit`]. The interpreter's
    /// hot loop emits through this method so it can recycle each
    /// instruction's spilled memory-access buffer after the sink returns.
    fn emit_ref(&mut self, inst: &DynInst) {
        self.emit(inst.clone());
    }

    /// Accept a chunk of consecutive graduated instructions, in program
    /// order. Equivalent to calling [`TraceSink::emit_ref`] once per
    /// element — the default does exactly that.
    ///
    /// The threaded interpreter graduates instructions in small chunks
    /// rather than one at a time, so a streaming consumer can override this
    /// to retire a whole chunk in one call frame (keeping its hot scalars in
    /// registers across instructions instead of round-tripping them through
    /// memory on every handoff). Overrides must behave exactly like the
    /// default: same instructions, same order, no skipping.
    fn emit_batch(&mut self, insts: &[DynInst]) {
        for inst in insts {
            self.emit_ref(inst);
        }
    }
}

impl TraceSink for Trace {
    fn emit(&mut self, inst: DynInst) {
        self.push(inst);
    }
}

impl TraceSink for Vec<DynInst> {
    fn emit(&mut self, inst: DynInst) {
        self.push(inst);
    }
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn emit(&mut self, inst: DynInst) {
        (**self).emit(inst);
    }

    fn emit_ref(&mut self, inst: &DynInst) {
        (**self).emit_ref(inst);
    }

    fn emit_batch(&mut self, insts: &[DynInst]) {
        (**self).emit_batch(insts);
    }
}

/// A sink that fans every instruction out to N child sinks.
///
/// This is the heart of the shared-functional-pass runner: one functional
/// interpretation of a workload feeds N timing simulators (one per machine
/// configuration of a grid), so the interpreter's work is amortized across
/// all of them. Children receive the instructions in identical program order;
/// each child sees exactly the stream it would have seen alone, so a
/// `Broadcast` of N streaming simulators is byte-identical to N independent
/// single-sink passes. The combinator adds no buffering of its own — with
/// O(ROB) children the whole fan-out stays O(N x ROB), never O(trace).
///
/// `Broadcast` drives its children *serially on the producer's thread*. For
/// the pipelined variant — the producer publishing batches into bounded
/// channels that each child drains on its own thread — see
/// [`BatchSink`](crate::pipe::BatchSink).
#[derive(Debug)]
pub struct Broadcast<S> {
    sinks: Vec<S>,
}

impl<S> Broadcast<S> {
    /// Fan out to the given child sinks (in order; the order children receive
    /// each instruction is unobservable, but results are returned in this
    /// order by [`Broadcast::into_inner`]).
    pub fn new(sinks: Vec<S>) -> Self {
        Self { sinks }
    }

    /// Number of child sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether there are no children (every instruction is dropped).
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }

    /// Take the children back (e.g. to `finish()` each simulator).
    pub fn into_inner(self) -> Vec<S> {
        self.sinks
    }
}

impl<S: TraceSink> TraceSink for Broadcast<S> {
    fn emit(&mut self, inst: DynInst) {
        // The last child takes the owned instruction: a 1-child broadcast
        // (a grid whose group has a single member) never clones at all.
        let Some((last, rest)) = self.sinks.split_last_mut() else { return };
        for sink in rest {
            sink.emit(inst.clone());
        }
        last.emit(inst);
    }

    fn emit_ref(&mut self, inst: &DynInst) {
        // One borrowed instruction serves every child: a fan-out over
        // streaming simulators never clones at all.
        for sink in &mut self.sinks {
            sink.emit_ref(inst);
        }
    }

    fn emit_batch(&mut self, insts: &[DynInst]) {
        // Each child consumes the whole chunk before the next one starts:
        // fewer handoffs, and every child still sees program order.
        for sink in &mut self.sinks {
            sink.emit_batch(insts);
        }
    }
}

/// A sink that duplicates every instruction into two (possibly heterogeneous)
/// sinks — e.g. a collecting [`Trace`] next to a streaming simulator.
#[derive(Debug)]
pub struct Tee<A, B>(
    /// First child (receives a clone).
    pub A,
    /// Second child (receives the original).
    pub B,
);

impl<A: TraceSink, B: TraceSink> TraceSink for Tee<A, B> {
    fn emit(&mut self, inst: DynInst) {
        self.0.emit(inst.clone());
        self.1.emit(inst);
    }

    fn emit_ref(&mut self, inst: &DynInst) {
        self.0.emit_ref(inst);
        self.1.emit_ref(inst);
    }

    fn emit_batch(&mut self, insts: &[DynInst]) {
        self.0.emit_batch(insts);
        self.1.emit_batch(insts);
    }
}

/// A sink adapter that forwards only the instructions matching a predicate
/// (e.g. memory operations only, or one instruction class for a counting
/// probe). Instructions failing the predicate are dropped without cloning.
pub struct FilterSink<S, F> {
    sink: S,
    keep: F,
}

impl<S, F: FnMut(&DynInst) -> bool> FilterSink<S, F> {
    /// Forward to `sink` only the instructions for which `keep` is true.
    pub fn new(sink: S, keep: F) -> Self {
        Self { sink, keep }
    }

    /// Take the inner sink back.
    pub fn into_inner(self) -> S {
        self.sink
    }
}

impl<S: TraceSink, F: FnMut(&DynInst) -> bool> TraceSink for FilterSink<S, F> {
    fn emit(&mut self, inst: DynInst) {
        if (self.keep)(&inst) {
            self.sink.emit(inst);
        }
    }

    fn emit_ref(&mut self, inst: &DynInst) {
        if (self.keep)(inst) {
            self.sink.emit_ref(inst);
        }
    }
}

impl<S: std::fmt::Debug, F> std::fmt::Debug for FilterSink<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FilterSink").field("sink", &self.sink).finish_non_exhaustive()
    }
}

/// A complete dynamic trace plus summary statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Graduated dynamic instructions in program order.
    pub insts: Vec<DynInst>,
    /// ISA the trace was generated for (informational).
    pub isa: Option<IsaKind>,
}

/// Instruction-mix statistics of a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total dynamic instructions.
    pub total: usize,
    /// Loads (scalar or vector).
    pub loads: usize,
    /// Stores (scalar or vector).
    pub stores: usize,
    /// Branches.
    pub branches: usize,
    /// Instructions executing on the multimedia unit.
    pub media: usize,
    /// Total vector elements processed by MOM instructions (sum of `elems`
    /// over instructions with `elems > 1`).
    pub vector_elems: usize,
    /// Total element-level memory accesses.
    pub mem_accesses: usize,
}

impl Trace {
    /// An empty trace for the given ISA.
    pub fn new(isa: IsaKind) -> Self {
        Self { insts: Vec::new(), isa: Some(isa) }
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Append an instruction.
    pub fn push(&mut self, inst: DynInst) {
        self.insts.push(inst);
    }

    /// Compute instruction-mix statistics.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats { total: self.insts.len(), ..TraceStats::default() };
        for i in &self.insts {
            match i.class {
                InstClass::Load => s.loads += 1,
                InstClass::Store => s.stores += 1,
                InstClass::Branch => s.branches += 1,
                InstClass::MediaSimple | InstClass::MediaComplex => s.media += 1,
                _ => {}
            }
            if i.elems > 1 {
                s.vector_elems += i.elems as usize;
            }
            s.mem_accesses += i.mem.len();
        }
        s
    }
}

impl std::iter::FromIterator<DynInst> for Trace {
    fn from_iter<T: IntoIterator<Item = DynInst>>(iter: T) -> Self {
        Trace { insts: iter.into_iter().collect(), isa: None }
    }
}

impl Extend<DynInst> for Trace {
    fn extend<T: IntoIterator<Item = DynInst>>(&mut self, iter: T) {
        self.insts.extend(iter);
    }
}

impl IntoIterator for Trace {
    type Item = DynInst;
    type IntoIter = std::vec::IntoIter<DynInst>;

    /// Consume the trace, yielding its instructions in program order (used to
    /// stitch traces together without cloning, and to feed owned instructions
    /// into a pull-based `InstSource`).
    fn into_iter(self) -> Self::IntoIter {
        self.insts.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a DynInst;
    type IntoIter = std::slice::Iter<'a, DynInst>;

    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_labels() {
        assert_eq!(IsaKind::Alpha.label(), "alpha");
        assert_eq!(IsaKind::Mom.to_string(), "mom");
        assert_eq!(IsaKind::ALL.len(), 4);
    }

    #[test]
    fn isa_from_str_round_trips_every_variant() {
        for kind in IsaKind::ALL {
            assert_eq!(kind.label().parse::<IsaKind>(), Ok(kind));
            assert_eq!(kind.to_string().parse::<IsaKind>(), Ok(kind));
            assert_eq!(kind.label().to_uppercase().parse::<IsaKind>(), Ok(kind));
        }
        assert!(" mom ".parse::<IsaKind>().is_ok(), "surrounding whitespace is tolerated");
        assert!("vax".parse::<IsaKind>().is_err());
        assert!("".parse::<IsaKind>().is_err());
    }

    #[test]
    fn traces_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        // The parallel experiment runner in `mom-lab` shares pre-built traces
        // across scoped worker threads; these bounds are part of the contract.
        assert_send_sync::<Trace>();
        assert_send_sync::<DynInst>();
        assert_send_sync::<IsaKind>();
    }

    #[test]
    fn arch_reg_display() {
        assert_eq!(ArchReg::int(3).to_string(), "r3");
        assert_eq!(ArchReg::media(7).to_string(), "m7");
        assert_eq!(ArchReg::mom(1).to_string(), "v1");
        assert_eq!(ArchReg::mom_acc(0).to_string(), "va0");
    }

    #[test]
    fn inst_class_queries() {
        assert!(InstClass::Load.is_mem());
        assert!(!InstClass::IntSimple.is_mem());
        assert!(InstClass::MediaComplex.is_media());
        assert!(!InstClass::Branch.is_media());
    }

    #[test]
    fn dyn_inst_builder_fills_slots() {
        let i = DynInst::new(InstClass::IntSimple, 4)
            .with_src(ArchReg::int(1))
            .with_src(ArchReg::int(2))
            .with_dst(ArchReg::int(3))
            .with_elems(0);
        assert_eq!(i.sources().count(), 2);
        assert_eq!(i.dests().count(), 1);
        assert_eq!(i.elems, 1, "elems is clamped to at least 1");
        assert_eq!(i.pc, 4);
    }

    #[test]
    fn dyn_inst_extra_sources_are_dropped() {
        let mut i = DynInst::new(InstClass::IntSimple, 0);
        for n in 0..6 {
            i = i.with_src(ArchReg::int(n));
        }
        assert_eq!(i.sources().count(), MAX_SRCS);
    }

    #[test]
    fn trace_stats_count_classes() {
        let mut t = Trace::new(IsaKind::Mom);
        t.push(DynInst::new(InstClass::Load, 0).with_mem(vec![MemAccess {
            addr: 0x10,
            size: 8,
            kind: MemKind::Load,
        }]));
        t.push(
            DynInst::new(InstClass::Load, 1)
                .with_elems(16)
                .with_mem((0..16).map(|i| MemAccess { addr: 0x100 + i * 32, size: 8, kind: MemKind::Load }).collect::<MemList>()),
        );
        t.push(DynInst::new(InstClass::MediaSimple, 2).with_elems(16));
        t.push(DynInst::new(InstClass::Branch, 3).with_branch(BranchInfo {
            taken: true,
            conditional: true,
            pc: 3,
            target: 0,
        }));
        t.push(DynInst::new(InstClass::Store, 4).with_mem(vec![MemAccess {
            addr: 0x20,
            size: 4,
            kind: MemKind::Store,
        }]));
        let s = t.stats();
        assert_eq!(s.total, 5);
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 1);
        assert_eq!(s.branches, 1);
        assert_eq!(s.media, 1);
        assert_eq!(s.vector_elems, 32);
        assert_eq!(s.mem_accesses, 18);
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
    }

    #[test]
    fn trace_extend_concatenates() {
        let mut a = Trace::new(IsaKind::Alpha);
        a.push(DynInst::new(InstClass::IntSimple, 0));
        let mut b = Trace::new(IsaKind::Alpha);
        b.push(DynInst::new(InstClass::IntSimple, 1));
        b.push(DynInst::new(InstClass::IntSimple, 2));
        // Traces stitch together through Extend + owned IntoIterator,
        // without cloning a single instruction.
        a.extend(b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn trace_from_iterator() {
        let t: Trace = (0..4).map(|pc| DynInst::new(InstClass::Nop, pc)).collect();
        assert_eq!(t.len(), 4);
        assert_eq!(t.isa, None);
    }

    #[test]
    fn trace_into_iterator_owned_and_borrowed() {
        let t: Trace = (0..5).map(|pc| DynInst::new(InstClass::Nop, pc)).collect();
        let borrowed_pcs: Vec<u64> = (&t).into_iter().map(|i| i.pc).collect();
        assert_eq!(borrowed_pcs, [0, 1, 2, 3, 4]);
        assert_eq!(t.len(), 5, "borrowed iteration leaves the trace intact");
        let owned_pcs: Vec<u64> = t.into_iter().map(|i| i.pc).collect();
        assert_eq!(owned_pcs, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn trace_is_a_collecting_sink() {
        fn produce(sink: &mut impl TraceSink) {
            for pc in 0..3 {
                sink.emit(DynInst::new(InstClass::IntSimple, pc));
            }
        }
        let mut t = Trace::new(IsaKind::Alpha);
        produce(&mut t);
        assert_eq!(t.len(), 3);
        let mut v: Vec<DynInst> = Vec::new();
        produce(&mut v);
        assert_eq!(v.len(), 3);
        assert_eq!(t.insts, v);
    }

    #[test]
    fn broadcast_feeds_every_child_identically() {
        let mut fan = Broadcast::new(vec![Trace::new(IsaKind::Alpha), Trace::new(IsaKind::Alpha), Trace::new(IsaKind::Alpha)]);
        assert_eq!(fan.len(), 3);
        assert!(!fan.is_empty());
        for pc in 0..5 {
            fan.emit(DynInst::new(InstClass::IntSimple, pc).with_dst(ArchReg::int(1)));
        }
        let children = fan.into_inner();
        assert_eq!(children.len(), 3);
        for child in &children {
            assert_eq!(child.insts, children[0].insts, "every child saw the same stream");
        }
        assert_eq!(children[0].len(), 5);
        // An empty broadcast simply drops the stream.
        let mut empty: Broadcast<Trace> = Broadcast::new(Vec::new());
        assert!(empty.is_empty());
        empty.emit(DynInst::new(InstClass::Nop, 0));
        assert!(empty.into_inner().is_empty());
    }

    #[test]
    fn tee_duplicates_into_both_sinks() {
        let mut tee = Tee(Trace::new(IsaKind::Mom), Vec::new());
        for pc in 0..4 {
            tee.emit(DynInst::new(InstClass::MediaSimple, pc).with_elems(8));
        }
        assert_eq!(tee.0.len(), 4);
        assert_eq!(tee.0.insts, tee.1);
    }

    #[test]
    fn filter_sink_forwards_matching_instructions_only() {
        let mut mem_only = FilterSink::new(Trace::new(IsaKind::Alpha), |i: &DynInst| i.class.is_mem());
        mem_only.emit(DynInst::new(InstClass::IntSimple, 0));
        mem_only.emit(DynInst::new(InstClass::Load, 1).with_mem(MemList::one(access(0x8))));
        mem_only.emit(DynInst::new(InstClass::Branch, 2));
        mem_only.emit(DynInst::new(InstClass::Store, 3).with_mem(MemList::one(access(0x10))));
        let kept = mem_only.into_inner();
        assert_eq!(kept.len(), 2);
        assert!(kept.insts.iter().all(|i| i.class.is_mem()));
    }

    fn access(addr: u64) -> MemAccess {
        MemAccess { addr, size: 8, kind: MemKind::Load }
    }

    #[test]
    fn mem_list_stays_inline_up_to_capacity_and_spills_past_it() {
        let mut list = MemList::new();
        assert!(list.is_empty() && !list.is_spilled());
        for k in 0..MEM_INLINE as u64 {
            list.push(access(k));
            assert!(!list.is_spilled(), "{} accesses fit inline", k + 1);
        }
        assert_eq!(list.len(), MEM_INLINE);
        list.push(access(99));
        assert!(list.is_spilled(), "the {}th access spills to the heap", MEM_INLINE + 1);
        assert_eq!(list.len(), MEM_INLINE + 1);
        // Spilling preserves contents and order.
        let addrs: Vec<u64> = list.iter().map(|a| a.addr).collect();
        assert_eq!(addrs, [0, 1, 2, 3, 99]);
    }

    #[test]
    fn mem_list_with_capacity_spills_eagerly_only_past_inline() {
        assert!(!MemList::with_capacity(0).is_spilled());
        assert!(!MemList::with_capacity(MEM_INLINE).is_spilled());
        // A known-large list (a MOM vector access) pre-spills in one exact
        // allocation; contents still behave identically.
        let mut list = MemList::with_capacity(16);
        assert!(list.is_spilled());
        assert!(list.is_empty());
        for k in 0..16 {
            list.push(access(k));
        }
        let grown: MemList = (0..16).map(access).collect();
        assert_eq!(list, grown);
    }

    #[test]
    fn mem_list_equality_ignores_representation() {
        let inline = MemList::one(access(7));
        let mut spilled_then_compare: MemList = (0..=MEM_INLINE as u64).map(access).collect();
        assert!(spilled_then_compare.is_spilled());
        let from_vec: MemList = Vec::from_iter((0..=MEM_INLINE as u64).map(access)).into();
        assert_eq!(spilled_then_compare, from_vec);
        assert_ne!(inline, from_vec);
        // From<Vec> keeps short vectors inline.
        let short: MemList = vec![access(7)].into();
        assert!(!short.is_spilled());
        assert_eq!(short, inline);
        spilled_then_compare.push(access(42));
        assert_eq!(spilled_then_compare.last().unwrap().addr, 42);
        assert_eq!(format!("{:?}", MemList::one(access(1))), format!("{:?}", vec![access(1)]));
    }

    #[test]
    fn scalar_mem_instructions_never_allocate() {
        // A scalar load carries exactly one access; the whole DynInst clones
        // without touching the heap (MemList is inline).
        let inst = DynInst::new(InstClass::Load, 0).with_mem(MemList::one(access(0x10)));
        assert!(!inst.mem.is_spilled());
        assert!(!inst.clone().mem.is_spilled());
    }
}
