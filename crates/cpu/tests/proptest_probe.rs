//! Property-based guarantees of the cycle-attribution probe: for arbitrary
//! generated instruction sequences over every ISA and issue width,
//!
//! * the stall breakdown's components sum exactly to the total cycles (the
//!   probe attributes every commit-slot cycle to exactly one cause);
//! * the probed report is identical whether the sequence arrives as a
//!   materialized batch, a streamed push, or through a `Broadcast` fan-out
//!   (the same three consumption styles the lab runner uses);
//! * the probe never alters timing — the probed `SimResult` equals the
//!   unprobed one bit for bit.

use mom_cpu::{AttributionProbe, CoreConfig, OooCore, ProbeReport, SimResult};
use mom_isa::trace::{
    ArchReg, BranchInfo, Broadcast, DynInst, InstClass, IsaKind, MemAccess, MemKind, Trace,
    TraceSink,
};
use mom_mem::{build_memory, MemModelKind, MemorySystem};
use proptest::prelude::*;

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Decode one generated 4-tuple into a dynamic instruction covering every
/// instruction class (same generator shape as `proptest_stream.rs`).
fn decode_inst(index: usize, sel: usize, bits: u64, elems: u16, flag: bool) -> DynInst {
    let pc = bits >> 48 & 0x3f;
    let ra = (bits & 31) as u8;
    let rb = (bits >> 5 & 31) as u8;
    let rd = (bits >> 10 & 31) as u8;
    match sel % 10 {
        0 => DynInst::new(InstClass::IntSimple, pc)
            .with_src(ArchReg::int(ra))
            .with_src(ArchReg::int(rb))
            .with_dst(ArchReg::int(rd)),
        1 => DynInst::new(InstClass::IntComplex, pc)
            .with_src(ArchReg::int(ra))
            .with_dst(ArchReg::int(rd)),
        2 => DynInst::new(InstClass::FpSimple, pc)
            .with_src(ArchReg::new(mom_isa::trace::RegClass::Fp, ra))
            .with_dst(ArchReg::new(mom_isa::trace::RegClass::Fp, rd)),
        3 => DynInst::new(InstClass::FpComplex, pc)
            .with_dst(ArchReg::new(mom_isa::trace::RegClass::Fp, rd)),
        4 => DynInst::new(InstClass::MediaSimple, pc)
            .with_src(ArchReg::media(ra % 8))
            .with_dst(ArchReg::mom(rd % 16))
            .with_elems(elems),
        5 => DynInst::new(InstClass::MediaComplex, pc)
            .with_src(ArchReg::mom_acc(ra % 2))
            .with_src(ArchReg::mom(rb % 16))
            .with_dst(ArchReg::mom_acc(ra % 2))
            .with_elems(elems),
        6 => {
            let n = if flag { elems } else { 1 };
            DynInst::new(InstClass::Load, pc)
                .with_src(ArchReg::int(ra))
                .with_dst(ArchReg::int(rd))
                .with_elems(n)
                .with_mem(
                    (0..n as u64)
                        .map(|k| MemAccess {
                            addr: (bits & 0xffff) * 8 + k * 16 + index as u64,
                            size: 8,
                            kind: MemKind::Load,
                        })
                        .collect::<Vec<_>>(),
                )
        }
        7 => DynInst::new(InstClass::Store, pc).with_src(ArchReg::int(ra)).with_mem(vec![
            MemAccess { addr: (bits & 0xffff) * 4, size: 4, kind: MemKind::Store },
        ]),
        8 => DynInst::new(InstClass::Branch, pc).with_branch(BranchInfo {
            taken: flag,
            conditional: bits & 1 == 0,
            pc,
            target: bits >> 40 & 0x3f,
        }),
        _ => DynInst::new(InstClass::Nop, pc),
    }
}

fn memory_for(way: usize, latency: u64) -> Box<dyn MemorySystem> {
    build_memory(MemModelKind::Perfect { latency }, way)
}

/// Run `insts` probed through one consumption style and return the pair.
fn run_probed(
    insts: &[DynInst],
    core: &OooCore,
    latency: u64,
    style: usize,
) -> (SimResult, ProbeReport) {
    let way = core.config().way;
    match style {
        // Materialized batch: collect a trace, feed it whole.
        0 => {
            let collected: Trace = insts.iter().cloned().collect();
            let mut mem = memory_for(way, latency);
            let mut sim = core.stream_probed(mem.as_mut(), AttributionProbe::new());
            for inst in &collected.insts {
                sim.feed(inst);
            }
            let (sim, probe) = sim.finish_probed();
            (sim, probe.into_report())
        }
        // Streamed push: emit owned instructions one by one.
        1 => {
            let mut mem = memory_for(way, latency);
            let mut sim = core.stream_probed(mem.as_mut(), AttributionProbe::new());
            for inst in insts {
                sim.emit(inst.clone());
            }
            let (sim, probe) = sim.finish_probed();
            (sim, probe.into_report())
        }
        // Broadcast fan-out: the runner's shape — one interpreter pass
        // feeding sibling streams; take the first sibling's report.
        _ => {
            let mut mem_a = memory_for(way, latency);
            let mut mem_b = memory_for(way, latency);
            let mut fan = Broadcast::new(vec![
                core.stream_probed(mem_a.as_mut(), AttributionProbe::new()),
                core.stream_probed(mem_b.as_mut(), AttributionProbe::new()),
            ]);
            for inst in insts {
                fan.emit(inst.clone());
            }
            let mut reports: Vec<(SimResult, ProbeReport)> = fan
                .into_inner()
                .into_iter()
                .map(|s| {
                    let (sim, probe) = s.finish_probed();
                    (sim, probe.into_report())
                })
                .collect();
            // Identical machines behind one broadcast must agree with each
            // other before they are compared against the other styles.
            assert_eq!(reports[0], reports[1], "broadcast siblings diverged");
            reports.swap_remove(0)
        }
    }
}

proptest! {
    // Each case simulates a few hundred instructions four times over (plus
    // the unprobed control); 32 cases keep the suite CI-friendly.
    #![proptest_config(Config::with_cases(32))]

    #[test]
    fn breakdown_sums_to_total_and_consumption_styles_agree(
        raw in prop::collection::vec((0usize..10, proptest::prelude::any::<u64>(), 1u16..=16, proptest::prelude::any::<bool>()), 0..300),
        way_idx in 0usize..4,
        isa_idx in 0usize..4,
        latency in 1u64..8,
    ) {
        let insts: Vec<DynInst> = raw
            .iter()
            .enumerate()
            .map(|(i, &(sel, bits, elems, flag))| decode_inst(i, sel, bits, elems, flag))
            .collect();
        let core = OooCore::new(CoreConfig::for_width(WIDTHS[way_idx], IsaKind::ALL[isa_idx]));

        let (batch_sim, batch) = run_probed(&insts, &core, latency, 0);
        let (push_sim, pushed) = run_probed(&insts, &core, latency, 1);
        let (fan_sim, fanned) = run_probed(&insts, &core, latency, 2);

        // Identical attribution regardless of how the instructions arrived.
        prop_assert_eq!(&batch, &pushed);
        prop_assert_eq!(&batch, &fanned);
        prop_assert_eq!(batch_sim, push_sim);
        prop_assert_eq!(batch_sim, fan_sim);

        // Every commit-slot cycle is attributed to exactly one cause.
        let b = &batch.breakdown;
        prop_assert_eq!(b.total_cycles, batch_sim.cycles);
        let attributed: u64 = b.components().map(|(_, cycles)| cycles).sum();
        prop_assert_eq!(attributed, b.total_cycles, "components must sum to total");

        // The interval timeline covers the same cycles.
        let window_cycles: u64 = batch.intervals.windows.iter().map(|w| w.cycles).sum();
        prop_assert_eq!(window_cycles, batch_sim.cycles);

        // Observation without perturbation: the unprobed run is bit-identical.
        let collected: Trace = insts.iter().cloned().collect();
        let mut mem = memory_for(core.config().way, latency);
        let unprobed = core.simulate(&collected, mem.as_mut());
        prop_assert_eq!(unprobed, batch_sim);
    }
}
