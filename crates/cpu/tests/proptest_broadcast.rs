//! Property-based equivalence of the broadcast fan-out: feeding one
//! arbitrary `DynInst` stream through `Broadcast([sim1..simN])` must be
//! byte-identical — cycles, all statistics, instructions fed — to running
//! the same stream through each simulator independently. This is the
//! correctness foundation of the shared-functional-pass experiment runner:
//! one interpretation, N timing simulations, no observable difference.
//!
//! The same property is asserted for the pipelined variant: a `BatchSink`
//! publishing batches into bounded per-member channels drained by consumer
//! threads must match the serial `Broadcast` for every batch size and
//! channel capacity.

use mom_cpu::{MachineDescriptor, SimResult};
use mom_isa::pipe::{batch_channel, BatchSink};
use mom_isa::trace::{
    ArchReg, BranchInfo, Broadcast, DynInst, InstClass, IsaKind, MemAccess, MemKind, TraceSink,
};
use mom_mem::MemModelKind;
use proptest::prelude::*;

/// Decode one generated tuple into a dynamic instruction covering every
/// instruction class, vector occupancy, spilled `MemList`s and both branch
/// outcomes (the same shape as `proptest_stream.rs`).
fn decode_inst(index: usize, sel: usize, bits: u64, elems: u16, flag: bool) -> DynInst {
    let pc = bits >> 48 & 0x3f;
    let ra = (bits & 31) as u8;
    let rb = (bits >> 5 & 31) as u8;
    let rd = (bits >> 10 & 31) as u8;
    match sel % 8 {
        0 => DynInst::new(InstClass::IntSimple, pc)
            .with_src(ArchReg::int(ra))
            .with_src(ArchReg::int(rb))
            .with_dst(ArchReg::int(rd)),
        1 => DynInst::new(InstClass::IntComplex, pc)
            .with_src(ArchReg::int(ra))
            .with_dst(ArchReg::int(rd)),
        2 => DynInst::new(InstClass::MediaSimple, pc)
            .with_src(ArchReg::media(ra % 8))
            .with_dst(ArchReg::mom(rd % 16))
            .with_elems(elems),
        3 => DynInst::new(InstClass::MediaComplex, pc)
            .with_src(ArchReg::mom_acc(ra % 2))
            .with_src(ArchReg::mom(rb % 16))
            .with_dst(ArchReg::mom_acc(ra % 2))
            .with_elems(elems),
        4 => {
            let n = if flag { elems } else { 1 };
            DynInst::new(InstClass::Load, pc)
                .with_src(ArchReg::int(ra))
                .with_dst(ArchReg::int(rd))
                .with_elems(n)
                .with_mem(
                    (0..n as u64)
                        .map(|k| MemAccess {
                            addr: (bits & 0xffff) * 8 + k * 16 + index as u64,
                            size: 8,
                            kind: MemKind::Load,
                        })
                        .collect::<Vec<_>>(),
                )
        }
        5 => DynInst::new(InstClass::Store, pc).with_src(ArchReg::int(ra)).with_mem(vec![
            MemAccess { addr: (bits & 0xffff) * 4, size: 4, kind: MemKind::Store },
        ]),
        6 => DynInst::new(InstClass::Branch, pc).with_branch(BranchInfo {
            taken: flag,
            conditional: bits & 1 == 0,
            pc,
            target: bits >> 40 & 0x3f,
        }),
        _ => DynInst::new(InstClass::Nop, pc),
    }
}

/// The machine grid one broadcast fans out to: a mix of widths, memory
/// latencies and a ROB override, like a real `(workload, isa)` group of the
/// sweep experiment.
fn descriptors() -> Vec<MachineDescriptor> {
    vec![
        MachineDescriptor::for_cell(1, IsaKind::Mom, MemModelKind::Perfect { latency: 1 }),
        MachineDescriptor::for_cell(4, IsaKind::Mom, MemModelKind::Perfect { latency: 1 }),
        MachineDescriptor::for_cell(4, IsaKind::Mom, MemModelKind::Perfect { latency: 50 }),
        MachineDescriptor::for_cell(8, IsaKind::Mom, MemModelKind::Perfect { latency: 1 }).with_rob(16),
    ]
}

proptest! {
    #![proptest_config(Config::with_cases(32))]

    /// Broadcast(N sims) over an arbitrary stream == N independent runs:
    /// identical `SimResult`s (cycles, branches, mispredictions, memory
    /// retries/accesses) and identical instructions-fed accounting.
    #[test]
    fn broadcast_fanout_is_byte_identical_to_independent_runs(
        raw in prop::collection::vec((0usize..8, any::<u64>(), 1u16..=16, any::<bool>()), 0..300),
    ) {
        let insts: Vec<DynInst> = raw
            .iter()
            .enumerate()
            .map(|(i, &(sel, bits, elems, flag))| decode_inst(i, sel, bits, elems, flag))
            .collect();

        // Independent single-sink runs.
        let independent: Vec<SimResult> = descriptors()
            .iter()
            .map(|desc| {
                let mut machine = desc.build();
                let mut sim = machine.sim();
                for inst in &insts {
                    sim.feed(inst);
                }
                sim.finish()
            })
            .collect();

        // One shared pass through the broadcast.
        let mut machines: Vec<_> = descriptors().iter().map(|d| d.build()).collect();
        let fanned: Vec<SimResult> = {
            let streams: Vec<_> = machines.iter_mut().map(|m| m.sim()).collect();
            let mut fan = Broadcast::new(streams);
            for inst in &insts {
                fan.emit(inst.clone());
            }
            let children = fan.into_inner();
            for child in &children {
                prop_assert_eq!(child.fed(), insts.len(), "fuel accounting diverged");
            }
            children.into_iter().map(|s| s.finish()).collect()
        };

        prop_assert_eq!(independent, fanned);
    }

    /// The pipelined channel stage == the serial `Broadcast`: publishing the
    /// same arbitrary stream through a `BatchSink` into per-member bounded
    /// channels, with each member consuming on its own thread via
    /// `SimMachine::consume_batches`, is byte-identical to the serial
    /// broadcast for every batch size and channel capacity — including the
    /// degenerate batch-of-1 / capacity-1 pipeline.
    #[test]
    fn pipelined_channel_stage_matches_serial_broadcast(
        raw in prop::collection::vec((0usize..8, any::<u64>(), 1u16..=16, any::<bool>()), 0..300),
        batch_insts in 1usize..=48,
        capacity in 1usize..=4,
    ) {
        let insts: Vec<DynInst> = raw
            .iter()
            .enumerate()
            .map(|(i, &(sel, bits, elems, flag))| decode_inst(i, sel, bits, elems, flag))
            .collect();

        // Serial broadcast reference.
        let serial: Vec<SimResult> = {
            let mut machines: Vec<_> = descriptors().iter().map(|d| d.build()).collect();
            let streams: Vec<_> = machines.iter_mut().map(|m| m.sim()).collect();
            let mut fan = Broadcast::new(streams);
            for inst in &insts {
                fan.emit(inst.clone());
            }
            fan.into_inner().into_iter().map(|s| s.finish()).collect()
        };

        // Pipelined: one producer thread (this one) feeding a BatchSink, one
        // consumer thread per member draining its bounded channel.
        let pipelined: Vec<SimResult> = {
            let mut senders = Vec::new();
            let mut receivers = Vec::new();
            for _ in descriptors() {
                let (tx, rx) = batch_channel(capacity);
                senders.push(tx);
                receivers.push(rx);
            }
            let mut sink = BatchSink::new(senders, batch_insts);
            let insts_ref = &insts;
            std::thread::scope(|scope| {
                let handles: Vec<_> = descriptors()
                    .into_iter()
                    .zip(receivers)
                    .map(|(desc, rx)| {
                        scope.spawn(move || {
                            let mut machine = desc.build();
                            machine.consume_batches(&rx)
                        })
                    })
                    .collect();
                for inst in insts_ref {
                    sink.emit(inst.clone());
                }
                sink.finish();
                handles.into_iter().map(|h| h.join().expect("consumer panicked")).collect()
            })
        };

        prop_assert_eq!(serial, pipelined);
    }
}

/// The degenerate pipeline — one-instruction batches through capacity-1
/// channels — forces a channel hand-off per instruction and maximum
/// backpressure. Kept as a plain unit test so the edge case runs even when
/// `PROPTEST_CASES` trims the random sweep.
#[test]
fn batch_of_one_capacity_of_one_pipeline_is_exact() {
    let insts: Vec<DynInst> =
        (0..97).map(|i| decode_inst(i, i % 8, 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1), (i % 16) as u16 + 1, i % 3 == 0)).collect();

    let serial: Vec<SimResult> = descriptors()
        .iter()
        .map(|desc| {
            let mut machine = desc.build();
            let mut sim = machine.sim();
            for inst in &insts {
                sim.feed(inst);
            }
            sim.finish()
        })
        .collect();

    let mut senders = Vec::new();
    let mut receivers = Vec::new();
    for _ in descriptors() {
        let (tx, rx) = batch_channel(1);
        senders.push(tx);
        receivers.push(rx);
    }
    let mut sink = BatchSink::new(senders, 1);
    let insts_ref = &insts;
    let pipelined: Vec<SimResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = descriptors()
            .into_iter()
            .zip(receivers)
            .map(|(desc, rx)| {
                scope.spawn(move || {
                    let mut machine = desc.build();
                    machine.consume_batches(&rx)
                })
            })
            .collect();
        for inst in insts_ref {
            sink.emit(inst.clone());
        }
        sink.finish();
        handles.into_iter().map(|h| h.join().expect("consumer panicked")).collect()
    });

    assert_eq!(serial, pipelined);
}
