//! Property-based equivalence of the broadcast fan-out: feeding one
//! arbitrary `DynInst` stream through `Broadcast([sim1..simN])` must be
//! byte-identical — cycles, all statistics, instructions fed — to running
//! the same stream through each simulator independently. This is the
//! correctness foundation of the shared-functional-pass experiment runner:
//! one interpretation, N timing simulations, no observable difference.

use mom_cpu::{MachineDescriptor, SimResult};
use mom_isa::trace::{
    ArchReg, BranchInfo, Broadcast, DynInst, InstClass, IsaKind, MemAccess, MemKind, TraceSink,
};
use mom_mem::MemModelKind;
use proptest::prelude::*;

/// Decode one generated tuple into a dynamic instruction covering every
/// instruction class, vector occupancy, spilled `MemList`s and both branch
/// outcomes (the same shape as `proptest_stream.rs`).
fn decode_inst(index: usize, sel: usize, bits: u64, elems: u16, flag: bool) -> DynInst {
    let pc = bits >> 48 & 0x3f;
    let ra = (bits & 31) as u8;
    let rb = (bits >> 5 & 31) as u8;
    let rd = (bits >> 10 & 31) as u8;
    match sel % 8 {
        0 => DynInst::new(InstClass::IntSimple, pc)
            .with_src(ArchReg::int(ra))
            .with_src(ArchReg::int(rb))
            .with_dst(ArchReg::int(rd)),
        1 => DynInst::new(InstClass::IntComplex, pc)
            .with_src(ArchReg::int(ra))
            .with_dst(ArchReg::int(rd)),
        2 => DynInst::new(InstClass::MediaSimple, pc)
            .with_src(ArchReg::media(ra % 8))
            .with_dst(ArchReg::mom(rd % 16))
            .with_elems(elems),
        3 => DynInst::new(InstClass::MediaComplex, pc)
            .with_src(ArchReg::mom_acc(ra % 2))
            .with_src(ArchReg::mom(rb % 16))
            .with_dst(ArchReg::mom_acc(ra % 2))
            .with_elems(elems),
        4 => {
            let n = if flag { elems } else { 1 };
            DynInst::new(InstClass::Load, pc)
                .with_src(ArchReg::int(ra))
                .with_dst(ArchReg::int(rd))
                .with_elems(n)
                .with_mem(
                    (0..n as u64)
                        .map(|k| MemAccess {
                            addr: (bits & 0xffff) * 8 + k * 16 + index as u64,
                            size: 8,
                            kind: MemKind::Load,
                        })
                        .collect::<Vec<_>>(),
                )
        }
        5 => DynInst::new(InstClass::Store, pc).with_src(ArchReg::int(ra)).with_mem(vec![
            MemAccess { addr: (bits & 0xffff) * 4, size: 4, kind: MemKind::Store },
        ]),
        6 => DynInst::new(InstClass::Branch, pc).with_branch(BranchInfo {
            taken: flag,
            conditional: bits & 1 == 0,
            pc,
            target: bits >> 40 & 0x3f,
        }),
        _ => DynInst::new(InstClass::Nop, pc),
    }
}

/// The machine grid one broadcast fans out to: a mix of widths, memory
/// latencies and a ROB override, like a real `(workload, isa)` group of the
/// sweep experiment.
fn descriptors() -> Vec<MachineDescriptor> {
    vec![
        MachineDescriptor::for_cell(1, IsaKind::Mom, MemModelKind::Perfect { latency: 1 }),
        MachineDescriptor::for_cell(4, IsaKind::Mom, MemModelKind::Perfect { latency: 1 }),
        MachineDescriptor::for_cell(4, IsaKind::Mom, MemModelKind::Perfect { latency: 50 }),
        MachineDescriptor::for_cell(8, IsaKind::Mom, MemModelKind::Perfect { latency: 1 }).with_rob(16),
    ]
}

proptest! {
    #![proptest_config(Config::with_cases(32))]

    /// Broadcast(N sims) over an arbitrary stream == N independent runs:
    /// identical `SimResult`s (cycles, branches, mispredictions, memory
    /// retries/accesses) and identical instructions-fed accounting.
    #[test]
    fn broadcast_fanout_is_byte_identical_to_independent_runs(
        raw in prop::collection::vec((0usize..8, any::<u64>(), 1u16..=16, any::<bool>()), 0..300),
    ) {
        let insts: Vec<DynInst> = raw
            .iter()
            .enumerate()
            .map(|(i, &(sel, bits, elems, flag))| decode_inst(i, sel, bits, elems, flag))
            .collect();

        // Independent single-sink runs.
        let independent: Vec<SimResult> = descriptors()
            .iter()
            .map(|desc| {
                let mut machine = desc.build();
                let mut sim = machine.sim();
                for inst in &insts {
                    sim.feed(inst);
                }
                sim.finish()
            })
            .collect();

        // One shared pass through the broadcast.
        let mut machines: Vec<_> = descriptors().iter().map(|d| d.build()).collect();
        let fanned: Vec<SimResult> = {
            let streams: Vec<_> = machines.iter_mut().map(|m| m.sim()).collect();
            let mut fan = Broadcast::new(streams);
            for inst in &insts {
                fan.emit(inst.clone());
            }
            let children = fan.into_inner();
            for child in &children {
                prop_assert_eq!(child.fed(), insts.len(), "fuel accounting diverged");
            }
            children.into_iter().map(|s| s.finish()).collect()
        };

        prop_assert_eq!(independent, fanned);
    }
}
