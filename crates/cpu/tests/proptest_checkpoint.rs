//! Property-based pinning of the checkpoint machinery: for arbitrary dynamic
//! instruction streams on every ISA, machine width and memory model, a
//! [`Checkpoint`] built mid-run (a) survives `to_bytes → from_bytes →
//! to_bytes` byte-identically and (b) resumes into a **fresh** machine that
//! finishes the run bit-identically to an uninterrupted one — `SimResult`,
//! attribution report and memory statistics all included. These are the two
//! properties the sampled execution mode leans on: checkpoint files must be
//! reproducible artifacts, and a resumed cell must be indistinguishable from
//! one that never stopped.

use mom_cpu::{AttributionProbe, Checkpoint, MachineDescriptor};
use mom_isa::codec::{Decoder, Encoder};
use mom_isa::trace::{ArchReg, BranchInfo, DynInst, InstClass, IsaKind, MemAccess, MemKind};
use mom_mem::MemModelKind;
use proptest::prelude::*;

const WIDTHS: [usize; 4] = [1, 2, 4, 8];
const ISAS: [IsaKind; 4] = [IsaKind::Alpha, IsaKind::Mmx, IsaKind::Mdmx, IsaKind::Mom];

/// Decode one generated tuple into a dynamic instruction. The mix covers the
/// state the checkpoint must carry: predictor tables (branches), cache tags
/// and MSHRs (loads/stores), media occupancy and the accumulator recurrence
/// (rename headroom), plus plain ALU traffic.
fn decode_inst(index: usize, sel: usize, bits: u64, elems: u16, flag: bool) -> DynInst {
    let pc = bits >> 48 & 0x3f;
    let ra = (bits & 31) as u8;
    let rd = (bits >> 5 & 31) as u8;
    match sel % 8 {
        0 => DynInst::new(InstClass::IntSimple, pc)
            .with_src(ArchReg::int(ra))
            .with_dst(ArchReg::int(rd)),
        1 => DynInst::new(InstClass::IntComplex, pc)
            .with_src(ArchReg::int(ra))
            .with_dst(ArchReg::int(rd)),
        2 => DynInst::new(InstClass::MediaSimple, pc)
            .with_src(ArchReg::media(ra % 8))
            .with_dst(ArchReg::mom(rd % 16))
            .with_elems(elems),
        3 => DynInst::new(InstClass::MediaComplex, pc)
            .with_src(ArchReg::mom_acc(ra % 2))
            .with_src(ArchReg::mom(rd % 16))
            .with_dst(ArchReg::mom_acc(ra % 2))
            .with_elems(elems),
        4 => DynInst::new(InstClass::Load, pc)
            .with_src(ArchReg::int(ra))
            .with_dst(ArchReg::int(rd))
            .with_mem(vec![MemAccess {
                addr: (bits & 0xffff) * 8 + index as u64,
                size: 8,
                kind: MemKind::Load,
            }]),
        5 => DynInst::new(InstClass::Store, pc).with_src(ArchReg::int(ra)).with_mem(vec![
            MemAccess { addr: (bits & 0xffff) * 4, size: 4, kind: MemKind::Store },
        ]),
        6 => DynInst::new(InstClass::Branch, pc).with_branch(BranchInfo {
            taken: flag,
            conditional: bits & 1 == 0,
            pc,
            target: bits >> 40 & 0x3f,
        }),
        _ => DynInst::new(InstClass::Nop, pc),
    }
}

/// Feed a prefix on a fresh machine, pack the warm state into a
/// [`Checkpoint`] exactly the way the lab runner does (engine + probe bytes
/// in `sim_state`, memory bytes in `mem_state`).
fn checkpoint_after_prefix(
    desc: &MachineDescriptor,
    prefix: &[DynInst],
    arch_state: Vec<u8>,
) -> Checkpoint {
    let mut machine = desc.build();
    let mut sim = machine.sim_probed();
    for inst in prefix {
        sim.feed(inst);
    }
    let (_, probe) = sim.finish_probed();
    let mut sim_state = Encoder::new();
    machine.save_engine_state(&mut sim_state);
    probe.save_state(&mut sim_state);
    let mut mem_state = Encoder::new();
    machine.save_mem_state(&mut mem_state);
    Checkpoint {
        arch_state,
        sim_state: sim_state.into_bytes(),
        mem_state: mem_state.into_bytes(),
        inst_index: prefix.len() as u64,
    }
}

proptest! {
    // Each case runs the trace twice (continuous + resumed) over a real
    // cache hierarchy; 40 cases keep the suite CI-friendly.
    #![proptest_config(Config::with_cases(40))]

    #[test]
    fn checkpoints_roundtrip_and_resume_bit_identically(
        raw in prop::collection::vec(
            (0usize..8, any::<u64>(), 1u16..=16, any::<bool>()),
            0..400,
        ),
        split_sel in any::<u64>(),
        way_idx in 0usize..4,
        isa_idx in 0usize..4,
        mem_sel in 0usize..4,
        arch_state in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let insts: Vec<DynInst> = raw
            .iter()
            .enumerate()
            .map(|(i, &(sel, bits, elems, flag))| decode_inst(i, sel, bits, elems, flag))
            .collect();
        let split = (split_sel as usize) % (insts.len() + 1);
        let mem = match mem_sel {
            0 => MemModelKind::Perfect { latency: 1 + (raw.len() as u64 % 7) },
            1 => MemModelKind::Conventional,
            2 => MemModelKind::MultiAddress,
            _ => MemModelKind::VectorCache,
        };
        let desc = MachineDescriptor::for_cell(WIDTHS[way_idx], ISAS[isa_idx], mem);

        // The uninterrupted reference run.
        let mut continuous = desc.build();
        let mut sim = continuous.sim_probed();
        for inst in &insts {
            sim.feed(inst);
        }
        let (expected, probe) = sim.finish_probed();
        let expected_report = probe.into_report();

        // Property (a): the serialized checkpoint is a reproducible artifact.
        let ckpt = checkpoint_after_prefix(&desc, &insts[..split], arch_state);
        let bytes = ckpt.to_bytes();
        let decoded = Checkpoint::from_bytes(&bytes).expect("own bytes decode");
        prop_assert_eq!(&decoded, &ckpt);
        prop_assert_eq!(decoded.to_bytes(), bytes.clone(), "encode → decode → encode drifted");
        prop_assert_eq!(decoded.inst_index, split as u64);

        // Property (b): restoring the DECODED checkpoint into a fresh
        // machine and feeding the suffix matches the uninterrupted run.
        let mut resumed = desc.build();
        let mut d = Decoder::new(&decoded.sim_state);
        resumed.load_engine_state(&mut d).expect("engine state restores");
        let probe = AttributionProbe::load_state(&mut d).expect("probe state restores");
        d.finish("sim state").expect("no trailing engine bytes");
        let mut d = Decoder::new(&decoded.mem_state);
        resumed.load_mem_state(&mut d).expect("memory state restores");
        d.finish("mem state").expect("no trailing memory bytes");

        let mut sim = resumed.sim_probed_with(probe);
        for inst in &insts[split..] {
            sim.feed(inst);
        }
        let (result, probe) = sim.finish_probed();
        prop_assert_eq!(result, expected, "resumed run diverged");
        prop_assert_eq!(probe.into_report(), expected_report, "attribution diverged");
        prop_assert_eq!(resumed.mem_stats(), continuous.mem_stats(), "memory stats diverged");
    }
}
