//! Property-based equivalence of the streaming and materialized simulation
//! paths: for arbitrary generated instruction sequences *and* arbitrary
//! generated interpreted programs, feeding the simulator one instruction at a
//! time (push via `SimStream`, pull via `InstSource`) produces a `SimResult`
//! identical to replaying the collected trace through `OooCore::simulate`.

use mom_core::program::ProgramBuilder;
use mom_core::state::Machine;
use mom_cpu::{CoreConfig, OooCore, SimResult};
use mom_isa::mem::MemImage;
use mom_isa::regs::r;
use mom_isa::scalar::{AluOp, ScalarOp};
use mom_isa::trace::{
    ArchReg, BranchInfo, DynInst, InstClass, IsaKind, MemAccess, MemKind, Trace, TraceSink,
};
use mom_mem::{build_memory, MemModelKind, MemorySystem};
use proptest::prelude::*;

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Decode one generated 4-tuple into a dynamic instruction covering every
/// instruction class, register class (including the MOM matrix registers and
/// accumulator recurrences that stress rename headroom), multi-element
/// vector occupancy, spilled `MemList`s and both branch outcomes.
fn decode_inst(index: usize, sel: usize, bits: u64, elems: u16, flag: bool) -> DynInst {
    let pc = bits >> 48 & 0x3f;
    let ra = (bits & 31) as u8;
    let rb = (bits >> 5 & 31) as u8;
    let rd = (bits >> 10 & 31) as u8;
    match sel % 10 {
        0 => DynInst::new(InstClass::IntSimple, pc)
            .with_src(ArchReg::int(ra))
            .with_src(ArchReg::int(rb))
            .with_dst(ArchReg::int(rd)),
        1 => DynInst::new(InstClass::IntComplex, pc)
            .with_src(ArchReg::int(ra))
            .with_dst(ArchReg::int(rd)),
        2 => DynInst::new(InstClass::FpSimple, pc)
            .with_src(ArchReg::new(mom_isa::trace::RegClass::Fp, ra))
            .with_dst(ArchReg::new(mom_isa::trace::RegClass::Fp, rd)),
        3 => DynInst::new(InstClass::FpComplex, pc)
            .with_dst(ArchReg::new(mom_isa::trace::RegClass::Fp, rd)),
        4 => DynInst::new(InstClass::MediaSimple, pc)
            .with_src(ArchReg::media(ra % 8))
            .with_dst(ArchReg::mom(rd % 16))
            .with_elems(elems),
        // The MDMX/MOM accumulator recurrence: acc is both source and dest.
        5 => DynInst::new(InstClass::MediaComplex, pc)
            .with_src(ArchReg::mom_acc(ra % 2))
            .with_src(ArchReg::mom(rb % 16))
            .with_dst(ArchReg::mom_acc(ra % 2))
            .with_elems(elems),
        6 => {
            let n = if flag { elems } else { 1 };
            DynInst::new(InstClass::Load, pc)
                .with_src(ArchReg::int(ra))
                .with_dst(ArchReg::int(rd))
                .with_elems(n)
                .with_mem(
                    (0..n as u64)
                        .map(|k| MemAccess {
                            addr: (bits & 0xffff) * 8 + k * 16 + index as u64,
                            size: 8,
                            kind: MemKind::Load,
                        })
                        .collect::<Vec<_>>(),
                )
        }
        7 => DynInst::new(InstClass::Store, pc).with_src(ArchReg::int(ra)).with_mem(vec![
            MemAccess { addr: (bits & 0xffff) * 4, size: 4, kind: MemKind::Store },
        ]),
        8 => DynInst::new(InstClass::Branch, pc).with_branch(BranchInfo {
            taken: flag,
            conditional: bits & 1 == 0,
            pc,
            target: bits >> 40 & 0x3f,
        }),
        _ => DynInst::new(InstClass::Nop, pc),
    }
}

fn memory_for(way: usize, latency: u64) -> Box<dyn MemorySystem> {
    build_memory(MemModelKind::Perfect { latency }, way)
}

/// The three consumption styles of the same sequence must agree exactly.
fn assert_stream_equivalence(insts: Vec<DynInst>, core: &OooCore, latency: u64) -> (SimResult, SimResult, SimResult) {
    let way = core.config().way;
    let collected: Trace = insts.iter().cloned().collect();

    let mut mem = memory_for(way, latency);
    let batch = core.simulate(&collected, mem.as_mut());

    let mut mem = memory_for(way, latency);
    let mut source = insts.iter().cloned();
    let pulled = core.simulate_source(&mut source, mem.as_mut());

    let mut mem = memory_for(way, latency);
    let mut sim = core.stream(mem.as_mut());
    for inst in insts {
        sim.emit(inst);
    }
    let pushed = sim.finish();

    (batch, pulled, pushed)
}

proptest! {
    // Each case simulates a few hundred instructions three times over; 48
    // cases keep the suite CI-friendly. `PROPTEST_CASES` overrides it.
    #![proptest_config(Config::with_cases(48))]

    #[test]
    fn arbitrary_instruction_streams_simulate_identically(
        raw in prop::collection::vec((0usize..10, proptest::prelude::any::<u64>(), 1u16..=16, proptest::prelude::any::<bool>()), 0..400),
        way_idx in 0usize..4,
        latency in 1u64..8,
    ) {
        let insts: Vec<DynInst> = raw
            .iter()
            .enumerate()
            .map(|(i, &(sel, bits, elems, flag))| decode_inst(i, sel, bits, elems, flag))
            .collect();
        let n = insts.len() as u64;
        let core = OooCore::new(CoreConfig::for_width(WIDTHS[way_idx], IsaKind::Mom));
        let (batch, pulled, pushed) = assert_stream_equivalence(insts, &core, latency);
        prop_assert_eq!(batch, pulled);
        prop_assert_eq!(batch, pushed);
        prop_assert_eq!(batch.committed, n);
    }

    #[test]
    fn arbitrary_interpreted_programs_simulate_identically(
        ops in prop::collection::vec((0usize..4, proptest::prelude::any::<u64>()), 1..200),
        way_idx in 0usize..4,
    ) {
        // Generate a straight-line scalar program, interpret it twice — once
        // collecting the trace, once fused straight into the streaming
        // simulator — and require identical timing.
        let build = |ops: &[(usize, u64)]| {
            let mut b = ProgramBuilder::new(IsaKind::Alpha);
            b.push(ScalarOp::Li { rd: r(20), imm: 0x1000 }); // base pointer, outside the clobbered r1..=r16 range
            for &(sel, bits) in ops {
                let ra = r(1 + (bits & 15) as usize);
                let rd = r(1 + (bits >> 4 & 15) as usize);
                let off = (bits >> 8 & 0xfff) as i64 * 8;
                match sel {
                    0 => b.push(ScalarOp::Alu { op: AluOp::Add, rd, ra, rb: r(1 + (bits >> 20 & 15) as usize) }),
                    1 => b.push(ScalarOp::AluI { op: AluOp::Xor, rd, ra, imm: (bits >> 20) as i64 }),
                    2 => b.push(ScalarOp::Ld { rd, base: r(20), offset: off, size: 8, signed: false }),
                    _ => b.push(ScalarOp::St { rs: ra, base: r(20), offset: off, size: 8 }),
                };
            }
            b.build().expect("straight-line program always builds")
        };
        let way = WIDTHS[way_idx];
        let core = OooCore::new(CoreConfig::for_width(way, IsaKind::Alpha));
        let image = || Machine::new(MemImage::new(0x1000, 64 * 1024));

        let trace = build(&ops).run(&mut image()).expect("program terminates");
        let mut mem = memory_for(way, 2);
        let batch = core.simulate(&trace, mem.as_mut());

        let mut mem = memory_for(way, 2);
        let mut sim = core.stream(mem.as_mut());
        build(&ops).stream(&mut image(), &mut sim).expect("program terminates");
        let fused = sim.finish();

        prop_assert_eq!(batch, fused);
        prop_assert_eq!(batch.committed as usize, trace.len());
    }
}
