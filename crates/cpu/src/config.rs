//! Processor configurations (Table 1 of the paper, plus the per-ISA register
//! file parameters of Table 2).
//!
//! The modelled machine closely follows a MIPS R10000-style out-of-order core
//! with a dedicated multimedia unit and its own register file. Configurations
//! are parameterised by issue width (1-, 2-, 4- and 8-way); the 8-way machine
//! implements its multimedia and memory resources as two double-width units
//! for the MOM configuration, exactly as Table 1 describes.

use mom_isa::trace::{IsaKind, RegClass};

/// A pool of functional units of one kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuPool {
    /// Units that can execute only simple operations.
    pub simple: usize,
    /// Units that can execute both simple and complex operations.
    pub complex: usize,
    /// Vector lanes per multimedia unit (1 for scalar-width units; 2 for the
    /// 8-way MOM machine's double-width units).
    pub lanes: usize,
}

impl FuPool {
    /// Total number of units.
    pub fn total(&self) -> usize {
        self.simple + self.complex
    }
}

/// Out-of-order core configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Issue width (fetch/rename/commit width share this value).
    pub way: usize,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Load/store queue entries.
    pub lsq_size: usize,
    /// Bimodal predictor entries (2-bit counters).
    pub bimodal_entries: usize,
    /// Branch target buffer entries.
    pub btb_entries: usize,
    /// Integer functional units.
    pub int_units: FuPool,
    /// Floating-point functional units.
    pub fp_units: FuPool,
    /// Multimedia functional units.
    pub media_units: FuPool,
    /// Number of memory ports (informational; the memory model enforces it).
    pub mem_ports: usize,
    /// Front-end depth in cycles (fetch to dispatch).
    pub frontend_depth: u64,
    /// Extra penalty cycles on a branch misprediction beyond waiting for the
    /// branch to resolve.
    pub mispredict_penalty: u64,
    /// Physical registers available per register class.
    pub phys_regs: PhysRegs,
    /// Which ISA the media register file is sized for.
    pub isa: IsaKind,
}

/// Physical register counts per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysRegs {
    /// Integer physical registers.
    pub int: usize,
    /// Floating-point physical registers.
    pub fp: usize,
    /// Media (MMX/MDMX) physical registers.
    pub media: usize,
    /// MDMX accumulator physical registers.
    pub acc: usize,
    /// MOM matrix physical registers.
    pub mom: usize,
    /// MOM accumulator physical registers.
    pub mom_acc: usize,
}

impl PhysRegs {
    /// Physical registers available for the given class.
    pub fn for_class(&self, class: RegClass) -> usize {
        match class {
            RegClass::Int => self.int,
            RegClass::Fp => self.fp,
            RegClass::Media => self.media,
            RegClass::Acc => self.acc,
            RegClass::Mom => self.mom,
            RegClass::MomAcc => self.mom_acc,
        }
    }

    /// Architectural (logical) registers of the given class, per Table 2.
    pub fn logical_for_class(class: RegClass, isa: IsaKind) -> usize {
        match class {
            RegClass::Int | RegClass::Fp => 32,
            RegClass::Media => {
                if isa == IsaKind::Mom {
                    // MOM still has the scalar 64-bit media file available for
                    // accumulator read-back; it is lightly used.
                    32
                } else {
                    32
                }
            }
            RegClass::Acc => 4,
            RegClass::Mom => 16,
            RegClass::MomAcc => 2,
        }
    }
}

impl CoreConfig {
    /// Table 1 configuration for the given issue width (1, 2, 4 or 8),
    /// with the media register file sized for `isa` per Table 2.
    ///
    /// # Panics
    ///
    /// Panics if `way` is not one of 1, 2, 4, 8.
    pub fn for_width(way: usize, isa: IsaKind) -> Self {
        let (rob, lsq, bimodal, btb) = match way {
            1 => (8, 4, 512, 64),
            2 => (16, 8, 2048, 256),
            4 => (32, 16, 4096, 512),
            8 => (64, 32, 16384, 1024),
            _ => panic!("unsupported issue width {way}; expected 1, 2, 4 or 8"),
        };
        let (int_units, fp_units) = match way {
            1 => (FuPool { simple: 0, complex: 1, lanes: 1 }, FuPool { simple: 0, complex: 1, lanes: 1 }),
            2 => (FuPool { simple: 1, complex: 1, lanes: 1 }, FuPool { simple: 1, complex: 1, lanes: 1 }),
            4 => (FuPool { simple: 2, complex: 1, lanes: 1 }, FuPool { simple: 2, complex: 1, lanes: 1 }),
            _ => (FuPool { simple: 2, complex: 2, lanes: 1 }, FuPool { simple: 2, complex: 2, lanes: 1 }),
        };
        // Table 1: MED simple/complex — 0/1, 1/1, 2, 4; for the 8-way machine
        // the MOM configuration uses 2 units of width 2 instead of 4 units.
        let media_units = match (way, isa) {
            (1, _) => FuPool { simple: 0, complex: 1, lanes: 1 },
            (2, _) => FuPool { simple: 1, complex: 1, lanes: 1 },
            (4, _) => FuPool { simple: 0, complex: 2, lanes: 1 },
            (8, IsaKind::Mom) => FuPool { simple: 0, complex: 2, lanes: 2 },
            (8, _) => FuPool { simple: 0, complex: 4, lanes: 1 },
            _ => unreachable!("width validated above"),
        };
        let mem_ports = match way {
            1 | 2 => 1,
            4 => 2,
            _ => 4,
        };
        let (int_phys, fp_phys) = match way {
            1 => (40, 40),
            2 => (48, 48),
            4 => (64, 64),
            _ => (96, 96),
        };
        // Table 2 (4-way sizing, reused across widths): MMX 32/64, MDMX 32/52
        // + 4/16 accumulators, MOM 16/20 matrix + 2/4 accumulators.
        let (media_phys, acc_phys, mom_phys, mom_acc_phys) = match isa {
            IsaKind::Alpha => (40, 4, 16, 2),
            IsaKind::Mmx => (64, 4, 16, 2),
            IsaKind::Mdmx => (52, 16, 16, 2),
            IsaKind::Mom => (40, 4, 20, 4),
        };
        Self {
            way,
            rob_size: rob,
            lsq_size: lsq,
            bimodal_entries: bimodal,
            btb_entries: btb,
            int_units,
            fp_units,
            media_units,
            mem_ports,
            frontend_depth: 3,
            mispredict_penalty: 2,
            phys_regs: PhysRegs {
                int: int_phys,
                fp: fp_phys,
                media: media_phys,
                acc: acc_phys,
                mom: mom_phys,
                mom_acc: mom_acc_phys,
            },
            isa,
        }
    }

    /// The 1-way (single-issue, in-order-width) configuration.
    pub fn way1(isa: IsaKind) -> Self {
        Self::for_width(1, isa)
    }

    /// The 2-way configuration.
    pub fn way2(isa: IsaKind) -> Self {
        Self::for_width(2, isa)
    }

    /// The 4-way configuration.
    pub fn way4(isa: IsaKind) -> Self {
        Self::for_width(4, isa)
    }

    /// The 8-way configuration.
    pub fn way8(isa: IsaKind) -> Self {
        Self::for_width(8, isa)
    }

    /// Renaming headroom (physical minus logical registers) for a class;
    /// dispatch stalls when more destinations of the class are in flight.
    pub fn rename_headroom(&self, class: RegClass) -> usize {
        let phys = self.phys_regs.for_class(class);
        let logical = PhysRegs::logical_for_class(class, self.isa);
        phys.saturating_sub(logical).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_resources_scale_with_width() {
        let w1 = CoreConfig::way1(IsaKind::Alpha);
        let w2 = CoreConfig::way2(IsaKind::Alpha);
        let w4 = CoreConfig::way4(IsaKind::Alpha);
        let w8 = CoreConfig::way8(IsaKind::Alpha);
        assert_eq!((w1.rob_size, w1.lsq_size), (8, 4));
        assert_eq!((w2.rob_size, w2.lsq_size), (16, 8));
        assert_eq!((w4.rob_size, w4.lsq_size), (32, 16));
        assert_eq!((w8.rob_size, w8.lsq_size), (64, 32));
        assert_eq!(w1.bimodal_entries, 512);
        assert_eq!(w8.bimodal_entries, 16384);
        assert_eq!(w1.int_units.total(), 1);
        assert_eq!(w8.int_units.total(), 4);
        assert_eq!(w4.mem_ports, 2);
        assert_eq!(w8.mem_ports, 4);
        assert_eq!(w1.phys_regs.int, 40);
        assert_eq!(w8.phys_regs.int, 96);
    }

    #[test]
    #[should_panic]
    fn unsupported_width_panics() {
        let _ = CoreConfig::for_width(3, IsaKind::Alpha);
    }

    #[test]
    fn mom_8way_uses_two_double_width_media_units() {
        let mom = CoreConfig::way8(IsaKind::Mom);
        assert_eq!(mom.media_units.total(), 2);
        assert_eq!(mom.media_units.lanes, 2);
        let mmx = CoreConfig::way8(IsaKind::Mmx);
        assert_eq!(mmx.media_units.total(), 4);
        assert_eq!(mmx.media_units.lanes, 1);
    }

    #[test]
    fn table2_register_files_per_isa() {
        let mmx = CoreConfig::way4(IsaKind::Mmx);
        assert_eq!(mmx.phys_regs.media, 64);
        let mdmx = CoreConfig::way4(IsaKind::Mdmx);
        assert_eq!(mdmx.phys_regs.media, 52);
        assert_eq!(mdmx.phys_regs.acc, 16);
        let mom = CoreConfig::way4(IsaKind::Mom);
        assert_eq!(mom.phys_regs.mom, 20);
        assert_eq!(mom.phys_regs.mom_acc, 4);
    }

    #[test]
    fn rename_headroom_is_at_least_one() {
        let mom = CoreConfig::way4(IsaKind::Mom);
        assert_eq!(mom.rename_headroom(RegClass::Mom), 4);
        assert_eq!(mom.rename_headroom(RegClass::MomAcc), 2);
        let alpha = CoreConfig::way1(IsaKind::Alpha);
        assert_eq!(alpha.rename_headroom(RegClass::Int), 8);
        assert!(alpha.rename_headroom(RegClass::Acc) >= 1);
    }

    #[test]
    fn phys_regs_by_class() {
        let c = CoreConfig::way4(IsaKind::Mdmx);
        assert_eq!(c.phys_regs.for_class(RegClass::Int), 64);
        assert_eq!(c.phys_regs.for_class(RegClass::Acc), 16);
        assert_eq!(PhysRegs::logical_for_class(RegClass::Mom, IsaKind::Mom), 16);
        assert_eq!(PhysRegs::logical_for_class(RegClass::Acc, IsaKind::Mdmx), 4);
    }
}
