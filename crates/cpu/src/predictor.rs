//! Branch prediction: a bimodal (2-bit saturating counter) predictor plus a
//! direct-mapped branch target buffer, sized per Table 1.
//!
//! Predictor tables are part of the warm microarchitectural state a sampled
//! run must carry across checkpoints — a cold predictor would inflate the
//! misprediction rate of every measurement unit — so [`BranchPredictor`]
//! serializes its complete state through the checkpoint codec.

use mom_isa::codec::{CodecError, Decoder, Encoder};

/// Direct-mapped table index for a branch PC: `pc mod len`, computed with a
/// mask when the table size is a power of two (every Table 1 configuration
/// is). The predictor is consulted once per dynamic branch, which makes the
/// integer division measurable on branchy traces; the mask form computes the
/// same index.
#[inline]
fn table_index(pc: u64, len: usize) -> usize {
    if len.is_power_of_two() {
        (pc as usize) & (len - 1)
    } else {
        (pc % len as u64) as usize
    }
}

/// A table of 2-bit saturating counters indexed by the branch PC.
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    counters: Vec<u8>,
}

impl BimodalPredictor {
    /// Create a predictor with `entries` counters, initialised to weakly taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "predictor must have at least one entry");
        Self { counters: vec![2; entries] }
    }

    fn index(&self, pc: u64) -> usize {
        table_index(pc, self.counters.len())
    }

    /// Predict whether the branch at `pc` is taken.
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Update the counter with the actual outcome.
    #[inline]
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// A direct-mapped branch target buffer.
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>, // (pc, target)
}

impl Btb {
    /// Create a BTB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "BTB must have at least one entry");
        Self { entries: vec![None; entries] }
    }

    fn index(&self, pc: u64) -> usize {
        table_index(pc, self.entries.len())
    }

    /// Look up the predicted target for the branch at `pc`.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        match self.entries[self.index(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Record the target of a taken branch.
    pub fn update(&mut self, pc: u64, target: u64) {
        let idx = self.index(pc);
        self.entries[idx] = Some((pc, target));
    }
}

/// Combined front-end predictor: direction from the bimodal table, target from
/// the BTB. A taken prediction without a BTB hit cannot redirect fetch in time
/// and therefore behaves like a misprediction.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    bimodal: BimodalPredictor,
    btb: Btb,
    /// Number of predictions made.
    pub predictions: u64,
    /// Number of mispredictions (wrong direction, or taken without a target).
    pub mispredictions: u64,
}

impl BranchPredictor {
    /// Create a predictor with the given table sizes.
    pub fn new(bimodal_entries: usize, btb_entries: usize) -> Self {
        Self {
            bimodal: BimodalPredictor::new(bimodal_entries),
            btb: Btb::new(btb_entries),
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Predict the branch at `pc` and update the tables with the actual
    /// outcome. Returns `true` if the prediction was correct (fetch continues
    /// uninterrupted), `false` on a misprediction.
    #[inline]
    pub fn predict_and_update(&mut self, pc: u64, conditional: bool, taken: bool, target: u64) -> bool {
        self.predictions += 1;
        let dir_prediction = if conditional { self.bimodal.predict(pc) } else { true };
        let btb_target = self.btb.lookup(pc);

        let correct = if taken {
            dir_prediction && btb_target == Some(target)
        } else {
            !dir_prediction
        };

        if conditional {
            self.bimodal.update(pc, taken);
        }
        if taken {
            self.btb.update(pc, target);
        }
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// The (bimodal, BTB) table sizes this predictor was built with — used
    /// by the simulator to validate that a reusable engine state matches a
    /// core configuration before streaming into it.
    pub fn table_sizes(&self) -> (usize, usize) {
        (self.bimodal.counters.len(), self.btb.entries.len())
    }

    /// Restore the tables to their just-built state (counters weakly taken,
    /// BTB empty, counts zeroed) without reallocating. Part of the simulator
    /// `reset()` path that lets machines be reused across experiment cells.
    pub fn reset(&mut self) {
        self.bimodal.counters.fill(2);
        self.btb.entries.fill(None);
        self.predictions = 0;
        self.mispredictions = 0;
    }

    /// Serialize the complete predictor state — counters, BTB entries and
    /// prediction counts — through the checkpoint codec.
    pub fn save_state(&self, e: &mut Encoder) {
        e.usize(self.bimodal.counters.len());
        e.raw(&self.bimodal.counters);
        e.usize(self.btb.entries.len());
        for entry in &self.btb.entries {
            match entry {
                Some((pc, target)) => {
                    e.bool(true);
                    e.u64(*pc);
                    e.u64(*target);
                }
                None => e.bool(false),
            }
        }
        e.u64(self.predictions);
        e.u64(self.mispredictions);
    }

    /// Restore state written by [`BranchPredictor::save_state`] into this
    /// predictor.
    ///
    /// # Errors
    ///
    /// Fails if the stream is truncated, was written by a predictor with
    /// different table sizes, or carries an out-of-range saturating counter.
    pub fn load_state(&mut self, d: &mut Decoder<'_>) -> Result<(), CodecError> {
        d.expect_u64(self.bimodal.counters.len() as u64, "bimodal table size")?;
        let counters = d.raw(self.bimodal.counters.len(), "bimodal counters")?;
        if counters.iter().any(|&c| c > 3) {
            return Err(CodecError::Invalid { what: "bimodal counter" });
        }
        self.bimodal.counters.copy_from_slice(counters);
        d.expect_u64(self.btb.entries.len() as u64, "btb size")?;
        for entry in &mut self.btb.entries {
            *entry = if d.bool("btb entry presence")? {
                Some((d.u64("btb pc")?, d.u64("btb target")?))
            } else {
                None
            };
        }
        self.predictions = d.u64("branch predictions")?;
        self.mispredictions = d.u64("branch mispredictions")?;
        Ok(())
    }

    /// Misprediction ratio in [0, 1].
    pub fn misprediction_ratio(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_a_biased_branch() {
        let mut p = BimodalPredictor::new(16);
        for _ in 0..4 {
            p.update(5, false);
        }
        assert!(!p.predict(5));
        for _ in 0..2 {
            p.update(5, true);
        }
        assert!(p.predict(5));
    }

    #[test]
    fn bimodal_counters_saturate() {
        let mut p = BimodalPredictor::new(4);
        for _ in 0..10 {
            p.update(1, true);
        }
        p.update(1, false);
        assert!(p.predict(1), "one not-taken outcome does not flip a saturated counter");
    }

    #[test]
    fn btb_stores_and_aliases() {
        let mut b = Btb::new(4);
        assert_eq!(b.lookup(3), None);
        b.update(3, 100);
        assert_eq!(b.lookup(3), Some(100));
        // PC 7 aliases to the same slot (index 3) and evicts it.
        b.update(7, 200);
        assert_eq!(b.lookup(3), None);
        assert_eq!(b.lookup(7), Some(200));
    }

    #[test]
    fn loop_branch_is_learned_quickly() {
        let mut bp = BranchPredictor::new(64, 16);
        let mut correct = 0;
        // A loop branch taken 99 times then falling through once.
        for i in 0..100 {
            let taken = i != 99;
            if bp.predict_and_update(10, true, taken, 3) {
                correct += 1;
            }
        }
        assert!(correct >= 96, "only {correct} correct predictions");
        assert!(bp.misprediction_ratio() < 0.05);
    }

    #[test]
    fn unconditional_jump_needs_btb_warmup() {
        let mut bp = BranchPredictor::new(64, 16);
        assert!(!bp.predict_and_update(20, false, true, 5), "first sighting has no BTB target");
        assert!(bp.predict_and_update(20, false, true, 5), "second sighting hits the BTB");
    }
}
