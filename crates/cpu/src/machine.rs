//! The declarative machine-model layer: one value that fully describes a
//! simulated machine, and one object that instantiates it.
//!
//! Before this module existed, every experiment assembled its machines by
//! hand — a [`CoreConfig`] here, a `build_memory` call there, default
//! [`Latencies`] implied — and the pieces lived in different crates with no
//! single value to hash, print or sweep over. A [`MachineDescriptor`] is that
//! value: core organisation, execution latencies, memory system and register
//! files in one place. [`MachineDescriptor::build`] turns it into a
//! [`SimMachine`] — an owned core + memory + engine state — and
//! [`SimMachine::reset`] returns a used machine to its just-built state
//! without reallocating predictor tables, ring buffers or cache arrays, so
//! the experiment runner can reuse machines across grid cells.

use crate::config::{CoreConfig, PhysRegs};
use crate::core::{Latencies, OooCore, SimResult, SimState, SimStream};
use crate::probe::{AttributionProbe, ProbeReport};
use mom_isa::codec::{CodecError, Decoder, Encoder};
use mom_isa::pipe::BatchReceiver;
use mom_isa::trace::{IsaKind, Trace};
use mom_mem::{build_memory, MemModelKind, MemSystemStats, MemorySystem};

/// Register-file section of a machine description: the physical register
/// pool per class.
///
/// [`CoreConfig`] carries the Table 1/2 defaults; the descriptor keeps its
/// own copy so a design-space sweep can vary register files independently of
/// the core organisation. At [`MachineDescriptor::build`] time this section
/// is authoritative — it overwrites the core's `phys_regs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegFileConfig {
    /// Physical registers available per register class.
    pub phys: PhysRegs,
}

/// A complete, declarative description of one simulated machine.
///
/// Everything a grid cell needs to instantiate its simulator lives here:
///
/// * `core` — the out-of-order organisation (issue width, ROB/LSQ, predictor
///   tables, functional units) of Table 1;
/// * `latencies` — per-class execution latencies;
/// * `mem` — which memory system to build (ports sized for `core.way`);
/// * `regs` — the physical register files of Table 2.
///
/// Two descriptors compare equal exactly when they describe the same
/// machine, which is what lets the runner pool and reuse instantiated
/// machines across cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineDescriptor {
    /// Core organisation (Table 1 for the standard widths).
    pub core: CoreConfig,
    /// Execution latencies per functional-unit class.
    pub latencies: Latencies,
    /// Memory system to attach.
    pub mem: MemModelKind,
    /// Physical register files (authoritative over `core.phys_regs`).
    pub regs: RegFileConfig,
}

impl MachineDescriptor {
    /// The descriptor of a standard grid cell: the Table 1 configuration for
    /// `way` with register files sized for `isa`, default latencies, and the
    /// named memory system. This is the single definition every experiment
    /// shares — the ad-hoc per-experiment assembly it replaced built exactly
    /// this machine.
    pub fn for_cell(way: usize, isa: IsaKind, mem: MemModelKind) -> Self {
        let core = CoreConfig::for_width(way, isa);
        Self { regs: RegFileConfig { phys: core.phys_regs }, latencies: Latencies::default(), mem, core }
    }

    /// Override the reorder-buffer size (the design-space `sweep` dimension).
    #[must_use = "builder methods return the modified descriptor"]
    pub fn with_rob(mut self, rob_size: usize) -> Self {
        self.core.rob_size = rob_size.max(1);
        self
    }

    /// Override the execution latencies.
    #[must_use = "builder methods return the modified descriptor"]
    pub fn with_latencies(mut self, latencies: Latencies) -> Self {
        self.latencies = latencies;
        self
    }

    /// One-line human-readable summary (used by `momlab describe`).
    pub fn summary(&self) -> String {
        let c = &self.core;
        let r = &self.regs.phys;
        let mem = match self.mem {
            // The latency is part of the machine: "perfect-50", not "perfect".
            MemModelKind::Perfect { latency } => format!("perfect-{latency}"),
            other => other.label().to_string(),
        };
        format!(
            "{}-way {} rob={} lsq={} mem={} media={}s/{}c(x{}) regs=i{}/f{}/m{}/a{}/v{}/va{}",
            c.way,
            c.isa.label(),
            c.rob_size,
            c.lsq_size,
            mem,
            c.media_units.simple,
            c.media_units.complex,
            c.media_units.lanes,
            r.int,
            r.fp,
            r.media,
            r.acc,
            r.mom,
            r.mom_acc,
        )
    }

    /// Instantiate the machine this descriptor describes.
    pub fn build(&self) -> SimMachine {
        SimMachine::new(self.clone())
    }
}

/// A fully instantiated machine: core, memory system and reusable engine
/// state, owned together.
///
/// Built from a [`MachineDescriptor`], driven through [`SimMachine::sim`]
/// (a [`SimStream`] usable as a `TraceSink`), and returned to its just-built
/// state by [`SimMachine::reset`] — no reallocation of predictor tables,
/// ring buffers or cache arrays. A reset machine produces bit-identical
/// results to a freshly built one.
#[derive(Debug)]
pub struct SimMachine {
    descriptor: MachineDescriptor,
    core: OooCore,
    memory: Box<dyn MemorySystem>,
    state: SimState,
}

impl SimMachine {
    /// Instantiate the machine described by `descriptor`.
    pub fn new(descriptor: MachineDescriptor) -> Self {
        let mut config = descriptor.core.clone();
        config.phys_regs = descriptor.regs.phys;
        let memory = build_memory(descriptor.mem, config.way);
        let core = OooCore::with_latencies(config, descriptor.latencies);
        let state = core.new_state();
        Self { descriptor, core, memory, state }
    }

    /// The descriptor this machine was built from.
    pub fn descriptor(&self) -> &MachineDescriptor {
        &self.descriptor
    }

    /// The instantiated core.
    pub fn core(&self) -> &OooCore {
        &self.core
    }

    /// Statistics of the attached memory system.
    pub fn mem_stats(&self) -> MemSystemStats {
        self.memory.stats()
    }

    /// Return the machine to its just-built state (engine state and memory
    /// system both), reusing every allocation. Call between cells.
    pub fn reset(&mut self) {
        self.state.reset();
        self.memory.reset();
    }

    /// Open a streaming simulation on this machine. The returned stream is a
    /// `TraceSink`, so it can be fed by the functional interpreter directly
    /// or sit behind a `Broadcast` fan-out next to streams of sibling
    /// machines. Finishing the stream leaves the accumulated state in place;
    /// [`SimMachine::reset`] clears it for the next cell.
    pub fn sim(&mut self) -> SimStream<'_> {
        self.core.stream_with(&mut self.state, self.memory.as_mut())
    }

    /// Open a streaming simulation instrumented with a fresh
    /// [`AttributionProbe`] — identical timing to [`SimMachine::sim`], plus a
    /// per-cause [`crate::StallBreakdown`] and interval timeline available
    /// from [`SimStream::finish_probed`]. The probe is created per stream, so
    /// machine pooling/reuse never mixes attribution across cells.
    pub fn sim_probed(&mut self) -> SimStream<'_, AttributionProbe> {
        self.core.stream_with_probed(&mut self.state, self.memory.as_mut(), AttributionProbe::new())
    }

    /// Open a probed streaming simulation that **continues** an existing
    /// probe instead of creating a fresh one — the sampled-mode resume path.
    /// Together with [`SimMachine::save_engine_state`] and
    /// [`SimMachine::save_mem_state`], this lets a run be split at any stream
    /// boundary: close the stream with [`SimStream::finish_probed`] to get
    /// the probe back, checkpoint, and reopen here with the restored probe —
    /// the reopened stream retires instructions bit-identically to one that
    /// was never closed.
    pub fn sim_probed_with(&mut self, probe: AttributionProbe) -> SimStream<'_, AttributionProbe> {
        self.core.stream_with_probed(&mut self.state, self.memory.as_mut(), probe)
    }

    /// Serialize the engine state (predictor, scoreboard, histories,
    /// counters) through the checkpoint codec. Callable only between streams
    /// — an open [`SimStream`] borrows the state mutably.
    pub fn save_engine_state(&self, e: &mut Encoder) {
        self.state.save_state(e);
    }

    /// Restore engine state written by [`SimMachine::save_engine_state`].
    ///
    /// # Errors
    ///
    /// Fails with a [`CodecError`] on a truncated stream or a snapshot from a
    /// differently configured machine; the machine should be [`reset`] (or
    /// discarded) after a failed restore.
    ///
    /// [`reset`]: SimMachine::reset
    pub fn load_engine_state(&mut self, d: &mut Decoder<'_>) -> Result<(), CodecError> {
        self.state.load_state(d)
    }

    /// Serialize the warm memory-system state (tags, MSHRs, buffered stores,
    /// channel occupancy, statistics) through the checkpoint codec.
    pub fn save_mem_state(&self, e: &mut Encoder) {
        self.memory.save_state(e);
    }

    /// Restore memory-system state written by [`SimMachine::save_mem_state`].
    ///
    /// # Errors
    ///
    /// As for [`SimMachine::load_engine_state`].
    pub fn load_mem_state(&mut self, d: &mut Decoder<'_>) -> Result<(), CodecError> {
        self.memory.load_state(d)
    }

    /// Replay a materialized trace on this machine (the batch path of the
    /// experiment runner). Equivalent to feeding every instruction through
    /// [`SimMachine::sim`].
    pub fn simulate_trace(&mut self, trace: &Trace) -> SimResult {
        let mut sim = self.sim();
        for inst in &trace.insts {
            sim.feed(inst);
        }
        sim.finish()
    }

    /// The probed variant of [`SimMachine::simulate_trace`]: same timing,
    /// plus the verified attribution report.
    pub fn simulate_trace_probed(&mut self, trace: &Trace) -> (SimResult, ProbeReport) {
        let mut sim = self.sim_probed();
        for inst in &trace.insts {
            sim.feed(inst);
        }
        let (result, probe) = sim.finish_probed();
        (result, probe.into_report())
    }

    /// Drain a batch channel to completion: the consumer half of the
    /// pipelined fan-out (see [`mom_isa::pipe`]).
    ///
    /// Blocks on `recv` until the producer's
    /// [`BatchSink`](mom_isa::pipe::BatchSink) closes the channel, feeding
    /// each batched instruction in program order. Batches are shared
    /// `Arc<[DynInst]>` slices and [`SimStream::feed`] takes a reference, so
    /// consumption never clones an instruction. Byte-identical to
    /// [`SimMachine::simulate_trace`] over the concatenated batches.
    pub fn consume_batches(&mut self, rx: &BatchReceiver) -> SimResult {
        let mut sim = self.sim();
        while let Some(batch) = rx.recv() {
            for inst in batch.iter() {
                sim.feed(inst);
            }
        }
        sim.finish()
    }

    /// The probed variant of [`SimMachine::consume_batches`]: same timing,
    /// plus the verified attribution report.
    pub fn consume_batches_probed(&mut self, rx: &BatchReceiver) -> (SimResult, ProbeReport) {
        let mut sim = self.sim_probed();
        while let Some(batch) = rx.recv() {
            for inst in batch.iter() {
                sim.feed(inst);
            }
        }
        let (result, probe) = sim.finish_probed();
        (result, probe.into_report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mom_isa::trace::{ArchReg, BranchInfo, DynInst, InstClass, MemAccess, MemKind};

    /// A small mixed trace exercising memory, branches and media occupancy.
    fn mixed_trace(n: u64, salt: u64) -> Trace {
        (0..n)
            .map(|i| match (i + salt) % 5 {
                0 => DynInst::new(InstClass::Load, i % 17)
                    .with_src(ArchReg::int(1))
                    .with_dst(ArchReg::int(8 + (i % 8) as u8))
                    .with_mem(vec![MemAccess { addr: 0x1000 + i * 24, size: 8, kind: MemKind::Load }]),
                1 => DynInst::new(InstClass::Branch, i % 13).with_branch(BranchInfo {
                    taken: i % 3 == 0,
                    conditional: true,
                    pc: i % 13,
                    target: 2,
                }),
                2 => DynInst::new(InstClass::MediaComplex, i % 17)
                    .with_src(ArchReg::mom_acc(0))
                    .with_src(ArchReg::mom(1))
                    .with_dst(ArchReg::mom_acc(0))
                    .with_elems(8),
                3 => DynInst::new(InstClass::Store, i % 17)
                    .with_src(ArchReg::int(2))
                    .with_mem(vec![MemAccess { addr: 0x8000 + i * 8, size: 8, kind: MemKind::Store }]),
                _ => DynInst::new(InstClass::IntSimple, i % 17)
                    .with_src(ArchReg::int(0))
                    .with_dst(ArchReg::int(1 + (i % 4) as u8)),
            })
            .collect()
    }

    #[test]
    fn descriptor_matches_the_ad_hoc_assembly() {
        // The descriptor must instantiate exactly the machine the runner used
        // to assemble by hand: CoreConfig::for_width + build_memory + default
        // latencies.
        let trace = mixed_trace(600, 0);
        for (way, isa, mem) in [
            (1, IsaKind::Alpha, MemModelKind::Perfect { latency: 1 }),
            (4, IsaKind::Mom, MemModelKind::Perfect { latency: 50 }),
            (8, IsaKind::Mom, MemModelKind::VectorCache),
            (4, IsaKind::Mmx, MemModelKind::Conventional),
        ] {
            let core = OooCore::new(CoreConfig::for_width(way, isa));
            let mut memory = build_memory(mem, way);
            let ad_hoc = core.simulate(&trace, memory.as_mut());

            let mut machine = MachineDescriptor::for_cell(way, isa, mem).build();
            let described = machine.simulate_trace(&trace);
            assert_eq!(ad_hoc, described, "{way}-way {isa} {mem}: descriptor drifted");
        }
    }

    #[test]
    fn reset_machine_is_bit_identical_to_a_fresh_one() {
        let a = mixed_trace(800, 3);
        let b = mixed_trace(500, 11);
        for mem in [MemModelKind::Perfect { latency: 4 }, MemModelKind::CollapsingBuffer] {
            let desc = MachineDescriptor::for_cell(4, IsaKind::Mom, mem);
            let mut fresh = desc.build();
            let expected = fresh.simulate_trace(&b);

            let mut reused = desc.build();
            let _ = reused.simulate_trace(&a); // dirty every table
            reused.reset();
            let got = reused.simulate_trace(&b);
            assert_eq!(expected, got, "{mem}: reuse after reset diverged");
            assert_eq!(fresh.mem_stats(), reused.mem_stats(), "{mem}: memory stats diverged");
        }
    }

    #[test]
    fn rob_override_changes_timing_but_not_work() {
        let trace = mixed_trace(2000, 7);
        let base = MachineDescriptor::for_cell(8, IsaKind::Alpha, MemModelKind::Perfect { latency: 50 });
        let small = base.clone().with_rob(8);
        assert_eq!(small.core.rob_size, 8);
        assert_ne!(base, small);
        let wide = base.build().simulate_trace(&trace);
        let narrow = small.build().simulate_trace(&trace);
        assert_eq!(wide.committed, narrow.committed);
        assert!(
            narrow.cycles > wide.cycles,
            "an 8-entry ROB ({}) must be slower than the 64-entry default ({})",
            narrow.cycles,
            wide.cycles
        );
    }

    #[test]
    fn consume_batches_matches_simulate_trace() {
        use mom_isa::pipe::{batch_channel, Batch};
        let trace = mixed_trace(1200, 5);
        for (batch_insts, capacity) in [(1usize, 1usize), (7, 1), (256, 3)] {
            let desc = MachineDescriptor::for_cell(4, IsaKind::Mom, MemModelKind::VectorCache);
            let expected = desc.build().simulate_trace(&trace);

            let (tx, rx) = batch_channel(capacity);
            let mut machine = desc.build();
            let insts = &trace.insts;
            let got = std::thread::scope(|scope| {
                scope.spawn(move || {
                    for chunk in insts.chunks(batch_insts) {
                        let batch: Batch = chunk.to_vec().into();
                        tx.send(batch).expect("receiver alive");
                    }
                });
                machine.consume_batches(&rx)
            });
            assert_eq!(expected, got, "batch={batch_insts} cap={capacity}: pipelined run diverged");
        }
    }

    #[test]
    fn checkpointed_machine_resumes_bit_identically() {
        // Feed a prefix, checkpoint engine + memory + probe, restore into a
        // FRESH machine, feed the suffix: the result, attribution report and
        // memory stats must all be bit-identical to an uninterrupted run, and
        // the snapshot must re-encode to the same bytes.
        let trace = mixed_trace(1500, 9);
        let split = 700;
        for mem in [
            MemModelKind::Perfect { latency: 50 },
            MemModelKind::Conventional,
            MemModelKind::VectorCache,
        ] {
            let desc = MachineDescriptor::for_cell(4, IsaKind::Mom, mem);

            let mut continuous = desc.build();
            let mut sim = continuous.sim_probed();
            for inst in &trace.insts {
                sim.feed(inst);
            }
            let (expected, probe) = sim.finish_probed();
            let expected_report = probe.into_report();

            let mut first = desc.build();
            let mut sim = first.sim_probed();
            for inst in &trace.insts[..split] {
                sim.feed(inst);
            }
            let (_, probe) = sim.finish_probed();
            let mut e = Encoder::new();
            first.save_engine_state(&mut e);
            first.save_mem_state(&mut e);
            probe.save_state(&mut e);
            let snapshot = e.into_bytes();

            let mut second = desc.build();
            let mut d = Decoder::new(&snapshot);
            second.load_engine_state(&mut d).unwrap();
            second.load_mem_state(&mut d).unwrap();
            let probe = AttributionProbe::load_state(&mut d).unwrap();
            d.finish("machine snapshot").unwrap();

            let mut e2 = Encoder::new();
            second.save_engine_state(&mut e2);
            second.save_mem_state(&mut e2);
            probe.save_state(&mut e2);
            assert_eq!(e2.bytes(), &snapshot[..], "{mem}: re-encode is not byte-stable");

            let mut sim = second.sim_probed_with(probe);
            for inst in &trace.insts[split..] {
                sim.feed(inst);
            }
            let (resumed, probe) = sim.finish_probed();
            assert_eq!(resumed, expected, "{mem}: resumed run diverged");
            assert_eq!(probe.into_report(), expected_report, "{mem}: attribution diverged");
            assert_eq!(second.mem_stats(), continuous.mem_stats(), "{mem}: memory stats diverged");
        }
    }

    #[test]
    fn load_engine_state_rejects_a_mismatched_machine() {
        let mut donor = MachineDescriptor::for_cell(8, IsaKind::Mom, MemModelKind::VectorCache).build();
        let _ = donor.simulate_trace(&mixed_trace(100, 0));
        let mut e = Encoder::new();
        donor.save_engine_state(&mut e);
        let bytes = e.into_bytes();
        let mut other =
            MachineDescriptor::for_cell(1, IsaKind::Alpha, MemModelKind::VectorCache).build();
        assert!(other.load_engine_state(&mut Decoder::new(&bytes)).is_err());
    }

    #[test]
    fn summary_names_the_key_dimensions() {
        let desc = MachineDescriptor::for_cell(4, IsaKind::Mom, MemModelKind::Perfect { latency: 50 })
            .with_rob(16);
        let s = desc.summary();
        assert!(s.contains("4-way mom"), "{s}");
        assert!(s.contains("rob=16"), "{s}");
        assert!(s.contains("perfect"), "{s}");
        let _ = desc.build().descriptor().clone();
    }

    #[test]
    fn descriptors_compare_by_value() {
        let a = MachineDescriptor::for_cell(4, IsaKind::Mom, MemModelKind::Perfect { latency: 1 });
        let b = MachineDescriptor::for_cell(4, IsaKind::Mom, MemModelKind::Perfect { latency: 1 });
        assert_eq!(a, b);
        assert_ne!(a, a.clone().with_rob(16));
        assert_ne!(a, MachineDescriptor::for_cell(4, IsaKind::Mom, MemModelKind::Perfect { latency: 50 }));
    }
}
