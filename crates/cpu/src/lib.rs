//! # mom-cpu — out-of-order superscalar timing simulator
//!
//! A trace-driven timing model of the paper's evaluation machine: a MIPS
//! R10000-style out-of-order core (Table 1 configurations from 1-way to
//! 8-way) extended with a multimedia unit and its own register file
//! (Table 2), attached to one of the memory systems of `mom-mem`.
//!
//! The division of labour mirrors the original methodology: the functional
//! interpreters (in `mom-core`) play the role of ATOM-instrumented execution
//! and produce a dynamic instruction stream; this crate plays the role of the
//! Jinks simulator and assigns cycles to that stream. Like the original
//! pipeline, simulation is **streaming**: the incremental [`SimStream`]
//! engine (see [`core`]) retires instructions as they graduate with O(ROB)
//! state, so the interpreter can feed the simulator directly — no
//! materialized trace — while [`OooCore::simulate`] still accepts collected
//! [`Trace`]s and produces bit-identical results. In the fused pipelines the
//! instructions arrive from `mom-core`'s pre-decoded µop engine
//! (`Program::decode`), so both halves of a fused cell run flat, steady-state
//! loops: pre-decoded µops on the interpreter side, power-of-two ring
//! buffers and mask-indexed predictor tables on this side.
//!
//! ```
//! use mom_cpu::{CoreConfig, OooCore};
//! use mom_isa::trace::{ArchReg, DynInst, InstClass, IsaKind, Trace};
//! use mom_mem::{build_memory, MemModelKind};
//!
//! // Four independent integer adds on a 4-way machine: well above IPC 1.
//! let trace: Trace = (0..400u64)
//!     .map(|i| {
//!         DynInst::new(InstClass::IntSimple, i)
//!             .with_src(ArchReg::int(0))
//!             .with_dst(ArchReg::int(1 + (i % 8) as u8))
//!     })
//!     .collect();
//! let core = OooCore::new(CoreConfig::way4(IsaKind::Alpha));
//! let mut memory = build_memory(MemModelKind::Perfect { latency: 1 }, 4);
//! let result = core.simulate(&trace, memory.as_mut());
//! assert!(result.ipc() > 1.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod config;
pub mod core;
pub mod machine;
pub mod predictor;
pub mod probe;

pub use crate::core::{InstSource, Latencies, OooCore, SimResult, SimState, SimStream};
pub use checkpoint::Checkpoint;
pub use crate::probe::{
    AttributionProbe, IntervalStats, IntervalWindow, NoProbe, Probe, ProbeReport, StallBreakdown,
    StallCause,
};
pub use config::{CoreConfig, FuPool, PhysRegs};
pub use machine::{MachineDescriptor, RegFileConfig, SimMachine};
pub use predictor::{BimodalPredictor, BranchPredictor, Btb};

use mom_isa::trace::{IsaKind, Trace};
use mom_mem::{build_memory, MemModelKind};

/// Convenience helper: simulate a trace on a machine of the given issue width
/// whose media register file and unit organisation are sized for `isa`, using
/// the named memory model.
pub fn simulate(trace: &Trace, way: usize, isa: IsaKind, memory: MemModelKind) -> SimResult {
    let core = OooCore::new(CoreConfig::for_width(way, isa));
    let mut mem = build_memory(memory, way);
    core.simulate(trace, mem.as_mut())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mom_isa::trace::{ArchReg, DynInst, InstClass};

    #[test]
    fn simulation_types_are_send() {
        fn assert_send_sync<T: Send + Sync>() {}
        // The parallel experiment runner simulates grid cells on scoped worker
        // threads and sends `SimResult`s back; cores are built per-thread.
        assert_send_sync::<SimResult>();
        assert_send_sync::<CoreConfig>();
        assert_send_sync::<OooCore>();
    }

    #[test]
    fn simulate_helper_runs() {
        let trace: Trace = (0..100u64)
            .map(|i| DynInst::new(InstClass::IntSimple, i).with_dst(ArchReg::int(1 + (i % 4) as u8)))
            .collect();
        let r = simulate(&trace, 4, IsaKind::Alpha, MemModelKind::Perfect { latency: 1 });
        assert_eq!(r.committed, 100);
        assert!(r.cycles > 0);
    }
}
