//! The serializable checkpoint of one simulation: architectural state, warm
//! engine state and warm memory state, bound to the dynamic instruction index
//! they were captured at.
//!
//! A [`Checkpoint`] is the unit the sampled execution mode writes to disk so
//! long grid cells can be paused, resumed and distributed. The three state
//! sections are opaque byte blobs to this container — the architectural
//! section is produced by `mom-core`'s machine snapshot codec, the engine and
//! memory sections by [`SimState::save_state`](crate::SimState::save_state)
//! and [`MemorySystem::save_state`](mom_mem::MemorySystem::save_state) — so
//! the container can be framed, validated and shipped without decoding them.
//! The framing itself is versioned and magic-tagged: a file that is not a
//! checkpoint, or was written by an incompatible build, fails loudly at
//! [`Checkpoint::from_bytes`] instead of corrupting a resumed run.
//!
//! Encoding is deterministic: `to_bytes → from_bytes → to_bytes` reproduces
//! the input byte-for-byte, which the resume tests pin.

use mom_isa::codec::{CodecError, Decoder, Encoder};

/// Magic tag leading every serialized checkpoint: `"MOMCKPT\0"` as a
/// little-endian `u64`.
const MAGIC: u64 = u64::from_le_bytes(*b"MOMCKPT\0");

/// Version tag of the checkpoint framing. Bump on any change to the layout
/// [`Checkpoint::to_bytes`] writes.
pub const CHECKPOINT_VERSION: u32 = 1;

/// A complete, serializable snapshot of one simulation at an instruction
/// boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Architectural state (registers, memory image, execution cursor) as
    /// encoded by the functional interpreter's snapshot codec in `mom-core`.
    pub arch_state: Vec<u8>,
    /// Warm engine state — predictor tables, scoreboard, ring-buffer
    /// histories, probe accumulators — as encoded by the owner of the
    /// [`SimState`](crate::SimState).
    pub sim_state: Vec<u8>,
    /// Warm memory-system state — cache tags, MSHRs, buffered stores, channel
    /// occupancy — as encoded by
    /// [`MemorySystem::save_state`](mom_mem::MemorySystem::save_state).
    pub mem_state: Vec<u8>,
    /// Number of dynamic instructions executed before this checkpoint was
    /// taken: the position in the instruction stream to resume from.
    pub inst_index: u64,
}

impl Checkpoint {
    /// Serialize the checkpoint with its magic/version framing.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(MAGIC);
        e.u32(CHECKPOINT_VERSION);
        e.u64(self.inst_index);
        e.blob(&self.arch_state);
        e.blob(&self.sim_state);
        e.blob(&self.mem_state);
        e.into_bytes()
    }

    /// Decode a checkpoint written by [`Checkpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Fails with a [`CodecError`] if `bytes` does not start with the
    /// checkpoint magic, carries an unsupported version, is truncated, or has
    /// trailing garbage. The embedded state sections are *not* decoded here —
    /// they are validated by their own codecs when restored into a machine.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(bytes);
        d.expect_u64(MAGIC, "checkpoint magic")?;
        let version = d.u32("checkpoint version")?;
        if version != CHECKPOINT_VERSION {
            return Err(CodecError::Version { what: "checkpoint", found: version });
        }
        let inst_index = d.u64("checkpoint instruction index")?;
        let arch_state = d.blob("checkpoint architectural state")?.to_vec();
        let sim_state = d.blob("checkpoint engine state")?.to_vec();
        let mem_state = d.blob("checkpoint memory state")?.to_vec();
        d.finish("checkpoint")?;
        Ok(Self { arch_state, sim_state, mem_state, inst_index })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            arch_state: vec![1, 2, 3, 4, 5],
            sim_state: vec![0xaa; 37],
            mem_state: vec![],
            inst_index: 123_456_789,
        }
    }

    #[test]
    fn roundtrip_is_byte_stable() {
        let ckpt = sample();
        let bytes = ckpt.to_bytes();
        let decoded = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, ckpt);
        assert_eq!(decoded.to_bytes(), bytes, "encode → decode → encode must be byte-stable");
    }

    #[test]
    fn rejects_not_a_checkpoint() {
        let err = Checkpoint::from_bytes(b"definitely not a checkpoint file").unwrap_err();
        assert_eq!(err, CodecError::Invalid { what: "checkpoint magic" });
        assert!(Checkpoint::from_bytes(b"").is_err());
    }

    #[test]
    fn rejects_future_version() {
        let mut bytes = sample().to_bytes();
        bytes[8] = 0xff; // the version u32 follows the 8-byte magic
        let err = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, CodecError::Version { what: "checkpoint", .. }));
    }

    #[test]
    fn rejects_truncation_and_trailing_garbage() {
        let bytes = sample().to_bytes();
        assert!(Checkpoint::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut longer = bytes.clone();
        longer.push(0);
        assert_eq!(
            Checkpoint::from_bytes(&longer).unwrap_err(),
            CodecError::Invalid { what: "checkpoint" }
        );
    }
}
