//! Cycle attribution: the zero-overhead-when-off [`Probe`] abstraction and
//! the [`StallBreakdown`] / interval statistics it produces.
//!
//! [`SimStream`](crate::SimStream) is generic over a [`Probe`]; the default
//! [`NoProbe`] has `ENABLED == false`, so every instrumented block in the
//! retire loop is guarded by `if P::ENABLED` on an associated constant and
//! monomorphizes away entirely — the probe-off hot path compiles to the same
//! code as before the probe existed. [`AttributionProbe`] is the real
//! instrument: it charges **every commit-slot cycle to exactly one cause**.
//!
//! # The attribution model
//!
//! Commit is in-order, so consecutive commit cycles telescope: for
//! instruction *i* committing at cycle `c_i`, the deltas `c_i − c_{i−1}` sum
//! to the final commit cycle — the run's total cycles. Each nonzero delta is
//! attributed to the *binding constraint* of that instruction's commit cycle,
//! found by walking the pipeline stages backwards (commit → execute → operand
//! readiness → dispatch → fetch) and descending only into a stage that was
//! **strictly** the latest — ties always keep the earlier-stage cause, which
//! makes the attribution deterministic. The resulting invariant is
//! structural, not statistical: [`StallBreakdown`] components always sum
//! exactly to total cycles.
//!
//! Dependence chains are attributed through registers: when an instruction's
//! operands are the binding constraint, the recorded cause of the *producer*
//! register is charged, so a chain of loads each missing to DRAM shows up as
//! DRAM time, not as generic dependence time.

use mom_isa::codec::{CodecError, Decoder, Encoder};
use mom_mem::AccessCause;

/// The single cause a commit-slot cycle is attributed to.
///
/// `Base` is the catch-all for cycles the pipeline spends doing its job at
/// its configured width — commit/fetch bandwidth, front-end depth and plain
/// execution latency of ready instructions. Every other variant names a
/// structural or memory bottleneck.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallCause {
    /// Issue/commit width, front-end depth and plain execution latency.
    Base,
    /// Dispatch waited for a reorder-buffer slot.
    RobFull,
    /// Dispatch waited for rename headroom (physical registers).
    Rename,
    /// Dispatch waited for a load/store-queue slot.
    LsqFull,
    /// Execution waited for a scalar (integer/FP) functional unit.
    UnitScalar,
    /// Execution waited for a media/vector functional unit.
    UnitMedia,
    /// Fetch waited on a branch-misprediction redirect.
    Redirect,
    /// Memory time served at L1 speed (or by a perfect memory).
    MemL1,
    /// Memory time dominated by L2 (L1 misses filled from L2, vector-port
    /// occupancy, merges into in-flight fills).
    MemL2,
    /// Memory time dominated by a DRAM transfer.
    MemDram,
    /// Memory time dominated by waiting for a free MSHR.
    MshrFull,
    /// Store time set by the coalescing write buffer.
    WriteBuffer,
}

impl StallCause {
    /// Number of distinct causes.
    pub const COUNT: usize = 12;

    /// Every cause, in display/serialization order.
    pub const ALL: [StallCause; StallCause::COUNT] = [
        StallCause::Base,
        StallCause::RobFull,
        StallCause::Rename,
        StallCause::LsqFull,
        StallCause::UnitScalar,
        StallCause::UnitMedia,
        StallCause::Redirect,
        StallCause::MemL1,
        StallCause::MemL2,
        StallCause::MemDram,
        StallCause::MshrFull,
        StallCause::WriteBuffer,
    ];

    /// Stable dense index of this cause (the position in [`StallCause::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The stable short label used in JSON schemas and reports.
    pub fn label(self) -> &'static str {
        match self {
            StallCause::Base => "base",
            StallCause::RobFull => "rob",
            StallCause::Rename => "rename",
            StallCause::LsqFull => "lsq",
            StallCause::UnitScalar => "unit-scalar",
            StallCause::UnitMedia => "unit-media",
            StallCause::Redirect => "redirect",
            StallCause::MemL1 => "mem-l1",
            StallCause::MemL2 => "mem-l2",
            StallCause::MemDram => "mem-dram",
            StallCause::MshrFull => "mshr",
            StallCause::WriteBuffer => "write-buffer",
        }
    }

    /// Inverse of [`StallCause::index`].
    ///
    /// # Errors
    ///
    /// Fails on an index no cause carries — a corrupted checkpoint stream.
    pub fn from_index(index: usize) -> Result<Self, CodecError> {
        StallCause::ALL
            .get(index)
            .copied()
            .ok_or(CodecError::Invalid { what: "stall cause index" })
    }

    /// Map a memory-system completion cause to its attribution bucket.
    pub fn from_access(cause: AccessCause) -> Self {
        match cause {
            AccessCause::L1 => StallCause::MemL1,
            AccessCause::L2 => StallCause::MemL2,
            AccessCause::Dram => StallCause::MemDram,
            AccessCause::MshrFull => StallCause::MshrFull,
            AccessCause::WriteBuffer => StallCause::WriteBuffer,
        }
    }
}

/// Per-cause attribution of every cycle of one simulation.
///
/// Maintained by [`AttributionProbe`]; the invariant that the components sum
/// to [`StallBreakdown::total_cycles`] is structural (telescoping commit
/// deltas), and [`StallBreakdown::attributed`] exposes the sum so tests can
/// pin it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct StallBreakdown {
    /// Total cycles of the run (the last commit cycle).
    pub total_cycles: u64,
    components: [u64; StallCause::COUNT],
}

impl StallBreakdown {
    /// Cycles attributed to `cause`.
    pub fn get(&self, cause: StallCause) -> u64 {
        self.components[cause.index()]
    }

    /// Every `(cause, cycles)` pair in [`StallCause::ALL`] order.
    pub fn components(&self) -> impl Iterator<Item = (StallCause, u64)> + '_ {
        StallCause::ALL.iter().map(|&c| (c, self.components[c.index()]))
    }

    /// Sum of all components — always equal to `total_cycles`.
    pub fn attributed(&self) -> u64 {
        self.components.iter().sum()
    }

    /// Causes with nonzero attribution, sorted by descending cycle count
    /// (ties broken by [`StallCause::ALL`] order — deterministic).
    pub fn ranked(&self) -> Vec<(StallCause, u64)> {
        let mut ranked: Vec<_> = self.components().filter(|&(_, n)| n > 0).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
        ranked
    }

    /// The cause with the most attributed cycles, if any cycle was attributed.
    pub fn top(&self) -> Option<StallCause> {
        self.ranked().first().map(|&(c, _)| c)
    }

    /// Build a breakdown from its parts: per-cause cycle counts in
    /// [`StallCause::ALL`] order plus the total. Probe-produced breakdowns
    /// always have components summing to the total; a breakdown built here
    /// carries whatever the caller provides (tests use that freedom), and
    /// [`ProbeReport::load_state`] is where the invariant is enforced.
    pub fn from_parts(total_cycles: u64, components: [u64; StallCause::COUNT]) -> Self {
        StallBreakdown { total_cycles, components }
    }

    /// Serialize the breakdown: total cycles, then every component in
    /// [`StallCause::ALL`] order.
    pub fn save_state(&self, e: &mut Encoder) {
        e.u64(self.total_cycles);
        for &cycles in &self.components {
            e.u64(cycles);
        }
    }

    /// Rebuild a breakdown written by [`StallBreakdown::save_state`].
    ///
    /// # Errors
    ///
    /// Fails if the stream is truncated.
    pub fn load_state(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let total_cycles = d.u64("breakdown total cycles")?;
        let mut components = [0u64; StallCause::COUNT];
        for cycles in &mut components {
            *cycles = d.u64("breakdown component")?;
        }
        Ok(StallBreakdown { total_cycles, components })
    }

    fn add(&mut self, cause: StallCause, cycles: u64) {
        self.components[cause.index()] += cycles;
    }
}

/// One window of the interval timeline: committed instructions, attributed
/// cycles and the dominant stall cause within the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntervalWindow {
    /// Instructions that committed inside this window.
    pub committed: u64,
    /// Cycles attributed inside this window (commit deltas landing here).
    pub cycles: u64,
    /// The dominant cause of those cycles (`Base` for an empty window).
    pub top: StallCause,
}

impl IntervalWindow {
    /// Windowed IPC: committed instructions per attributed cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

/// The per-phase timeline of one simulation: fixed-width windows over commit
/// cycles, each with committed-instruction count, cycle count and top stall
/// cause.
///
/// Windows are driven purely by commit cycles (a delta is charged entirely to
/// the window its commit lands in), so the timeline is byte-identical across
/// execution modes and worker counts, like everything else in `results`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IntervalStats {
    /// Width of each window in cycles.
    pub window_cycles: u64,
    /// The windows, in time order. Trailing all-empty windows are trimmed.
    pub windows: Vec<IntervalWindow>,
}

impl IntervalStats {
    /// Serialize the finished timeline: window width, count, then each
    /// window's committed/cycles/top-cause triple.
    pub fn save_state(&self, e: &mut Encoder) {
        e.u64(self.window_cycles);
        e.usize(self.windows.len());
        for w in &self.windows {
            e.u64(w.committed);
            e.u64(w.cycles);
            e.u8(w.top.index() as u8);
        }
    }

    /// Rebuild a timeline written by [`IntervalStats::save_state`].
    ///
    /// # Errors
    ///
    /// Fails if the stream is truncated, carries an out-of-range stall
    /// cause, a window width off the `1024·2^k` compaction schedule, or
    /// more windows than the recorder ever keeps.
    pub fn load_state(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let window_cycles = d.u64("interval window width")?;
        if !window_cycles.is_power_of_two() || window_cycles < INITIAL_WINDOW {
            return Err(CodecError::Invalid { what: "interval window width" });
        }
        let n = d.usize("interval window count")?;
        if n > MAX_WINDOWS {
            return Err(CodecError::Invalid { what: "interval window count" });
        }
        let mut windows = Vec::with_capacity(n);
        for _ in 0..n {
            windows.push(IntervalWindow {
                committed: d.u64("window committed")?,
                cycles: d.u64("window cycles")?,
                top: StallCause::from_index(d.u8("window top cause")? as usize)?,
            });
        }
        Ok(IntervalStats { window_cycles, windows })
    }
}

/// Accumulating form of one window (full per-cause counts, so merged windows
/// recompute their top cause exactly).
#[derive(Debug, Clone, Copy)]
struct WindowAcc {
    committed: u64,
    cycles: [u64; StallCause::COUNT],
}

impl WindowAcc {
    const EMPTY: WindowAcc = WindowAcc { committed: 0, cycles: [0; StallCause::COUNT] };

    fn merge(&mut self, other: &WindowAcc) {
        self.committed += other.committed;
        for (a, b) in self.cycles.iter_mut().zip(other.cycles.iter()) {
            *a += b;
        }
    }

    fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    fn top(&self) -> StallCause {
        let mut best = StallCause::Base;
        let mut best_n = 0u64;
        for &cause in &StallCause::ALL {
            let n = self.cycles[cause.index()];
            if n > best_n {
                best = cause;
                best_n = n;
            }
        }
        best
    }
}

/// The hooks [`SimStream::feed`](crate::SimStream::feed) calls when its probe
/// is enabled.
///
/// `ENABLED` is an associated constant: with [`NoProbe`] every instrumented
/// block is `if false { .. }` after monomorphization and the compiler removes
/// it, so the probe-off engine pays nothing — not even dead stores.
pub trait Probe: std::fmt::Debug {
    /// Whether the instrumented blocks in the retire loop run at all.
    const ENABLED: bool;

    /// The recorded stall cause of the producer of register `slot` (the same
    /// dense slot index the engine's scoreboard uses).
    fn reg_cause(&self, slot: usize) -> StallCause;

    /// Record `cause` as the reason register `slot`'s producer completed when
    /// it did (called at writeback).
    fn set_reg_cause(&mut self, slot: usize, cause: StallCause);

    /// Attribute the commit delta of one instruction: `delta` cycles ending
    /// at `commit_cycle`, charged to `cause`. Called once per retired
    /// instruction (with `delta == 0` for same-cycle commit groups).
    fn on_commit(&mut self, commit_cycle: u64, delta: u64, cause: StallCause);
}

/// The unit probe: observes nothing, costs nothing. The default for every
/// existing `SimStream` entry point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl Probe for NoProbe {
    const ENABLED: bool = false;

    fn reg_cause(&self, _slot: usize) -> StallCause {
        StallCause::Base
    }

    fn set_reg_cause(&mut self, _slot: usize, _cause: StallCause) {}

    fn on_commit(&mut self, _commit_cycle: u64, _delta: u64, _cause: StallCause) {}
}

/// Number of windows the interval recorder keeps before halving resolution.
const MAX_WINDOWS: usize = 32;

/// Initial interval window width in cycles.
const INITIAL_WINDOW: u64 = 1024;

/// The full cycle-attribution instrument: accumulates the per-run
/// [`StallBreakdown`], the per-register producer causes and the bounded
/// interval timeline.
///
/// The timeline starts at 1024-cycle windows (`INITIAL_WINDOW`); whenever
/// the run outgrows 32 of them (`MAX_WINDOWS`), adjacent windows are
/// pair-merged and the
/// width doubles, so state stays O(1) for unbounded streams and the
/// compaction schedule is a pure function of commit cycles (deterministic).
#[derive(Debug, Clone)]
pub struct AttributionProbe {
    breakdown: StallBreakdown,
    reg_cause: [StallCause; 6 * 64],
    window_cycles: u64,
    /// Window accumulators, inline at the maximum count (`n_windows` are
    /// live). Inline storage keeps the once-per-instruction `on_commit`
    /// update free of pointer chases; at ~3 KiB the probe is still cheap to
    /// move around.
    windows: [WindowAcc; MAX_WINDOWS],
    n_windows: usize,
}

impl Default for AttributionProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl AttributionProbe {
    /// A fresh probe with nothing attributed yet.
    pub fn new() -> Self {
        Self {
            breakdown: StallBreakdown::default(),
            reg_cause: [StallCause::Base; 6 * 64],
            window_cycles: INITIAL_WINDOW,
            windows: [WindowAcc::EMPTY; MAX_WINDOWS],
            n_windows: 0,
        }
    }

    /// The breakdown accumulated so far.
    pub fn breakdown(&self) -> &StallBreakdown {
        &self.breakdown
    }

    /// Build the interval timeline accumulated so far.
    pub fn intervals(&self) -> IntervalStats {
        IntervalStats {
            window_cycles: self.window_cycles,
            windows: self.windows[..self.n_windows]
                .iter()
                .map(|w| IntervalWindow { committed: w.committed, cycles: w.total(), top: w.top() })
                .collect(),
        }
    }

    /// Consume the probe into its final report, checking the sum-to-total
    /// invariant.
    ///
    /// # Panics
    ///
    /// Panics if the attributed components do not sum to total cycles — which
    /// would mean the engine's instrumentation lost or double-counted a
    /// commit delta, never a property of the workload.
    pub fn into_report(self) -> ProbeReport {
        assert_eq!(
            self.breakdown.attributed(),
            self.breakdown.total_cycles,
            "stall-breakdown components must sum to total cycles"
        );
        let intervals = self.intervals();
        ProbeReport { breakdown: self.breakdown, intervals }
    }

    /// Serialize the complete attribution state — breakdown, per-register
    /// producer causes and the interval-window accumulators — through the
    /// checkpoint codec, so a resumed sampled run continues its timeline
    /// exactly where the checkpointed one stopped.
    pub fn save_state(&self, e: &mut Encoder) {
        e.u64(self.breakdown.total_cycles);
        for &cycles in &self.breakdown.components {
            e.u64(cycles);
        }
        for &cause in self.reg_cause.iter() {
            e.u8(cause.index() as u8);
        }
        e.u64(self.window_cycles);
        e.usize(self.n_windows);
        for w in &self.windows[..self.n_windows] {
            e.u64(w.committed);
            for &cycles in &w.cycles {
                e.u64(cycles);
            }
        }
    }

    /// Rebuild a probe from state written by [`AttributionProbe::save_state`].
    ///
    /// # Errors
    ///
    /// Fails if the stream is truncated or carries an out-of-range stall
    /// cause, a window width that is not on the `1024·2^k` compaction
    /// schedule, or more live windows than the recorder ever keeps.
    pub fn load_state(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let mut probe = Self::new();
        probe.breakdown.total_cycles = d.u64("breakdown total cycles")?;
        for cycles in &mut probe.breakdown.components {
            *cycles = d.u64("breakdown component")?;
        }
        for cause in probe.reg_cause.iter_mut() {
            *cause = StallCause::from_index(d.u8("register cause")? as usize)?;
        }
        let window_cycles = d.u64("interval window width")?;
        if !window_cycles.is_power_of_two() || window_cycles < INITIAL_WINDOW {
            return Err(CodecError::Invalid { what: "interval window width" });
        }
        probe.window_cycles = window_cycles;
        probe.n_windows = d.usize("interval window count")?;
        if probe.n_windows > MAX_WINDOWS {
            return Err(CodecError::Invalid { what: "interval window count" });
        }
        for w in &mut probe.windows[..probe.n_windows] {
            w.committed = d.u64("window committed")?;
            for cycles in &mut w.cycles {
                *cycles = d.u64("window component")?;
            }
        }
        Ok(probe)
    }

    /// Slow path of [`Probe::on_commit`]: the commit cycle falls past the
    /// last materialized window, so extend the timeline (and pair-merge
    /// whenever it would outgrow `MAX_WINDOWS`). Runs at most once per 1024
    /// committed cycles — keeping it out of line lets the per-instruction
    /// hot path inline into `feed`.
    #[cold]
    #[inline(never)]
    fn grow_windows(&mut self, commit_cycle: u64) -> usize {
        // `window_cycles` is always 1024·2^k, so the division is a shift.
        let mut idx = (commit_cycle >> self.window_cycles.trailing_zeros()) as usize;
        while idx >= MAX_WINDOWS {
            // Pair-merge: halve the resolution, keep the history exact.
            let merged = self.n_windows.div_ceil(2);
            for i in 0..merged {
                let mut w = self.windows[2 * i];
                if 2 * i + 1 < self.n_windows {
                    w.merge(&self.windows[2 * i + 1]);
                }
                self.windows[i] = w;
            }
            self.windows[merged..self.n_windows].fill(WindowAcc::EMPTY);
            self.n_windows = merged;
            self.window_cycles *= 2;
            idx = (commit_cycle >> self.window_cycles.trailing_zeros()) as usize;
        }
        if self.n_windows <= idx {
            self.n_windows = idx + 1;
        }
        idx
    }
}

impl Probe for AttributionProbe {
    const ENABLED: bool = true;

    #[inline]
    fn reg_cause(&self, slot: usize) -> StallCause {
        self.reg_cause[slot]
    }

    #[inline]
    fn set_reg_cause(&mut self, slot: usize, cause: StallCause) {
        self.reg_cause[slot] = cause;
    }

    #[inline]
    fn on_commit(&mut self, commit_cycle: u64, delta: u64, cause: StallCause) {
        self.breakdown.total_cycles = commit_cycle;
        self.breakdown.add(cause, delta);
        let mut idx = (commit_cycle >> self.window_cycles.trailing_zeros()) as usize;
        if idx >= self.n_windows {
            idx = self.grow_windows(commit_cycle);
        }
        let w = &mut self.windows[idx];
        w.committed += 1;
        w.cycles[cause.index()] += delta;
    }
}

/// What a probed simulation hands back next to its
/// [`SimResult`](crate::SimResult): the verified stall breakdown and the
/// interval timeline.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProbeReport {
    /// Per-cause attribution of every cycle; components sum to total cycles.
    pub breakdown: StallBreakdown,
    /// The windowed timeline (IPC + top cause per window).
    pub intervals: IntervalStats,
}

impl Default for ProbeReport {
    fn default() -> Self {
        AttributionProbe::new().into_report()
    }
}

impl ProbeReport {
    /// Serialize the report: the breakdown, then the interval timeline.
    pub fn save_state(&self, e: &mut Encoder) {
        self.breakdown.save_state(e);
        self.intervals.save_state(e);
    }

    /// Rebuild a report written by [`ProbeReport::save_state`].
    ///
    /// # Errors
    ///
    /// Fails if the stream is truncated, carries out-of-range values, or a
    /// breakdown whose components do not sum to its total cycles — the
    /// structural invariant every probe-produced report satisfies.
    pub fn load_state(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let breakdown = StallBreakdown::load_state(d)?;
        if breakdown.attributed() != breakdown.total_cycles {
            return Err(CodecError::Invalid { what: "probe report attribution sum" });
        }
        let intervals = IntervalStats::load_state(d)?;
        Ok(ProbeReport { breakdown, intervals })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_indices_are_stable_and_unique() {
        let mut labels: Vec<_> = StallCause::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), StallCause::COUNT);
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), StallCause::COUNT, "labels must be unique");
        for (i, &cause) in StallCause::ALL.iter().enumerate() {
            assert_eq!(cause.index(), i);
        }
    }

    #[test]
    fn breakdown_ranks_by_count_then_declaration_order() {
        let mut b = StallBreakdown::default();
        b.add(StallCause::MemDram, 10);
        b.add(StallCause::Base, 10);
        b.add(StallCause::Redirect, 3);
        b.total_cycles = 23;
        let ranked = b.ranked();
        assert_eq!(ranked[0], (StallCause::Base, 10), "tie goes to declaration order");
        assert_eq!(ranked[1], (StallCause::MemDram, 10));
        assert_eq!(ranked[2], (StallCause::Redirect, 3));
        assert_eq!(b.top(), Some(StallCause::Base));
        assert_eq!(b.attributed(), 23);
    }

    #[test]
    fn interval_recorder_compacts_but_never_loses_cycles() {
        let mut p = AttributionProbe::new();
        // One commit per 100 cycles out to cycle 200_000: far beyond
        // MAX_WINDOWS * INITIAL_WINDOW, forcing several pair-merges.
        let mut last = 0u64;
        for c in (100..=200_000u64).step_by(100) {
            p.on_commit(c, c - last, StallCause::MemDram);
            last = c;
        }
        let report = p.into_report();
        assert_eq!(report.breakdown.total_cycles, 200_000);
        assert_eq!(report.breakdown.get(StallCause::MemDram), 200_000);
        let iv = &report.intervals;
        assert!(iv.windows.len() <= MAX_WINDOWS);
        assert!(iv.window_cycles > INITIAL_WINDOW, "resolution halved at least once");
        assert_eq!(iv.windows.iter().map(|w| w.cycles).sum::<u64>(), 200_000);
        assert_eq!(iv.windows.iter().map(|w| w.committed).sum::<u64>(), 2000);
        assert!(iv.windows.iter().all(|w| w.top == StallCause::MemDram || w.cycles == 0));
    }

    #[test]
    fn compaction_schedule_is_a_function_of_commit_cycles_only() {
        // Same commit-cycle sequence recorded twice with different causes:
        // identical window boundaries.
        let causes = [StallCause::Base, StallCause::MemL2];
        let stats: Vec<IntervalStats> = causes
            .iter()
            .map(|&cause| {
                let mut p = AttributionProbe::new();
                let mut last = 0;
                for c in (7..90_000u64).step_by(7919) {
                    p.on_commit(c, c - last, cause);
                    last = c;
                }
                p.intervals()
            })
            .collect();
        assert_eq!(stats[0].window_cycles, stats[1].window_cycles);
        assert_eq!(stats[0].windows.len(), stats[1].windows.len());
        for (a, b) in stats[0].windows.iter().zip(&stats[1].windows) {
            assert_eq!(a.committed, b.committed);
            assert_eq!(a.cycles, b.cycles);
        }
    }

    #[test]
    #[should_panic(expected = "sum to total cycles")]
    fn into_report_pins_the_sum_invariant() {
        let mut p = AttributionProbe::new();
        p.on_commit(10, 4, StallCause::Base);
        // Sabotage: pretend the run was longer than what was attributed.
        p.breakdown.total_cycles = 11;
        let _ = p.into_report();
    }

    #[test]
    fn windowed_ipc_divides_committed_by_cycles() {
        let w = IntervalWindow { committed: 8, cycles: 4, top: StallCause::Base };
        assert!((w.ipc() - 2.0).abs() < 1e-12);
        let empty = IntervalWindow { committed: 0, cycles: 0, top: StallCause::Base };
        assert_eq!(empty.ipc(), 0.0);
    }
}
