//! The out-of-order core timing model.
//!
//! [`OooCore::simulate`] replays a dynamic trace (produced by the functional
//! interpreter in `mom-core`) through a first-order model of an R10000-style
//! out-of-order pipeline: width-limited fetch with a bimodal predictor and
//! BTB, a front-end of fixed depth, renaming limited by per-class physical
//! register headroom, a reorder buffer and load/store queue of the configured
//! sizes, functional-unit pools with per-class latencies (multimedia units may
//! have multiple vector lanes), a memory system consulted for every load and
//! store, and width-limited in-order commit.
//!
//! The model computes, for every dynamic instruction, the cycle at which it is
//! fetched, dispatched, issued, completed and committed, honouring:
//!
//! * data dependences through architectural registers (including the MDMX
//!   accumulator recurrence and the MOM vector-length register);
//! * structural limits — ROB, LSQ, physical registers, functional units,
//!   memory ports (delegated to the memory model);
//! * control dependences — mispredicted branches redirect fetch after the
//!   branch resolves; correctly-predicted taken branches still end the fetch
//!   group (one taken branch fetched per cycle).

use crate::config::CoreConfig;
use crate::predictor::BranchPredictor;
use mom_isa::trace::{ArchReg, InstClass, RegClass, Trace};
use mom_mem::MemorySystem;

/// Execution latencies per functional-unit class, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// Simple integer operations.
    pub int_simple: u64,
    /// Integer multiply/divide.
    pub int_complex: u64,
    /// Simple floating-point operations.
    pub fp_simple: u64,
    /// Floating-point multiply/divide.
    pub fp_complex: u64,
    /// Simple packed multimedia operations.
    pub media_simple: u64,
    /// Packed multiplies and multiply-accumulates.
    pub media_complex: u64,
    /// Branch resolution.
    pub branch: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Self {
            int_simple: 1,
            int_complex: 3,
            fp_simple: 2,
            fp_complex: 4,
            media_simple: 1,
            media_complex: 3,
            branch: 1,
        }
    }
}

/// Summary of one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct SimResult {
    /// Total cycles from first fetch to last commit.
    pub cycles: u64,
    /// Committed (graduated) instructions.
    pub committed: u64,
    /// Branches executed.
    pub branches: u64,
    /// Branch mispredictions.
    pub mispredictions: u64,
    /// Times a memory instruction had to retry for a free port.
    pub mem_retries: u64,
    /// Element-level memory accesses performed.
    pub mem_accesses: u64,
}

impl SimResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Speed-up of this run relative to a baseline run of the *same work*
    /// (cycles of the baseline divided by cycles of this run).
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }
}

/// Pool of functional units of one kind: tracks when each unit is next free.
#[derive(Debug, Clone)]
struct UnitPool {
    simple_free: Vec<u64>,
    complex_free: Vec<u64>,
    lanes: usize,
}

impl UnitPool {
    fn new(simple: usize, complex: usize, lanes: usize) -> Self {
        Self { simple_free: vec![0; simple], complex_free: vec![0; complex], lanes: lanes.max(1) }
    }

    /// Reserve a unit able to execute an operation of the given complexity,
    /// starting no earlier than `earliest`, for `occupancy` cycles. Returns
    /// the actual start cycle.
    fn reserve(&mut self, earliest: u64, complex_op: bool, occupancy: u64) -> u64 {
        // Complex ops may only use complex-capable units; simple ops prefer
        // whichever unit frees first.
        let candidates: Vec<(usize, bool)> = if complex_op {
            (0..self.complex_free.len()).map(|i| (i, true)).collect()
        } else {
            (0..self.simple_free.len())
                .map(|i| (i, false))
                .chain((0..self.complex_free.len()).map(|i| (i, true)))
                .collect()
        };
        let (idx, in_complex) = candidates
            .into_iter()
            .min_by_key(|&(i, c)| if c { self.complex_free[i] } else { self.simple_free[i] })
            .expect("functional-unit pool must not be empty for issued class");
        let free = if in_complex { self.complex_free[idx] } else { self.simple_free[idx] };
        let start = earliest.max(free);
        let until = start + occupancy;
        if in_complex {
            self.complex_free[idx] = until;
        } else {
            self.simple_free[idx] = until;
        }
        start
    }
}

fn reg_slot(reg: ArchReg) -> usize {
    let class = match reg.class {
        RegClass::Int => 0,
        RegClass::Fp => 1,
        RegClass::Media => 2,
        RegClass::Acc => 3,
        RegClass::Mom => 4,
        RegClass::MomAcc => 5,
    };
    class * 64 + (reg.index as usize % 64)
}

fn class_idx(class: RegClass) -> usize {
    match class {
        RegClass::Int => 0,
        RegClass::Fp => 1,
        RegClass::Media => 2,
        RegClass::Acc => 3,
        RegClass::Mom => 4,
        RegClass::MomAcc => 5,
    }
}

/// The out-of-order core model.
#[derive(Debug, Clone)]
pub struct OooCore {
    config: CoreConfig,
    latencies: Latencies,
}

impl OooCore {
    /// Create a core with the given configuration and default latencies.
    pub fn new(config: CoreConfig) -> Self {
        Self { config, latencies: Latencies::default() }
    }

    /// Create a core with explicit execution latencies.
    pub fn with_latencies(config: CoreConfig, latencies: Latencies) -> Self {
        Self { config, latencies }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Replay `trace` against `memory` and return the timing summary.
    ///
    /// # Panics
    ///
    /// Panics if the memory system refuses a request for an implausibly long
    /// time (which would indicate a broken memory model, not a property of the
    /// workload).
    pub fn simulate(&self, trace: &Trace, memory: &mut dyn MemorySystem) -> SimResult {
        let cfg = &self.config;
        let lat = &self.latencies;
        let n = trace.insts.len();
        let mut result = SimResult::default();
        if n == 0 {
            return result;
        }

        let mut predictor = BranchPredictor::new(cfg.bimodal_entries, cfg.btb_entries);
        let mut int_units = UnitPool::new(cfg.int_units.simple, cfg.int_units.complex, 1);
        let mut fp_units = UnitPool::new(cfg.fp_units.simple, cfg.fp_units.complex, 1);
        let mut media_units =
            UnitPool::new(cfg.media_units.simple, cfg.media_units.complex, cfg.media_units.lanes);

        // Producer availability per architectural register.
        let mut reg_ready = [0u64; 6 * 64];
        // Commit times: full history for ROB/LSQ/physical-register constraints.
        let mut commit = vec![0u64; n];
        let mut fetch = vec![0u64; n];
        // Writers per register class (commit cycles), for renaming headroom.
        let mut class_writers: [Vec<u64>; 6] = Default::default();
        // Memory-operation commit cycles, for the LSQ constraint.
        let mut mem_commits: Vec<u64> = Vec::new();

        let mut redirect_floor = 0u64; // fetch may not start before this
        let mut fetch_break_floor = 0u64; // floor for the next instruction only

        for (i, inst) in trace.insts.iter().enumerate() {
            // ---------------- Fetch ----------------
            let mut f = redirect_floor.max(fetch_break_floor);
            if i >= cfg.way {
                f = f.max(fetch[i - cfg.way] + 1);
            }
            if i > 0 {
                f = f.max(fetch[i - 1]); // program order within a fetch group
            }
            fetch[i] = f;
            fetch_break_floor = 0;

            // ---------------- Dispatch (rename + ROB/LSQ/phys-reg allocation) ----------------
            let mut dispatch = f + cfg.frontend_depth;
            if i >= cfg.rob_size {
                dispatch = dispatch.max(commit[i - cfg.rob_size]);
            }
            let is_mem = inst.class.is_mem();
            if is_mem && mem_commits.len() >= cfg.lsq_size {
                dispatch = dispatch.max(mem_commits[mem_commits.len() - cfg.lsq_size]);
            }
            for d in inst.dests() {
                let ci = class_idx(d.class);
                let writers = &class_writers[ci];
                let headroom = cfg.rename_headroom(d.class);
                if writers.len() >= headroom {
                    dispatch = dispatch.max(writers[writers.len() - headroom]);
                }
            }

            // ---------------- Operand readiness ----------------
            let mut ready = dispatch + 1;
            for s in inst.sources() {
                ready = ready.max(reg_ready[reg_slot(s)]);
            }

            // ---------------- Execute ----------------
            let complete = match inst.class {
                InstClass::Load | InstClass::Store => {
                    result.mem_accesses += inst.mem.len() as u64;
                    let vector = inst.elems > 1;
                    let mut t = ready;
                    let mut retries = 0u64;
                    let done = loop {
                        match memory.access(t, &inst.mem, vector) {
                            Some(done) => break done,
                            None => {
                                retries += 1;
                                t += 1;
                                assert!(
                                    retries < 100_000,
                                    "memory system refused a request for 100k cycles at pc {}",
                                    inst.pc
                                );
                            }
                        }
                    };
                    result.mem_retries += retries;
                    done
                }
                InstClass::Branch => {
                    result.branches += 1;
                    let start = int_units.reserve(ready, false, 1);
                    let complete = start + lat.branch;
                    if let Some(b) = inst.branch {
                        let correct =
                            predictor.predict_and_update(b.pc, b.conditional, b.taken, b.target);
                        if correct {
                            if b.taken {
                                // A taken branch ends the fetch group.
                                fetch_break_floor = fetch[i] + 1;
                            }
                        } else {
                            result.mispredictions += 1;
                            redirect_floor = redirect_floor.max(complete + cfg.mispredict_penalty);
                        }
                    }
                    complete
                }
                InstClass::Nop => ready,
                InstClass::IntSimple => int_units.reserve(ready, false, 1) + lat.int_simple,
                InstClass::IntComplex => int_units.reserve(ready, true, 1) + lat.int_complex,
                InstClass::FpSimple => fp_units.reserve(ready, false, 1) + lat.fp_simple,
                InstClass::FpComplex => fp_units.reserve(ready, true, 1) + lat.fp_complex,
                InstClass::MediaSimple | InstClass::MediaComplex => {
                    let complex = inst.class == InstClass::MediaComplex;
                    let occupancy =
                        (inst.elems as u64).div_ceil(media_units.lanes as u64).max(1);
                    let start = media_units.reserve(ready, complex, occupancy);
                    let op_lat = if complex { lat.media_complex } else { lat.media_simple };
                    start + occupancy - 1 + op_lat
                }
            };

            // ---------------- Writeback ----------------
            for d in inst.dests() {
                reg_ready[reg_slot(d)] = complete;
            }

            // ---------------- Commit ----------------
            let mut c = complete + 1;
            if i > 0 {
                c = c.max(commit[i - 1]);
            }
            if i >= cfg.way {
                c = c.max(commit[i - cfg.way] + 1);
            }
            commit[i] = c;
            for d in inst.dests() {
                class_writers[class_idx(d.class)].push(c);
            }
            if is_mem {
                mem_commits.push(c);
            }
        }

        result.cycles = commit[n - 1];
        result.committed = n as u64;
        result.branches = predictor.predictions;
        result.mispredictions = predictor.mispredictions;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mom_isa::trace::{ArchReg, BranchInfo, DynInst, IsaKind, MemAccess, MemKind};
    use mom_mem::{build_memory, MemModelKind};

    fn alu(pc: u64, dst: u8, a: u8, b: u8) -> DynInst {
        DynInst::new(InstClass::IntSimple, pc)
            .with_src(ArchReg::int(a))
            .with_src(ArchReg::int(b))
            .with_dst(ArchReg::int(dst))
    }

    fn independent_trace(n: usize) -> Trace {
        // Instruction i writes register (i % 8) + 8 reading constants r0/r1:
        // effectively unlimited ILP.
        (0..n).map(|i| alu(i as u64, 8 + (i % 8) as u8, 0, 1)).collect()
    }

    fn dependent_trace(n: usize) -> Trace {
        // A serial chain: each instruction reads the previous one's result.
        (0..n).map(|i| alu(i as u64, 5, 5, 5)).collect()
    }

    fn run(trace: &Trace, way: usize, isa: IsaKind) -> SimResult {
        let core = OooCore::new(CoreConfig::for_width(way, isa));
        let mut mem = build_memory(MemModelKind::Perfect { latency: 1 }, way);
        core.simulate(trace, mem.as_mut())
    }

    #[test]
    fn empty_trace_is_zero_cycles() {
        let core = OooCore::new(CoreConfig::way4(IsaKind::Alpha));
        let mut mem = build_memory(MemModelKind::Perfect { latency: 1 }, 4);
        let r = core.simulate(&Trace::new(IsaKind::Alpha), mem.as_mut());
        assert_eq!(r.cycles, 0);
        assert_eq!(r.ipc(), 0.0);
    }

    #[test]
    fn wider_machines_run_independent_code_faster() {
        let t = independent_trace(2000);
        let w1 = run(&t, 1, IsaKind::Alpha);
        let w2 = run(&t, 2, IsaKind::Alpha);
        let w4 = run(&t, 4, IsaKind::Alpha);
        let w8 = run(&t, 8, IsaKind::Alpha);
        assert!(w2.cycles < w1.cycles);
        assert!(w4.cycles < w2.cycles);
        assert!(w8.cycles <= w4.cycles);
        // 1-way IPC is bounded by 1; the wide machines exceed it.
        assert!(w1.ipc() <= 1.01, "1-way IPC {}", w1.ipc());
        assert!(w4.ipc() > 1.5, "4-way IPC {}", w4.ipc());
        assert_eq!(w4.committed, 2000);
    }

    #[test]
    fn dependent_chain_is_serialised_regardless_of_width() {
        let t = dependent_trace(1000);
        let w1 = run(&t, 1, IsaKind::Alpha);
        let w8 = run(&t, 8, IsaKind::Alpha);
        // Both are limited by the dependence chain (about 1 cycle per
        // instruction) — width does not help.
        assert!(w8.cycles as f64 >= 0.9 * w1.cycles as f64);
        assert!(w1.ipc() <= 1.05);
    }

    #[test]
    fn speedup_over_baseline() {
        let t = independent_trace(1000);
        let w1 = run(&t, 1, IsaKind::Alpha);
        let w4 = run(&t, 4, IsaKind::Alpha);
        assert!(w4.speedup_over(&w1) > 1.5);
        assert!((w1.speedup_over(&w1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mispredicted_branches_cost_cycles() {
        // Alternating taken/not-taken branches defeat the bimodal predictor.
        let hard: Trace = (0..2000u64)
            .map(|i| {
                DynInst::new(InstClass::Branch, i % 7).with_branch(BranchInfo {
                    taken: i % 2 == 0,
                    conditional: true,
                    pc: i % 7,
                    target: 0,
                })
            })
            .collect();
        let easy: Trace = (0..2000u64)
            .map(|i| {
                DynInst::new(InstClass::Branch, i % 7).with_branch(BranchInfo {
                    taken: false,
                    conditional: true,
                    pc: i % 7,
                    target: 0,
                })
            })
            .collect();
        let hard_r = run(&hard, 4, IsaKind::Alpha);
        let easy_r = run(&easy, 4, IsaKind::Alpha);
        assert!(hard_r.mispredictions > easy_r.mispredictions * 5);
        assert!(hard_r.cycles > easy_r.cycles);
    }

    #[test]
    fn vector_media_instruction_occupies_unit_for_multiple_beats() {
        // One MOM media op with 16 elements vs 16 scalar media ops: the MOM
        // version should not be slower, and a dependent consumer must wait for
        // the full occupancy.
        let mom: Trace = vec![
            DynInst::new(InstClass::MediaSimple, 0)
                .with_dst(ArchReg::mom(1))
                .with_elems(16),
            DynInst::new(InstClass::MediaSimple, 1)
                .with_src(ArchReg::mom(1))
                .with_dst(ArchReg::mom(2))
                .with_elems(16),
        ]
        .into_iter()
        .collect();
        let r = run(&mom, 4, IsaKind::Mom);
        // Each op occupies the unit for 16 beats; the chain is ~32 cycles.
        assert!(r.cycles >= 30, "cycles {}", r.cycles);
        assert!(r.cycles <= 60, "cycles {}", r.cycles);
    }

    #[test]
    fn mdmx_accumulator_recurrence_serialises() {
        // 64 dependent accumulate ops (MediaComplex, acc as src+dst) vs 4 MOM
        // matrix accumulates of 16 elements each: same work, and even though
        // the MOM instruction occupies the unit for 16 beats, it avoids paying
        // the multiply latency per element.
        let mdmx: Trace = (0..64u64)
            .map(|i| {
                DynInst::new(InstClass::MediaComplex, i)
                    .with_src(ArchReg::acc(0))
                    .with_src(ArchReg::media(1))
                    .with_dst(ArchReg::acc(0))
            })
            .collect();
        let mom: Trace = (0..4u64)
            .map(|i| {
                DynInst::new(InstClass::MediaComplex, i)
                    .with_src(ArchReg::mom_acc(0))
                    .with_src(ArchReg::mom(1))
                    .with_dst(ArchReg::mom_acc(0))
                    .with_elems(16)
            })
            .collect();
        let mdmx_r = run(&mdmx, 4, IsaKind::Mdmx);
        let mom_r = run(&mom, 4, IsaKind::Mom);
        assert!(
            mom_r.cycles < mdmx_r.cycles,
            "MOM accumulate ({}) should beat the MDMX recurrence ({})",
            mom_r.cycles,
            mdmx_r.cycles
        );
    }

    #[test]
    fn memory_latency_hurts_scalar_loads_more_than_vector_loads() {
        // 64 dependent scalar loads vs 4 dependent vector loads of 16 elements:
        // with 50-cycle latency the scalar version pays the latency per load.
        let scalar: Trace = (0..64u64)
            .map(|i| {
                DynInst::new(InstClass::Load, i)
                    .with_src(ArchReg::int(1))
                    .with_dst(ArchReg::int(1))
                    .with_mem(vec![MemAccess { addr: i * 8, size: 8, kind: MemKind::Load }])
            })
            .collect();
        let vector: Trace = (0..4u64)
            .map(|i| {
                DynInst::new(InstClass::Load, i)
                    .with_src(ArchReg::int(1))
                    .with_dst(ArchReg::mom(0))
                    .with_elems(16)
                    .with_mem(
                        (0..16)
                            .map(|k| MemAccess { addr: i * 1024 + k * 8, size: 8, kind: MemKind::Load })
                            .collect(),
                    )
            })
            .collect();
        let core = OooCore::new(CoreConfig::way4(IsaKind::Alpha));
        let mut mem1 = build_memory(MemModelKind::Perfect { latency: 1 }, 4);
        let mut mem50 = build_memory(MemModelKind::Perfect { latency: 50 }, 4);
        let s1 = core.simulate(&scalar, mem1.as_mut());
        let s50 = core.simulate(&scalar, mem50.as_mut());
        let core_mom = OooCore::new(CoreConfig::way4(IsaKind::Mom));
        let mut mem1v = build_memory(MemModelKind::Perfect { latency: 1 }, 4);
        let mut mem50v = build_memory(MemModelKind::Perfect { latency: 50 }, 4);
        let v1 = core_mom.simulate(&vector, mem1v.as_mut());
        let v50 = core_mom.simulate(&vector, mem50v.as_mut());
        let scalar_slowdown = s50.cycles as f64 / s1.cycles as f64;
        let vector_slowdown = v50.cycles as f64 / v1.cycles as f64;
        assert!(
            vector_slowdown < scalar_slowdown,
            "vector slowdown {vector_slowdown:.2} vs scalar {scalar_slowdown:.2}"
        );
    }

    #[test]
    fn rob_size_limits_memory_level_parallelism() {
        // Independent loads with 50-cycle latency: the 8-way machine's larger
        // ROB allows more overlap than the 1-way machine's 8-entry ROB.
        let t: Trace = (0..256u64)
            .map(|i| {
                DynInst::new(InstClass::Load, i)
                    .with_src(ArchReg::int(0))
                    .with_dst(ArchReg::int(8 + (i % 8) as u8))
                    .with_mem(vec![MemAccess { addr: i * 64, size: 8, kind: MemKind::Load }])
            })
            .collect();
        let core1 = OooCore::new(CoreConfig::way1(IsaKind::Alpha));
        let core8 = OooCore::new(CoreConfig::way8(IsaKind::Alpha));
        let mut m1 = build_memory(MemModelKind::Perfect { latency: 50 }, 1);
        let mut m8 = build_memory(MemModelKind::Perfect { latency: 50 }, 8);
        let r1 = core1.simulate(&t, m1.as_mut());
        let r8 = core8.simulate(&t, m8.as_mut());
        assert!(r8.cycles * 2 < r1.cycles, "8-way {} vs 1-way {}", r8.cycles, r1.cycles);
    }

    #[test]
    fn latencies_default_are_sane() {
        let l = Latencies::default();
        assert!(l.int_complex > l.int_simple);
        assert!(l.media_complex > l.media_simple);
    }
}
