//! The out-of-order core timing model.
//!
//! The model is a **streaming** consumer of dynamic instructions:
//! [`OooCore::stream`] opens an incremental [`SimStream`] that retires one
//! [`DynInst`] at a time through a first-order model of an R10000-style
//! out-of-order pipeline: width-limited fetch with a bimodal predictor and
//! BTB, a front-end of fixed depth, renaming limited by per-class physical
//! register headroom, a reorder buffer and load/store queue of the configured
//! sizes, functional-unit pools with per-class latencies (multimedia units may
//! have multiple vector lanes), a memory system consulted for every load and
//! store, and width-limited in-order commit.
//!
//! Every pipeline constraint looks a bounded distance into the past, so the
//! engine's state is **O(ROB size)** — ring buffers over the last ROB-size
//! commits, the last fetch group, the last LSQ-size memory commits and the
//! per-class rename headroom — never O(trace length). Traces of any size can
//! be simulated without materializing them: pull from an [`InstSource`]
//! ([`OooCore::simulate_source`]) or push from the functional interpreter
//! (`Program::stream` in `mom-core`) using the [`SimStream`] as a
//! [`TraceSink`]. [`OooCore::simulate`] replays a collected [`Trace`] through
//! the same engine and is bit-identical to streaming the same sequence.
//!
//! The model computes, for every dynamic instruction, the cycle at which it is
//! fetched, dispatched, issued, completed and committed, honouring:
//!
//! * data dependences through architectural registers (including the MDMX
//!   accumulator recurrence and the MOM vector-length register);
//! * structural limits — ROB, LSQ, physical registers, functional units,
//!   memory ports (delegated to the memory model);
//! * control dependences — mispredicted branches redirect fetch after the
//!   branch resolves; correctly-predicted taken branches still end the fetch
//!   group (one taken branch fetched per cycle).

use crate::config::CoreConfig;
use crate::predictor::BranchPredictor;
use crate::probe::{NoProbe, Probe, StallCause};
use mom_isa::codec::{CodecError, Decoder, Encoder};
use mom_isa::trace::{ArchReg, DynInst, InstClass, MemAccess, RegClass, Trace, TraceSink};
use mom_mem::{AccessCause, MemorySystem, PerfectMemory};

/// Version tag of the serialized [`SimState`] layout. Bump on any change to
/// what [`SimState::save_state`] writes.
const ENGINE_STATE_VERSION: u32 = 1;

/// Execution latencies per functional-unit class, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// Simple integer operations.
    pub int_simple: u64,
    /// Integer multiply/divide.
    pub int_complex: u64,
    /// Simple floating-point operations.
    pub fp_simple: u64,
    /// Floating-point multiply/divide.
    pub fp_complex: u64,
    /// Simple packed multimedia operations.
    pub media_simple: u64,
    /// Packed multiplies and multiply-accumulates.
    pub media_complex: u64,
    /// Branch resolution.
    pub branch: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Self {
            int_simple: 1,
            int_complex: 3,
            fp_simple: 2,
            fp_complex: 4,
            media_simple: 1,
            media_complex: 3,
            branch: 1,
        }
    }
}

/// Summary of one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct SimResult {
    /// Total cycles from first fetch to last commit.
    pub cycles: u64,
    /// Committed (graduated) instructions.
    pub committed: u64,
    /// Branches executed.
    pub branches: u64,
    /// Branch mispredictions.
    pub mispredictions: u64,
    /// Times a memory instruction had to retry for a free port.
    pub mem_retries: u64,
    /// Element-level memory accesses performed.
    pub mem_accesses: u64,
}

impl SimResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Speed-up of this run relative to a baseline run of the *same work*
    /// (cycles of the baseline divided by cycles of this run).
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }
}

/// Largest functional-unit pool any configuration declares (the 8-way
/// machine's 4 media units). Pools are stored inline at this size so the
/// per-instruction reservation scan never chases a heap pointer.
const MAX_UNITS: usize = 4;

/// Pool of functional units of one kind: tracks when each unit is next free.
#[derive(Debug, Clone)]
struct UnitPool {
    simple_free: [u64; MAX_UNITS],
    complex_free: [u64; MAX_UNITS],
    n_simple: usize,
    n_complex: usize,
    lanes: usize,
}

impl UnitPool {
    fn new(simple: usize, complex: usize, lanes: usize) -> Self {
        assert!(
            simple <= MAX_UNITS && complex <= MAX_UNITS,
            "functional-unit pools larger than {MAX_UNITS} are not supported"
        );
        Self {
            simple_free: [0; MAX_UNITS],
            complex_free: [0; MAX_UNITS],
            n_simple: simple,
            n_complex: complex,
            lanes: lanes.max(1),
        }
    }

    /// Mark every unit idle again (the machine-reuse `reset()` path).
    fn reset(&mut self) {
        self.simple_free.fill(0);
        self.complex_free.fill(0);
    }

    /// Reserve a unit able to execute an operation of the given complexity,
    /// starting no earlier than `earliest`, for `occupancy` cycles. Returns
    /// the actual start cycle.
    ///
    /// Always inlined: the pools are at most [`MAX_UNITS`] entries and the
    /// call otherwise stays opaque in `feed`'s already-large frame.
    #[inline(always)]
    fn reserve(&mut self, earliest: u64, complex_op: bool, occupancy: u64) -> u64 {
        // Complex ops may only use complex-capable units; simple ops prefer
        // whichever unit frees first (ties go to the simple pool, then the
        // lower index — the first minimum in scan order). No per-call
        // allocation: this runs once per simulated instruction.
        let mut in_complex = true;
        let mut idx = usize::MAX;
        let mut free = u64::MAX;
        if !complex_op {
            for (i, &f) in self.simple_free[..self.n_simple].iter().enumerate() {
                if f < free {
                    in_complex = false;
                    idx = i;
                    free = f;
                }
            }
        }
        for (i, &f) in self.complex_free[..self.n_complex].iter().enumerate() {
            if f < free {
                in_complex = true;
                idx = i;
                free = f;
            }
        }
        assert!(idx != usize::MAX, "functional-unit pool must not be empty for issued class");
        let start = earliest.max(free);
        let until = start + occupancy;
        if in_complex {
            self.complex_free[idx] = until;
        } else {
            self.simple_free[idx] = until;
        }
        start
    }

    /// Serialize the per-unit busy cycles for a checkpoint.
    fn save_state(&self, e: &mut Encoder) {
        e.usize(self.n_simple);
        e.usize(self.n_complex);
        e.usize(self.lanes);
        for &free in &self.simple_free {
            e.u64(free);
        }
        for &free in &self.complex_free {
            e.u64(free);
        }
    }

    /// Restore state written by [`UnitPool::save_state`]; the pool shape must
    /// match.
    fn load_state(&mut self, d: &mut Decoder<'_>) -> Result<(), CodecError> {
        d.expect_u64(self.n_simple as u64, "unit pool simple count")?;
        d.expect_u64(self.n_complex as u64, "unit pool complex count")?;
        d.expect_u64(self.lanes as u64, "unit pool lanes")?;
        for free in &mut self.simple_free {
            *free = d.u64("unit free cycle")?;
        }
        for free in &mut self.complex_free {
            *free = d.u64("unit free cycle")?;
        }
        Ok(())
    }
}

/// Ring buffer over the tail of an unbounded cycle sequence: keeps only the
/// last `window` values pushed, which is all the pipeline constraints ever
/// look at (ROB size for commits, issue width for fetches, LSQ size for
/// memory commits, rename headroom for per-class writers). This is what
/// bounds the streaming simulator's state to O(ROB) instead of O(trace).
///
/// The backing buffer is rounded up to a power of two so the ring index is a
/// mask instead of an integer division — `feed` consults several histories
/// per retired instruction, and the divisions were a measurable slice of the
/// simulator's per-instruction cost. The retained values are unchanged: only
/// where in the buffer they live differs.
#[derive(Debug, Clone)]
struct History {
    buf: Vec<u64>,
    mask: usize,
    window: usize,
    len: usize,
}

impl History {
    fn new(capacity: usize) -> Self {
        let window = capacity.max(1);
        let cap = window.next_power_of_two();
        Self { buf: vec![0; cap], mask: cap - 1, window, len: 0 }
    }

    /// Total values pushed so far (not the retained count).
    fn len(&self) -> usize {
        self.len
    }

    /// Retained window size in entries.
    fn capacity(&self) -> usize {
        self.window
    }

    fn push(&mut self, value: u64) {
        self.buf[self.len & self.mask] = value;
        self.len += 1;
    }

    /// The `k`-th most recent value (`k = 1` is the last pushed). `k` must be
    /// within both the pushed length and the retained window.
    fn nth_back(&self, k: usize) -> u64 {
        debug_assert!(k >= 1 && k <= self.len && k <= self.window);
        self.buf[(self.len - k) & self.mask]
    }

    /// Forget everything pushed so far without touching the backing buffer
    /// (stale entries are unreachable: `nth_back` only looks within `len`).
    /// The machine-reuse `reset()` path.
    fn reset(&mut self) {
        self.len = 0;
    }

    /// Serialize the window, the full backing buffer and the monotonic push
    /// count. The whole buffer is written — not just the reachable window —
    /// so `encode → decode → encode` is byte-stable without any masking
    /// logic; buffers are O(ROB), so the cost is a few hundred bytes.
    fn save_state(&self, e: &mut Encoder) {
        e.usize(self.window);
        e.usize(self.buf.len());
        e.usize(self.len);
        for &v in &self.buf {
            e.u64(v);
        }
    }

    /// Restore state written by [`History::save_state`]; the window and
    /// backing capacity must match (`mask` is derived from the capacity).
    fn load_state(&mut self, d: &mut Decoder<'_>) -> Result<(), CodecError> {
        d.expect_u64(self.window as u64, "history window")?;
        d.expect_u64(self.buf.len() as u64, "history capacity")?;
        self.len = d.usize("history length")?;
        for v in &mut self.buf {
            *v = d.u64("history entry")?;
        }
        Ok(())
    }
}

fn reg_slot(reg: ArchReg) -> usize {
    let class = match reg.class {
        RegClass::Int => 0,
        RegClass::Fp => 1,
        RegClass::Media => 2,
        RegClass::Acc => 3,
        RegClass::Mom => 4,
        RegClass::MomAcc => 5,
    };
    class * 64 + (reg.index as usize % 64)
}

/// The out-of-order core model.
#[derive(Debug, Clone)]
pub struct OooCore {
    config: CoreConfig,
    latencies: Latencies,
}

impl OooCore {
    /// Create a core with the given configuration and default latencies.
    pub fn new(config: CoreConfig) -> Self {
        Self { config, latencies: Latencies::default() }
    }

    /// Create a core with explicit execution latencies.
    pub fn with_latencies(config: CoreConfig, latencies: Latencies) -> Self {
        Self { config, latencies }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Replay a materialized `trace` against `memory` and return the timing
    /// summary.
    ///
    /// This is a thin adapter over the streaming engine: it feeds every
    /// instruction of the trace into an [`OooCore::stream`] simulator and
    /// finishes it. The result is identical to streaming the same
    /// instruction sequence directly (no collected trace required).
    ///
    /// # Panics
    ///
    /// Panics if the memory system refuses a request for an implausibly long
    /// time (which would indicate a broken memory model, not a property of the
    /// workload).
    pub fn simulate(&self, trace: &Trace, memory: &mut dyn MemorySystem) -> SimResult {
        let mut sim = self.stream(memory);
        for inst in &trace.insts {
            sim.feed(inst);
        }
        sim.finish()
    }

    /// Pull every instruction out of `source` and simulate it, returning the
    /// timing summary. The source is drained; memory use is bounded by the
    /// simulator's O(ROB) window regardless of how many instructions the
    /// source yields.
    ///
    /// # Panics
    ///
    /// As for [`OooCore::simulate`]: panics only on a broken memory model.
    pub fn simulate_source<I: InstSource + ?Sized>(
        &self,
        source: &mut I,
        memory: &mut dyn MemorySystem,
    ) -> SimResult {
        let mut sim = self.stream(memory);
        while let Some(inst) = source.next_inst() {
            sim.feed(&inst);
        }
        sim.finish()
    }

    /// Start an incremental streaming simulation against `memory`.
    ///
    /// Feed graduated instructions in program order with [`SimStream::feed`]
    /// (or use the returned value as a [`TraceSink`] for the functional
    /// interpreter — `Program::stream` in `mom-core` — fusing interpretation
    /// and timing simulation without an intermediate trace), then call
    /// [`SimStream::finish`] for the summary.
    pub fn stream<'a>(&'a self, memory: &'a mut dyn MemorySystem) -> SimStream<'a> {
        SimStream::new(&self.config, &self.latencies, memory, NoProbe)
    }

    /// Start a streaming simulation instrumented by `probe` — see
    /// [`crate::probe`]. With [`crate::AttributionProbe`] the stream
    /// additionally produces a per-cause [`crate::StallBreakdown`] and an
    /// interval timeline, retrievable via [`SimStream::finish_probed`]; the
    /// probe observes timing but never alters it, so the [`SimResult`] is
    /// bit-identical to an unprobed run of the same sequence.
    pub fn stream_probed<'a, P: Probe>(
        &'a self,
        memory: &'a mut dyn MemorySystem,
        probe: P,
    ) -> SimStream<'a, P> {
        SimStream::new(&self.config, &self.latencies, memory, probe)
    }

    /// Start a streaming simulation that borrows a long-lived [`SimState`]
    /// instead of allocating a private one — the machine-reuse path.
    ///
    /// `state` must have been created for this core's configuration (same
    /// table and ring-buffer sizes — enforced, see Panics) and be freshly
    /// created or [`SimState::reset`] for the results to match a standalone
    /// [`OooCore::stream`] run bit-for-bit. A non-reset state *continues* its
    /// previous stream, which is occasionally useful (phased feeding) but
    /// never what a grid runner wants.
    ///
    /// # Panics
    ///
    /// Panics if `state` was sized for a different configuration
    /// ([`SimState::matches_config`] fails) — a mismatched state would
    /// produce silently wrong timings otherwise.
    pub fn stream_with<'a>(
        &'a self,
        state: &'a mut SimState,
        memory: &'a mut dyn MemorySystem,
    ) -> SimStream<'a> {
        SimStream::with_state(&self.config, &self.latencies, memory, state, NoProbe)
    }

    /// The probed variant of [`OooCore::stream_with`]: borrow a long-lived
    /// [`SimState`] *and* instrument the stream with `probe`.
    ///
    /// # Panics
    ///
    /// As for [`OooCore::stream_with`]: panics on a state sized for a
    /// different configuration.
    pub fn stream_with_probed<'a, P: Probe>(
        &'a self,
        state: &'a mut SimState,
        memory: &'a mut dyn MemorySystem,
        probe: P,
    ) -> SimStream<'a, P> {
        SimStream::with_state(&self.config, &self.latencies, memory, state, probe)
    }

    /// Allocate a reusable engine state sized for this core — the companion
    /// of [`OooCore::stream_with`].
    pub fn new_state(&self) -> SimState {
        SimState::new(&self.config)
    }
}

/// A pull-based producer of dynamic instructions for
/// [`OooCore::simulate_source`].
///
/// Every `Iterator<Item = DynInst>` is an `InstSource`, so synthetic
/// generators and `trace.into_iter()` both work directly.
pub trait InstSource {
    /// The next instruction in program order, or `None` at end of stream.
    fn next_inst(&mut self) -> Option<DynInst>;
}

impl<I: Iterator<Item = DynInst>> InstSource for I {
    fn next_inst(&mut self) -> Option<DynInst> {
        self.next()
    }
}

/// The mutable engine state of a streaming simulation — everything
/// [`SimStream::feed`] updates, separated from the borrowed configuration and
/// memory system so it can **outlive one simulation and be reused for the
/// next**.
///
/// The state owns the allocations that used to be rebuilt per grid cell:
/// predictor tables, ring-buffer histories and functional-unit pools.
/// [`SimState::reset`] restores the just-built state without reallocating
/// any of them; a reset state driven through the same instruction sequence
/// produces bit-identical results to a fresh one. `OooCore::stream` still
/// creates a private state per stream; `OooCore::stream_with` (and
/// `SimMachine` in [`crate::machine`]) borrow a long-lived one instead.
#[derive(Debug)]
pub struct SimState {
    predictor: BranchPredictor,
    int_units: UnitPool,
    fp_units: UnitPool,
    media_units: UnitPool,
    /// Producer availability per architectural register.
    reg_ready: [u64; 6 * 64],
    /// Commit cycles of the last ROB-size instructions.
    commits: History,
    /// Fetch cycles of the last fetch group (issue width entries).
    fetches: History,
    /// Commit cycles of the last LSQ-size memory operations.
    mem_commits: History,
    /// Commit cycles of the last headroom writers per register class.
    class_writers: [History; 6],
    redirect_floor: u64,
    fetch_break_floor: u64,
    fed: usize,
    last_commit: u64,
    /// Fetch cycle of the most recent instruction — always equal to
    /// `fetches.nth_back(1)`, kept as a scalar so the program-order floor
    /// does not need a ring read.
    last_fetch: u64,
    result: SimResult,
}

impl SimState {
    /// Allocate the engine state for the given core configuration.
    pub fn new(config: &CoreConfig) -> Self {
        Self {
            predictor: BranchPredictor::new(config.bimodal_entries, config.btb_entries),
            int_units: UnitPool::new(config.int_units.simple, config.int_units.complex, 1),
            fp_units: UnitPool::new(config.fp_units.simple, config.fp_units.complex, 1),
            media_units: UnitPool::new(
                config.media_units.simple,
                config.media_units.complex,
                config.media_units.lanes,
            ),
            reg_ready: [0; 6 * 64],
            commits: History::new(config.rob_size),
            fetches: History::new(config.way),
            mem_commits: History::new(config.lsq_size),
            class_writers: std::array::from_fn(|ci| {
                History::new(config.rename_headroom(RegClass::ALL[ci]))
            }),
            redirect_floor: 0,
            fetch_break_floor: 0,
            fed: 0,
            last_commit: 0,
            last_fetch: 0,
            result: SimResult::default(),
        }
    }

    /// Restore the just-built state — predictor re-initialised, histories
    /// emptied, unit pools and register scoreboard idle, counters zeroed —
    /// **without reallocating** the tables and ring buffers. A reset state is
    /// observationally identical to a fresh [`SimState::new`] for the same
    /// configuration.
    pub fn reset(&mut self) {
        self.predictor.reset();
        self.int_units.reset();
        self.fp_units.reset();
        self.media_units.reset();
        self.reg_ready.fill(0);
        self.commits.reset();
        self.fetches.reset();
        self.mem_commits.reset();
        for h in &mut self.class_writers {
            h.reset();
        }
        self.redirect_floor = 0;
        self.fetch_break_floor = 0;
        self.fed = 0;
        self.last_commit = 0;
        self.last_fetch = 0;
        self.result = SimResult::default();
    }

    /// Instructions fed (and retired) so far.
    pub fn fed(&self) -> usize {
        self.fed
    }

    /// Total ring-buffer entries retained — see [`SimStream::window_entries`].
    pub fn window_entries(&self) -> usize {
        self.commits.capacity()
            + self.fetches.capacity()
            + self.mem_commits.capacity()
            + self.class_writers.iter().map(History::capacity).sum::<usize>()
    }

    /// Whether this state was sized for `config`: every ring-buffer window,
    /// predictor table and functional-unit pool matches. Streaming a state
    /// into a differently-sized configuration would index the ring buffers
    /// with the wrong windows and produce silently wrong timings, so
    /// `OooCore::stream_with` asserts this.
    pub fn matches_config(&self, config: &CoreConfig) -> bool {
        let pool_matches = |pool: &UnitPool, spec: &crate::config::FuPool| {
            pool.n_simple == spec.simple
                && pool.n_complex == spec.complex
                && pool.lanes == spec.lanes.max(1)
        };
        self.commits.capacity() == config.rob_size.max(1)
            && self.fetches.capacity() == config.way.max(1)
            && self.mem_commits.capacity() == config.lsq_size.max(1)
            && RegClass::ALL.iter().enumerate().all(|(ci, &class)| {
                self.class_writers[ci].capacity() == config.rename_headroom(class).max(1)
            })
            && self.predictor.table_sizes() == (config.bimodal_entries, config.btb_entries)
            && pool_matches(&self.int_units, &config.int_units)
            && pool_matches(&self.fp_units, &config.fp_units)
            && pool_matches(&self.media_units, &config.media_units)
    }

    fn summary(&self) -> SimResult {
        let mut result = self.result;
        result.cycles = if self.fed == 0 { 0 } else { self.last_commit };
        result.committed = self.fed as u64;
        result.branches = self.predictor.predictions;
        result.mispredictions = self.predictor.mispredictions;
        result
    }

    /// Serialize the complete engine state — predictor tables, unit pools,
    /// register scoreboard, every ring-buffer history, the pipeline floors
    /// and the live counters — through the checkpoint codec. A state restored
    /// by [`SimState::load_state`] continues the stream with bit-identical
    /// timing to one that was never interrupted.
    pub fn save_state(&self, e: &mut Encoder) {
        e.u32(ENGINE_STATE_VERSION);
        self.predictor.save_state(e);
        self.int_units.save_state(e);
        self.fp_units.save_state(e);
        self.media_units.save_state(e);
        for &ready in self.reg_ready.iter() {
            e.u64(ready);
        }
        self.commits.save_state(e);
        self.fetches.save_state(e);
        self.mem_commits.save_state(e);
        for writers in &self.class_writers {
            writers.save_state(e);
        }
        e.u64(self.redirect_floor);
        e.u64(self.fetch_break_floor);
        e.usize(self.fed);
        e.u64(self.last_commit);
        e.u64(self.last_fetch);
        e.u64(self.result.cycles);
        e.u64(self.result.committed);
        e.u64(self.result.branches);
        e.u64(self.result.mispredictions);
        e.u64(self.result.mem_retries);
        e.u64(self.result.mem_accesses);
    }

    /// Restore engine state written by [`SimState::save_state`] into this
    /// state. The receiver must have been sized for the same core
    /// configuration the snapshot was taken from (the same invariant
    /// [`SimState::matches_config`] pins for streaming).
    ///
    /// # Errors
    ///
    /// Fails with a [`CodecError`] on a truncated stream, an unsupported
    /// version, or a snapshot from a differently configured engine; the
    /// receiver's state is unspecified after a failed restore.
    pub fn load_state(&mut self, d: &mut Decoder<'_>) -> Result<(), CodecError> {
        let version = d.u32("engine state version")?;
        if version != ENGINE_STATE_VERSION {
            return Err(CodecError::Version { what: "engine state", found: version });
        }
        self.predictor.load_state(d)?;
        self.int_units.load_state(d)?;
        self.fp_units.load_state(d)?;
        self.media_units.load_state(d)?;
        for ready in self.reg_ready.iter_mut() {
            *ready = d.u64("register ready cycle")?;
        }
        self.commits.load_state(d)?;
        self.fetches.load_state(d)?;
        self.mem_commits.load_state(d)?;
        for writers in &mut self.class_writers {
            writers.load_state(d)?;
        }
        self.redirect_floor = d.u64("redirect floor")?;
        self.fetch_break_floor = d.u64("fetch break floor")?;
        self.fed = d.usize("instructions fed")?;
        self.last_commit = d.u64("last commit cycle")?;
        self.last_fetch = d.u64("last fetch cycle")?;
        self.result.cycles = d.u64("result cycles")?;
        self.result.committed = d.u64("result committed")?;
        self.result.branches = d.u64("result branches")?;
        self.result.mispredictions = d.u64("result mispredictions")?;
        self.result.mem_retries = d.u64("result mem retries")?;
        self.result.mem_accesses = d.u64("result mem accesses")?;
        Ok(())
    }
}

/// Where a [`SimStream`]'s engine state lives: private to the stream (the
/// classic `OooCore::stream` path) or borrowed from a long-lived machine that
/// reuses it across cells (`OooCore::stream_with`).
#[derive(Debug)]
enum StateSlot<'a> {
    Owned(Box<SimState>),
    Borrowed(&'a mut SimState),
}

impl StateSlot<'_> {
    fn get(&self) -> &SimState {
        match self {
            StateSlot::Owned(s) => s,
            StateSlot::Borrowed(s) => s,
        }
    }

    fn get_mut(&mut self) -> &mut SimState {
        match self {
            StateSlot::Owned(s) => s,
            StateSlot::Borrowed(s) => s,
        }
    }
}

/// An in-flight streaming simulation: the out-of-order pipeline model as an
/// incremental consumer of dynamic instructions.
///
/// The pipeline constraints only ever reach a bounded distance into the
/// past — the ROB size for in-flight instructions, the issue width for the
/// fetch group, the LSQ size for memory operations and the per-class rename
/// headroom for physical registers — so the engine retains exactly those
/// windows in ring buffers. Total state is **O(ROB size)**, independent of
/// how many instructions are fed; see [`SimStream::window_entries`].
///
/// Feeding the instructions of a collected [`Trace`] in order produces a
/// result bit-identical to [`OooCore::simulate`] on that trace (which is
/// itself implemented this way).
/// The stream is generic over a [`Probe`]; the default [`NoProbe`] disables
/// every instrumented block at compile time (`P::ENABLED` is an associated
/// constant), so the classic probe-off stream monomorphizes to exactly the
/// uninstrumented engine. See [`crate::probe`] for the attribution model.
#[derive(Debug)]
pub struct SimStream<'a, P: Probe = NoProbe> {
    config: &'a CoreConfig,
    latencies: &'a Latencies,
    memory: MemRef<'a>,
    state: StateSlot<'a>,
    probe: P,
}

/// The stream's handle on its memory system, devirtualized once at
/// construction via [`MemorySystem::as_perfect`]: the perfect model — every
/// kernel-level experiment and the throughput stress bench — resolves to the
/// `Perfect` arm, whose inlined port check replaces two virtual calls per
/// memory instruction in the retire loop. Any other model goes through the
/// trait object exactly as before.
#[derive(Debug)]
enum MemRef<'a> {
    Perfect(&'a mut PerfectMemory),
    Other(&'a mut dyn MemorySystem),
}

impl<'a> MemRef<'a> {
    fn new(memory: &'a mut dyn MemorySystem) -> Self {
        // Probe with a short-lived borrow first: a direct `match` on
        // `as_perfect()` would hold its borrow into the `None` arm and
        // conflict with handing `memory` itself to `Other`.
        if memory.as_perfect().is_some() {
            MemRef::Perfect(memory.as_perfect().expect("as_perfect just returned Some"))
        } else {
            MemRef::Other(memory)
        }
    }

    #[inline(always)]
    fn access(&mut self, cycle: u64, accesses: &[MemAccess], vector: bool) -> Option<u64> {
        match self {
            MemRef::Perfect(m) => m.access(cycle, accesses, vector),
            MemRef::Other(m) => m.access(cycle, accesses, vector),
        }
    }

    #[inline(always)]
    fn last_access_cause(&self) -> AccessCause {
        match self {
            // The perfect model reports every access at the fixed latency.
            MemRef::Perfect(_) => AccessCause::L1,
            MemRef::Other(m) => m.last_access_cause(),
        }
    }
}

impl<'a, P: Probe> SimStream<'a, P> {
    fn new(
        config: &'a CoreConfig,
        latencies: &'a Latencies,
        memory: &'a mut dyn MemorySystem,
        probe: P,
    ) -> Self {
        Self {
            state: StateSlot::Owned(Box::new(SimState::new(config))),
            config,
            latencies,
            memory: MemRef::new(memory),
            probe,
        }
    }

    fn with_state(
        config: &'a CoreConfig,
        latencies: &'a Latencies,
        memory: &'a mut dyn MemorySystem,
        state: &'a mut SimState,
        probe: P,
    ) -> Self {
        // A state sized for a different configuration would read the ring
        // buffers with the wrong windows — plausible-but-wrong cycle counts
        // with no other symptom — so fail loudly instead.
        assert!(
            state.matches_config(config),
            "SimState was built for a different core configuration"
        );
        Self {
            state: StateSlot::Borrowed(state),
            config,
            latencies,
            memory: MemRef::new(memory),
            probe,
        }
    }

    /// Total ring-buffer entries retained — the simulator's bounded lookback
    /// window. A constant of the configuration (ROB + width + LSQ + rename
    /// headrooms), never of the number of instructions fed.
    pub fn window_entries(&self) -> usize {
        self.state.get().window_entries()
    }

    /// Instructions fed (and retired) so far.
    pub fn fed(&self) -> usize {
        self.state.get().fed
    }

    /// Retire the next instruction in program order.
    ///
    /// When the probe is enabled, every stage additionally tracks *which*
    /// constraint was binding; a later-stage constraint only takes over the
    /// cause when it is **strictly** later (ties keep the earlier-stage
    /// cause), which makes the attribution deterministic and lets the commit
    /// deltas telescope exactly to total cycles. With [`NoProbe`] every one
    /// of those blocks is `if false { .. }` and vanishes at compile time.
    ///
    /// # Panics
    ///
    /// Panics if the memory system refuses a request for an implausibly long
    /// time (a broken memory model, not a property of the workload).
    pub fn feed(&mut self, inst: &DynInst) {
        Self::feed_one(
            self.config,
            self.latencies,
            &mut self.memory,
            &mut self.probe,
            self.state.get_mut(),
            inst,
        );
    }

    /// [`SimStream::feed`]'s body, over pre-split borrows of the stream's
    /// parts. Always inlined so that the chunked [`TraceSink::emit_batch`]
    /// loop below gets its own copy: the state, memory and probe arrive as
    /// distinct `&mut` references resolved once per chunk (no per-call
    /// [`StateSlot`] match, and LLVM sees they cannot alias), so the
    /// cross-instruction scalars (`last_fetch`, `last_commit`, `fed`, the
    /// floors) can live in registers across iterations instead of
    /// round-tripping through `SimState` on every instruction.
    #[inline(always)]
    fn feed_one(
        cfg: &CoreConfig,
        lat: &Latencies,
        memory: &mut MemRef<'_>,
        probe: &mut P,
        st: &mut SimState,
        inst: &DynInst,
    ) {
        let i = st.fed;

        // Destinations are consulted three times per instruction (rename
        // check, writeback, per-class commit history); resolve the register
        // slots once. The class index is recoverable as `slot >> 6`.
        let mut dest_slots = [0usize; mom_isa::trace::MAX_DSTS];
        let mut ndests = 0usize;
        for d in inst.dests() {
            dest_slots[ndests] = reg_slot(d);
            ndests += 1;
        }
        let dest_slots = &dest_slots[..ndests];

        // ---------------- Fetch ----------------
        let width_floor = if i >= cfg.way { st.fetches.nth_back(cfg.way) + 1 } else { 0 };
        // Program order within a fetch group: the previous instruction's
        // fetch cycle, tracked as a scalar (== `fetches.nth_back(1)`, and 0
        // before anything was fetched — exactly the old `i > 0` guard).
        let order_floor = st.last_fetch;
        let f = st
            .redirect_floor
            .max(st.fetch_break_floor)
            .max(width_floor)
            .max(order_floor);
        let mut cause = StallCause::Base;
        if P::ENABLED && st.redirect_floor > st.fetch_break_floor.max(width_floor).max(order_floor)
        {
            cause = StallCause::Redirect;
        }
        st.fetches.push(f);
        st.last_fetch = f;
        st.fetch_break_floor = 0;

        // ---------------- Dispatch (rename + ROB/LSQ/phys-reg allocation) ----------------
        let mut dispatch = f + cfg.frontend_depth;
        if i >= cfg.rob_size {
            let rob_floor = st.commits.nth_back(cfg.rob_size);
            if rob_floor > dispatch {
                dispatch = rob_floor;
                if P::ENABLED {
                    cause = StallCause::RobFull;
                }
            }
        }
        let is_mem = inst.class.is_mem();
        if is_mem && st.mem_commits.len() >= cfg.lsq_size {
            let lsq_floor = st.mem_commits.nth_back(cfg.lsq_size);
            if lsq_floor > dispatch {
                dispatch = lsq_floor;
                if P::ENABLED {
                    cause = StallCause::LsqFull;
                }
            }
        }
        for &slot in dest_slots {
            // The writer history's window is exactly the rename headroom for
            // its class (`matches_config` pins this).
            let writers = &st.class_writers[slot >> 6];
            let headroom = writers.capacity();
            if writers.len() >= headroom {
                let rename_floor = writers.nth_back(headroom);
                if rename_floor > dispatch {
                    dispatch = rename_floor;
                    if P::ENABLED {
                        cause = StallCause::Rename;
                    }
                }
            }
        }

        // ---------------- Operand readiness ----------------
        // One pass tracking the binding producer; the recorded slot is the
        // first source reaching the maximum, which matches updating on every
        // strict improvement.
        let mut ready = dispatch + 1;
        let mut binding_slot = usize::MAX;
        for s in inst.sources() {
            let slot = reg_slot(s);
            let avail = st.reg_ready[slot];
            if avail > ready {
                ready = avail;
                binding_slot = slot;
            }
        }
        if P::ENABLED && binding_slot != usize::MAX {
            // Charge the producer's recorded cause: a chain of DRAM
            // misses reads as DRAM time, not dependence time.
            cause = probe.reg_cause(binding_slot);
        }

        // ---------------- Execute ----------------
        let complete = match inst.class {
            InstClass::Load | InstClass::Store => {
                st.result.mem_accesses += inst.mem.len() as u64;
                let vector = inst.elems > 1;
                let mut t = ready;
                let mut retries = 0u64;
                let done = loop {
                    match memory.access(t, &inst.mem, vector) {
                        Some(done) => break done,
                        None => {
                            retries += 1;
                            t += 1;
                            assert!(
                                retries < 100_000,
                                "memory system refused a request for 100k cycles at pc {}",
                                inst.pc
                            );
                        }
                    }
                };
                st.result.mem_retries += retries;
                if P::ENABLED {
                    // Port-stall retries only shift the access's start, so
                    // they fold into the completed access's dominant level.
                    cause = StallCause::from_access(memory.last_access_cause());
                }
                done
            }
            InstClass::Branch => {
                let start = st.int_units.reserve(ready, false, 1);
                if P::ENABLED && start > ready {
                    cause = StallCause::UnitScalar;
                }
                let complete = start + lat.branch;
                if let Some(b) = inst.branch {
                    let correct =
                        st.predictor.predict_and_update(b.pc, b.conditional, b.taken, b.target);
                    if correct {
                        if b.taken {
                            // A taken branch ends the fetch group.
                            st.fetch_break_floor = f + 1;
                        }
                    } else {
                        st.redirect_floor =
                            st.redirect_floor.max(complete + cfg.mispredict_penalty);
                    }
                }
                complete
            }
            InstClass::Nop => ready,
            InstClass::IntSimple | InstClass::IntComplex => {
                let complex = inst.class == InstClass::IntComplex;
                let start = st.int_units.reserve(ready, complex, 1);
                if P::ENABLED && start > ready {
                    cause = StallCause::UnitScalar;
                }
                start + if complex { lat.int_complex } else { lat.int_simple }
            }
            InstClass::FpSimple | InstClass::FpComplex => {
                let complex = inst.class == InstClass::FpComplex;
                let start = st.fp_units.reserve(ready, complex, 1);
                if P::ENABLED && start > ready {
                    cause = StallCause::UnitScalar;
                }
                start + if complex { lat.fp_complex } else { lat.fp_simple }
            }
            InstClass::MediaSimple | InstClass::MediaComplex => {
                let complex = inst.class == InstClass::MediaComplex;
                // Every Table 1 configuration has 1- or 2-lane media units;
                // dividing by a runtime lane count would put a hardware
                // divide on every media instruction, so special-case both.
                let elems = (inst.elems as u64).max(1);
                let occupancy = match st.media_units.lanes {
                    1 => elems,
                    2 => elems.div_ceil(2),
                    lanes => elems.div_ceil(lanes as u64),
                };
                let start = st.media_units.reserve(ready, complex, occupancy);
                if P::ENABLED && start > ready {
                    cause = StallCause::UnitMedia;
                }
                let op_lat = if complex { lat.media_complex } else { lat.media_simple };
                start + occupancy - 1 + op_lat
            }
        };

        // ---------------- Writeback ----------------
        for &slot in dest_slots {
            st.reg_ready[slot] = complete;
            if P::ENABLED {
                probe.set_reg_cause(slot, cause);
            }
        }

        // ---------------- Commit ----------------
        // In-order commit: joining the previous commit cycle never adds a
        // delta, so it never changes the attributed cause. `last_commit` is
        // that cycle (0 before anything committed, where the max is a no-op).
        let mut c = (complete + 1).max(st.last_commit);
        if i >= cfg.way {
            let width_limit = st.commits.nth_back(cfg.way) + 1;
            if width_limit > c {
                c = width_limit;
                if P::ENABLED {
                    cause = StallCause::Base;
                }
            }
        }
        if P::ENABLED {
            probe.on_commit(c, c - st.last_commit, cause);
        }
        st.commits.push(c);
        for &slot in dest_slots {
            st.class_writers[slot >> 6].push(c);
        }
        if is_mem {
            st.mem_commits.push(c);
        }
        st.last_commit = c;
        st.fed = i + 1;
    }

    /// Finish the simulation and return the timing summary.
    ///
    /// With a borrowed state (see `OooCore::stream_with`) the state keeps its
    /// accumulated counters after the stream ends; reset it before reusing it
    /// for an unrelated simulation.
    pub fn finish(self) -> SimResult {
        self.state.get().summary()
    }

    /// Finish the simulation and return the timing summary together with the
    /// probe, which holds whatever it accumulated (for
    /// [`crate::AttributionProbe`]: the stall breakdown and interval
    /// timeline).
    pub fn finish_probed(self) -> (SimResult, P) {
        (self.state.get().summary(), self.probe)
    }

    /// The timing summary accumulated so far, **without** closing the stream.
    ///
    /// The sampled execution mode reads this at measurement-unit boundaries:
    /// the difference between two snapshots is the exact timing of the
    /// instructions fed between them. Snapshotting never perturbs the stream
    /// — the summary is computed from the live state, the same way
    /// [`SimStream::finish`] computes the final one.
    pub fn snapshot(&self) -> SimResult {
        self.state.get().summary()
    }

    /// The probe instrumenting this stream.
    pub fn probe(&self) -> &P {
        &self.probe
    }
}

/// The streaming simulator is itself a trace sink, so the functional
/// interpreter can graduate instructions straight into the timing model.
impl<P: Probe> TraceSink for SimStream<'_, P> {
    fn emit(&mut self, inst: DynInst) {
        self.feed(&inst);
    }

    fn emit_ref(&mut self, inst: &DynInst) {
        self.feed(inst);
    }

    fn emit_batch(&mut self, insts: &[DynInst]) {
        // Retiring the whole chunk in one frame keeps this stream's state hot
        // (and the branchy retire path's predictor history coherent) instead
        // of interleaving with the interpreter — or, under a fan-out, with
        // the other simulators — on every instruction. The stream's parts
        // are split into distinct borrows once per chunk, not once per
        // instruction.
        let st = self.state.get_mut();
        for inst in insts {
            Self::feed_one(self.config, self.latencies, &mut self.memory, &mut self.probe, st, inst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mom_isa::trace::{ArchReg, BranchInfo, DynInst, IsaKind, MemAccess, MemKind};
    use mom_mem::{build_memory, MemModelKind};

    fn alu(pc: u64, dst: u8, a: u8, b: u8) -> DynInst {
        DynInst::new(InstClass::IntSimple, pc)
            .with_src(ArchReg::int(a))
            .with_src(ArchReg::int(b))
            .with_dst(ArchReg::int(dst))
    }

    fn independent_trace(n: usize) -> Trace {
        // Instruction i writes register (i % 8) + 8 reading constants r0/r1:
        // effectively unlimited ILP.
        (0..n).map(|i| alu(i as u64, 8 + (i % 8) as u8, 0, 1)).collect()
    }

    fn dependent_trace(n: usize) -> Trace {
        // A serial chain: each instruction reads the previous one's result.
        (0..n).map(|i| alu(i as u64, 5, 5, 5)).collect()
    }

    fn run(trace: &Trace, way: usize, isa: IsaKind) -> SimResult {
        let core = OooCore::new(CoreConfig::for_width(way, isa));
        let mut mem = build_memory(MemModelKind::Perfect { latency: 1 }, way);
        core.simulate(trace, mem.as_mut())
    }

    #[test]
    fn empty_trace_is_zero_cycles() {
        let core = OooCore::new(CoreConfig::way4(IsaKind::Alpha));
        let mut mem = build_memory(MemModelKind::Perfect { latency: 1 }, 4);
        let r = core.simulate(&Trace::new(IsaKind::Alpha), mem.as_mut());
        assert_eq!(r.cycles, 0);
        assert_eq!(r.ipc(), 0.0);
    }

    #[test]
    fn wider_machines_run_independent_code_faster() {
        let t = independent_trace(2000);
        let w1 = run(&t, 1, IsaKind::Alpha);
        let w2 = run(&t, 2, IsaKind::Alpha);
        let w4 = run(&t, 4, IsaKind::Alpha);
        let w8 = run(&t, 8, IsaKind::Alpha);
        assert!(w2.cycles < w1.cycles);
        assert!(w4.cycles < w2.cycles);
        assert!(w8.cycles <= w4.cycles);
        // 1-way IPC is bounded by 1; the wide machines exceed it.
        assert!(w1.ipc() <= 1.01, "1-way IPC {}", w1.ipc());
        assert!(w4.ipc() > 1.5, "4-way IPC {}", w4.ipc());
        assert_eq!(w4.committed, 2000);
    }

    #[test]
    fn dependent_chain_is_serialised_regardless_of_width() {
        let t = dependent_trace(1000);
        let w1 = run(&t, 1, IsaKind::Alpha);
        let w8 = run(&t, 8, IsaKind::Alpha);
        // Both are limited by the dependence chain (about 1 cycle per
        // instruction) — width does not help.
        assert!(w8.cycles as f64 >= 0.9 * w1.cycles as f64);
        assert!(w1.ipc() <= 1.05);
    }

    #[test]
    fn speedup_over_baseline() {
        let t = independent_trace(1000);
        let w1 = run(&t, 1, IsaKind::Alpha);
        let w4 = run(&t, 4, IsaKind::Alpha);
        assert!(w4.speedup_over(&w1) > 1.5);
        assert!((w1.speedup_over(&w1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mispredicted_branches_cost_cycles() {
        // Alternating taken/not-taken branches defeat the bimodal predictor.
        let hard: Trace = (0..2000u64)
            .map(|i| {
                DynInst::new(InstClass::Branch, i % 7).with_branch(BranchInfo {
                    taken: i % 2 == 0,
                    conditional: true,
                    pc: i % 7,
                    target: 0,
                })
            })
            .collect();
        let easy: Trace = (0..2000u64)
            .map(|i| {
                DynInst::new(InstClass::Branch, i % 7).with_branch(BranchInfo {
                    taken: false,
                    conditional: true,
                    pc: i % 7,
                    target: 0,
                })
            })
            .collect();
        let hard_r = run(&hard, 4, IsaKind::Alpha);
        let easy_r = run(&easy, 4, IsaKind::Alpha);
        assert!(hard_r.mispredictions > easy_r.mispredictions * 5);
        assert!(hard_r.cycles > easy_r.cycles);
    }

    #[test]
    fn vector_media_instruction_occupies_unit_for_multiple_beats() {
        // One MOM media op with 16 elements vs 16 scalar media ops: the MOM
        // version should not be slower, and a dependent consumer must wait for
        // the full occupancy.
        let mom: Trace = vec![
            DynInst::new(InstClass::MediaSimple, 0)
                .with_dst(ArchReg::mom(1))
                .with_elems(16),
            DynInst::new(InstClass::MediaSimple, 1)
                .with_src(ArchReg::mom(1))
                .with_dst(ArchReg::mom(2))
                .with_elems(16),
        ]
        .into_iter()
        .collect();
        let r = run(&mom, 4, IsaKind::Mom);
        // Each op occupies the unit for 16 beats; the chain is ~32 cycles.
        assert!(r.cycles >= 30, "cycles {}", r.cycles);
        assert!(r.cycles <= 60, "cycles {}", r.cycles);
    }

    #[test]
    fn mdmx_accumulator_recurrence_serialises() {
        // 64 dependent accumulate ops (MediaComplex, acc as src+dst) vs 4 MOM
        // matrix accumulates of 16 elements each: same work, and even though
        // the MOM instruction occupies the unit for 16 beats, it avoids paying
        // the multiply latency per element.
        let mdmx: Trace = (0..64u64)
            .map(|i| {
                DynInst::new(InstClass::MediaComplex, i)
                    .with_src(ArchReg::acc(0))
                    .with_src(ArchReg::media(1))
                    .with_dst(ArchReg::acc(0))
            })
            .collect();
        let mom: Trace = (0..4u64)
            .map(|i| {
                DynInst::new(InstClass::MediaComplex, i)
                    .with_src(ArchReg::mom_acc(0))
                    .with_src(ArchReg::mom(1))
                    .with_dst(ArchReg::mom_acc(0))
                    .with_elems(16)
            })
            .collect();
        let mdmx_r = run(&mdmx, 4, IsaKind::Mdmx);
        let mom_r = run(&mom, 4, IsaKind::Mom);
        assert!(
            mom_r.cycles < mdmx_r.cycles,
            "MOM accumulate ({}) should beat the MDMX recurrence ({})",
            mom_r.cycles,
            mdmx_r.cycles
        );
    }

    #[test]
    fn memory_latency_hurts_scalar_loads_more_than_vector_loads() {
        // 64 dependent scalar loads vs 4 dependent vector loads of 16 elements:
        // with 50-cycle latency the scalar version pays the latency per load.
        let scalar: Trace = (0..64u64)
            .map(|i| {
                DynInst::new(InstClass::Load, i)
                    .with_src(ArchReg::int(1))
                    .with_dst(ArchReg::int(1))
                    .with_mem(vec![MemAccess { addr: i * 8, size: 8, kind: MemKind::Load }])
            })
            .collect();
        let vector: Trace = (0..4u64)
            .map(|i| {
                DynInst::new(InstClass::Load, i)
                    .with_src(ArchReg::int(1))
                    .with_dst(ArchReg::mom(0))
                    .with_elems(16)
                    .with_mem(
                        (0..16)
                            .map(|k| MemAccess { addr: i * 1024 + k * 8, size: 8, kind: MemKind::Load })
                            .collect::<mom_isa::trace::MemList>(),
                    )
            })
            .collect();
        let core = OooCore::new(CoreConfig::way4(IsaKind::Alpha));
        let mut mem1 = build_memory(MemModelKind::Perfect { latency: 1 }, 4);
        let mut mem50 = build_memory(MemModelKind::Perfect { latency: 50 }, 4);
        let s1 = core.simulate(&scalar, mem1.as_mut());
        let s50 = core.simulate(&scalar, mem50.as_mut());
        let core_mom = OooCore::new(CoreConfig::way4(IsaKind::Mom));
        let mut mem1v = build_memory(MemModelKind::Perfect { latency: 1 }, 4);
        let mut mem50v = build_memory(MemModelKind::Perfect { latency: 50 }, 4);
        let v1 = core_mom.simulate(&vector, mem1v.as_mut());
        let v50 = core_mom.simulate(&vector, mem50v.as_mut());
        let scalar_slowdown = s50.cycles as f64 / s1.cycles as f64;
        let vector_slowdown = v50.cycles as f64 / v1.cycles as f64;
        assert!(
            vector_slowdown < scalar_slowdown,
            "vector slowdown {vector_slowdown:.2} vs scalar {scalar_slowdown:.2}"
        );
    }

    #[test]
    fn rob_size_limits_memory_level_parallelism() {
        // Independent loads with 50-cycle latency: the 8-way machine's larger
        // ROB allows more overlap than the 1-way machine's 8-entry ROB.
        let t: Trace = (0..256u64)
            .map(|i| {
                DynInst::new(InstClass::Load, i)
                    .with_src(ArchReg::int(0))
                    .with_dst(ArchReg::int(8 + (i % 8) as u8))
                    .with_mem(vec![MemAccess { addr: i * 64, size: 8, kind: MemKind::Load }])
            })
            .collect();
        let core1 = OooCore::new(CoreConfig::way1(IsaKind::Alpha));
        let core8 = OooCore::new(CoreConfig::way8(IsaKind::Alpha));
        let mut m1 = build_memory(MemModelKind::Perfect { latency: 50 }, 1);
        let mut m8 = build_memory(MemModelKind::Perfect { latency: 50 }, 8);
        let r1 = core1.simulate(&t, m1.as_mut());
        let r8 = core8.simulate(&t, m8.as_mut());
        assert!(r8.cycles * 2 < r1.cycles, "8-way {} vs 1-way {}", r8.cycles, r1.cycles);
    }

    #[test]
    fn latencies_default_are_sane() {
        let l = Latencies::default();
        assert!(l.int_complex > l.int_simple);
        assert!(l.media_complex > l.media_simple);
    }

    /// A generator-backed `InstSource` that produces instructions on demand —
    /// the whole sequence never exists in memory at once.
    struct Generated {
        next: u64,
        total: u64,
    }

    impl Iterator for Generated {
        type Item = DynInst;

        fn next(&mut self) -> Option<DynInst> {
            if self.next >= self.total {
                return None;
            }
            let i = self.next;
            self.next += 1;
            Some(match i % 5 {
                0 => DynInst::new(InstClass::Load, i)
                    .with_src(ArchReg::int(1))
                    .with_dst(ArchReg::int(8 + (i % 8) as u8))
                    .with_mem(vec![MemAccess { addr: i * 8, size: 8, kind: MemKind::Load }]),
                1 => DynInst::new(InstClass::Branch, i % 13).with_branch(BranchInfo {
                    taken: i.is_multiple_of(3),
                    conditional: true,
                    pc: i % 13,
                    target: 0,
                }),
                2 => DynInst::new(InstClass::MediaSimple, i)
                    .with_src(ArchReg::media(1))
                    .with_dst(ArchReg::media(2))
                    .with_elems(8),
                _ => alu(i, 8 + (i % 8) as u8, 0, 1),
            })
        }
    }

    #[test]
    fn streamed_source_matches_materialized_trace() {
        // Same sequence, three consumption styles: collected trace replay,
        // pull-based source, push-based sink. All bit-identical.
        let collected: Trace = Generated { next: 0, total: 3000 }.collect();
        let core = OooCore::new(CoreConfig::way4(IsaKind::Alpha));

        let mut mem_a = build_memory(MemModelKind::Perfect { latency: 4 }, 4);
        let batch = core.simulate(&collected, mem_a.as_mut());

        let mut mem_b = build_memory(MemModelKind::Perfect { latency: 4 }, 4);
        let mut source = Generated { next: 0, total: 3000 };
        let pulled = core.simulate_source(&mut source, mem_b.as_mut());

        let mut mem_c = build_memory(MemModelKind::Perfect { latency: 4 }, 4);
        let mut sink = core.stream(mem_c.as_mut());
        for inst in (Generated { next: 0, total: 3000 }) {
            use mom_isa::trace::TraceSink as _;
            sink.emit(inst);
        }
        let pushed = sink.finish();

        assert_eq!(batch, pulled);
        assert_eq!(batch, pushed);
        assert_eq!(batch.committed, 3000);
    }

    #[test]
    fn stream_window_is_bounded_by_the_rob_not_the_trace() {
        // 10_000 instructions through a way-4 machine (ROB 32): the lookback
        // window must be a constant of the configuration, >= 10x smaller than
        // the instruction count, and identical before and after feeding.
        let core = OooCore::new(CoreConfig::way4(IsaKind::Alpha));
        let mut mem = build_memory(MemModelKind::Perfect { latency: 1 }, 4);
        let mut sim = core.stream(mem.as_mut());
        let initial_window = sim.window_entries();
        for inst in (Generated { next: 0, total: 10_000 }) {
            sim.feed(&inst);
        }
        assert_eq!(sim.fed(), 10_000);
        assert_eq!(sim.window_entries(), initial_window, "window never grows");
        assert!(
            sim.fed() >= 10 * core.config().rob_size,
            "the stream is at least 10x the ROB"
        );
        assert!(
            initial_window * 10 <= sim.fed(),
            "retained state ({initial_window} entries) is far below the trace length"
        );
        let r = sim.finish();
        assert_eq!(r.committed, 10_000);
    }

    #[test]
    fn reusable_state_round_trips_through_stream_with() {
        // A fresh borrowed state equals the owned-state path, and a reset
        // state equals a fresh one.
        let core = OooCore::new(CoreConfig::way4(IsaKind::Alpha));
        let t = independent_trace(500);
        let mut mem = build_memory(MemModelKind::Perfect { latency: 1 }, 4);
        let expected = core.simulate(&t, mem.as_mut());

        let mut state = core.new_state();
        assert!(state.matches_config(core.config()));
        for round in 0..2 {
            let mut mem = build_memory(MemModelKind::Perfect { latency: 1 }, 4);
            let mut sim = core.stream_with(&mut state, mem.as_mut());
            for inst in &t.insts {
                sim.feed(inst);
            }
            assert_eq!(sim.finish(), expected, "round {round}");
            state.reset();
        }
    }

    #[test]
    #[should_panic(expected = "different core configuration")]
    fn stream_with_rejects_a_mismatched_state() {
        // A state sized for the 8-way machine must not drive the 1-way one:
        // the ring-buffer windows differ and the timings would be silently
        // wrong.
        let way8 = OooCore::new(CoreConfig::way8(IsaKind::Alpha));
        let way1 = OooCore::new(CoreConfig::way1(IsaKind::Alpha));
        let mut state = way8.new_state();
        let mut mem = build_memory(MemModelKind::Perfect { latency: 1 }, 1);
        let _ = way1.stream_with(&mut state, mem.as_mut());
    }

    #[test]
    fn empty_stream_finishes_at_zero_cycles() {
        let core = OooCore::new(CoreConfig::way1(IsaKind::Alpha));
        let mut mem = build_memory(MemModelKind::Perfect { latency: 1 }, 1);
        let r = core.stream(mem.as_mut()).finish();
        assert_eq!(r, SimResult::default());
    }

    use crate::probe::AttributionProbe;

    fn run_probed(trace: &Trace, way: usize, isa: IsaKind, latency: u64) -> (SimResult, crate::probe::ProbeReport) {
        let core = OooCore::new(CoreConfig::for_width(way, isa));
        let mut mem = build_memory(MemModelKind::Perfect { latency }, way);
        let mut sim = core.stream_probed(mem.as_mut(), AttributionProbe::new());
        for inst in &trace.insts {
            sim.feed(inst);
        }
        let (result, probe) = sim.finish_probed();
        (result, probe.into_report())
    }

    #[test]
    fn probe_observes_without_changing_timing() {
        // The probed run's SimResult must be bit-identical to the unprobed
        // one, and its breakdown must sum exactly to total cycles.
        let t: Trace = Generated { next: 0, total: 5000 }.collect();
        let core = OooCore::new(CoreConfig::way4(IsaKind::Alpha));
        let mut mem = build_memory(MemModelKind::Perfect { latency: 4 }, 4);
        let unprobed = core.simulate(&t, mem.as_mut());
        let (probed, report) = run_probed(&t, 4, IsaKind::Alpha, 4);
        assert_eq!(unprobed, probed);
        assert_eq!(report.breakdown.total_cycles, probed.cycles);
        assert_eq!(report.breakdown.attributed(), probed.cycles);
        assert_eq!(
            report.intervals.windows.iter().map(|w| w.committed).sum::<u64>(),
            probed.committed
        );
        assert_eq!(
            report.intervals.windows.iter().map(|w| w.cycles).sum::<u64>(),
            probed.cycles
        );
    }

    #[test]
    fn dependent_load_chain_is_charged_to_memory() {
        // A serial chain of loads at 50-cycle latency: nearly every cycle is
        // memory time (perfect memory classifies as L1 — see AccessCause).
        let t: Trace = (0..64u64)
            .map(|i| {
                DynInst::new(InstClass::Load, i)
                    .with_src(ArchReg::int(1))
                    .with_dst(ArchReg::int(1))
                    .with_mem(vec![MemAccess { addr: i * 8, size: 8, kind: MemKind::Load }])
            })
            .collect();
        let (result, report) = run_probed(&t, 4, IsaKind::Alpha, 50);
        let mem_cycles = report.breakdown.get(crate::probe::StallCause::MemL1);
        assert!(
            mem_cycles * 10 >= result.cycles * 9,
            "memory should dominate: {mem_cycles} of {} cycles",
            result.cycles
        );
        assert_eq!(report.breakdown.top(), Some(crate::probe::StallCause::MemL1));
    }

    #[test]
    fn mispredicted_branches_are_charged_to_redirect() {
        let hard: Trace = (0..2000u64)
            .map(|i| {
                DynInst::new(InstClass::Branch, i % 7).with_branch(BranchInfo {
                    taken: i % 2 == 0,
                    conditional: true,
                    pc: i % 7,
                    target: 0,
                })
            })
            .collect();
        let (result, report) = run_probed(&hard, 4, IsaKind::Alpha, 1);
        let redirect = report.breakdown.get(crate::probe::StallCause::Redirect);
        assert!(redirect > result.cycles / 4, "redirect {redirect} of {} cycles", result.cycles);
        assert_eq!(report.breakdown.attributed(), result.cycles);
    }

    #[test]
    fn media_unit_contention_is_charged_to_the_media_unit() {
        // Independent 16-element media ops saturate the single media unit's
        // lanes: most slots wait on unit occupancy.
        let t: Trace = (0..128u64)
            .map(|i| {
                DynInst::new(InstClass::MediaSimple, i)
                    .with_src(ArchReg::mom(0))
                    .with_dst(ArchReg::mom(1 + (i % 8) as u8))
                    .with_elems(16)
            })
            .collect();
        let (result, report) = run_probed(&t, 8, IsaKind::Mom, 1);
        let media = report.breakdown.get(crate::probe::StallCause::UnitMedia);
        assert!(media > result.cycles / 3, "unit-media {media} of {} cycles", result.cycles);
    }
}
