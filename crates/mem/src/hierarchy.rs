//! Realistic cache hierarchies: the conventional/multi-address organisation
//! and the vector-cache / collapsing-buffer organisation (Figure 6, Table 3).
//!
//! All four whole-program memory models share the same L1 + L2 + DRDRAM
//! backbone (paper Section 4.2.1): a 32 KB direct-mapped write-through L1 with
//! 32-byte lines, a 1 MB 2-way write-back L2 with 128-byte lines, 8 MSHRs per
//! level, an 8-deep coalescing write buffer and a Direct Rambus main memory.
//! They differ in how a MOM vector access (a set of strided 64-bit element
//! accesses) is routed:
//!
//! * **Conventional** — only scalar/MMX accesses exist; each goes through one
//!   L1 port and one bank.
//! * **Multi-address** — a vector access reserves *all* L1 ports and spreads
//!   its elements across them; bank conflicts serialise elements that fall in
//!   the same bank.
//! * **Vector cache** — vector accesses bypass L1 and read whole L2 lines
//!   (two interleaved banks per transaction); effective for small strides.
//! * **Collapsing buffer** — like the vector cache but able to gather
//!   non-contiguous elements spread over two consecutive lines, tolerating
//!   larger strides before degenerating to element-at-a-time.

use crate::cache::{Cache, CacheConfig, LookupResult, MshrFile, WriteBuffer};
use crate::config::{MemModelKind, PortConfig};
use crate::dram::{Dram, DramConfig};
use crate::{AccessCause, MemSystemStats, MemorySystem};
use mom_isa::codec::{CodecError, Decoder, Encoder};
use mom_isa::trace::{MemAccess, MemKind};

/// Stable checkpoint tag of a hierarchy front-end kind (`Perfect` never
/// reaches a `Hierarchy`, so it has no tag).
fn kind_tag(kind: MemModelKind) -> u64 {
    match kind {
        MemModelKind::Perfect { .. } => unreachable!("Hierarchy never models perfect memory"),
        MemModelKind::Conventional => 0,
        MemModelKind::MultiAddress => 1,
        MemModelKind::VectorCache => 2,
        MemModelKind::CollapsingBuffer => 3,
    }
}

/// A realistic two-level hierarchy with a configurable vector-access path.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    kind: MemModelKind,
    ports: PortConfig,
    l1: Cache,
    l1_mshrs: MshrFile,
    l2: Cache,
    l2_mshrs: MshrFile,
    write_buffer: WriteBuffer,
    dram: Dram,
    l1_port_busy: Vec<u64>,
    l1_bank_busy: Vec<u64>,
    vec_port_busy: Vec<u64>,
    stats: MemSystemStats,
    last_cause: AccessCause,
}

impl Hierarchy {
    /// Build a hierarchy of the given kind for a machine of the given issue
    /// width, using the paper's cache parameters and Table 3 port counts.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`MemModelKind::Perfect`]; use
    /// [`crate::perfect::PerfectMemory`] for that.
    pub fn new(kind: MemModelKind, way: usize) -> Self {
        let ports = match kind {
            MemModelKind::Perfect { .. } => {
                panic!("use PerfectMemory for the perfect-memory model")
            }
            MemModelKind::Conventional | MemModelKind::MultiAddress => PortConfig::conventional(way),
            MemModelKind::VectorCache => PortConfig::vector_cache(way, false),
            MemModelKind::CollapsingBuffer => PortConfig::vector_cache(way, true),
        };
        Self::with_ports(kind, ports)
    }

    /// Build a hierarchy with an explicit port configuration.
    pub fn with_ports(kind: MemModelKind, ports: PortConfig) -> Self {
        let l1 = Cache::new(CacheConfig::paper_l1(ports.l1_latency));
        let l2 = Cache::new(CacheConfig::paper_l2(ports.l2_latency.max(6)));
        Self {
            kind,
            ports,
            l1,
            l1_mshrs: MshrFile::new(8),
            l2,
            l2_mshrs: MshrFile::new(8),
            write_buffer: WriteBuffer::new(8, 6),
            dram: Dram::new(DramConfig::default()),
            l1_port_busy: vec![0; ports.l1_ports.max(1)],
            l1_bank_busy: vec![0; ports.l1_banks.max(1)],
            vec_port_busy: vec![0; ports.l2_vector_ports.max(1)],
            stats: MemSystemStats::default(),
            last_cause: AccessCause::default(),
        }
    }

    /// The port configuration in use.
    pub fn ports(&self) -> &PortConfig {
        &self.ports
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> crate::cache::CacheStats {
        self.l1.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> crate::cache::CacheStats {
        self.l2.stats()
    }

    /// DRAM statistics.
    pub fn dram_stats(&self) -> crate::dram::DramStats {
        self.dram.stats()
    }

    /// Fill from L2 (and DRAM beyond it), returning the cycle the line is
    /// available at the requesting level together with the dominant cause of
    /// that cycle (L2 hit, DRAM transfer, or an L2 MSHR wait).
    fn fill_from_l2(&mut self, start: u64, addr: u64, is_write: bool) -> (u64, AccessCause) {
        let l2_ready = start + self.ports.l2_latency;
        match self.l2.access(addr, is_write) {
            LookupResult::Hit => (l2_ready, AccessCause::L2),
            LookupResult::Miss { dirty_victim } => {
                let line = self.l2.line_of(addr);
                if let Some(ready) = self.l2_mshrs.lookup(line) {
                    // Merged into an in-flight DRAM fill.
                    return (ready.max(l2_ready), AccessCause::Dram);
                }
                if dirty_victim {
                    // The write-back occupies the channel but does not delay
                    // the demand fill's data return beyond channel queuing.
                    self.dram.transfer_line(l2_ready);
                }
                let dram_ready = self.dram.transfer_line(l2_ready);
                if !self.l2_mshrs.allocate(start, line, dram_ready) {
                    let freed = self.l2_mshrs.next_free_cycle(start);
                    let dram_ready = self.dram.transfer_line(freed);
                    self.l2_mshrs.allocate(freed, line, dram_ready);
                    return (dram_ready, AccessCause::MshrFull);
                }
                (dram_ready, AccessCause::Dram)
            }
        }
    }

    /// One element access through the banked L1 (the scalar path, also used
    /// per-element by the multi-address vector path). Returns the completion
    /// cycle and its dominant cause. `start` must already account for port
    /// availability.
    fn l1_element_access(&mut self, start: u64, acc: &MemAccess) -> (u64, AccessCause) {
        // Bank conflict: serialise on the bank.
        let bank = (self.l1.line_of(acc.addr) % self.l1_bank_busy.len() as u64) as usize;
        let start = start.max(self.l1_bank_busy[bank]);
        if start > self.l1_bank_busy[bank] && self.l1_bank_busy[bank] != 0 {
            // no conflict
        } else if self.l1_bank_busy[bank] > start {
            self.stats.bank_conflicts += 1;
        }
        self.l1_bank_busy[bank] = start + 1;

        // Unaligned accesses are split into two aligned accesses (paper
        // Section 4.2.1); model the extra occupancy as one extra cycle.
        let unaligned = acc.size > 1 && !acc.addr.is_multiple_of(acc.size as u64);
        let align_penalty = if unaligned { 1 } else { 0 };

        match acc.kind {
            MemKind::Load => match self.l1.access(acc.addr, false) {
                LookupResult::Hit => (start + self.ports.l1_latency + align_penalty, AccessCause::L1),
                LookupResult::Miss { .. } => {
                    let line = self.l1.line_of(acc.addr);
                    if let Some(ready) = self.l1_mshrs.lookup(line) {
                        // Merged into an in-flight L1 fill (L2 speed or beyond).
                        return (ready.max(start + self.ports.l1_latency), AccessCause::L2);
                    }
                    let (mshr_start, mshr_waited) = if self.l1_mshrs.has_free(start) {
                        (start, false)
                    } else {
                        self.stats.mshr_stalls += 1;
                        (self.l1_mshrs.next_free_cycle(start), true)
                    };
                    let (ready, fill_cause) =
                        self.fill_from_l2(mshr_start + self.ports.l1_latency, acc.addr, false);
                    self.l1_mshrs.allocate(mshr_start, line, ready);
                    let cause = if mshr_waited { AccessCause::MshrFull } else { fill_cause };
                    (ready + align_penalty, cause)
                }
            },
            MemKind::Store => {
                // Write-through, no-allocate L1: update the tags only if the
                // line is already resident, then retire into the write buffer.
                if self.l1.probe(acc.addr) {
                    self.l1.access(acc.addr, true);
                }
                let line = self.l2.line_of(acc.addr);
                let accepted = self.write_buffer.push(start, line);
                // The write-through traffic eventually updates L2.
                self.l2.access(acc.addr, true);
                (accepted + 1 + align_penalty, AccessCause::WriteBuffer)
            }
        }
    }

    /// A vector access through the multi-address path: reserve every L1 port
    /// and spread elements across them.
    fn multi_address_access(&mut self, cycle: u64, accesses: &[MemAccess]) -> Option<u64> {
        if self.l1_port_busy.iter().any(|&p| p > cycle) {
            self.stats.port_stalls += 1;
            return None;
        }
        let nports = self.l1_port_busy.len();
        let mut completion = cycle;
        let mut cause = AccessCause::L1;
        let mut port_free = vec![cycle; nports];
        for (i, acc) in accesses.iter().enumerate() {
            let port = i % nports;
            let start = port_free[port];
            let (done, elem_cause) = self.l1_element_access(start, acc);
            port_free[port] = start + 1;
            // The binding element (latest completion, first wins ties)
            // determines the cause of the whole vector access.
            if done > completion {
                completion = done;
                cause = elem_cause;
            }
        }
        for (p, f) in self.l1_port_busy.iter_mut().zip(port_free) {
            *p = f;
        }
        self.last_cause = cause;
        Some(completion)
    }

    /// A vector access through the vector-cache / collapsing-buffer path.
    fn vector_cache_access(&mut self, cycle: u64, accesses: &[MemAccess]) -> Option<u64> {
        let port_idx = match self.vec_port_busy.iter().position(|&p| p <= cycle) {
            Some(i) => i,
            None => {
                self.stats.port_stalls += 1;
                return None;
            }
        };

        // Infer the row stride from the first two element addresses.
        let stride = if accesses.len() >= 2 {
            accesses[1].addr.abs_diff(accesses[0].addr)
        } else {
            8
        };
        let line_bytes = self.l2.config().line_bytes as u64;
        let stride_limit = match self.kind {
            // The vector cache captures spatial locality only for small
            // strides (consecutive or near-consecutive rows).
            MemModelKind::VectorCache => 16,
            // The collapsing buffer gathers elements across two consecutive
            // lines even when they are not adjacent.
            MemModelKind::CollapsingBuffer => line_bytes,
            _ => 16,
        };

        let mut lines: Vec<u64> = accesses.iter().map(|a| self.l2.line_of(a.addr)).collect();
        lines.sort_unstable();
        lines.dedup();

        let transactions = if stride <= stride_limit {
            // Each transaction fetches two interleaved-bank lines.
            lines.len().div_ceil(self.ports.l2_banks.max(1))
        } else {
            // Large strides: every element is its own transaction.
            accesses.len()
        };
        self.stats.vector_transactions += transactions as u64;

        let is_store = accesses.iter().any(|a| a.kind == MemKind::Store);
        let mut data_ready = cycle;
        let mut cause = AccessCause::L2;
        for chunk in lines.chunks(self.ports.l2_banks.max(1)) {
            for &line in chunk {
                let addr = line * line_bytes;
                let (ready, fill_cause) = self.fill_from_l2(cycle, addr, is_store);
                // The binding line (latest ready, first wins ties) determines
                // the cause of the whole transaction set.
                if ready > data_ready {
                    data_ready = ready;
                    cause = fill_cause;
                }
                if is_store {
                    // Exclusive-bit coherence: the scalar L1 must not keep a
                    // stale copy of a line written by the vector path.
                    self.l1.invalidate(addr);
                }
            }
        }

        // Port occupancy: the vector port delivers `l2_vector_width` elements
        // per cycle, but never faster than one transaction per cycle.
        let width = self.ports.l2_vector_width.max(1);
        let occupancy = (accesses.len().div_ceil(width)).max(transactions) as u64;
        self.vec_port_busy[port_idx] = cycle + occupancy;

        // When port occupancy outlasts the fills, the bottleneck is the L2
        // vector port's delivery bandwidth, not a particular miss.
        if cycle + occupancy - 1 > data_ready {
            cause = AccessCause::L2;
        }
        self.last_cause = cause;
        Some(data_ready.max(cycle + occupancy - 1))
    }
}

impl MemorySystem for Hierarchy {
    fn access(&mut self, cycle: u64, accesses: &[MemAccess], vector: bool) -> Option<u64> {
        self.write_buffer.retire(cycle);
        if accesses.is_empty() {
            self.last_cause = AccessCause::L1;
            return Some(cycle);
        }
        self.stats.requests += 1;
        self.stats.element_accesses += accesses.len() as u64;

        let completion = if vector && accesses.len() > 1 {
            match self.kind {
                MemModelKind::VectorCache | MemModelKind::CollapsingBuffer => {
                    self.vector_cache_access(cycle, accesses)
                }
                _ => self.multi_address_access(cycle, accesses),
            }
        } else {
            // Scalar path: one free L1 port required.
            let port = self.l1_port_busy.iter_mut().find(|p| **p <= cycle);
            match port {
                None => {
                    self.stats.port_stalls += 1;
                    self.stats.requests -= 1;
                    self.stats.element_accesses -= accesses.len() as u64;
                    return None;
                }
                Some(p) => {
                    *p = cycle + 1;
                }
            }
            let (done, cause) = self.l1_element_access(cycle, &accesses[0]);
            self.last_cause = cause;
            Some(done)
        };
        if completion.is_none() {
            self.stats.requests -= 1;
            self.stats.element_accesses -= accesses.len() as u64;
        }
        completion
    }

    fn kind(&self) -> MemModelKind {
        self.kind
    }

    fn last_access_cause(&self) -> AccessCause {
        self.last_cause
    }

    fn reset(&mut self) {
        self.l1.reset();
        self.l1_mshrs.reset();
        self.l2.reset();
        self.l2_mshrs.reset();
        self.write_buffer.reset();
        self.dram.reset();
        self.l1_port_busy.fill(0);
        self.l1_bank_busy.fill(0);
        self.vec_port_busy.fill(0);
        self.stats = MemSystemStats::default();
        self.last_cause = AccessCause::default();
    }

    fn stats(&self) -> MemSystemStats {
        let mut s = self.stats;
        s.l1 = self.l1.stats();
        s.l2 = self.l2.stats();
        s.dram = self.dram.stats();
        s
    }

    fn save_state(&self, e: &mut Encoder) {
        e.u64(kind_tag(self.kind));
        self.l1.save_state(e);
        self.l1_mshrs.save_state(e);
        self.l2.save_state(e);
        self.l2_mshrs.save_state(e);
        self.write_buffer.save_state(e);
        self.dram.save_state(e);
        for busy_vec in [&self.l1_port_busy, &self.l1_bank_busy, &self.vec_port_busy] {
            e.usize(busy_vec.len());
            for &busy in busy_vec {
                e.u64(busy);
            }
        }
        self.stats.save_state(e);
        e.u8(self.last_cause.tag());
    }

    fn load_state(&mut self, d: &mut Decoder<'_>) -> Result<(), CodecError> {
        d.expect_u64(kind_tag(self.kind), "hierarchy kind")?;
        self.l1.load_state(d)?;
        self.l1_mshrs.load_state(d)?;
        self.l2.load_state(d)?;
        self.l2_mshrs.load_state(d)?;
        self.write_buffer.load_state(d)?;
        self.dram.load_state(d)?;
        for busy_vec in [
            &mut self.l1_port_busy,
            &mut self.l1_bank_busy,
            &mut self.vec_port_busy,
        ] {
            d.expect_u64(busy_vec.len() as u64, "hierarchy busy vector length")?;
            for busy in busy_vec.iter_mut() {
                *busy = d.u64("hierarchy busy cycle")?;
            }
        }
        self.stats = MemSystemStats::load_state(d)?;
        self.last_cause = AccessCause::from_tag(d.u8("hierarchy last cause")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(addr: u64) -> MemAccess {
        MemAccess { addr, size: 8, kind: MemKind::Load }
    }

    fn store(addr: u64) -> MemAccess {
        MemAccess { addr, size: 8, kind: MemKind::Store }
    }

    #[test]
    fn scalar_load_hit_after_miss() {
        let mut h = Hierarchy::new(MemModelKind::Conventional, 4);
        let miss_done = h.access(0, &[load(0x1000)], false).unwrap();
        assert!(miss_done > 10, "first access misses all the way to DRAM: {miss_done}");
        let hit_done = h.access(miss_done + 1, &[load(0x1008)], false).unwrap();
        assert_eq!(hit_done, miss_done + 1 + h.ports().l1_latency);
        let s = h.stats();
        assert_eq!(s.l1.hits, 1);
        assert_eq!(s.l1.misses, 1);
    }

    #[test]
    fn l2_hit_is_cheaper_than_dram() {
        let mut h = Hierarchy::new(MemModelKind::Conventional, 4);
        // First access brings the 128-byte L2 line; a later access to a
        // different 32-byte L1 line within the same L2 line hits in L2.
        let first = h.access(0, &[load(0x2000)], false).unwrap();
        let second = h.access(first + 1, &[load(0x2040)], false).unwrap();
        let l2_latency = second - (first + 1);
        assert!(l2_latency <= h.ports().l2_latency + h.ports().l1_latency + 1, "L2 hit latency {l2_latency}");
        assert!(l2_latency < first, "L2 hit much cheaper than the DRAM miss");
    }

    #[test]
    fn stores_go_through_the_write_buffer_quickly() {
        let mut h = Hierarchy::new(MemModelKind::Conventional, 4);
        let done = h.access(0, &[store(0x3000)], false).unwrap();
        assert!(done <= 2, "store retires into the write buffer: {done}");
    }

    #[test]
    fn scalar_port_contention_stalls() {
        let mut h = Hierarchy::new(MemModelKind::Conventional, 1);
        assert!(h.access(0, &[load(0x100)], false).is_some());
        assert!(h.access(0, &[load(0x200)], false).is_none(), "single port busy");
        assert!(h.stats().port_stalls > 0);
    }

    #[test]
    fn multi_address_spreads_elements_over_ports() {
        let mut h = Hierarchy::new(MemModelKind::MultiAddress, 4);
        // Warm the caches so the comparison is about port parallelism.
        let accesses: Vec<_> = (0..16).map(|i| load(0x4000 + i * 32)).collect();
        let warm = h.access(0, &accesses, true).unwrap();
        let t0 = warm + 10;
        let done = h.access(t0, &accesses, true).unwrap();
        // 16 elements over 2 ports at 1 element/cycle: about 8 cycles of
        // occupancy plus the hit latency.
        assert!(done - t0 <= 16, "multi-address vector access took {} cycles", done - t0);
        // While the vector access holds the ports a second one must wait.
        assert!(h.access(t0 + 1, &accesses, true).is_none());
    }

    #[test]
    fn vector_cache_groups_unit_stride_lines() {
        let mut h = Hierarchy::new(MemModelKind::VectorCache, 4);
        // 16 consecutive 8-byte rows = 128 bytes = 1 L2 line.
        let accesses: Vec<_> = (0..16).map(|i| load(0x8000 + i * 8)).collect();
        let warm = h.access(0, &accesses, true).unwrap();
        let t0 = warm + 10;
        let _ = h.access(t0, &accesses, true).unwrap();
        let s = h.stats();
        // Two requests, each a single line-pair transaction.
        assert!(s.vector_transactions <= 2, "vector transactions {}", s.vector_transactions);
        // Vector path bypasses L1 entirely.
        assert_eq!(s.l1.accesses(), 0);
    }

    #[test]
    fn vector_cache_degrades_with_large_strides_but_collapsing_buffer_copes() {
        let accesses: Vec<_> = (0..16).map(|i| load(0x10000 + i * 64)).collect();
        let mut vc = Hierarchy::new(MemModelKind::VectorCache, 4);
        let mut col = Hierarchy::new(MemModelKind::CollapsingBuffer, 4);
        vc.access(0, &accesses, true).unwrap();
        col.access(0, &accesses, true).unwrap();
        assert!(
            vc.stats().vector_transactions > col.stats().vector_transactions,
            "vector cache ({}) should need more transactions than the collapsing buffer ({}) at stride 64",
            vc.stats().vector_transactions,
            col.stats().vector_transactions
        );

        // At very large strides (beyond the L2 line) both degenerate.
        let far: Vec<_> = (0..16).map(|i| load(0x40000 + i * 512)).collect();
        let mut col2 = Hierarchy::new(MemModelKind::CollapsingBuffer, 4);
        col2.access(0, &far, true).unwrap();
        assert_eq!(col2.stats().vector_transactions, 16);
    }

    #[test]
    fn vector_store_invalidates_l1_copy() {
        let mut h = Hierarchy::new(MemModelKind::VectorCache, 4);
        // Bring a line into L1 via the scalar path.
        h.access(0, &[load(0x9000)], false).unwrap();
        assert_eq!(h.l1_stats().misses, 1);
        // Vector store to the same line must invalidate it.
        let stores: Vec<_> = (0..16).map(|i| store(0x9000 + i * 8)).collect();
        h.access(100, &stores, true).unwrap();
        // A later scalar load misses again (the line was invalidated).
        h.access(300, &[load(0x9000)], false).unwrap();
        assert_eq!(h.l1_stats().misses, 2);
    }

    #[test]
    fn save_restore_reproduces_future_accesses_byte_identically() {
        for kind in [MemModelKind::Conventional, MemModelKind::MultiAddress, MemModelKind::VectorCache, MemModelKind::CollapsingBuffer] {
            let mut warm = Hierarchy::new(kind, 4);
            // Warm it with mixed traffic, including in-flight MSHR state.
            for i in 0..24u64 {
                let _ = warm.access(i * 7, &[load(0x1000 + i * 96)], false);
            }
            let vec_accesses: Vec<_> = (0..16).map(|i| load(0x8000 + i * 8)).collect();
            let _ = warm.access(50, &vec_accesses, true);
            let _ = warm.access(60, &[store(0x1000)], false);

            let mut e = Encoder::new();
            warm.save_state(&mut e);
            let bytes = e.into_bytes();

            let mut restored = Hierarchy::new(kind, 4);
            let mut d = Decoder::new(&bytes);
            restored.load_state(&mut d).unwrap();
            d.finish("hierarchy tail").unwrap();

            // Re-encoding must be byte-stable and future accesses identical.
            let mut e2 = Encoder::new();
            restored.save_state(&mut e2);
            assert_eq!(bytes, e2.into_bytes(), "{kind}: save→load→save not byte-stable");
            for i in 0..16u64 {
                let cycle = 200 + i * 5;
                let acc = [load(0x1000 + i * 64)];
                assert_eq!(
                    warm.access(cycle, &acc, false),
                    restored.access(cycle, &acc, false),
                    "{kind}: access diverged after restore"
                );
            }
            assert_eq!(warm.stats(), restored.stats(), "{kind}: stats diverged");
        }
    }

    #[test]
    fn restore_rejects_a_snapshot_of_another_kind() {
        let mut warm = Hierarchy::new(MemModelKind::Conventional, 4);
        let _ = warm.access(0, &[load(0x1000)], false);
        let mut e = Encoder::new();
        warm.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut other = Hierarchy::new(MemModelKind::VectorCache, 4);
        assert!(other.load_state(&mut Decoder::new(&bytes)).is_err());
    }

    #[test]
    #[should_panic]
    fn perfect_kind_is_rejected() {
        let _ = Hierarchy::new(MemModelKind::Perfect { latency: 1 }, 4);
    }

    #[test]
    fn reset_restores_the_just_built_state() {
        // Replay the same access sequence on a fresh hierarchy and on one
        // that already served different traffic and was reset: completion
        // cycles and statistics must be identical at every step.
        let sequence: Vec<(u64, Vec<MemAccess>, bool)> = vec![
            (0, vec![load(0x1000)], false),
            (40, (0..16).map(|i| load(0x8000 + i * 8)).collect(), true),
            (90, vec![store(0x1000)], false),
            (130, (0..16).map(|i| load(0x8000 + i * 64)).collect(), true),
            (400, vec![load(0x1008)], false),
        ];
        for kind in [MemModelKind::Conventional, MemModelKind::MultiAddress, MemModelKind::VectorCache, MemModelKind::CollapsingBuffer] {
            let mut fresh = Hierarchy::new(kind, 4);
            let mut reused = Hierarchy::new(kind, 4);
            // Dirty the reused hierarchy with unrelated traffic.
            for i in 0..32 {
                let _ = reused.access(i * 3, &[load(0x40000 + i * 128)], false);
            }
            reused.reset();
            assert_eq!(reused.stats(), MemSystemStats::default(), "{kind}: stats cleared");
            for (cycle, accesses, vector) in &sequence {
                let a = fresh.access(*cycle, accesses, *vector);
                let b = reused.access(*cycle, accesses, *vector);
                assert_eq!(a, b, "{kind}: completion diverged after reset");
            }
            assert_eq!(fresh.stats(), reused.stats(), "{kind}: stats diverged after reset");
        }
    }
}
