//! Memory-system configurations (Table 3 of the paper).
//!
//! Two families of configurations are evaluated for whole programs:
//!
//! * **Conv / MA** — the conventional multi-banked L1 in front of the on-chip
//!   L2; MOM memory instructions are decoupled across all L1 ports
//!   ("multi-address cache").
//! * **VC / COL** — MOM memory instructions bypass the (smaller-ported) L1 and
//!   go to a vector cache or collapsing-buffer cache attached to the L2.

/// Which memory organisation the machine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemModelKind {
    /// Idealised memory with a fixed latency and unlimited bandwidth
    /// (the kernel study of Figure 5 uses latency 1 and 50).
    Perfect {
        /// Fixed access latency in cycles.
        latency: u64,
    },
    /// Conventional cache hierarchy; scalar and media accesses go through the
    /// banked L1 (used for the Alpha and MMX configurations of Figure 7).
    Conventional,
    /// Conventional hierarchy where a MOM vector access is decoupled across
    /// all L1 ports/banks.
    MultiAddress,
    /// MOM vector accesses bypass L1 and use the vector cache at the L2.
    VectorCache,
    /// MOM vector accesses bypass L1 and use the collapsing-buffer cache at
    /// the L2.
    CollapsingBuffer,
}

impl MemModelKind {
    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            MemModelKind::Perfect { .. } => "perfect",
            MemModelKind::Conventional => "conventional",
            MemModelKind::MultiAddress => "multi-address",
            MemModelKind::VectorCache => "vector-cache",
            MemModelKind::CollapsingBuffer => "collapsing-buffer",
        }
    }
}

impl std::fmt::Display for MemModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Port/bank/latency configuration of a realistic hierarchy (one column of
/// Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortConfig {
    /// Number of L1 (scalar) ports.
    pub l1_ports: usize,
    /// Number of L1 banks.
    pub l1_banks: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// Number of vector-cache ports at the L2 (0 when there is no vector path).
    pub l2_vector_ports: usize,
    /// Elements transferred per vector-cache port per cycle.
    pub l2_vector_width: usize,
    /// Number of vector-cache banks.
    pub l2_banks: usize,
    /// L2 hit latency in cycles for the vector path.
    pub l2_latency: u64,
}

impl PortConfig {
    /// Conventional / multi-address configuration for a machine of the given
    /// issue width (Table 3, "Conv/MA" columns; narrower machines use the
    /// 4-way organisation scaled down).
    pub fn conventional(way: usize) -> Self {
        match way {
            8 => Self { l1_ports: 4, l1_banks: 8, l1_latency: 2, l2_vector_ports: 0, l2_vector_width: 0, l2_banks: 1, l2_latency: 6 },
            4 => Self { l1_ports: 2, l1_banks: 4, l1_latency: 1, l2_vector_ports: 0, l2_vector_width: 0, l2_banks: 1, l2_latency: 6 },
            2 => Self { l1_ports: 1, l1_banks: 2, l1_latency: 1, l2_vector_ports: 0, l2_vector_width: 0, l2_banks: 1, l2_latency: 6 },
            _ => Self { l1_ports: 1, l1_banks: 1, l1_latency: 1, l2_vector_ports: 0, l2_vector_width: 0, l2_banks: 1, l2_latency: 6 },
        }
    }

    /// Vector-cache / collapsing-buffer configuration (Table 3, "VC/COL"
    /// columns). `collapsing` selects the 10-cycle collapsing-buffer latency
    /// instead of the 8-cycle vector-cache latency.
    pub fn vector_cache(way: usize, collapsing: bool) -> Self {
        let l2_latency = if collapsing { 10 } else { 8 };
        match way {
            8 => Self { l1_ports: 2, l1_banks: 2, l1_latency: 1, l2_vector_ports: 1, l2_vector_width: 4, l2_banks: 2, l2_latency },
            _ => Self { l1_ports: 1, l1_banks: 1, l1_latency: 1, l2_vector_ports: 1, l2_vector_width: 2, l2_banks: 2, l2_latency },
        }
    }
}

/// One row of the reproduced Table 3 (for reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table3Row {
    /// Column label, e.g. "Conv/MA 4-way".
    pub label: String,
    /// The port configuration.
    pub config: PortConfig,
}

/// Reproduce Table 3: the four port configurations evaluated by the paper.
pub fn table3() -> Vec<Table3Row> {
    vec![
        Table3Row { label: "Conv/MA 4-way".to_string(), config: PortConfig::conventional(4) },
        Table3Row { label: "Conv/MA 8-way".to_string(), config: PortConfig::conventional(8) },
        Table3Row { label: "VC/COL 4-way".to_string(), config: PortConfig::vector_cache(4, false) },
        Table3Row { label: "VC/COL 8-way".to_string(), config: PortConfig::vector_cache(8, false) },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(MemModelKind::Perfect { latency: 1 }.label(), "perfect");
        assert_eq!(MemModelKind::VectorCache.to_string(), "vector-cache");
    }

    #[test]
    fn table3_matches_paper_ports() {
        let conv4 = PortConfig::conventional(4);
        assert_eq!((conv4.l1_ports, conv4.l1_banks, conv4.l1_latency), (2, 4, 1));
        let conv8 = PortConfig::conventional(8);
        assert_eq!((conv8.l1_ports, conv8.l1_banks, conv8.l1_latency), (4, 8, 2));
        let vc4 = PortConfig::vector_cache(4, false);
        assert_eq!((vc4.l1_ports, vc4.l1_banks), (1, 1));
        assert_eq!((vc4.l2_vector_ports, vc4.l2_vector_width, vc4.l2_latency), (1, 2, 8));
        let col8 = PortConfig::vector_cache(8, true);
        assert_eq!((col8.l2_vector_width, col8.l2_latency), (4, 10));
        assert_eq!(table3().len(), 4);
    }

    #[test]
    fn narrow_machines_have_reduced_ports() {
        assert_eq!(PortConfig::conventional(1).l1_ports, 1);
        assert_eq!(PortConfig::conventional(2).l1_banks, 2);
    }
}
