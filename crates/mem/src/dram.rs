//! Direct Rambus DRAM (DRDRAM) main-memory model.
//!
//! The paper models a 128 MB Direct Rambus system: a DRDRAM controller driving
//! 8 Rambus chips over a 128-bit, 200 MHz bi-directional bus delivering up to
//! 3.2 GB/s. At the processor clock this amounts to a fixed access latency
//! plus a per-line transfer occupancy on a shared channel; queuing behind
//! earlier transfers adds to the observed latency, which is how bandwidth
//! saturation appears in the model.

use mom_isa::codec::{CodecError, Decoder, Encoder};

/// Configuration of the main-memory channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Latency from request to first data, in CPU cycles.
    pub access_latency: u64,
    /// Channel occupancy per transferred line, in CPU cycles.
    pub cycles_per_line: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        // ~60 CPU cycles access latency; a 128-byte L2 line at 3.2 GB/s on a
        // processor running a few times faster than the 200 MHz memory bus
        // occupies the channel for ~16 CPU cycles.
        Self { access_latency: 60, cycles_per_line: 16 }
    }
}

/// Statistics of the DRAM channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Number of line transfers (reads + write-backs).
    pub transfers: u64,
    /// Total cycles the channel was busy.
    pub busy_cycles: u64,
    /// Total queueing delay suffered by requests (cycles spent waiting for the
    /// channel).
    pub queue_cycles: u64,
}

/// The Direct Rambus channel: a single shared resource with fixed latency and
/// per-line occupancy.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    busy_until: u64,
    stats: DramStats,
}

impl Dram {
    /// Create an idle channel.
    pub fn new(config: DramConfig) -> Self {
        Self { config, busy_until: 0, stats: DramStats::default() }
    }

    /// Configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Return the channel to its just-built idle state with zeroed statistics
    /// (the machine-reuse `reset()` path).
    pub fn reset(&mut self) {
        self.busy_until = 0;
        self.stats = DramStats::default();
    }

    /// Serialize the channel occupancy and statistics for a checkpoint.
    pub fn save_state(&self, e: &mut Encoder) {
        e.u64(self.config.access_latency);
        e.u64(self.config.cycles_per_line);
        e.u64(self.busy_until);
        e.u64(self.stats.transfers);
        e.u64(self.stats.busy_cycles);
        e.u64(self.stats.queue_cycles);
    }

    /// Restore state written by [`Dram::save_state`].
    ///
    /// # Errors
    ///
    /// Fails if the stream is truncated or was written by a channel with a
    /// different configuration.
    pub fn load_state(&mut self, d: &mut Decoder<'_>) -> Result<(), CodecError> {
        d.expect_u64(self.config.access_latency, "dram access latency")?;
        d.expect_u64(self.config.cycles_per_line, "dram cycles per line")?;
        self.busy_until = d.u64("dram busy until")?;
        self.stats.transfers = d.u64("dram transfers")?;
        self.stats.busy_cycles = d.u64("dram busy cycles")?;
        self.stats.queue_cycles = d.u64("dram queue cycles")?;
        Ok(())
    }

    /// Transfer one line starting no earlier than `cycle`; returns the cycle
    /// at which the data is available.
    pub fn transfer_line(&mut self, cycle: u64) -> u64 {
        let start = cycle.max(self.busy_until);
        self.stats.queue_cycles += start - cycle;
        self.busy_until = start + self.config.cycles_per_line;
        self.stats.transfers += 1;
        self.stats.busy_cycles += self.config.cycles_per_line;
        start + self.config.access_latency + self.config.cycles_per_line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transfer_latency() {
        let mut d = Dram::new(DramConfig { access_latency: 50, cycles_per_line: 10 });
        assert_eq!(d.transfer_line(100), 160);
        assert_eq!(d.stats().transfers, 1);
        assert_eq!(d.stats().queue_cycles, 0);
    }

    #[test]
    fn back_to_back_transfers_queue_on_the_channel() {
        let mut d = Dram::new(DramConfig { access_latency: 50, cycles_per_line: 10 });
        let a = d.transfer_line(0);
        let b = d.transfer_line(0);
        assert_eq!(a, 60);
        assert_eq!(b, 70, "second transfer waits for channel occupancy, not full latency");
        assert_eq!(d.stats().queue_cycles, 10);
        assert_eq!(d.stats().busy_cycles, 20);
    }

    #[test]
    fn idle_gaps_do_not_queue() {
        let mut d = Dram::new(DramConfig::default());
        let first = d.transfer_line(0);
        let second = d.transfer_line(first + 100);
        assert!(second > first + 100);
        assert_eq!(d.stats().queue_cycles, 0);
    }
}
