//! Set-associative cache tag model with LRU replacement, MSHRs and a
//! coalescing write buffer.
//!
//! The model tracks *which lines are resident* and *how many misses are in
//! flight*; data values are never stored (the functional interpreter already
//! produced them). Timing consumers combine the hit/miss answers with the port
//! and bank occupancy tracked by the memory-system front-ends.
//!
//! Every stateful structure also exposes a `save_state`/`load_state` pair over
//! the checkpoint codec in [`mom_isa::codec`], so the warm tag arrays, MSHR
//! files and write buffers survive a checkpoint round trip byte-identically
//! (the sampled execution mode in `mom-lab` depends on this).

use mom_isa::codec::{CodecError, Decoder, Encoder};

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (1 = direct mapped).
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Access (hit) latency in cycles.
    pub hit_latency: u64,
    /// Number of MSHRs (maximum outstanding misses).
    pub mshrs: usize,
    /// Whether the cache is write-back (`true`) or write-through (`false`).
    pub write_back: bool,
}

impl CacheConfig {
    /// The paper's L1: 32 KB, direct mapped, write-through, 32-byte lines,
    /// 8 MSHRs.
    pub fn paper_l1(hit_latency: u64) -> Self {
        Self {
            size_bytes: 32 * 1024,
            assoc: 1,
            line_bytes: 32,
            hit_latency,
            mshrs: 8,
            write_back: false,
        }
    }

    /// The paper's L2: 1 MB, 2-way, write-back, 128-byte lines, 8 MSHRs.
    pub fn paper_l2(hit_latency: u64) -> Self {
        Self {
            size_bytes: 1024 * 1024,
            assoc: 2,
            line_bytes: 128,
            hit_latency,
            mshrs: 8,
            write_back: true,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.assoc)
    }
}

/// Result of a single cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// The line was resident.
    Hit,
    /// The line was missing; a victim (dirty write-back needed) is reported.
    Miss {
        /// Whether the evicted victim line was dirty and must be written back.
        dirty_victim: bool,
    },
}

/// Hit/miss statistics of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lookups that missed.
    pub misses: u64,
    /// Number of dirty victims written back.
    pub writebacks: u64,
}

impl CacheStats {
    /// Serialize the counters for a checkpoint.
    pub fn save_state(&self, e: &mut Encoder) {
        e.u64(self.hits);
        e.u64(self.misses);
        e.u64(self.writebacks);
    }

    /// Restore counters written by [`CacheStats::save_state`].
    ///
    /// # Errors
    ///
    /// Fails if the stream is truncated.
    pub fn load_state(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            hits: d.u64("cache hits")?,
            misses: d.u64("cache misses")?,
            writebacks: d.u64("cache writebacks")?,
        })
    }

    /// Total number of lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in [0, 1]; zero when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct LineState {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_used: u64,
}

/// A set-associative cache tag array with LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<LineState>>,
    stats: CacheStats,
    use_counter: u64,
}

impl Cache {
    /// Create an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero sets or associativity).
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.assoc > 0 && config.line_bytes > 0, "degenerate cache configuration");
        let sets = config.sets();
        assert!(sets > 0, "cache must have at least one set");
        Self { config, sets: vec![vec![LineState::default(); config.assoc]; sets], stats: CacheStats::default(), use_counter: 0 }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Align an address down to its line base.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.config.line_bytes as u64
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = self.line_of(addr);
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        (set, tag)
    }

    /// Whether the line containing `addr` is currently resident (no state
    /// change, no statistics update).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Look up (and on a miss, allocate) the line containing `addr`.
    ///
    /// `is_write` marks the line dirty on write-back caches.
    pub fn access(&mut self, addr: u64, is_write: bool) -> LookupResult {
        self.use_counter += 1;
        let (set, tag) = self.set_and_tag(addr);
        let ways = &mut self.sets[set];
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_used = self.use_counter;
            if is_write && self.config.write_back {
                line.dirty = true;
            }
            self.stats.hits += 1;
            return LookupResult::Hit;
        }
        self.stats.misses += 1;
        // Choose the LRU victim (prefer an invalid way).
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.last_used + 1 } else { 0 })
            .expect("associativity is non-zero");
        let dirty_victim = victim.valid && victim.dirty;
        if dirty_victim {
            self.stats.writebacks += 1;
        }
        victim.tag = tag;
        victim.valid = true;
        victim.dirty = is_write && self.config.write_back;
        victim.last_used = self.use_counter;
        LookupResult::Miss { dirty_victim }
    }

    /// Restore the cache to its just-built state — every line invalid,
    /// statistics zeroed — without reallocating the tag arrays. Part of the
    /// memory-system `reset()` contract that lets machines be reused across
    /// experiment cells.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.fill(LineState::default());
        }
        self.stats = CacheStats::default();
        self.use_counter = 0;
    }

    /// Serialize the warm tag array, LRU clock and statistics for a
    /// checkpoint. The configuration itself is not stored — checkpoints
    /// restore onto a cache built from the same spec — but the geometry is
    /// recorded and validated so a mismatched restore fails cleanly.
    pub fn save_state(&self, e: &mut Encoder) {
        e.usize(self.sets.len());
        e.usize(self.config.assoc);
        e.u64(self.use_counter);
        self.stats.save_state(e);
        for set in &self.sets {
            for line in set {
                e.u64(line.tag);
                e.bool(line.valid);
                e.bool(line.dirty);
                e.u64(line.last_used);
            }
        }
    }

    /// Restore warm state written by [`Cache::save_state`] into this cache.
    ///
    /// # Errors
    ///
    /// Fails if the stream is truncated or was written by a cache with a
    /// different set count or associativity.
    pub fn load_state(&mut self, d: &mut Decoder<'_>) -> Result<(), CodecError> {
        d.expect_u64(self.sets.len() as u64, "cache set count")?;
        d.expect_u64(self.config.assoc as u64, "cache associativity")?;
        self.use_counter = d.u64("cache use counter")?;
        self.stats = CacheStats::load_state(d)?;
        for set in &mut self.sets {
            for line in set {
                line.tag = d.u64("line tag")?;
                line.valid = d.bool("line valid")?;
                line.dirty = d.bool("line dirty")?;
                line.last_used = d.u64("line last used")?;
            }
        }
        Ok(())
    }

    /// Invalidate the line containing `addr` (used by the inclusion/coherence
    /// policy between the scalar L1 and the vector path).
    pub fn invalidate(&mut self, addr: u64) {
        let (set, tag) = self.set_and_tag(addr);
        for l in &mut self.sets[set] {
            if l.valid && l.tag == tag {
                l.valid = false;
                l.dirty = false;
            }
        }
    }
}

/// A file of Miss Status Holding Registers.
///
/// Each in-flight line miss occupies one MSHR until the fill returns. A second
/// miss to the same line piggybacks on the existing entry.
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    entries: Vec<(u64, u64)>, // (line, ready_cycle)
}

impl MshrFile {
    /// Create an MSHR file with the given number of entries.
    pub fn new(capacity: usize) -> Self {
        Self { capacity, entries: Vec::new() }
    }

    /// Remove entries whose fill has returned by `cycle`.
    pub fn retire(&mut self, cycle: u64) {
        self.entries.retain(|&(_, ready)| ready > cycle);
    }

    /// Drop every in-flight miss (the machine-reuse `reset()` path).
    pub fn reset(&mut self) {
        self.entries.clear();
    }

    /// Number of in-flight misses.
    pub fn in_flight(&self) -> usize {
        self.entries.len()
    }

    /// Whether a new miss can be accepted at `cycle`.
    pub fn has_free(&mut self, cycle: u64) -> bool {
        self.retire(cycle);
        self.entries.len() < self.capacity
    }

    /// Look up an in-flight miss for `line`; returns its ready cycle.
    pub fn lookup(&self, line: u64) -> Option<u64> {
        self.entries.iter().find(|&&(l, _)| l == line).map(|&(_, r)| r)
    }

    /// Allocate an MSHR for `line`, returning `false` if the file is full.
    pub fn allocate(&mut self, cycle: u64, line: u64, ready_cycle: u64) -> bool {
        self.retire(cycle);
        if self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.push((line, ready_cycle));
        true
    }

    /// Serialize the in-flight misses for a checkpoint.
    pub fn save_state(&self, e: &mut Encoder) {
        e.usize(self.capacity);
        e.usize(self.entries.len());
        for &(line, ready) in &self.entries {
            e.u64(line);
            e.u64(ready);
        }
    }

    /// Restore in-flight misses written by [`MshrFile::save_state`].
    ///
    /// # Errors
    ///
    /// Fails if the stream is truncated, was written by a file of a different
    /// capacity, or holds more entries than the capacity admits.
    pub fn load_state(&mut self, d: &mut Decoder<'_>) -> Result<(), CodecError> {
        d.expect_u64(self.capacity as u64, "mshr capacity")?;
        let n = d.usize("mshr entry count")?;
        if n > self.capacity {
            return Err(CodecError::Invalid { what: "mshr entry count" });
        }
        self.entries.clear();
        for _ in 0..n {
            let line = d.u64("mshr line")?;
            let ready = d.u64("mshr ready cycle")?;
            self.entries.push((line, ready));
        }
        Ok(())
    }

    /// The earliest cycle at which an MSHR will free up (`cycle` if one is
    /// already free).
    pub fn next_free_cycle(&mut self, cycle: u64) -> u64 {
        self.retire(cycle);
        if self.entries.len() < self.capacity {
            cycle
        } else {
            self.entries.iter().map(|&(_, r)| r).min().unwrap_or(cycle)
        }
    }
}

/// An N-deep coalescing write buffer with a selective-flush policy.
///
/// Stores retire into the buffer immediately when there is room; the buffer
/// drains one entry per `drain_interval` cycles towards the next level. Stores
/// to a line already present coalesce into the existing entry.
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    capacity: usize,
    drain_interval: u64,
    entries: Vec<(u64, u64)>, // (line, drained_at)
    /// Number of stores coalesced into existing entries.
    pub coalesced: u64,
}

impl WriteBuffer {
    /// Create a write buffer of `capacity` entries draining one entry every
    /// `drain_interval` cycles.
    pub fn new(capacity: usize, drain_interval: u64) -> Self {
        Self { capacity, drain_interval, entries: Vec::new(), coalesced: 0 }
    }

    /// Remove entries that have fully drained by `cycle`.
    pub fn retire(&mut self, cycle: u64) {
        self.entries.retain(|&(_, t)| t > cycle);
    }

    /// Drop every buffered store and the coalescing count (the machine-reuse
    /// `reset()` path).
    pub fn reset(&mut self) {
        self.entries.clear();
        self.coalesced = 0;
    }

    /// Current occupancy.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Serialize the buffered stores and coalescing count for a checkpoint.
    pub fn save_state(&self, e: &mut Encoder) {
        e.usize(self.capacity);
        e.u64(self.drain_interval);
        e.u64(self.coalesced);
        e.usize(self.entries.len());
        for &(line, drained_at) in &self.entries {
            e.u64(line);
            e.u64(drained_at);
        }
    }

    /// Restore state written by [`WriteBuffer::save_state`].
    ///
    /// # Errors
    ///
    /// Fails if the stream is truncated or was written by a buffer with a
    /// different capacity or drain interval.
    pub fn load_state(&mut self, d: &mut Decoder<'_>) -> Result<(), CodecError> {
        d.expect_u64(self.capacity as u64, "write buffer capacity")?;
        d.expect_u64(self.drain_interval, "write buffer drain interval")?;
        self.coalesced = d.u64("write buffer coalesced")?;
        // `push` appends past the nominal capacity when the buffer is full
        // (the overflowing store just waits for the oldest drain), so the
        // entry count is not bounded by `capacity` and is taken as-is.
        let n = d.usize("write buffer entry count")?;
        self.entries.clear();
        for _ in 0..n {
            let line = d.u64("write buffer line")?;
            let drained_at = d.u64("write buffer drain cycle")?;
            self.entries.push((line, drained_at));
        }
        Ok(())
    }

    /// Accept a store to `line` at `cycle`. Returns the cycle at which the
    /// store is considered complete from the processor's point of view (it may
    /// be later than `cycle` when the buffer is full and must drain first).
    pub fn push(&mut self, cycle: u64, line: u64) -> u64 {
        self.retire(cycle);
        if self.entries.iter().any(|&(l, _)| l == line) {
            self.coalesced += 1;
            return cycle;
        }
        let start = if self.entries.len() < self.capacity {
            cycle
        } else {
            // Full: the store stalls until the oldest entry drains.
            self.entries.iter().map(|&(_, t)| t).min().unwrap_or(cycle)
        };
        let drained_at = start + self.drain_interval;
        self.entries.push((line, drained_at));
        start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_sets() {
        let l1 = CacheConfig::paper_l1(1);
        assert_eq!(l1.sets(), 1024);
        assert_eq!(l1.assoc, 1);
        let l2 = CacheConfig::paper_l2(6);
        assert_eq!(l2.sets(), 4096);
        assert!(l2.write_back);
    }

    #[test]
    fn direct_mapped_hit_miss_and_conflict() {
        let mut c = Cache::new(CacheConfig { size_bytes: 1024, assoc: 1, line_bytes: 32, hit_latency: 1, mshrs: 4, write_back: false });
        assert_eq!(c.access(0x0, false), LookupResult::Miss { dirty_victim: false });
        assert_eq!(c.access(0x4, false), LookupResult::Hit, "same line hits");
        // 1024-byte direct mapped: address 0x400 conflicts with 0x0.
        assert_eq!(c.access(0x400, false), LookupResult::Miss { dirty_victim: false });
        assert_eq!(c.access(0x0, false), LookupResult::Miss { dirty_victim: false }, "evicted by conflict");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 3);
        assert!(c.stats().miss_ratio() > 0.7);
    }

    #[test]
    fn lru_replacement_in_two_way_set() {
        let mut c = Cache::new(CacheConfig { size_bytes: 128, assoc: 2, line_bytes: 32, hit_latency: 1, mshrs: 4, write_back: true });
        // Two sets; addresses mapping to set 0: 0x0, 0x40, 0x80...
        c.access(0x0, false);
        c.access(0x40, false);
        c.access(0x0, false); // touch 0x0 so 0x40 is LRU
        c.access(0x80, false); // evicts 0x40
        assert!(c.probe(0x0));
        assert!(!c.probe(0x40));
        assert!(c.probe(0x80));
    }

    #[test]
    fn write_back_dirty_victims_are_counted() {
        let mut c = Cache::new(CacheConfig { size_bytes: 64, assoc: 1, line_bytes: 32, hit_latency: 1, mshrs: 4, write_back: true });
        c.access(0x0, true); // miss, allocate dirty
        c.access(0x40, true); // conflicts, evicts dirty victim
        assert_eq!(c.stats().writebacks, 1);
        // Write-through cache never produces dirty victims.
        let mut wt = Cache::new(CacheConfig { size_bytes: 64, assoc: 1, line_bytes: 32, hit_latency: 1, mshrs: 4, write_back: false });
        wt.access(0x0, true);
        wt.access(0x40, true);
        assert_eq!(wt.stats().writebacks, 0);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = Cache::new(CacheConfig::paper_l1(1));
        c.access(0x100, false);
        assert!(c.probe(0x100));
        c.invalidate(0x100);
        assert!(!c.probe(0x100));
    }

    #[test]
    fn mshr_allocation_and_piggyback() {
        let mut m = MshrFile::new(2);
        assert!(m.has_free(0));
        assert!(m.allocate(0, 10, 50));
        assert!(m.allocate(0, 11, 60));
        assert!(!m.allocate(0, 12, 70), "file is full");
        assert_eq!(m.lookup(10), Some(50));
        assert_eq!(m.in_flight(), 2);
        assert_eq!(m.next_free_cycle(5), 50);
        // After cycle 50 the first entry retires.
        assert!(m.has_free(51));
        assert!(m.allocate(51, 12, 90));
    }

    #[test]
    fn write_buffer_coalesces_and_stalls_when_full() {
        let mut wb = WriteBuffer::new(2, 10);
        assert_eq!(wb.push(0, 1), 0);
        assert_eq!(wb.push(0, 1), 0, "same line coalesces");
        assert_eq!(wb.coalesced, 1);
        assert_eq!(wb.push(0, 2), 0);
        // Buffer full: the third distinct line waits for the oldest to drain.
        let start = wb.push(0, 3);
        assert_eq!(start, 10);
        wb.retire(11);
        assert!(wb.occupancy() <= 2);
    }
}
