//! Idealised memory models used by the kernel-level study (Figure 5).
//!
//! The paper's kernel analysis assumes "an idealized memory system with no
//! bandwidth constraints and a fixed memory latency" of 1 cycle (perfect
//! cache) and repeats the experiment at 50 cycles to study latency tolerance.
//! The only structural resource modelled here is the number of memory ports
//! and, for MOM, the number of vector elements a port can deliver per cycle
//! (2 for the 8-way machine of Table 1).

use crate::{AccessCause, MemModelKind, MemSystemStats, MemorySystem};
use mom_isa::codec::{CodecError, Decoder, Encoder};
use mom_isa::trace::MemAccess;

/// Fixed-latency memory with a configurable number of ports.
#[derive(Debug, Clone)]
pub struct PerfectMemory {
    latency: u64,
    ports: Vec<u64>,
    elems_per_cycle: usize,
    stats: MemSystemStats,
}

impl PerfectMemory {
    /// Create a perfect memory with `ports` memory ports, each able to deliver
    /// `elems_per_cycle` vector elements per cycle, and a fixed `latency`.
    ///
    /// # Panics
    ///
    /// Panics if `ports` or `elems_per_cycle` is zero.
    pub fn new(latency: u64, ports: usize, elems_per_cycle: usize) -> Self {
        assert!(ports > 0, "at least one memory port is required");
        assert!(elems_per_cycle > 0, "ports must deliver at least one element per cycle");
        Self { latency, ports: vec![0; ports], elems_per_cycle, stats: MemSystemStats::default() }
    }

    /// The configured fixed latency.
    pub fn latency(&self) -> u64 {
        self.latency
    }
}

impl MemorySystem for PerfectMemory {
    #[inline]
    fn access(&mut self, cycle: u64, accesses: &[MemAccess], _vector: bool) -> Option<u64> {
        let n = accesses.len().max(1);
        // Find a free port.
        let port = match self.ports.iter_mut().find(|p| **p <= cycle) {
            Some(p) => p,
            None => {
                self.stats.port_stalls += 1;
                return None;
            }
        };
        // Ports deliver 1 or 2 elements per cycle in every Table 1
        // configuration; avoid a hardware divide on the per-access path.
        let occupancy = match self.elems_per_cycle {
            1 => n as u64,
            2 => n.div_ceil(2) as u64,
            w => n.div_ceil(w) as u64,
        };
        *port = cycle + occupancy;
        self.stats.requests += 1;
        self.stats.element_accesses += n as u64;
        Some(cycle + occupancy - 1 + self.latency)
    }

    fn kind(&self) -> MemModelKind {
        MemModelKind::Perfect { latency: self.latency }
    }

    fn last_access_cause(&self) -> AccessCause {
        // There is no hierarchy to miss in: every access completes at the
        // fixed latency, which the attribution probe reports as L1 time.
        AccessCause::L1
    }

    fn stats(&self) -> MemSystemStats {
        self.stats
    }

    fn reset(&mut self) {
        self.ports.fill(0);
        self.stats = MemSystemStats::default();
    }

    fn save_state(&self, e: &mut Encoder) {
        e.u64(self.latency);
        e.usize(self.elems_per_cycle);
        e.usize(self.ports.len());
        for &busy in &self.ports {
            e.u64(busy);
        }
        self.stats.save_state(e);
    }

    fn load_state(&mut self, d: &mut Decoder<'_>) -> Result<(), CodecError> {
        d.expect_u64(self.latency, "perfect memory latency")?;
        d.expect_u64(self.elems_per_cycle as u64, "perfect memory width")?;
        d.expect_u64(self.ports.len() as u64, "perfect memory port count")?;
        for busy in &mut self.ports {
            *busy = d.u64("perfect memory port")?;
        }
        self.stats = MemSystemStats::load_state(d)?;
        Ok(())
    }

    fn as_perfect(&mut self) -> Option<&mut PerfectMemory> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mom_isa::trace::MemKind;

    fn acc(addr: u64) -> MemAccess {
        MemAccess { addr, size: 8, kind: MemKind::Load }
    }

    #[test]
    fn scalar_access_completes_after_latency() {
        let mut m = PerfectMemory::new(1, 1, 1);
        assert_eq!(m.access(10, &[acc(0)], false), Some(11));
        assert_eq!(m.latency(), 1);
        let mut m50 = PerfectMemory::new(50, 1, 1);
        assert_eq!(m50.access(10, &[acc(0)], false), Some(60));
    }

    #[test]
    fn port_is_busy_until_occupancy_ends() {
        let mut m = PerfectMemory::new(1, 1, 1);
        let elems: Vec<_> = (0..16).map(|i| acc(i * 32)).collect();
        // 16 elements at 1 elem/cycle occupy the single port for 16 cycles.
        assert_eq!(m.access(0, &elems, true), Some(16));
        assert_eq!(m.access(1, &[acc(0)], false), None, "port still busy");
        assert!(m.access(16, &[acc(0)], false).is_some());
        assert_eq!(m.stats().port_stalls, 1);
        assert_eq!(m.stats().element_accesses, 17);
    }

    #[test]
    fn wide_ports_cut_occupancy() {
        let mut m = PerfectMemory::new(1, 1, 2);
        let elems: Vec<_> = (0..16).map(|i| acc(i * 32)).collect();
        assert_eq!(m.access(0, &elems, true), Some(8));
    }

    #[test]
    fn multiple_ports_serve_parallel_requests() {
        let mut m = PerfectMemory::new(1, 2, 1);
        assert!(m.access(0, &[acc(0)], false).is_some());
        assert!(m.access(0, &[acc(8)], false).is_some());
        assert!(m.access(0, &[acc(16)], false).is_none(), "only two ports");
    }

    #[test]
    fn kind_reports_latency() {
        let m = PerfectMemory::new(50, 1, 1);
        assert_eq!(m.kind(), MemModelKind::Perfect { latency: 50 });
    }

    #[test]
    fn reset_frees_ports_and_clears_stats() {
        let mut m = PerfectMemory::new(1, 1, 1);
        let elems: Vec<_> = (0..16).map(|i| acc(i * 32)).collect();
        assert!(m.access(0, &elems, true).is_some());
        assert!(m.access(1, &[acc(0)], false).is_none(), "port busy before reset");
        m.reset();
        assert_eq!(m.stats(), MemSystemStats::default());
        assert_eq!(m.access(1, &[acc(0)], false), Some(2), "port idle again after reset");
    }
}
