//! # mom-mem — memory hierarchies for the MOM reproduction
//!
//! This crate models every memory system evaluated in the paper:
//!
//! * [`perfect::PerfectMemory`] — the idealised fixed-latency memory of the
//!   kernel study (1-cycle "perfect cache" and the 50-cycle latency-tolerance
//!   experiment);
//! * [`hierarchy::Hierarchy`] — the realistic two-level hierarchy (32 KB
//!   write-through L1, 1 MB write-back L2, MSHRs, coalescing write buffer and
//!   Direct Rambus DRAM) with the four front-ends of Figure 6/Table 3:
//!   conventional, multi-address, vector cache and collapsing buffer;
//! * [`cache`] / [`dram`] — the underlying tag-array, MSHR, write-buffer and
//!   DRDRAM building blocks;
//! * [`config`] — Table 3 port configurations and the
//!   [`MemModelKind`] selector.
//!
//! The timing simulator in `mom-cpu` talks to all of them through the
//! [`MemorySystem`] trait: it presents the element accesses of one memory
//! instruction and receives either a completion cycle or a structural stall.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod config;
pub mod dram;
pub mod hierarchy;
pub mod perfect;

pub use config::{MemModelKind, PortConfig};
pub use hierarchy::Hierarchy;
pub use perfect::PerfectMemory;

use mom_isa::codec::{CodecError, Decoder, Encoder};
use mom_isa::trace::MemAccess;

/// Aggregate statistics of a memory system.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemSystemStats {
    /// Memory instructions presented to the system.
    pub requests: u64,
    /// Element-level accesses (a MOM vector access counts its VL elements).
    pub element_accesses: u64,
    /// Requests rejected because no port was available.
    pub port_stalls: u64,
    /// Element accesses delayed by bank conflicts.
    pub bank_conflicts: u64,
    /// Requests delayed because every MSHR was in flight.
    pub mshr_stalls: u64,
    /// Line-pair transactions issued by the vector/collapsing-buffer path.
    pub vector_transactions: u64,
    /// L1 cache statistics.
    pub l1: cache::CacheStats,
    /// L2 cache statistics.
    pub l2: cache::CacheStats,
    /// DRAM channel statistics.
    pub dram: dram::DramStats,
}

impl MemSystemStats {
    /// Serialize every counter for a checkpoint.
    pub fn save_state(&self, e: &mut Encoder) {
        e.u64(self.requests);
        e.u64(self.element_accesses);
        e.u64(self.port_stalls);
        e.u64(self.bank_conflicts);
        e.u64(self.mshr_stalls);
        e.u64(self.vector_transactions);
        self.l1.save_state(e);
        self.l2.save_state(e);
        e.u64(self.dram.transfers);
        e.u64(self.dram.busy_cycles);
        e.u64(self.dram.queue_cycles);
    }

    /// Restore counters written by [`MemSystemStats::save_state`].
    ///
    /// # Errors
    ///
    /// Fails if the stream is truncated.
    pub fn load_state(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            requests: d.u64("mem requests")?,
            element_accesses: d.u64("mem element accesses")?,
            port_stalls: d.u64("mem port stalls")?,
            bank_conflicts: d.u64("mem bank conflicts")?,
            mshr_stalls: d.u64("mem mshr stalls")?,
            vector_transactions: d.u64("mem vector transactions")?,
            l1: cache::CacheStats::load_state(d)?,
            l2: cache::CacheStats::load_state(d)?,
            dram: dram::DramStats {
                transfers: d.u64("dram transfers")?,
                busy_cycles: d.u64("dram busy cycles")?,
                queue_cycles: d.u64("dram queue cycles")?,
            },
        })
    }
}

/// The dominant component of the most recent successful
/// [`MemorySystem::access`] — which level of the hierarchy (or which
/// structural buffer) determined the completion cycle it returned.
///
/// Implementations record this unconditionally on every access (a single enum
/// store on an already-taken branch, so the cost is unmeasurable and the
/// recording path is identical whether or not anyone reads it). The
/// cycle-attribution probe in `mom-cpu` reads it after each access to charge
/// memory-bound commit cycles to the right level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum AccessCause {
    /// Served at L1 speed — an L1 hit, or any access against an idealised
    /// fixed-latency memory ([`perfect::PerfectMemory`] reports every access
    /// as `L1`).
    #[default]
    L1,
    /// Missed L1 and was served from L2 (including merges into an in-flight
    /// L1 fill, and vector-path transactions bounded by L2 port occupancy).
    L2,
    /// Missed both cache levels; the completion waited on a DRAM transfer.
    Dram,
    /// The access waited for a miss-status-holding register to free before
    /// its fill could even start.
    MshrFull,
    /// A store whose completion was set by the coalescing write buffer.
    WriteBuffer,
}

impl AccessCause {
    /// Stable checkpoint tag of this cause.
    pub fn tag(self) -> u8 {
        match self {
            AccessCause::L1 => 0,
            AccessCause::L2 => 1,
            AccessCause::Dram => 2,
            AccessCause::MshrFull => 3,
            AccessCause::WriteBuffer => 4,
        }
    }

    /// Inverse of [`AccessCause::tag`].
    ///
    /// # Errors
    ///
    /// Fails on a tag no variant carries.
    pub fn from_tag(tag: u8) -> Result<Self, CodecError> {
        Ok(match tag {
            0 => AccessCause::L1,
            1 => AccessCause::L2,
            2 => AccessCause::Dram,
            3 => AccessCause::MshrFull,
            4 => AccessCause::WriteBuffer,
            _ => return Err(CodecError::Invalid { what: "access cause" }),
        })
    }
}

/// A memory system the timing simulator can issue memory instructions to.
///
/// Implementations own their port/bank/MSHR state; the caller retries a
/// request on a later cycle when `access` returns `None` (a structural stall).
///
/// `Send` is a supertrait so that `Box<dyn MemorySystem>` can move into the
/// scoped worker threads of the parallel experiment runner (`mom-lab`); every
/// model is plain owned data, so this costs implementations nothing.
pub trait MemorySystem: std::fmt::Debug + Send {
    /// Try to issue one memory instruction's element accesses at `cycle`.
    ///
    /// `vector` is true for MOM matrix loads/stores (more than one element
    /// access from a single instruction). Returns the cycle at which the data
    /// is available (loads) or the store is accepted, or `None` when no port
    /// is available this cycle.
    fn access(&mut self, cycle: u64, accesses: &[MemAccess], vector: bool) -> Option<u64>;

    /// Which memory organisation this is.
    fn kind(&self) -> MemModelKind;

    /// The dominant cause of the most recent successful [`access`] — see
    /// [`AccessCause`]. Undefined-but-harmless (the previous access's value)
    /// after a rejected access; the simulator only consults it once a request
    /// has completed.
    ///
    /// [`access`]: MemorySystem::access
    fn last_access_cause(&self) -> AccessCause;

    /// Statistics accumulated so far.
    fn stats(&self) -> MemSystemStats;

    /// Restore the system to its just-built state — tags invalidated, ports
    /// and channels idle, MSHRs and write buffers empty, statistics zeroed —
    /// **without reallocating** any of the backing arrays. After `reset()`
    /// the system behaves exactly like a freshly constructed one, which is
    /// what lets the experiment runner reuse a machine across grid cells
    /// instead of rebuilding cache arrays per cell.
    fn reset(&mut self);

    /// Serialize the complete warm state — tags, MSHRs, buffered stores,
    /// channel/port occupancy and statistics — through the checkpoint codec,
    /// such that [`load_state`](MemorySystem::load_state) on an identically
    /// configured system reproduces every future [`access`] answer exactly.
    ///
    /// [`access`]: MemorySystem::access
    fn save_state(&self, e: &mut Encoder);

    /// Restore warm state written by [`save_state`](MemorySystem::save_state)
    /// into this system.
    ///
    /// # Errors
    ///
    /// Fails with a [`CodecError`] on a truncated stream or a snapshot taken
    /// from a differently configured system; the receiver's state is
    /// unspecified after a failed restore (callers discard it).
    fn load_state(&mut self, d: &mut Decoder<'_>) -> Result<(), CodecError>;

    /// Concrete-type escape hatch for the hottest model: a streaming
    /// simulator consults this **once at construction** and, when it gets
    /// `Some`, issues memory accesses directly to the [`PerfectMemory`] —
    /// whose port check is a handful of instructions — instead of paying a
    /// virtual `access` (plus, when probing, a virtual
    /// [`MemorySystem::last_access_cause`]) per memory instruction. Models
    /// with real work behind `access` keep the default `None`; behaviour is
    /// identical either way.
    fn as_perfect(&mut self) -> Option<&mut PerfectMemory> {
        None
    }
}

/// Construct the memory system named by `kind` for a machine of issue width
/// `way`, with the port counts of Tables 1 and 3.
pub fn build_memory(kind: MemModelKind, way: usize) -> Box<dyn MemorySystem> {
    match kind {
        MemModelKind::Perfect { latency } => {
            // Table 1: 1/1/2/4 memory ports; the 8-way machine's ports move
            // two vector elements per cycle.
            let (ports, width) = match way {
                8 => (2, 2),
                4 => (2, 1),
                _ => (1, 1),
            };
            Box::new(PerfectMemory::new(latency, ports, width))
        }
        other => Box::new(Hierarchy::new(other, way)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mom_isa::trace::MemKind;

    #[test]
    fn build_memory_selects_the_right_model() {
        let p = build_memory(MemModelKind::Perfect { latency: 1 }, 4);
        assert_eq!(p.kind(), MemModelKind::Perfect { latency: 1 });
        let h = build_memory(MemModelKind::VectorCache, 8);
        assert_eq!(h.kind(), MemModelKind::VectorCache);
        let c = build_memory(MemModelKind::Conventional, 1);
        assert_eq!(c.kind(), MemModelKind::Conventional);
    }

    #[test]
    fn memory_systems_are_send() {
        fn assert_send<T: Send>() {}
        // The parallel runner builds one memory system per in-flight grid cell
        // inside scoped threads; the boxed trait object must be `Send`.
        assert_send::<Box<dyn MemorySystem>>();
        assert_send::<MemModelKind>();
        assert_send::<MemSystemStats>();
    }

    #[test]
    fn trait_object_access_works() {
        let mut m = build_memory(MemModelKind::Perfect { latency: 1 }, 1);
        let acc = [MemAccess { addr: 0x10, size: 8, kind: MemKind::Load }];
        assert!(m.access(0, &acc, false).is_some());
        assert_eq!(m.stats().requests, 1);
    }
}
