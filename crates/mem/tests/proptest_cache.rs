//! Property-based tests of the cache, MSHR and memory-system invariants.

use mom_isa::trace::{MemAccess, MemKind};
use mom_mem::cache::{Cache, CacheConfig, MshrFile};
use mom_mem::{build_memory, MemModelKind};
use proptest::prelude::*;

proptest! {
    // Cases replay up-to-300-access streams through the cache models; 64
    // cases keep `cargo test -q` CI-friendly. `PROPTEST_CASES` overrides it.
    #![proptest_config(Config::with_cases(64))]

    #[test]
    fn a_line_just_accessed_is_always_resident(addrs in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut cache = Cache::new(CacheConfig::paper_l1(1));
        for addr in addrs {
            cache.access(addr, false);
            prop_assert!(cache.probe(addr), "line for {addr:#x} must be resident after access");
        }
    }

    #[test]
    fn hits_plus_misses_equals_accesses(addrs in prop::collection::vec(0u64..100_000, 1..300)) {
        let mut cache = Cache::new(CacheConfig::paper_l2(6));
        for &addr in &addrs {
            cache.access(addr, addr % 3 == 0);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.accesses(), addrs.len() as u64);
        prop_assert!(stats.miss_ratio() >= 0.0 && stats.miss_ratio() <= 1.0);
    }

    #[test]
    fn working_set_smaller_than_cache_eventually_always_hits(lines in 1usize..16) {
        // Touch a tiny working set twice; the second sweep must be all hits in
        // the 2-way L2 as long as it maps to distinct sets or fits the ways.
        let mut cache = Cache::new(CacheConfig::paper_l2(6));
        let addrs: Vec<u64> = (0..lines as u64).map(|i| i * 128).collect();
        for &a in &addrs {
            cache.access(a, false);
        }
        let before = cache.stats().misses;
        for &a in &addrs {
            cache.access(a, false);
        }
        prop_assert_eq!(cache.stats().misses, before, "second sweep must not miss");
    }

    #[test]
    fn mshr_occupancy_never_exceeds_capacity(ops in prop::collection::vec((0u64..64, 1u64..100), 1..200)) {
        let mut mshrs = MshrFile::new(8);
        let mut cycle = 0u64;
        for (line, delay) in ops {
            cycle += 1;
            if mshrs.has_free(cycle) {
                mshrs.allocate(cycle, line, cycle + delay);
            }
            prop_assert!(mshrs.in_flight() <= 8);
        }
    }

    #[test]
    fn perfect_memory_completion_is_monotone_in_latency(addr in 0u64..1_000_000, n in 1usize..16) {
        let accesses: Vec<MemAccess> = (0..n)
            .map(|i| MemAccess { addr: addr + i as u64 * 8, size: 8, kind: MemKind::Load })
            .collect();
        let mut fast = build_memory(MemModelKind::Perfect { latency: 1 }, 4);
        let mut slow = build_memory(MemModelKind::Perfect { latency: 50 }, 4);
        let f = fast.access(10, &accesses, true).unwrap();
        let s = slow.access(10, &accesses, true).unwrap();
        prop_assert!(s > f);
    }

    #[test]
    fn hierarchy_completes_every_request(reqs in prop::collection::vec((0u64..262_144, any::<bool>()), 1..100)) {
        let mut mem = build_memory(MemModelKind::MultiAddress, 4);
        let mut cycle = 0u64;
        for (addr, is_store) in reqs {
            cycle += 4;
            let kind = if is_store { MemKind::Store } else { MemKind::Load };
            let acc = [MemAccess { addr, size: 8, kind }];
            // Retry on structural stalls; completion must always arrive and
            // never precede the request cycle.
            let mut t = cycle;
            let done = loop {
                match mem.access(t, &acc, false) {
                    Some(done) => break done,
                    None => t += 1,
                }
            };
            prop_assert!(done >= cycle);
        }
    }
}
