//! Regenerate Table 2: multimedia register-file configurations and area cost.
//!
//! Thin wrapper over the `mom-lab` experiment engine: the text below is
//! rendered from the same structured rows `momlab run table2` writes to
//! `BENCH_table2.json`.

use mom_lab::spec::ExperimentSpec;

fn main() {
    let spec = ExperimentSpec::builtin("table2", 1, mom_lab::fast_mode()).expect("built-in spec");
    print!("{}", mom_lab::report::render(&mom_lab::run(&spec)));
}
