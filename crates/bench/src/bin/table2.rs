//! Regenerate Table 2: multimedia register-file configurations and area cost.

fn main() {
    println!("Table 2: Multimedia register file configurations (4-way machine)");
    println!(
        "{:<6} {:>14} {:>12} {:>12} {:>10} {:>10} {:>16}",
        "ISA", "media log/phys", "acc log/phys", "media rd/wr", "acc rd/wr", "size (KB)", "normalized area"
    );
    for row in mom_core::area::table2() {
        println!(
            "{:<6} {:>14} {:>12} {:>12} {:>10} {:>10.2} {:>16.2}",
            row.isa,
            format!("{}/{}", row.media_regs.0, row.media_regs.1),
            format!("{}/{}", row.acc_regs.0, row.acc_regs.1),
            format!("{}/{}", row.media_ports.0, row.media_ports.1),
            format!("{}/{}", row.acc_ports.0, row.acc_ports.1),
            row.size_kb,
            row.normalized_area,
        );
    }
    println!();
    println!("Paper values: sizes 0.5 / 0.78 / 2.6 KB, normalized area 1 / 1.19 / 0.87.");
}
