//! Regenerate Table 3: port configuration of the memory models.
//!
//! Thin wrapper over the `mom-lab` experiment engine: the text below is
//! rendered from the same structured rows `momlab run table3` writes to
//! `BENCH_table3.json`.

use mom_lab::spec::ExperimentSpec;

fn main() {
    let spec = ExperimentSpec::builtin("table3", 1, mom_lab::fast_mode()).expect("built-in spec");
    print!("{}", mom_lab::report::render(&mom_lab::run(&spec)));
}
