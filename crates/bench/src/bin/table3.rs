//! Regenerate Table 3: port configuration of the memory models.

fn main() {
    println!("Table 3: Port configuration of the memory models");
    println!(
        "{:<16} {:>9} {:>9} {:>11} {:>15} {:>9} {:>11}",
        "model", "L1 ports", "L1 banks", "L1 latency", "L2 vec ports", "L2 banks", "L2 latency"
    );
    for row in mom_mem::config::table3() {
        let c = row.config;
        println!(
            "{:<16} {:>9} {:>9} {:>11} {:>15} {:>9} {:>11}",
            row.label,
            c.l1_ports,
            c.l1_banks,
            c.l1_latency,
            if c.l2_vector_ports == 0 {
                "-".to_string()
            } else {
                format!("{}x{}", c.l2_vector_ports, c.l2_vector_width)
            },
            c.l2_banks,
            c.l2_latency,
        );
    }
}
