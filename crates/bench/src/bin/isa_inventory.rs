//! Report the opcode inventories of the three emulated media ISAs
//! (Section 3.1 of the paper: 67 MMX / 88 MDMX / 121 MOM instructions).

use mom_core::inventory::{opcode_count, paper_opcode_count};
use mom_isa::trace::IsaKind;

fn main() {
    println!("Opcode inventories of the emulation libraries");
    println!("{:<8} {:>10} {:>10}", "ISA", "modelled", "paper");
    for isa in [IsaKind::Mmx, IsaKind::Mdmx, IsaKind::Mom] {
        println!(
            "{:<8} {:>10} {:>10}",
            isa.to_string(),
            opcode_count(isa),
            paper_opcode_count(isa).map(|c| c.to_string()).unwrap_or_else(|| "-".into()),
        );
    }
    println!();
    println!("Register file summary (Table 2 logical registers):");
    println!("  MMX  : 32 media registers");
    println!("  MDMX : 32 media registers + 4 packed accumulators");
    println!("  MOM  : 16 matrix registers (16 x 64-bit words) + 2 accumulators + VL register");
}
