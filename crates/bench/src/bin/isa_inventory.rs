//! Report the opcode inventories of the three emulated media ISAs
//! (Section 3.1 of the paper: 67 MMX / 88 MDMX / 121 MOM instructions).
//!
//! Thin wrapper over the `mom-lab` experiment engine: the text below is
//! rendered from the same structured rows `momlab run isa_inventory` writes
//! to `BENCH_isa_inventory.json`.

use mom_lab::spec::ExperimentSpec;

fn main() {
    let spec =
        ExperimentSpec::builtin("isa_inventory", 1, mom_lab::fast_mode()).expect("built-in spec");
    print!("{}", mom_lab::report::render(&mom_lab::run(&spec)));
}
