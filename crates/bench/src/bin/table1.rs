//! Regenerate Table 1: processor configurations.
//!
//! Thin wrapper over the `mom-lab` experiment engine: the text below is
//! rendered from the same structured rows `momlab run table1` writes to
//! `BENCH_table1.json`.

use mom_lab::spec::ExperimentSpec;

fn main() {
    let spec = ExperimentSpec::builtin("table1", 1, mom_lab::fast_mode()).expect("built-in spec");
    print!("{}", mom_lab::report::render(&mom_lab::run(&spec)));
}
