//! Regenerate Table 1: processor configurations.

fn main() {
    println!("Table 1: Processor configurations");
    println!(
        "{:<8} {:>5} {:>5} {:>9} {:>6} {:>11} {:>11} {:>13} {:>10} {:>12}",
        "config", "ROB", "LSQ", "bimodal", "BTB", "INT s/c", "FP s/c", "MED (lanes)", "mem ports", "INT log/phys"
    );
    for row in mom_bench::table1_rows() {
        println!(
            "{:<8} {:>5} {:>5} {:>9} {:>6} {:>11} {:>11} {:>13} {:>10} {:>12}",
            format!("way-{}", row.way),
            row.rob,
            row.lsq,
            row.bimodal,
            row.btb,
            format!("{}/{}", row.int_units.0, row.int_units.1),
            format!("{}/{}", row.fp_units.0, row.fp_units.1),
            format!("{} (x{})", row.media_units.0, row.media_units.1),
            row.mem_ports,
            format!("{}/{}", row.int_regs.0, row.int_regs.1),
        );
    }
}
