//! Regenerate Figure 7: whole-program speed-ups on 4- and 8-way machines with
//! realistic cache hierarchies, relative to the Alpha/conventional-cache
//! configuration of the same width.
//!
//! Usage: `figure7 [scale]` (default scale 1). Set `MOM_BENCH_FAST=1` to
//! evaluate a reduced application subset (4-way machine only) for smoke
//! testing.
//!
//! Thin wrapper over the `mom-lab` experiment engine: the text below is
//! rendered from the same structured results `momlab run figure7` writes to
//! `BENCH_figure7.json`.

use mom_lab::spec::ExperimentSpec;

fn main() {
    let scale = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let spec = ExperimentSpec::builtin("figure7", scale, mom_lab::fast_mode()).expect("built-in spec");
    print!("{}", mom_lab::report::render(&mom_lab::run(&spec)));
}
