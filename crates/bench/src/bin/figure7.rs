//! Regenerate Figure 7: whole-program speed-ups on 4- and 8-way machines with
//! realistic cache hierarchies, relative to the Alpha/conventional-cache
//! configuration of the same width.
//!
//! Usage: `figure7 [scale]` (default scale 1). Set `MOM_BENCH_FAST=1` to
//! evaluate a reduced application subset (4-way machine only) for smoke
//! testing.

use mom_bench::{app_selection, fast_mode, fast_mode_marker, figure7, Figure7Config};

fn main() {
    let scale = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let apps = app_selection();
    let widths: &[usize] = if fast_mode() { &[4] } else { &[4, 8] };
    let points = figure7(&apps, scale, widths);

    println!(
        "Figure 7: whole-program speed-ups vs same-width Alpha/conventional (scale {scale}){}",
        fast_mode_marker()
    );
    for &app in &apps {
        println!("\n{app}");
        let mut header = format!("{:<32}", "configuration");
        for way in widths {
            header.push_str(&format!(" {:>8}", format!("{way}-way")));
        }
        println!("{header}");
        for config in Figure7Config::ALL {
            let get = |way: usize| {
                points
                    .iter()
                    .find(|p| p.app == app.to_string() && p.config == config.label() && p.way == way)
                    .map(|p| p.speedup_vs_alpha)
                    .unwrap_or(f64::NAN)
            };
            let mut row = format!("{:<32}", config.label());
            for &way in widths {
                row.push_str(&format!(" {:>8.2}", get(way)));
            }
            println!("{row}");
        }
    }
}
