//! Regenerate Figure 7: whole-program speed-ups on 4- and 8-way machines with
//! realistic cache hierarchies, relative to the Alpha/conventional-cache
//! configuration of the same width.
//!
//! Usage: `figure7 [scale]` (default scale 1).

use mom_apps::AppKind;
use mom_bench::{figure7, Figure7Config};

fn main() {
    let scale = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let points = figure7(&AppKind::ALL, scale, &[4, 8]);

    println!("Figure 7: whole-program speed-ups vs same-width Alpha/conventional (scale {scale})");
    for app in AppKind::ALL {
        println!("\n{app}");
        println!("{:<32} {:>8} {:>8}", "configuration", "4-way", "8-way");
        for config in Figure7Config::ALL {
            let get = |way: usize| {
                points
                    .iter()
                    .find(|p| p.app == app.to_string() && p.config == config.label() && p.way == way)
                    .map(|p| p.speedup_vs_alpha)
                    .unwrap_or(f64::NAN)
            };
            println!("{:<32} {:>8.2} {:>8.2}", config.label(), get(4), get(8));
        }
    }
}
