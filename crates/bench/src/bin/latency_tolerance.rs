//! Regenerate the Section 4.1 latency-tolerance study: slow-down of every
//! kernel/ISA pair when memory latency grows from 1 to 50 cycles (4-way
//! machine). The paper reports slow-down bands of 3-9x for Alpha, 4-8x for
//! MMX/MDMX and only 2-4x for MOM.
//!
//! Usage: `latency_tolerance [scale]` (default scale 1). Set
//! `MOM_BENCH_FAST=1` to evaluate a reduced kernel subset for smoke testing.

use mom_bench::{fast_mode_marker, kernel_selection, latency_tolerance};

fn main() {
    let scale = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let kernels = kernel_selection();
    let points = latency_tolerance(&kernels, scale, 4);

    println!(
        "Latency tolerance: slow-down from 1-cycle to 50-cycle memory (4-way machine){}",
        fast_mode_marker()
    );
    println!("{:<16} {:>8} {:>8} {:>8} {:>8}", "kernel", "alpha", "mmx", "mdmx", "mom");
    for &kernel in &kernels {
        let slow = |isa: &str| {
            points
                .iter()
                .find(|p| p.kernel == kernel.to_string() && p.isa == isa)
                .map(|p| p.slowdown)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:<16} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            kernel.to_string(),
            slow("alpha"),
            slow("mmx"),
            slow("mdmx"),
            slow("mom"),
        );
    }

    // Per-ISA bands across kernels.
    println!("\nSlow-down bands across kernels:");
    for isa in ["alpha", "mmx", "mdmx", "mom"] {
        let values: Vec<f64> =
            points.iter().filter(|p| p.isa == isa).map(|p| p.slowdown).collect();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0, f64::max);
        println!("  {isa:<6} {min:.1}x .. {max:.1}x");
    }
}
