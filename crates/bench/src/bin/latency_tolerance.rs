//! Regenerate the Section 4.1 latency-tolerance study: slow-down of every
//! kernel/ISA pair when memory latency grows from 1 to 50 cycles (4-way
//! machine). The paper reports slow-down bands of 3-9x for Alpha, 4-8x for
//! MMX/MDMX and only 2-4x for MOM.
//!
//! Usage: `latency_tolerance [scale]` (default scale 1). Set
//! `MOM_BENCH_FAST=1` to evaluate a reduced kernel subset for smoke testing.
//!
//! Thin wrapper over the `mom-lab` experiment engine: the text below is
//! rendered from the same structured results `momlab run latency_tolerance`
//! writes to `BENCH_latency_tolerance.json`.

use mom_lab::spec::ExperimentSpec;

fn main() {
    let scale = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let spec = ExperimentSpec::builtin("latency_tolerance", scale, mom_lab::fast_mode())
        .expect("built-in spec");
    print!("{}", mom_lab::report::render(&mom_lab::run(&spec)));
}
