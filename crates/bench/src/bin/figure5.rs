//! Regenerate Figure 5: kernel speed-ups of Alpha/MMX/MDMX/MOM on 1/2/4/8-way
//! machines with a perfect (1-cycle) memory, relative to the 1-way Alpha run.
//!
//! Usage: `figure5 [scale]` (default scale 1). Set `MOM_BENCH_FAST=1` to
//! evaluate a reduced kernel subset for smoke testing.

use mom_bench::{fast_mode_marker, figure5, kernel_selection, WIDTHS};

fn main() {
    let scale = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let kernels = kernel_selection();
    let points = figure5(&kernels, scale, 1);

    println!(
        "Figure 5: kernel speed-ups vs 1-way Alpha (perfect cache, scale {scale}){}",
        fast_mode_marker()
    );
    for &kernel in &kernels {
        println!("\n{kernel}");
        println!("{:<8} {:>10} {:>10} {:>10} {:>10}", "isa", "1-way", "2-way", "4-way", "8-way");
        for isa in ["alpha", "mmx", "mdmx", "mom"] {
            let mut row = format!("{isa:<8}");
            for way in WIDTHS {
                let p = points
                    .iter()
                    .find(|p| p.kernel == kernel.to_string() && p.isa == isa && p.way == way)
                    .expect("point computed");
                row.push_str(&format!(" {:>10.2}", p.speedup_vs_1way_alpha));
            }
            println!("{row}");
        }
    }
}
