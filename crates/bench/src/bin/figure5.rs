//! Regenerate Figure 5: kernel speed-ups of Alpha/MMX/MDMX/MOM on 1/2/4/8-way
//! machines with a perfect (1-cycle) memory, relative to the 1-way Alpha run.
//!
//! Usage: `figure5 [scale]` (default scale 1). Set `MOM_BENCH_FAST=1` to
//! evaluate a reduced kernel subset for smoke testing.
//!
//! Thin wrapper over the `mom-lab` experiment engine: the text below is
//! rendered from the same structured results `momlab run figure5` writes to
//! `BENCH_figure5.json`.

use mom_lab::spec::ExperimentSpec;

fn main() {
    let scale = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let spec = ExperimentSpec::builtin("figure5", scale, mom_lab::fast_mode()).expect("built-in spec");
    print!("{}", mom_lab::report::render(&mom_lab::run(&spec)));
}
