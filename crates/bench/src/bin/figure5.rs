//! Regenerate Figure 5: kernel speed-ups of Alpha/MMX/MDMX/MOM on 1/2/4/8-way
//! machines with a perfect (1-cycle) memory, relative to the 1-way Alpha run.
//!
//! Usage: `figure5 [scale]` (default scale 1).

use mom_bench::{figure5, WIDTHS};
use mom_kernels::KernelKind;

fn main() {
    let scale = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let points = figure5(&KernelKind::ALL, scale, 1);

    println!("Figure 5: kernel speed-ups vs 1-way Alpha (perfect cache, scale {scale})");
    for kernel in KernelKind::ALL {
        println!("\n{kernel}");
        println!("{:<8} {:>10} {:>10} {:>10} {:>10}", "isa", "1-way", "2-way", "4-way", "8-way");
        for isa in ["alpha", "mmx", "mdmx", "mom"] {
            let mut row = format!("{isa:<8}");
            for way in WIDTHS {
                let p = points
                    .iter()
                    .find(|p| p.kernel == kernel.to_string() && p.isa == isa && p.way == way)
                    .expect("point computed");
                row.push_str(&format!(" {:>10.2}", p.speedup_vs_1way_alpha));
            }
            println!("{row}");
        }
    }
}
