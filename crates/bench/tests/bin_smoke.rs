//! Smoke tests: every experiment binary runs to completion in reduced
//! (`MOM_BENCH_FAST=1`) mode and prints non-empty, well-formed output.
//!
//! Cargo builds the binaries of the package under test before running its
//! integration tests and exposes their paths through `CARGO_BIN_EXE_<name>`.

use std::process::Command;

/// Run one binary with `MOM_BENCH_FAST=1` and return its stdout.
fn run_fast(exe: &str, args: &[&str]) -> String {
    let output = Command::new(exe)
        .args(args)
        .env("MOM_BENCH_FAST", "1")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        output.status.success(),
        "{exe} exited with {:?}; stderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("binary output is UTF-8");
    assert!(!stdout.trim().is_empty(), "{exe} printed nothing");
    stdout
}

/// Every table section whose header row *starts with* `header_first_col`
/// (figure5/figure7 print one per kernel/app) must be rectangular: each data
/// row (up to the next blank line) carries the same, non-zero number of
/// numeric fields. A dropped or extra cell in any row of any section breaks
/// the count and fails here.
fn assert_rectangular(stdout: &str, header_first_col: &str) {
    let numeric_fields = |row: &str| -> usize {
        row.split_whitespace().filter(|tok| tok.parse::<f64>().is_ok()).count()
    };
    let lines: Vec<&str> = stdout.lines().collect();
    let mut sections = 0;
    for (header_idx, _) in lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.split_whitespace().next() == Some(header_first_col))
    {
        sections += 1;
        let data: Vec<&str> = lines[header_idx + 1..]
            .iter()
            .copied()
            .take_while(|l| !l.trim().is_empty())
            .collect();
        assert!(!data.is_empty(), "no data rows after header {header_idx} in:\n{stdout}");
        let first = numeric_fields(data[0]);
        assert!(first > 0, "first data row has no numeric fields: {:?}", data[0]);
        for row in &data {
            assert_eq!(
                numeric_fields(row),
                first,
                "ragged table: {row:?} does not match the first row's {first} numeric fields in:\n{stdout}"
            );
        }
    }
    assert!(sections > 0, "header starting with {header_first_col:?} not found in:\n{stdout}");
}

#[test]
fn table1_prints_all_four_widths() {
    let out = run_fast(env!("CARGO_BIN_EXE_table1"), &[]);
    assert!(out.contains("Table 1"));
    for way in [1, 2, 4, 8] {
        assert!(out.contains(&format!("way-{way}")), "missing way-{way} row:\n{out}");
    }
    assert_rectangular(&out, "config");
}

#[test]
fn table2_prints_all_three_media_isas() {
    let out = run_fast(env!("CARGO_BIN_EXE_table2"), &[]);
    assert!(out.contains("Table 2"));
    for isa in ["MMX", "MDMX", "MOM"] {
        assert!(out.contains(isa), "missing {isa} row:\n{out}");
    }
    assert_rectangular(&out, "ISA");
}

#[test]
fn table3_prints_memory_models() {
    let out = run_fast(env!("CARGO_BIN_EXE_table3"), &[]);
    assert!(out.contains("Table 3"));
    assert_rectangular(&out, "model");
}

#[test]
fn isa_inventory_prints_counts() {
    let out = run_fast(env!("CARGO_BIN_EXE_isa_inventory"), &[]);
    assert!(out.contains("inventories"), "unexpected header:\n{out}");
    for isa in ["mmx", "mdmx"] {
        assert!(out.contains(isa), "missing {isa} row:\n{out}");
    }
    assert_rectangular(&out, "ISA");
}

#[test]
fn figure5_prints_speedups_for_each_selected_kernel() {
    let out = run_fast(env!("CARGO_BIN_EXE_figure5"), &["1"]);
    assert!(out.contains("Figure 5"));
    assert!(out.contains("[fast mode: reduced subset]"), "reduced run must be marked:\n{out}");
    // Fast mode evaluates the compensation and addblock kernels.
    for kernel in ["compensation", "addblock"] {
        assert!(out.contains(kernel), "missing {kernel} section:\n{out}");
    }
    for isa in ["alpha", "mmx", "mdmx", "mom"] {
        assert!(out.contains(isa), "missing {isa} rows:\n{out}");
    }
    assert_rectangular(&out, "isa");
}

#[test]
fn figure7_prints_speedups_for_each_selected_app() {
    let out = run_fast(env!("CARGO_BIN_EXE_figure7"), &["1"]);
    assert!(out.contains("Figure 7"));
    assert!(out.contains("[fast mode: reduced subset]"), "reduced run must be marked:\n{out}");
    for app in ["jpeg decode", "gsm encode"] {
        assert!(out.contains(app), "missing {app} section:\n{out}");
    }
    assert!(out.contains("MOM multi-address cache"), "missing config rows:\n{out}");
    assert!(!out.contains("NaN"), "figure7 printed NaN speed-ups:\n{out}");
    assert_rectangular(&out, "configuration");
}

#[test]
fn latency_tolerance_prints_bands() {
    let out = run_fast(env!("CARGO_BIN_EXE_latency_tolerance"), &["1"]);
    assert!(out.contains("Latency tolerance"));
    assert!(out.contains("[fast mode: reduced subset]"), "reduced run must be marked:\n{out}");
    assert!(out.contains("Slow-down bands"), "missing band summary:\n{out}");
    assert_rectangular(&out, "kernel");
}
