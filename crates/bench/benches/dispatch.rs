//! Criterion bench of the pre-decoded µop engine versus the legacy
//! walk-the-instruction-list interpreter, plus a lane-kernel microbench.
//!
//! Three workloads isolate the dispatch costs the decoded engine removes:
//!
//! * `packed_heavy` — a MOM loop of strided matrix loads, packed arithmetic
//!   and accumulator streams (deep `Inst` nesting, four-operand vector
//!   instructions, per-row element loops);
//! * `branch_heavy` — a VLC-style scalar loop: table loads, short ALU chains
//!   and a data-dependent branch every few instructions (label resolution
//!   and branch-info assembly dominate the legacy path);
//! * `lane_kernel` — the raw packed-word element kernels (`add`, `abs_diff`,
//!   `mul_lo`, SAD reduction) over the fixed-array lane API, outside any
//!   interpreter. Each shape runs twice: the default engine (SWAR, or SSE2
//!   under `--features simd`) against the retained `*_scalar` lane-at-a-time
//!   reference, so the lane-kernel speedup is measured directly.
//! * `fused`/`unfused` — the same two dispatch workloads through
//!   pre-decoded programs with superinstruction fusion on
//!   (`Program::decode`) and off (`Program::decode_unfused`), isolating
//!   what pair fusion buys on top of threaded dispatch. Decoding happens
//!   outside the timed region.
//!
//! Both interpreter comparisons run the **same** program from the **same**
//! machine state through `decoded` (`Program::stream`, which lowers through
//! `Program::decode`) and `legacy` (`Program::stream_with_fuel_legacy`),
//! streaming into a counting sink so neither side pays trace
//! materialization. The machine uses a small memory image, so the printed
//! ns/iter ratio is the interpreter dispatch cost itself. `MOM_BENCH_FAST=1`
//! shrinks the iteration counts so the smoke test stays quick.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mom_core::matrix::{v, va};
use mom_core::ops::MomOp;
use mom_core::program::{Program, ProgramBuilder, DEFAULT_FUEL};
use mom_core::state::Machine;
use mom_isa::mdmx::AccOp;
use mom_isa::mem::MemImage;
use mom_isa::mmx::PackedBinOp;
use mom_isa::packed::{Lane, PackedWord, Saturation};
use mom_isa::regs::r;
use mom_isa::scalar::{AluOp, Cond, ScalarOp};
use mom_isa::trace::{DynInst, IsaKind, TraceSink};

const MEM_BASE: u64 = 0x1000;
const MEM_SIZE: usize = 64 * 1024;

/// Sink that counts instructions without materializing anything.
struct Count(usize);

impl TraceSink for Count {
    fn emit(&mut self, _inst: DynInst) {
        self.0 += 1;
    }
}

fn machine() -> Machine {
    let mut machine = Machine::new(MemImage::new(MEM_BASE, MEM_SIZE));
    for i in 0..(MEM_SIZE / 8) as u64 {
        machine.mem_mut().write_u64(MEM_BASE + i * 8, i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    machine
}

/// A MOM loop: per iteration two strided matrix loads, four packed matrix
/// operations, an accumulator stream and a reduction — the instruction mix
/// of the media kernels.
fn packed_heavy_program(iters: i64) -> Program {
    let mut b = ProgramBuilder::new(IsaKind::Mom);
    b.push(ScalarOp::Li { rd: r(1), imm: MEM_BASE as i64 });
    b.push(ScalarOp::Li { rd: r(2), imm: MEM_BASE as i64 + 0x4000 });
    b.push(ScalarOp::Li { rd: r(3), imm: 32 }); // row stride
    b.push(ScalarOp::Li { rd: r(4), imm: iters });
    b.push(MomOp::SetVlI { vl: 16 });
    let top = b.bind_here();
    b.push(MomOp::Ld { vd: v(0), base: r(1), stride: r(3) });
    b.push(MomOp::Ld { vd: v(1), base: r(2), stride: r(3) });
    b.push(MomOp::Packed {
        op: PackedBinOp::Add,
        vd: v(2),
        va: v(0),
        vb: v(1),
        lane: Lane::U8,
        sat: Saturation::Saturating,
    });
    b.push(MomOp::Packed {
        op: PackedBinOp::AbsDiff,
        vd: v(3),
        va: v(0),
        vb: v(1),
        lane: Lane::U8,
        sat: Saturation::Wrapping,
    });
    b.push(MomOp::Packed {
        op: PackedBinOp::MulLo,
        vd: v(4),
        va: v(2),
        vb: v(3),
        lane: Lane::I16,
        sat: Saturation::Wrapping,
    });
    b.push(MomOp::Shift { kind: mom_isa::mmx::ShiftKind::RightArith, vd: v(5), va: v(4), lane: Lane::I16, amount: 3 });
    b.push(MomOp::AccClear { acc: va(0) });
    b.push(MomOp::Acc { op: AccOp::AbsDiffAdd, acc: va(0), va: v(0), vb: v(1), lane: Lane::U8 });
    b.push(MomOp::ReduceAcc { rd: r(5), acc: va(0) });
    b.push(MomOp::St { vs: v(5), base: r(1), stride: r(3) });
    b.push(ScalarOp::AluI { op: AluOp::Add, rd: r(4), ra: r(4), imm: -1 });
    b.push(ScalarOp::Br { cond: Cond::Gt, ra: r(4), rb: r(31), target: top });
    b.build().expect("packed-heavy program builds")
}

/// A VLC-style scalar loop: a byte fetch, a table lookup, a data-dependent
/// branch and a short ALU chain per iteration — the shape of the entropy-
/// coding phases that bound whole-program speedups.
fn branch_heavy_program(iters: i64) -> Program {
    let mut b = ProgramBuilder::new(IsaKind::Alpha);
    b.push(ScalarOp::Li { rd: r(1), imm: MEM_BASE as i64 });
    b.push(ScalarOp::Li { rd: r(2), imm: MEM_BASE as i64 + 0x4000 });
    b.push(ScalarOp::Li { rd: r(3), imm: iters });
    b.push(ScalarOp::Li { rd: r(4), imm: 0 });
    let top = b.bind_here();
    b.push(ScalarOp::AluI { op: AluOp::And, rd: r(10), ra: r(3), imm: 0x3ff8 });
    b.push(ScalarOp::Alu { op: AluOp::Add, rd: r(10), ra: r(10), rb: r(1) });
    b.push(ScalarOp::Ld { rd: r(11), base: r(10), offset: 0, size: 1, signed: false });
    b.push(ScalarOp::AluI { op: AluOp::Sll, rd: r(12), ra: r(11), imm: 3 });
    b.push(ScalarOp::Alu { op: AluOp::Add, rd: r(12), ra: r(12), rb: r(2) });
    b.push(ScalarOp::Ld { rd: r(13), base: r(12), offset: 0, size: 2, signed: false });
    b.push(ScalarOp::AluI { op: AluOp::And, rd: r(14), ra: r(13), imm: 1 });
    let skip = b.new_label();
    b.push(ScalarOp::Br { cond: Cond::Eq, ra: r(14), rb: r(31), target: skip });
    b.push(ScalarOp::AluI { op: AluOp::Sra, rd: r(15), ra: r(13), imm: 3 });
    b.push(ScalarOp::Alu { op: AluOp::Xor, rd: r(4), ra: r(4), rb: r(15) });
    b.bind(skip);
    b.push(ScalarOp::Alu { op: AluOp::Add, rd: r(4), ra: r(4), rb: r(13) });
    b.push(ScalarOp::AluI { op: AluOp::Srl, rd: r(16), ra: r(4), imm: 5 });
    b.push(ScalarOp::Alu { op: AluOp::Xor, rd: r(4), ra: r(4), rb: r(16) });
    b.push(ScalarOp::AluI { op: AluOp::Add, rd: r(3), ra: r(3), imm: -1 });
    b.push(ScalarOp::Br { cond: Cond::Gt, ra: r(3), rb: r(31), target: top });
    b.build().expect("branch-heavy program builds")
}

/// Run one program through both engines once and report the dynamic count,
/// asserting the two engines agree (a cheap inline sanity check on top of
/// the proptest suite).
fn dynamic_count(program: &Program) -> usize {
    let mut decoded_sink = Count(0);
    program.stream(&mut machine(), &mut decoded_sink).expect("terminates");
    let mut legacy_sink = Count(0);
    program
        .stream_with_fuel_legacy(&mut machine(), &mut legacy_sink, DEFAULT_FUEL)
        .expect("terminates");
    assert_eq!(decoded_sink.0, legacy_sink.0, "engines must agree on dynamic counts");
    decoded_sink.0
}

fn bench_dispatch(c: &mut Criterion) {
    let iters: i64 = if mom_bench::fast_mode() { 2_000 } else { 50_000 };

    let mut group = c.benchmark_group("dispatch");
    group.sample_size(10);

    for (name, program) in
        [("packed_heavy", packed_heavy_program(iters)), ("branch_heavy", branch_heavy_program(iters))]
    {
        println!("{name}: {} dynamic instructions per iteration", dynamic_count(&program));
        group.bench_with_input(BenchmarkId::new(name, "decoded"), &program, |b, program| {
            b.iter(|| {
                let mut sink = Count(0);
                program.stream(&mut machine(), &mut sink).expect("terminates");
                black_box(sink.0)
            });
        });
        group.bench_with_input(BenchmarkId::new(name, "legacy"), &program, |b, program| {
            b.iter(|| {
                let mut sink = Count(0);
                program
                    .stream_with_fuel_legacy(&mut machine(), &mut sink, DEFAULT_FUEL)
                    .expect("terminates");
                black_box(sink.0)
            });
        });
        // Decode-once cost in isolation (paid per `Program::stream` call).
        group.bench_with_input(BenchmarkId::new(name, "decode_only"), &program, |b, program| {
            b.iter(|| black_box(program.decode().len()));
        });
    }

    // Fusion in isolation: both engines are pre-decoded and threaded; the
    // only difference is whether hot adjacent pairs execute in one dispatch.
    for (name, program) in
        [("packed_heavy", packed_heavy_program(iters)), ("branch_heavy", branch_heavy_program(iters))]
    {
        let fused = program.decode();
        let unfused = program.decode_unfused();
        println!("{name}: {} fused pairs over {} µops", fused.fused_pairs(), fused.len());
        group.bench_with_input(BenchmarkId::new(name, "fused"), &fused, |b, decoded| {
            b.iter(|| {
                let mut sink = Count(0);
                decoded.stream_with_fuel(&mut machine(), &mut sink, DEFAULT_FUEL).expect("terminates");
                black_box(sink.0)
            });
        });
        group.bench_with_input(BenchmarkId::new(name, "unfused"), &unfused, |b, decoded| {
            b.iter(|| {
                let mut sink = Count(0);
                decoded.stream_with_fuel(&mut machine(), &mut sink, DEFAULT_FUEL).expect("terminates");
                black_box(sink.0)
            });
        });
    }

    // Lane kernels in isolation: the fixed-array element operations the
    // µop bodies bottom out in.
    let reps = if mom_bench::fast_mode() { 1_000u64 } else { 100_000 };
    group.bench_with_input(BenchmarkId::new("lane_kernel", "u8x8"), &reps, |b, &reps| {
        b.iter(|| {
            let mut acc = 0i64;
            let mut w = PackedWord::new(0x0102_0304_0506_0708);
            for r in 0..reps {
                // Vary one operand per rep so the loop cannot settle into a
                // fixed point the optimizer folds away.
                let k = PackedWord::new(0x1122_3344_5566_7788 ^ r);
                w = w.add(k, Lane::U8, Saturation::Saturating);
                w = w.abs_diff(k, Lane::U8);
                acc += w.sad(k, Lane::U8);
            }
            black_box((w, acc))
        });
    });
    group.bench_with_input(BenchmarkId::new("lane_kernel", "i16x4"), &reps, |b, &reps| {
        b.iter(|| {
            let mut acc = 0i64;
            let mut w = PackedWord::from_i16_lanes([1, -2, 3, -4]);
            for r in 0..reps {
                let k = PackedWord::new(PackedWord::from_i16_lanes([257, -129, 65, 33]).bits() ^ r);
                w = w.mul_lo(k, Lane::I16);
                w = w.add(k, Lane::I16, Saturation::Saturating);
                acc += w.reduce_sum(Lane::I16);
            }
            black_box((w, acc))
        });
    });

    // The same element kernels through the retained lane-at-a-time scalar
    // reference — the denominator of the SWAR/SIMD speedup.
    group.bench_with_input(BenchmarkId::new("lane_kernel_scalar", "u8x8"), &reps, |b, &reps| {
        b.iter(|| {
            let mut acc = 0i64;
            let mut w = PackedWord::new(0x0102_0304_0506_0708);
            for r in 0..reps {
                let k = PackedWord::new(0x1122_3344_5566_7788 ^ r);
                w = w.add_scalar(k, Lane::U8, Saturation::Saturating);
                w = w.abs_diff_scalar(k, Lane::U8);
                acc += w.sad_scalar(k, Lane::U8);
            }
            black_box((w, acc))
        });
    });
    group.bench_with_input(BenchmarkId::new("lane_kernel_scalar", "i16x4"), &reps, |b, &reps| {
        b.iter(|| {
            let mut acc = 0i64;
            let mut w = PackedWord::from_i16_lanes([1, -2, 3, -4]);
            for r in 0..reps {
                let k = PackedWord::new(PackedWord::from_i16_lanes([257, -129, 65, 33]).bits() ^ r);
                w = w.mul_lo(k, Lane::I16);
                w = w.add_scalar(k, Lane::I16, Saturation::Saturating);
                acc += w.reduce_sum_scalar(Lane::I16);
            }
            black_box((w, acc))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
