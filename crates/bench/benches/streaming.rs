//! Criterion bench of the streaming trace pipeline versus the materialized
//! one, on the heaviest kernel (`rgb2ycc`, the longest scalar trace of the
//! eight) at the stress scale.
//!
//! Three flavours are measured per ISA:
//!
//! * `replay` — simulate a pre-built trace (the cost the old two-stage
//!   runner paid per cell *after* building the trace once);
//! * `build+replay` — build the trace, then simulate it (the true end-to-end
//!   cost of one materialized cell, including the `Vec<DynInst>`
//!   allocation);
//! * `fused` — the streaming pipeline: interpret the kernel straight into
//!   the simulator's O(ROB) engine, no trace ever materialized.
//!
//! `fused` vs `build+replay` is the apples-to-apples comparison; the win is
//! both time (no trace allocation/traversal) and — the reason the stress
//! scale exists at all — peak memory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mom_cpu::{CoreConfig, OooCore};
use mom_isa::trace::IsaKind;
use mom_kernels::{build_kernel, KernelKind, KernelParams};
use mom_mem::{build_memory, MemModelKind};

fn bench_streaming(c: &mut Criterion) {
    // Full runs use the stress configuration (largest kernel, 8x scale);
    // MOM_BENCH_FAST=1 drops to scale 1 so smoke runs stay quick.
    let scale = if mom_bench::fast_mode() { 1 } else { 8 };
    let kernel = KernelKind::Rgb2Ycc;
    let params = KernelParams { seed: 42, scale };
    let way = 4;
    let mem = MemModelKind::Perfect { latency: 1 };

    let mut group = c.benchmark_group("streaming_vs_materialized");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for isa in [IsaKind::Alpha, IsaKind::Mom] {
        let core = OooCore::new(CoreConfig::for_width(way, isa));
        let trace = build_kernel(kernel, isa, &params)
            .run_verified()
            .expect("kernel verifies")
            .trace;
        println!(
            "{kernel} {isa} scale {scale}: {} dynamic instructions per cell",
            trace.len()
        );

        group.bench_with_input(BenchmarkId::new("replay", isa.label()), &trace, |b, trace| {
            b.iter(|| {
                let mut memory = build_memory(mem, way);
                core.simulate(trace, memory.as_mut())
            });
        });
        group.bench_with_input(BenchmarkId::new("build+replay", isa.label()), &(), |b, ()| {
            b.iter(|| {
                let run = build_kernel(kernel, isa, &params).run_verified().expect("verifies");
                let mut memory = build_memory(mem, way);
                core.simulate(&run.trace, memory.as_mut())
            });
        });
        group.bench_with_input(BenchmarkId::new("fused", isa.label()), &(), |b, ()| {
            b.iter(|| {
                let mut memory = build_memory(mem, way);
                build_kernel(kernel, isa, &params)
                    .run_streamed(&core, memory.as_mut())
                    .expect("verifies")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
