//! Criterion guard on the cycle-attribution probe: simulate the same
//! pre-interpreted trace through `SimStream` with the probe off
//! (`NoProbe`, the monomorphized-away default) and on
//! (`AttributionProbe`), at 1- and 8-way issue.
//!
//! The `probe_off` numbers are the regression gate — the generic `Probe`
//! parameter must keep the unprobed stream as fast as it was before the
//! probe existed (within Criterion noise). The `probe_on` numbers document
//! the cost of always-on attribution in the lab runner; the measured
//! overhead is recorded in `EXPERIMENTS.md`. `MOM_BENCH_FAST=1` shrinks the
//! trace so the smoke test stays quick.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mom_core::program::ProgramBuilder;
use mom_core::state::Machine;
use mom_cpu::{AttributionProbe, CoreConfig, OooCore};
use mom_isa::mem::MemImage;
use mom_isa::regs::r;
use mom_isa::scalar::{AluOp, Cond, ScalarOp};
use mom_isa::trace::{IsaKind, Trace};
use mom_mem::{build_memory, MemModelKind};

const MEM_BASE: u64 = 0x1000;
const MEM_SIZE: usize = 64 * 1024;

/// A scalar loop with loads, an ALU chain and a conditional branch per
/// iteration — enough cause diversity (base, redirect, mem, unit) that the
/// probe's attribution switch runs on every commit slot.
fn trace(iters: i64) -> Trace {
    let mut b = ProgramBuilder::new(IsaKind::Alpha);
    b.push(ScalarOp::Li { rd: r(1), imm: MEM_BASE as i64 });
    b.push(ScalarOp::Li { rd: r(2), imm: iters });
    b.push(ScalarOp::Li { rd: r(3), imm: 0 });
    let top = b.bind_here();
    b.push(ScalarOp::AluI { op: AluOp::And, rd: r(10), ra: r(2), imm: 0x3ff8 });
    b.push(ScalarOp::Alu { op: AluOp::Add, rd: r(10), ra: r(10), rb: r(1) });
    b.push(ScalarOp::Ld { rd: r(11), base: r(10), offset: 0, size: 8, signed: false });
    b.push(ScalarOp::Alu { op: AluOp::Xor, rd: r(3), ra: r(3), rb: r(11) });
    b.push(ScalarOp::AluI { op: AluOp::Srl, rd: r(12), ra: r(3), imm: 7 });
    b.push(ScalarOp::Alu { op: AluOp::Add, rd: r(3), ra: r(3), rb: r(12) });
    let skip = b.new_label();
    b.push(ScalarOp::Br { cond: Cond::Eq, ra: r(12), rb: r(31), target: skip });
    b.push(ScalarOp::St { rs: r(3), base: r(10), offset: 0, size: 8 });
    b.bind(skip);
    b.push(ScalarOp::AluI { op: AluOp::Add, rd: r(2), ra: r(2), imm: -1 });
    b.push(ScalarOp::Br { cond: Cond::Gt, ra: r(2), rb: r(31), target: top });
    let program = b.build().expect("probe-bench program builds");
    program
        .run(&mut Machine::new(MemImage::new(MEM_BASE, MEM_SIZE)))
        .expect("program terminates")
}

fn bench_probe(c: &mut Criterion) {
    let iters: i64 = if mom_bench::fast_mode() { 2_000 } else { 50_000 };
    let trace = trace(iters);
    println!("probe: {} dynamic instructions per iteration", trace.len());

    let mut group = c.benchmark_group("probe");
    group.sample_size(10);

    for way in [1usize, 8] {
        let core = OooCore::new(CoreConfig::for_width(way, IsaKind::Alpha));
        group.bench_with_input(BenchmarkId::new("probe_off", way), &trace, |b, trace| {
            b.iter(|| {
                let mut mem = build_memory(MemModelKind::Perfect { latency: 4 }, way);
                black_box(core.simulate(trace, mem.as_mut()))
            });
        });
        group.bench_with_input(BenchmarkId::new("probe_on", way), &trace, |b, trace| {
            b.iter(|| {
                let mut mem = build_memory(MemModelKind::Perfect { latency: 4 }, way);
                let mut sim = core.stream_probed(mem.as_mut(), AttributionProbe::new());
                for inst in &trace.insts {
                    sim.feed(inst);
                }
                let (sim, probe) = sim.finish_probed();
                black_box((sim, probe.into_report()))
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_probe);
criterion_main!(benches);
