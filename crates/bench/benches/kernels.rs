//! Criterion bench regenerating the Figure 5 kernel study: for every kernel
//! and ISA, measure the wall-clock cost of the timing simulation and report
//! the simulated speed-up relative to the 1-way Alpha machine through
//! Criterion's output (the simulated numbers themselves go to stdout once per
//! kernel at the start of the run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mom_bench::{kernel_traces, simulate};
use mom_isa::trace::IsaKind;
use mom_kernels::{KernelKind, KernelParams};
use mom_mem::MemModelKind;

fn bench_kernels(c: &mut Criterion) {
    let params = KernelParams { seed: 42, scale: 1 };
    let mut group = c.benchmark_group("figure5_kernels");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for kernel in KernelKind::ALL {
        let traces = kernel_traces(kernel, &params);
        let alpha = traces.iter().find(|(isa, _)| *isa == IsaKind::Alpha).unwrap();
        let baseline = simulate(&alpha.1, 1, IsaKind::Alpha, MemModelKind::Perfect { latency: 1 });
        for (isa, trace) in &traces {
            let r = simulate(trace, 4, *isa, MemModelKind::Perfect { latency: 1 });
            println!(
                "{kernel} {isa} 4-way: {} cycles, speed-up vs 1-way alpha {:.2}",
                r.cycles,
                r.speedup_over(&baseline)
            );
            group.bench_with_input(
                BenchmarkId::new(kernel.to_string(), isa.to_string()),
                trace,
                |b, trace| {
                    b.iter(|| simulate(trace, 4, *isa, MemModelKind::Perfect { latency: 1 }));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
