//! Criterion bench regenerating the Figure 7 whole-program study on the 4-way
//! machine: simulated speed-ups are printed once per application, and the
//! timing-simulation wall-clock cost is what Criterion measures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mom_apps::{build_app, AppKind, AppParams};
use mom_bench::{simulate, Figure7Config};
use mom_isa::trace::IsaKind;
use mom_mem::MemModelKind;

fn bench_applications(c: &mut Criterion) {
    let params = AppParams { seed: 42, scale: 1 };
    let mut group = c.benchmark_group("figure7_applications");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for app in AppKind::ALL {
        let alpha = build_app(app, IsaKind::Alpha, &params).expect("alpha app builds");
        let mom = build_app(app, IsaKind::Mom, &params).expect("mom app builds");
        let baseline = simulate(&alpha.trace, 4, IsaKind::Alpha, MemModelKind::Conventional);
        for config in [Figure7Config::MomMultiAddress, Figure7Config::MomVectorCache] {
            let r = simulate(&mom.trace, 4, IsaKind::Mom, config.memory());
            println!(
                "{app} / {}: {} cycles, speed-up vs alpha conventional {:.2}",
                config.label(),
                r.cycles,
                r.speedup_over(&baseline)
            );
        }
        group.bench_with_input(BenchmarkId::new("mom_multi_address", app.to_string()), &mom.trace, |b, trace| {
            b.iter(|| simulate(trace, 4, IsaKind::Mom, MemModelKind::MultiAddress));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_applications);
criterion_main!(benches);
